"""Shared fixtures for the benchmark harness.

The full 122-benchmark workload data set is built once per session (and
cached on disk across sessions), so individual benches measure the
experiment computation itself, not dataset construction.  Trace length
follows the library default; override with ``REPRO_BENCH_TRACE_LENGTH``.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import GeneticSelector
from repro.config import DEFAULT_CONFIG
from repro.experiments import build_dataset


def bench_config():
    length = int(
        os.environ.get("REPRO_BENCH_TRACE_LENGTH",
                       DEFAULT_CONFIG.trace_length)
    )
    return DEFAULT_CONFIG.with_overrides(
        trace_length=length,
        ga_generations=40,
        ga_population=48,
    )


@pytest.fixture(scope="session")
def config():
    return bench_config()


@pytest.fixture(scope="session")
def dataset(config):
    """The full 122-benchmark workload data set (disk-cached)."""
    return build_dataset(config)


@pytest.fixture(scope="session")
def ga_result(dataset, config):
    """One GA selection shared by figures 4-6 and Table IV."""
    selector = GeneticSelector(
        population=config.ga_population,
        generations=config.ga_generations,
        seed=config.ga_seed,
    )
    return selector.select(dataset.mica_normalized())


def report(title: str, lines) -> None:
    """Print a paper-vs-measured block under ``-s`` / captured output."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(f"  {line}")
