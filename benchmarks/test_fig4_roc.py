"""Figure 4: ROC curves of the characterization methods.

Paper AUCs: all-47 = 0.72, GA = 0.69, CE-17 = 0.67, CE-12/7 = 0.64.
Shape expectation: all-47 >= GA >= CE at any retained size, and every
curve clearly above chance (0.5).
"""

from conftest import report
from repro.experiments import run_fig4


def test_fig4_roc_curves(benchmark, dataset, config, ga_result):
    result = benchmark.pedantic(
        run_fig4,
        args=(dataset, config),
        kwargs={"ga_result": ga_result},
        rounds=1,
        iterations=1,
    )
    paper = {"all-47": 0.72, "GA": 0.69, "CE-17": 0.67,
             "CE-12": 0.64, "CE-7": 0.64}
    rows = [
        f"{label:<8} AUC {area:.3f}  (paper: {paper[label]:.2f})  "
        f"[{len(result.selected[label])} characteristics]"
        for label, area in result.areas.items()
    ]
    report("Figure 4: ROC areas", rows)
    areas = result.areas
    assert areas["all-47"] >= areas["GA"] - 0.02
    assert areas["GA"] >= areas["CE-12"] - 0.02
    assert all(area > 0.55 for area in areas.values())
