"""Figure 1: HPC-distance vs MICA-distance scatter.

Paper: correlation coefficient 0.46 over all benchmark tuples — the
quantitative core of the pitfall argument.  Shape expectation: a modest
positive correlation, clearly below a faithful-space correlation (~1).
"""

from conftest import report
from repro.experiments import run_fig1


def test_fig1_distance_scatter(benchmark, dataset):
    result = benchmark.pedantic(
        run_fig1, args=(dataset,), rounds=1, iterations=1
    )
    report(
        "Figure 1: distance correlation",
        [
            f"benchmark tuples : {result.tuples} (122*121/2 = 7381)",
            f"correlation      : {result.correlation:.3f} (paper: 0.46)",
        ],
    )
    assert result.tuples == 7381
    # Shape: modest positive correlation, far from both 0 and 1.
    assert 0.2 < result.correlation < 0.9
