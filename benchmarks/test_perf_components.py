"""Component micro-benchmarks: the substrate building blocks.

Not paper artifacts — these track the performance of the expensive
simulation loops so regressions in the substrate are visible.
"""

import numpy as np

from repro.synth import generate_trace
from repro.uarch import (
    EV56_CONFIG,
    EV67_CONFIG,
    InOrderModel,
    OutOfOrderModel,
    SetAssociativeCache,
    collect_hpc,
)
from repro.uarch.cache import CacheConfig
from repro.workloads import get_benchmark


def _trace(config):
    return generate_trace(
        get_benchmark("spec2000/vpr/place").profile, config.trace_length
    )


def test_perf_cache_simulation(benchmark, config):
    trace = _trace(config)
    addresses = trace.mem_addr[trace.memory_mask]

    def run():
        cache = SetAssociativeCache(
            CacheConfig("L1D", 8 << 10, 32, 1)
        )
        return cache.simulate(addresses)

    misses = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(misses) == len(addresses)


def test_perf_inorder_model(benchmark, config):
    trace = _trace(config)
    ipc, _ = benchmark.pedantic(
        InOrderModel(EV56_CONFIG).run, args=(trace,), rounds=1, iterations=1
    )
    assert 0.0 < ipc <= 2.0


def test_perf_ooo_model(benchmark, config):
    trace = _trace(config)
    ipc, _ = benchmark.pedantic(
        OutOfOrderModel(EV67_CONFIG).run, args=(trace,),
        rounds=1, iterations=1,
    )
    assert 0.0 < ipc <= 4.0


def test_perf_hpc_collection(benchmark, config):
    trace = _trace(config)
    hpc = benchmark.pedantic(
        collect_hpc, args=(trace,), rounds=1, iterations=1
    )
    assert np.isfinite(hpc.values).all()
