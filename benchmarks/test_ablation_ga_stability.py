"""Ablation: stability of the GA selection across seeds.

The paper reports one Table IV; a natural robustness question is how
much the selected subset moves when the GA is re-seeded.  This bench
runs the GA under several seeds and reports subset sizes, pairwise
Jaccard overlap, and how consistently each Table II *category* is
represented — the level at which the selection is meaningful.
"""

from itertools import combinations

import numpy as np

from conftest import report
from repro.analysis import GeneticSelector
from repro.mica import CHARACTERISTICS

SEEDS = (42, 7, 19, 101)


def test_ablation_ga_seed_stability(benchmark, dataset):
    normalized = dataset.mica_normalized()

    def run_all_seeds():
        results = {}
        for seed in SEEDS:
            selector = GeneticSelector(
                population=32, generations=20, seed=seed
            )
            results[seed] = selector.select(normalized)
        return results

    results = benchmark.pedantic(run_all_seeds, rounds=1, iterations=1)

    sizes = {seed: result.n_selected for seed, result in results.items()}
    rhos = {seed: result.rho for seed, result in results.items()}
    jaccards = []
    for seed_a, seed_b in combinations(SEEDS, 2):
        set_a = set(results[seed_a].selected)
        set_b = set(results[seed_b].selected)
        jaccards.append(len(set_a & set_b) / len(set_a | set_b))

    category_hits = {}
    for result in results.values():
        for index in result.selected:
            category = CHARACTERISTICS[index].category
            category_hits[category] = category_hits.get(category, 0) + 1

    rows = [
        f"seed {seed}: {sizes[seed]} chars, rho = {rhos[seed]:.3f}"
        for seed in SEEDS
    ]
    rows.append(f"mean pairwise Jaccard overlap: {np.mean(jaccards):.2f}")
    rows.append("category representation across seeds:")
    for category, hits in sorted(category_hits.items()):
        rows.append(f"  {category:<24} {hits} selections")
    report("Ablation: GA seed stability", rows)

    # Robustness shape: every seed reaches high fidelity with a small
    # subset even when exact membership varies.
    assert all(rho > 0.8 for rho in rhos.values())
    assert all(3 <= size <= 14 for size in sizes.values())
