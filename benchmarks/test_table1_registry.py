"""Table I: the 122-benchmark population.

Regenerates the registry (suite sizes and per-suite instruction counts)
and benchmarks registry construction plus trace generation throughput.
"""

from conftest import report
from repro.synth import generate_trace
from repro.workloads import all_benchmarks, all_suites, get_benchmark
from repro.workloads.registry import _assemble_suite
from repro.workloads import spec2000


def test_table1_registry(benchmark):
    suites = benchmark.pedantic(all_suites, rounds=1, iterations=1)
    rows = [f"{suite.name:<14} {len(suite):>3} benchmarks" for suite in suites]
    rows.append(f"{'total':<14} {len(all_benchmarks()):>3} (paper: 122)")
    report("Table I: benchmark population", rows)
    assert len(all_benchmarks()) == 122


def test_table1_suite_assembly(benchmark):
    """Profile construction cost for the largest suite (SPEC CPU2000)."""
    suite = benchmark(_assemble_suite, spec2000)
    assert len(suite) == 48


def test_table1_trace_generation(benchmark, config):
    """Dynamic-trace generation throughput for one benchmark."""
    profile = get_benchmark("spec2000/bzip2/graphic").profile
    trace = benchmark(generate_trace, profile, config.trace_length)
    assert len(trace) == config.trace_length
