"""Table IV: GA-selected key characteristics + measurement cost.

Paper: eight characteristics spanning instruction mix, register
traffic, strides, working set and ILP; measurement cost drops from
~110 to ~37 machine-days (~3X).  Shape expectation: a small subset
(<= ~12) spanning several categories with a >= 2X modeled speedup.
"""

from conftest import report
from repro.experiments import run_table4
from repro.mica import CHARACTERISTICS


def test_table4_ga_selection(benchmark, dataset, config, ga_result):
    result = benchmark.pedantic(
        run_table4,
        args=(dataset, config),
        kwargs={"ga_result": ga_result},
        rounds=1,
        iterations=1,
    )
    rows = [
        f"#{CHARACTERISTICS[i].index:>2} {CHARACTERISTICS[i].description}"
        for i in result.ga.selected
    ]
    rows.append(f"selected {result.ga.n_selected} (paper: 8); "
                f"rho = {result.ga.rho:.3f} (paper: 0.876)")
    rows.append(
        f"cost {result.full_cost:.0f} -> {result.selected_cost:.0f} "
        f"machine-days, speedup {result.speedup:.1f}x (paper: 110 -> 37, ~3X)"
    )
    report("Table IV: GA-selected characteristics", rows)
    assert 3 <= result.ga.n_selected <= 14
    assert result.ga.rho > 0.8
    assert result.speedup >= 2.0
    categories = {
        CHARACTERISTICS[i].category for i in result.ga.selected
    }
    assert len(categories) >= 3  # Spans multiple behavior families.
