"""Benches for the extension experiments.

Not paper artifacts — these regenerate the follow-on analyses the paper
motivates (subsetting, input sensitivity), the prior-work comparator
(hierarchical dendrogram) and the related-work phase methodology.
"""

import numpy as np

from conftest import report
from repro.analysis import hierarchical_cluster
from repro.experiments import run_input_sensitivity, run_subsetting
from repro.phases import detect_phases, phase_homogeneity
from repro.synth import generate_trace
from repro.workloads import get_benchmark


def test_extension_input_sensitivity(benchmark, dataset):
    result = benchmark.pedantic(
        run_input_sensitivity, args=(dataset,), rounds=1, iterations=1
    )
    report(
        "Extension: input-set sensitivity",
        [
            f"programs with multiple inputs : {len(result.per_program)}",
            f"same-program mean distance    : {result.intra_mean:.3f}",
            f"cross-program mean distance   : {result.inter_mean:.3f}",
            f"separation                    : {result.separation:.2f}x",
        ],
    )
    # Same-program pairs must be closer than cross-program pairs
    # (Eeckhout et al. JILP'03: inputs matter, but less than programs).
    assert result.separation > 1.2


def test_extension_subsetting(benchmark, dataset, config, ga_result):
    result = benchmark.pedantic(
        run_subsetting,
        args=(dataset, config),
        kwargs={"ga_result": ga_result},
        rounds=1,
        iterations=1,
    )
    report(
        "Extension: benchmark subsetting",
        [
            f"subset size          : {result.subset.size} of "
            f"{len(result.names)}",
            f"simulation reduction : {result.reduction:.0%}",
            f"max HPC suite-mean estimation error: "
            f"{result.hpc_errors.max():.1%}",
        ],
    )
    assert result.reduction > 0.5
    assert result.subset.size >= 5


def test_extension_hierarchical_dendrogram(benchmark, dataset, ga_result):
    reduced = dataset.mica_normalized()[:, list(ga_result.selected)]

    def run():
        return hierarchical_cluster(reduced, list(dataset.names))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    cut = result.cut(15)
    sizes = sorted((len(members) for members in cut.values()), reverse=True)
    report(
        "Extension: hierarchical clustering (prior-work comparator)",
        [
            f"linkage method : {result.method}",
            f"15-cluster cut sizes: {sizes}",
        ],
    )
    assert sum(sizes) == len(dataset)


def test_extension_phase_analysis(benchmark, config):
    trace = generate_trace(
        get_benchmark("spec2000/gcc/166").profile, config.trace_length
    )

    def run():
        result = detect_phases(trace, interval=5_000, seed=1)
        within, overall = phase_homogeneity(
            trace, result, lambda chunk: float(chunk.load_mask.mean())
        )
        return result, within, overall

    result, within, overall = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "Extension: phase analysis (SimPoint-style, related work)",
        [
            f"intervals : {len(result.assignments)} x {result.interval:,}",
            f"phases    : {result.k}",
            f"load-fraction stddev within phases : {within:.4f}",
            f"load-fraction stddev overall       : {overall:.4f}",
        ],
    )
    assert within <= overall + 1e-9
