"""Table II: the 47 microarchitecture-independent characteristics.

Benchmarks the full characterization of one trace and each analyzer
family separately (the measurement-cost model in Table IV builds on
their relative costs).
"""

from conftest import report
from repro.mica import (
    characterize,
    ilp_ipc,
    instruction_mix,
    ppm_predictabilities,
    register_traffic,
    stride_profile,
    working_set,
)
from repro.synth import generate_trace
from repro.workloads import get_benchmark


def _trace(config, name="spec2000/gzip/graphic"):
    return generate_trace(get_benchmark(name).profile, config.trace_length)


def test_table2_full_characterization(benchmark, config):
    trace = _trace(config)
    vector = benchmark.pedantic(
        characterize, args=(trace, config), rounds=1, iterations=1
    )
    rows = [
        f"{key:<28} {value:10.4f}"
        for key, value in list(vector.as_dict().items())[:8]
    ]
    rows.append(f"... 47 characteristics total")
    report("Table II: characterization sample (gzip)", rows)
    assert vector.values.shape == (47,)


def test_table2_instruction_mix(benchmark, config):
    trace = _trace(config)
    mix = benchmark(instruction_mix, trace)
    assert mix.shape == (6,)


def test_table2_ilp(benchmark, config):
    trace = _trace(config)
    ipc = benchmark.pedantic(
        ilp_ipc, args=(trace,), rounds=1, iterations=1
    )
    assert ipc.shape == (4,)


def test_table2_register_traffic(benchmark, config):
    trace = _trace(config)
    traffic = benchmark.pedantic(
        register_traffic, args=(trace,), rounds=1, iterations=1
    )
    assert traffic.shape == (9,)


def test_table2_working_set(benchmark, config):
    trace = _trace(config)
    ws = benchmark(working_set, trace)
    assert ws.shape == (4,)


def test_table2_strides(benchmark, config):
    trace = _trace(config)
    strides = benchmark(stride_profile, trace)
    assert strides.shape == (20,)


def test_table2_ppm(benchmark, config):
    trace = _trace(config)
    ppm = benchmark.pedantic(
        ppm_predictabilities, args=(trace,), rounds=1, iterations=1
    )
    assert ppm.shape == (4,)
