"""Ablation benches for the design choices called out in DESIGN.md.

* GA fitness with vs without the ``(1 - n/N)`` size penalty.
* Correlation elimination ranking rule: mean-|r| vs max-|r|.
* PCA baseline vs the GA subset at equal dimensionality.
* Trace-length sensitivity of the characteristic vectors.
"""

import numpy as np

from conftest import report
from repro.analysis import (
    PCA,
    GeneticSelector,
    correlation_elimination_order,
    pairwise_distances,
    pearson,
    retain_by_correlation,
)
from repro.mica import characterize
from repro.synth import generate_trace
from repro.workloads import get_benchmark


def test_ablation_ga_size_penalty(benchmark, dataset, config):
    """Does the (1 - n/N) term actually shrink the subset?"""
    normalized = dataset.mica_normalized()

    def run_both():
        with_penalty = GeneticSelector(
            population=32, generations=20, seed=config.ga_seed
        ).select(normalized)
        without_penalty = GeneticSelector(
            population=32, generations=20, seed=config.ga_seed,
            size_penalty=False,
        ).select(normalized)
        return with_penalty, without_penalty

    with_penalty, without_penalty = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    report(
        "Ablation: GA fitness size penalty",
        [
            f"with penalty    : {with_penalty.n_selected} chars, "
            f"rho = {with_penalty.rho:.3f}",
            f"without penalty : {without_penalty.n_selected} chars, "
            f"rho = {without_penalty.rho:.3f}",
        ],
    )
    assert with_penalty.n_selected <= without_penalty.n_selected
    # Without the penalty the GA buys (at most marginally) more rho.
    assert without_penalty.rho >= with_penalty.rho - 0.02


def test_ablation_corr_elim_ranking(benchmark, dataset):
    """Mean-|r| (paper) vs max-|r| elimination ranking."""
    normalized = dataset.mica_normalized()
    full = pairwise_distances(normalized)

    def run_both():
        results = {}
        for ranking in ("mean", "max"):
            retained = retain_by_correlation(normalized, 8, ranking=ranking)
            distances = pairwise_distances(normalized[:, retained])
            results[ranking] = pearson(full, distances)
        return results

    rhos = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "Ablation: correlation-elimination ranking rule (8 retained)",
        [f"{rule:<5} ranking: rho = {value:.3f}" for rule, value in
         rhos.items()],
    )
    assert all(-1.0 <= value <= 1.0 for value in rhos.values())


def test_ablation_pca_vs_ga(benchmark, dataset, config, ga_result):
    """PCA at the GA's dimensionality: fidelity vs interpretability.

    PCA optimizes variance capture with all 47 inputs, so its distance
    fidelity is an upper bound the GA approaches while needing only the
    selected characteristics to be measured.
    """
    normalized = dataset.mica_normalized()
    full = pairwise_distances(normalized)
    dims = ga_result.n_selected

    def run_pca():
        projected = PCA(n_components=dims).fit_transform(normalized)
        return pearson(full, pairwise_distances(projected))

    pca_rho = benchmark.pedantic(run_pca, rounds=1, iterations=1)
    report(
        "Ablation: PCA baseline vs GA subset",
        [
            f"dimensionality : {dims}",
            f"PCA rho        : {pca_rho:.3f} (must measure all 47)",
            f"GA rho         : {ga_result.rho:.3f} "
            f"(measures only {dims})",
        ],
    )
    assert pca_rho >= ga_result.rho - 0.05
    assert ga_result.rho > 0.75


def test_ablation_trace_length(benchmark, config):
    """Characteristic stability across trace lengths (one benchmark)."""
    profile = get_benchmark("spec2000/twolf/ref").profile

    def vectors():
        results = {}
        for length in (20_000, 40_000, 80_000):
            trace = generate_trace(profile, length)
            results[length] = characterize(trace, config).values
        return results

    results = benchmark.pedantic(vectors, rounds=1, iterations=1)
    lengths = sorted(results)
    # Compare the probability-valued characteristics (bounded scales).
    bounded = np.r_[0:6, 12:19, 23:43, 43:47]
    deltas = [
        float(np.abs(results[a][bounded] - results[b][bounded]).mean())
        for a, b in zip(lengths, lengths[1:])
    ]
    report(
        "Ablation: trace-length sensitivity (bounded characteristics)",
        [
            f"{a/1000:.0f}k -> {b/1000:.0f}k: mean |delta| = {delta:.4f}"
            for (a, b), delta in zip(zip(lengths, lengths[1:]), deltas)
        ],
    )
    assert all(delta < 0.08 for delta in deltas)
