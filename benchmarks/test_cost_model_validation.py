"""Validating the Table IV measurement-cost model empirically.

The cost model assigns machine-day weights per analysis pass; on this
substrate the analyzers' actual run times are measurable.  The bench
times each analyzer family and checks the *ordering* the cost model
assumes: ILP and PPM are the expensive passes, instruction mix and
working sets the cheap ones.
"""

import time

from conftest import report
from repro.mica import (
    ilp_ipc,
    instruction_mix,
    ppm_predictabilities,
    register_traffic,
    stride_profile,
    working_set,
)
from repro.synth import generate_trace
from repro.workloads import get_benchmark


def test_cost_model_ordering(benchmark, config):
    trace = generate_trace(
        get_benchmark("spec2000/parser/ref").profile, config.trace_length
    )

    def time_analyzers():
        timings = {}
        for label, runner in (
            ("instruction mix", lambda: instruction_mix(trace)),
            ("working set", lambda: working_set(trace)),
            ("strides", lambda: stride_profile(trace)),
            ("register traffic", lambda: register_traffic(trace)),
            ("ILP (4 windows)", lambda: ilp_ipc(trace)),
            ("PPM (4 variants)", lambda: ppm_predictabilities(trace)),
        ):
            start = time.perf_counter()
            runner()
            timings[label] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(time_analyzers, rounds=1, iterations=1)
    total = sum(timings.values())
    rows = [
        f"{label:<20} {seconds * 1000:8.1f} ms ({seconds / total:5.1%})"
        for label, seconds in sorted(
            timings.items(), key=lambda item: -item[1]
        )
    ]
    report("Cost-model validation: empirical analyzer times", rows)

    # The cost model's key assumptions, checked on real timings: the
    # sequential simulations (ILP, PPM) dominate the vectorized passes.
    assert timings["ILP (4 windows)"] > timings["instruction mix"]
    assert timings["PPM (4 variants)"] > timings["working set"]
    expensive = timings["ILP (4 windows)"] + timings["PPM (4 variants)"]
    assert expensive > 0.5 * total
