"""Figure 5: distance correlation vs retained characteristic count.

Paper: GA reaches rho = 0.876 with 8 characteristics; correlation
elimination needs 17 to reach 0.823 and degrades quickly below that.
Shape expectation: the GA point dominates the CE curve at comparable
size, and the CE curve is monotone-ish in the retained count.
"""

from conftest import report
from repro.experiments import run_fig5


def test_fig5_correlation_vs_retained(benchmark, dataset, config, ga_result):
    result = benchmark.pedantic(
        run_fig5,
        args=(dataset, config),
        kwargs={"ga_result": ga_result},
        rounds=1,
        iterations=1,
    )
    ga_n, ga_rho = result.ga_point
    rows = [
        f"GA point        : {ga_n} chars, rho = {ga_rho:.3f} "
        "(paper: 8 chars, 0.876)",
        f"CE at 17 chars  : {result.ce_curve[17]:.3f} (paper: 0.823)",
        f"CE at {ga_n} chars   : {result.ce_curve[ga_n]:.3f}",
        f"CE at 7 chars   : {result.ce_curve[7]:.3f}",
    ]
    report("Figure 5: fidelity vs retained count", rows)
    # Shape: GA beats CE at its own size, and reaches high fidelity
    # with few characteristics.
    assert ga_rho > result.ce_curve[ga_n]
    assert ga_rho > 0.8
    assert ga_n <= 17
