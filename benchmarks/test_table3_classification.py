"""Table III: quadrant fractions at 20%-of-max thresholds.

Paper: FN 0.2%, TP 56.9%, TN 1.8%, FP 41.1%.  Shape expectation: false
negatives are rare (the microarchitecture-independent space does not
miss similarity), false positives are a large fraction (the pitfall).
"""

from conftest import report
from repro.experiments import run_table3


def test_table3_quadrants(benchmark, dataset):
    result = benchmark.pedantic(
        run_table3, args=(dataset,), rounds=1, iterations=1
    )
    q = result.quadrants
    report(
        "Table III: benchmark-tuple classification",
        [
            f"false negative : {q.false_negative:6.1%} (paper:  0.2%)",
            f"true positive  : {q.true_positive:6.1%} (paper: 56.9%)",
            f"true negative  : {q.true_negative:6.1%} (paper:  1.8%)",
            f"false positive : {q.false_positive:6.1%} (paper: 41.1%)",
        ],
    )
    # Shape: FP >> FN; FN tiny.
    assert q.false_negative < 0.05
    assert q.false_positive > 4 * q.false_negative
    assert q.false_positive > 0.1
