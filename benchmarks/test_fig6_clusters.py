"""Figure 6: clustering the 122 benchmarks in the reduced space.

Paper: 15 clusters (BIC within 90% of max over K = 1..70); blast, tiff,
mcf, adpcm, art, gcc and csu appear isolated; 9 of 14 SPECfp programs
share one cluster; BioInfoMark/BioMetricsWorkload/CommBench contain
SPEC-dissimilar benchmarks while MediaBench/MiBench are mostly similar.
"""

from conftest import report
from repro.experiments import run_fig6

#: Programs the paper calls out as isolated (singletons for at least
#: one input).
PAPER_ISOLATED = {"blast", "tiff", "mcf", "adpcm", "art", "gcc", "csu"}


def test_fig6_clustering(benchmark, dataset, config, ga_result):
    result = benchmark.pedantic(
        run_fig6,
        args=(dataset, config),
        kwargs={"ga_result": ga_result},
        rounds=1,
        iterations=1,
    )
    singleton_programs = {
        name.split("/")[1] for name in result.singleton_names
    }
    rows = [
        f"chosen K           : {result.k} (paper: 15)",
        f"singletons         : {sorted(result.singleton_names)}",
        f"paper-isolated hit : "
        f"{sorted(singleton_programs & PAPER_ISOLATED)}",
        f"SPECfp max shared  : {result.specfp_max_shared}/14 (paper: 9/14)",
    ]
    for suite, fraction in sorted(result.suite_spec_similarity.items()):
        rows.append(f"{suite:<12} SPEC-similar fraction: {fraction:.0%}")
    report("Figure 6: clustering", rows)
    # Shape: a moderate cluster count with real structure.
    assert 5 <= result.k <= 40
    # At least one of the paper's isolated programs is isolated here.
    assert singleton_programs & PAPER_ISOLATED
    # The SPECfp core groups substantially.
    assert result.specfp_max_shared >= 6
    # Embedded suites are more SPEC-similar than bioinformatics.
    similarity = result.suite_spec_similarity
    assert similarity["mibench"] >= similarity["bioinfomark"] - 0.25
