#!/usr/bin/env python
"""MICA perf-harness entry point.

Times every Table II analyzer (plus the scalar PPM/ILP references),
the trace-generation engine (batch interpreter/expansion vs their
scalar references, cold-vs-warm dataset builds), the HPC engines
(event assemblies, the pipeline-model batch walks vs their retained
reference loops over precomputed events, component engines, HPC
cache), the phase engine (segmented interval characterization vs
the retained chunked reference, signature extractors, phase
detection) and the shard engine (one-shot vs the sequential
shard+merge stream and the 2/4-worker intra-trace fan-out), then
writes the machine-readable ``BENCH_mica.json``
trajectory file (schema ``BENCH_mica/v6``).  Also
reachable as ``python -m repro bench``; this thin wrapper exists so the
harness can be invoked from a checkout without installing the package::

    PYTHONPATH=src python benchmarks/perf/run_bench.py
    PYTHONPATH=src python benchmarks/perf/run_bench.py \
        --trace-length 500000 --repeats 5 --output BENCH_mica.json

See the "Performance" section of ROADMAP.md for how to read the output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import DEFAULT_CONFIG  # noqa: E402
from repro.perf import run_mica_bench, write_bench_json  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace-length", type=int, default=0,
        help="instructions per trace (default: library default)",
    )
    parser.add_argument(
        "--profile", default="spec2000/vpr/place",
        help="registry benchmark supplying the workload profile",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per analyzer (best is kept)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_mica.json"),
        help="where to write the JSON result ('' to skip)",
    )
    parser.add_argument(
        "--no-reference", action="store_true",
        help="skip the slow scalar reference timings (PPM/ILP, generation "
             "phases, HPC events and pipeline models)",
    )
    parser.add_argument(
        "--no-generation", action="store_true",
        help="skip the trace-generation engine timings",
    )
    parser.add_argument(
        "--no-hpc", action="store_true",
        help="skip the HPC engine timings (events, pipeline models, "
             "components, cache)",
    )
    parser.add_argument(
        "--no-phases", action="store_true",
        help="skip the phase engine timings (segmented timeline, "
             "signatures, phase detection)",
    )
    parser.add_argument(
        "--no-sharded", action="store_true",
        help="skip the shard engine timings (streaming merge overhead, "
             "intra-trace worker fan-out)",
    )
    args = parser.parse_args(argv)

    config = (
        DEFAULT_CONFIG.with_overrides(trace_length=args.trace_length)
        if args.trace_length
        else DEFAULT_CONFIG
    )
    result = run_mica_bench(
        config=config,
        profile_name=args.profile,
        repeats=args.repeats,
        include_reference=not args.no_reference,
        include_generation=not args.no_generation,
        include_hpc=not args.no_hpc,
        include_phases=not args.no_phases,
        include_sharded=not args.no_sharded,
    )
    print(result.format())
    if args.output:
        path = write_bench_json(result, args.output)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
