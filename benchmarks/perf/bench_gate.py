#!/usr/bin/env python
"""CI perf gate: bench speedups must stay above the committed floors.

Runs the MICA harness (or reads an existing ``BENCH_mica.json``),
reduces the run to one history row (per-engine speedups vs the retained
scalar references), compares it against the floors committed in
``benchmarks/perf/floors.json``, and optionally appends the row to
``BENCH_history.jsonl`` so the performance trajectory accumulates one
line per run.  Exits non-zero when any engine regresses below its
floor::

    PYTHONPATH=src python benchmarks/perf/bench_gate.py \
        --tier smoke --history BENCH_history.jsonl

Floors are speedup *ratios* (both sides timed on the same machine), so
the gate holds on slow CI runners; the ``smoke`` tier's floors carry
extra headroom because small traces amortize less per-call overhead.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import DEFAULT_CONFIG  # noqa: E402
from repro.perf import (  # noqa: E402
    append_bench_history,
    bench_history_row,
    check_bench_floors,
    run_mica_bench,
)

DEFAULT_FLOORS = Path(__file__).resolve().parent / "floors.json"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tier", choices=("smoke", "full"), default="smoke",
        help="floor tier to gate against (also sets the trace length)",
    )
    parser.add_argument(
        "--floors", default=str(DEFAULT_FLOORS),
        help="floors JSON file (default: the committed floors.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timing repetitions per engine (best is kept)",
    )
    parser.add_argument(
        "--history", default="", metavar="PATH",
        help="append the history row to this JSONL file ('' skips)",
    )
    args = parser.parse_args(argv)

    spec = json.loads(Path(args.floors).read_text(encoding="utf-8"))
    tier = spec[args.tier]
    floors = tier["floors"]
    trace_length = int(tier["trace_length"])

    result = run_mica_bench(
        config=DEFAULT_CONFIG.with_overrides(trace_length=trace_length),
        repeats=args.repeats,
        include_generation=True,
        include_hpc=True,
        include_phases=True,
        include_sharded=True,
    )
    row = bench_history_row(result)
    print(result.format())
    print()
    print("history row:", json.dumps(row["speedups"], sort_keys=True))
    if args.history:
        path = append_bench_history(result, args.history)
        print(f"appended history row to {path}")

    violations = check_bench_floors(row, floors)
    if violations:
        print(f"\nperf gate FAILED ({args.tier} floors):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed ({args.tier} floors): " + ", ".join(
        f"{engine} {row['speedups'][engine]:.1f}x>={floors[engine]:g}x"
        for engine in sorted(floors)
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
