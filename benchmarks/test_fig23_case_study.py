"""Figures 2-3: the bzip2 vs blast case study.

Paper: the pair looks similar on hardware counters (Figure 2) yet
differs strongly in inherent characteristics (Figure 3), most visibly
in working sets, GAg/GAs predictability and global store strides.
"""

import numpy as np

from conftest import report
from repro.experiments import run_case_study


def test_fig23_bzip2_vs_blast(benchmark, dataset):
    result = benchmark.pedantic(
        run_case_study, args=(dataset,), rounds=1, iterations=1
    )
    hpc_delta = float(np.abs(result.hpc_a - result.hpc_b).mean())
    mica_delta = float(np.abs(result.mica_a - result.mica_b).mean())
    ws_slice = slice(19, 23)
    ws_delta = float(
        np.abs(result.mica_a[ws_slice] - result.mica_b[ws_slice]).mean()
    )
    report(
        "Figures 2-3: bzip2 vs blast",
        [
            f"pair: {result.name_a} vs {result.name_b}",
            f"HPC-space distance percentile  : {result.hpc_distance_rank:.0%}",
            f"MICA-space distance percentile : {result.mica_distance_rank:.0%}",
            f"mean |delta|, HPC+mix metrics  : {hpc_delta:.3f}",
            f"mean |delta|, MICA metrics     : {mica_delta:.3f}",
            f"mean |delta|, working sets     : {ws_delta:.3f} "
            "(paper: most striking difference)",
        ],
    )
    # Shape: the pair is closer (percentile-wise) on counters than on
    # inherent characteristics, and working sets differ strongly.
    assert result.mica_distance_rank > result.hpc_distance_rank
    assert ws_delta > hpc_delta
