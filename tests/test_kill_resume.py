"""Kill a journaled build with SIGKILL at real seams; resume converges.

These tests arm :func:`repro.perf.faults.maybe_kill` in a child
process (the plan travels via ``REPRO_KILL_FAULTS``), let the child
die uncatchably mid-build, then finish the build in *this* process
with ``resume_dataset`` and demand the result is bit-for-bit the cold
serial reference. Two seams run in tier-1; the full seam matrix and
the seeded chaos soak ride behind ``--runslow``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.experiments import build_dataset, resume_dataset
from repro.experiments.dataset import _MEMORY_CACHE
from repro.perf import replay_journal, sweep_temporaries, verify_cache
from repro.perf.faults import KILL_SEAMS, chaos_schedule, corrupt_entry
from repro.workloads import all_benchmarks

from conftest import TEST_CONFIG

POPULATION = all_benchmarks()[:3]
NAMES = ",".join(b.full_name for b in POPULATION)

# The child hardcodes TEST_CONFIG's knobs: the kill must land in a
# process that shares nothing with this one but the disk.
CHILD = textwrap.dedent("""
    import sys
    from pathlib import Path
    from repro.config import ReproConfig
    from repro.experiments import build_dataset
    from repro.workloads import get_benchmark
    names = sys.argv[1].split(",")
    config = ReproConfig(
        trace_length=5_000, ga_generations=8, ga_population=16)
    build_dataset(
        config, benchmarks=[get_benchmark(name) for name in names],
        cache_dir=Path(sys.argv[2]), jobs=1, journal=Path(sys.argv[3]))
    print("BUILD-FINISHED")
""")


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    _MEMORY_CACHE.clear()
    yield
    _MEMORY_CACHE.clear()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    cold = tmp_path_factory.mktemp("kill-resume-cold")
    return build_dataset(
        TEST_CONFIG, benchmarks=POPULATION, cache_dir=cold, jobs=1
    )


def _child_env(faults_dir, seam, after):
    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    env["REPRO_KILL_FAULTS"] = json.dumps({
        "state_dir": str(faults_dir),
        "faults": [{"seam": seam, "after": after, "times": 1}],
    })
    return env


def _killed_build(tmp_path, seam, after):
    """Run the child build armed to die at ``seam``; return its dirs."""
    cache = tmp_path / "cache"
    journal = tmp_path / "journal.jsonl"
    faults_dir = tmp_path / "faults"
    faults_dir.mkdir()
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, NAMES, str(cache), str(journal)],
        env=_child_env(faults_dir, seam, after),
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, (
        seam, proc.returncode, proc.stdout, proc.stderr,
    )
    assert "BUILD-FINISHED" not in proc.stdout
    return cache, journal


def _assert_converged(reference, cache, journal):
    resumed = resume_dataset(
        TEST_CONFIG, benchmarks=POPULATION, cache_dir=cache, jobs=1,
        journal=journal,
    )
    assert resumed.mica.tobytes() == reference.mica.tobytes()
    assert resumed.hpc.tobytes() == reference.hpc.tobytes()
    assert replay_journal(journal).truncation is None
    # A crashed writer may strand a temp file; the sweep reaps it and
    # integrity verification finds nothing half-written.
    sweep_temporaries(cache, older_than=0.0)
    assert not list(cache.glob("tmp-*"))
    report = verify_cache(cache)
    assert not report.quarantined, report.format()


class TestKillResumeTier1:
    """Two representative seams stay in the default suite."""

    def test_kill_at_journal_append(self, tmp_path, reference):
        cache, journal = _killed_build(
            tmp_path, "journal-append-after", after=4
        )
        _assert_converged(reference, cache, journal)

    def test_kill_between_writer_store_and_replace(
        self, tmp_path, reference
    ):
        cache, journal = _killed_build(
            tmp_path, "writer-before-replace", after=2
        )
        _assert_converged(reference, cache, journal)


@pytest.mark.slow
class TestKillSeamMatrix:
    """--runslow: every seam in KILL_SEAMS, one kill each."""

    # Rotate seams fire once, when the fresh build claims the journal;
    # append/writer seams get a couple of free hits first so the kill
    # lands mid-build rather than before any durable work.
    _AFTER = {
        "journal-rotate-before-replace": 0,
        "journal-rotate-after-replace": 0,
    }

    @pytest.mark.parametrize("seam", KILL_SEAMS)
    def test_kill_at_seam_then_resume(self, tmp_path, reference, seam):
        cache, journal = _killed_build(
            tmp_path, seam, after=self._AFTER.get(seam, 2)
        )
        _assert_converged(reference, cache, journal)


@pytest.mark.slow
class TestChaosSoak:
    """--runslow: a seeded chaos_schedule driven end to end.

    Kill rounds die in a child and resume here; corrupt rounds rot a
    real cache entry and demand quarantine-and-rebuild; the remaining
    kinds run as clean control rounds (their fault machinery has its
    own dedicated suites). Any failure reproduces from the seed alone.
    """

    SEED = 11
    ROUNDS = 8

    def test_soak_converges_every_round(self, tmp_path, reference):
        plan = chaos_schedule(self.SEED, self.ROUNDS)
        assert plan == chaos_schedule(self.SEED, self.ROUNDS)
        for index, round_ in enumerate(plan):
            work = tmp_path / f"round-{index}"
            work.mkdir()
            cache = work / "cache"
            journal = work / "journal.jsonl"
            _MEMORY_CACHE.clear()
            if round_["kind"] == "kill":
                faults_dir = work / "faults"
                faults_dir.mkdir()
                proc = subprocess.run(
                    [sys.executable, "-c", CHILD, NAMES,
                     str(cache), str(journal)],
                    env=_child_env(
                        faults_dir, round_["seam"], round_["after"]
                    ),
                    capture_output=True, text=True, timeout=300,
                )
                # A late "after" may let the build finish; both
                # outcomes must leave a resumable, convergent state.
                assert proc.returncode in (0, -signal.SIGKILL), (
                    round_, proc.returncode, proc.stderr,
                )
            else:
                build_dataset(
                    TEST_CONFIG, benchmarks=POPULATION,
                    cache_dir=cache, jobs=1, journal=journal,
                )
                for path in cache.glob("dataset-*.npz"):
                    path.unlink()
                if round_["kind"] == "corrupt":
                    victim = sorted(cache.glob("char-*.npz"))[0]
                    corrupt_entry(
                        victim, round_["mode"], seed=round_["seed"]
                    )
            _MEMORY_CACHE.clear()
            resumed = resume_dataset(
                TEST_CONFIG, benchmarks=POPULATION, cache_dir=cache,
                jobs=1, journal=journal,
            )
            assert resumed.mica.tobytes() == reference.mica.tobytes(), (
                "round diverged", index, round_,
            )
            assert resumed.hpc.tobytes() == reference.hpc.tobytes(), (
                "round diverged", index, round_,
            )
            assert replay_journal(journal).truncation is None
