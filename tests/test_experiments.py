"""Integration tests: dataset builder and all experiment drivers on a
small six-benchmark population."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import AnalysisError
from repro.experiments import (
    build_dataset,
    measurement_cost,
    run_all,
    run_case_study,
    run_fig1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_table3,
    run_table4,
)
from repro.experiments.table4_selected import PAPER_TABLE4_INDICES
from repro.mica import NUM_CHARACTERISTICS

SMALL_CONFIG = ReproConfig(
    trace_length=8_000, ga_generations=8, ga_population=16
)


@pytest.fixture(scope="module")
def dataset(small_population):
    return build_dataset(
        SMALL_CONFIG, benchmarks=small_population, use_cache=False, workers=1
    )


class TestBuildDataset:
    def test_shapes(self, dataset):
        assert dataset.mica.shape == (8, 47)
        assert dataset.hpc.shape == (8, 7)
        assert len(dataset.names) == len(dataset.suites) == 8

    def test_values_finite(self, dataset):
        assert np.isfinite(dataset.mica).all()
        assert np.isfinite(dataset.hpc).all()

    def test_index_of_partial_name(self, dataset):
        assert dataset.index_of("mcf") == dataset.names.index(
            "spec2000/mcf/ref"
        )

    def test_index_of_unknown(self, dataset):
        with pytest.raises(AnalysisError):
            dataset.index_of("not-a-benchmark")

    def test_normalized_views(self, dataset):
        z = dataset.mica_normalized()
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)

    def test_distances_length(self, dataset):
        assert len(dataset.mica_distances()) == 28  # C(8, 2).

    def test_disk_cache_round_trip(self, small_population, tmp_path):
        first = build_dataset(
            SMALL_CONFIG,
            benchmarks=small_population,
            cache_dir=tmp_path,
            workers=1,
        )
        files = list(tmp_path.glob("dataset-*.npz"))
        assert len(files) == 1
        from repro.experiments.dataset import _MEMORY_CACHE

        _MEMORY_CACHE.clear()
        second = build_dataset(
            SMALL_CONFIG,
            benchmarks=small_population,
            cache_dir=tmp_path,
            workers=1,
        )
        assert np.array_equal(first.mica, second.mica)

    def test_parallel_matches_serial(self, small_population, dataset):
        parallel = build_dataset(
            SMALL_CONFIG,
            benchmarks=small_population,
            use_cache=False,
            workers=3,
        )
        assert np.array_equal(parallel.mica, dataset.mica)
        assert np.array_equal(parallel.hpc, dataset.hpc)


class TestDrivers:
    def test_fig1(self, dataset):
        result = run_fig1(dataset)
        assert -1.0 <= result.correlation <= 1.0
        assert result.tuples == 28
        assert "correlation coefficient" in result.format()

    def test_table3(self, dataset):
        result = run_table3(dataset)
        q = result.quadrants
        total = (q.true_positive + q.false_negative
                 + q.false_positive + q.true_negative)
        assert total == pytest.approx(1.0)
        assert (0.1, 0.1) in result.sensitivity
        assert "Table III" in result.format()

    def test_case_study_explicit_pair(self, dataset):
        result = run_case_study(
            dataset, "spec2000/bzip2/graphic", "bioinfomark/blast/protein"
        )
        assert result.name_a.endswith("bzip2/graphic")
        assert len(result.mica_a) == 47
        assert "Figure 2" in result.format()

    def test_case_study_fallback_pair(self, dataset, small_population):
        # Request a pair not in the population: auto-selection kicks in.
        subset = build_dataset(
            SMALL_CONFIG,
            benchmarks=small_population[:4],
            use_cache=False,
            workers=1,
        )
        result = run_case_study(subset, "no/such/thing", "nor/this/one")
        assert result.name_a in subset.names
        assert result.name_b in subset.names

    def test_fig4(self, dataset):
        result = run_fig4(dataset, SMALL_CONFIG, ce_sizes=(17, 7))
        assert set(result.areas) == {"all-47", "GA", "CE-17", "CE-7"}
        for area in result.areas.values():
            assert 0.0 <= area <= 1.0
        assert "ROC" in result.format()

    def test_fig5(self, dataset):
        result = run_fig5(dataset, SMALL_CONFIG)
        assert set(result.ce_curve) == set(range(1, 47))
        assert 1 <= result.ga_point[0] <= 47
        assert "Figure 5" in result.format()

    def test_fig5_full_space_correlation_is_high_for_small_cuts(
        self, dataset
    ):
        result = run_fig5(dataset, SMALL_CONFIG)
        assert result.ce_curve[46] > 0.98  # Removing one char: harmless.

    def test_table4(self, dataset):
        result = run_table4(dataset, SMALL_CONFIG)
        assert 1 <= result.ga.n_selected <= 47
        assert result.selected_cost <= result.full_cost
        assert result.speedup >= 1.0
        assert "Table IV" in result.format()

    def test_fig6(self, dataset):
        result = run_fig6(dataset, SMALL_CONFIG, k_range=(1, 5))
        assert 1 <= result.k <= 5
        flat = [n for names in result.members.values() for n in names]
        assert sorted(flat) == sorted(dataset.names)
        assert "Figure 6" in result.format(kiviat_plots=False)

    def test_run_all(self, dataset):
        report = run_all(SMALL_CONFIG, dataset=dataset)
        text = report.format()
        for marker in ("Figure 1", "Table III", "Figure 4", "Figure 5",
                       "Table IV", "Figure 6"):
            assert marker in text


class TestMeasurementCost:
    def test_full_cost_near_paper(self):
        full = measurement_cost(range(NUM_CHARACTERISTICS))
        assert full == pytest.approx(110.0, abs=5.0)

    def test_paper_subset_near_37(self):
        cost = measurement_cost(PAPER_TABLE4_INDICES)
        assert cost == pytest.approx(37.0, abs=5.0)

    def test_empty_costs_nothing(self):
        assert measurement_cost([]) == 0.0

    def test_shared_pass_not_double_charged(self):
        one_mix = measurement_cost([0])
        all_mix = measurement_cost(range(6))
        assert one_mix == all_mix

    def test_each_window_charged(self):
        assert measurement_cost([6, 7]) == 2 * measurement_cost([6])

    def test_monotone(self):
        assert measurement_cost(range(10)) <= measurement_cost(range(20))
