"""Tests for the cache and TLB simulators."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.uarch import CacheConfig, SetAssociativeCache, TLB


def config(size=1024, line=32, assoc=2, name="T"):
    return CacheConfig(name=name, size_bytes=size, line_bytes=line,
                       associativity=assoc)


class TestCacheConfig:
    def test_num_sets(self):
        assert config(size=1024, line=32, assoc=2).num_sets == 16

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(SimulationError):
            config(line=48)

    def test_rejects_zero_assoc(self):
        with pytest.raises(SimulationError):
            config(assoc=0)

    def test_rejects_non_multiple_size(self):
        with pytest.raises(SimulationError):
            CacheConfig(name="X", size_bytes=1000, line_bytes=32,
                        associativity=2)


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(config())
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.access(0x101F) is True   # Same 32-byte line.
        assert cache.access(0x1020) is False  # Next line.

    def test_lru_eviction_order(self):
        # Direct-mapped 2-line cache: conflicting addresses thrash.
        cache = SetAssociativeCache(config(size=64, line=32, assoc=1))
        a, b = 0x0, 0x40  # Same set (2 sets, both map to set 0).
        assert cache.access(a) is False
        assert cache.access(b) is False  # Evicts a.
        assert cache.access(a) is False  # Miss again.

    def test_associativity_absorbs_conflict(self):
        cache = SetAssociativeCache(config(size=64, line=32, assoc=2))
        a, b = 0x0, 0x40
        cache.access(a)
        cache.access(b)
        assert cache.access(a) is True
        assert cache.access(b) is True

    def test_true_lru_within_set(self):
        cache = SetAssociativeCache(config(size=64, line=32, assoc=2))
        a, b, c = 0x0, 0x40, 0x80  # All in the single set... 1 set x 2 ways.
        cache.access(a)
        cache.access(b)
        cache.access(a)        # a is now MRU.
        cache.access(c)        # Evicts b (LRU).
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_simulate_matches_access(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 1 << 14, size=500).astype(np.uint64)
        one = SetAssociativeCache(config())
        two = SetAssociativeCache(config())
        mask = one.simulate(addresses)
        singles = np.array([not two.access(int(a)) for a in addresses])
        assert np.array_equal(mask, singles)

    def test_simulate_direct_mapped_fast_path(self):
        rng = np.random.default_rng(1)
        addresses = rng.integers(0, 1 << 14, size=500).astype(np.uint64)
        dm = SetAssociativeCache(config(assoc=1))
        reference = SetAssociativeCache(config(assoc=1))
        mask = dm.simulate(addresses)
        singles = np.array([not reference.access(int(a)) for a in addresses])
        assert np.array_equal(mask, singles)

    def test_stats_accumulate(self):
        cache = SetAssociativeCache(config())
        cache.simulate(np.array([0x0, 0x0, 0x40], dtype=np.uint64))
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_reset(self):
        cache = SetAssociativeCache(config())
        cache.access(0x1000)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0x1000) is False

    def test_working_set_larger_than_cache_misses(self):
        cache = SetAssociativeCache(config(size=1024))
        # Cycle over 4 KB with 32-byte steps, twice: capacity misses.
        addresses = np.tile(
            np.arange(0, 4096, 32, dtype=np.uint64), 2
        )
        mask = cache.simulate(addresses)
        assert mask.all()

    def test_working_set_smaller_than_cache_hits(self):
        cache = SetAssociativeCache(config(size=4096, assoc=4))
        addresses = np.tile(np.arange(0, 1024, 32, dtype=np.uint64), 4)
        mask = cache.simulate(addresses)
        assert not mask[32:].any()  # Only cold misses.

    def test_miss_rate_zero_when_unused(self):
        assert SetAssociativeCache(config()).stats.miss_rate == 0.0


class TestTLB:
    def test_page_granularity(self):
        tlb = TLB(entries=4, page_bytes=8192)
        assert tlb.access(0x0000) is False
        assert tlb.access(0x1FFF) is True   # Same 8 KB page.
        assert tlb.access(0x2000) is False  # Next page.

    def test_capacity_lru(self):
        tlb = TLB(entries=2, page_bytes=8192)
        tlb.access(0x0000)
        tlb.access(0x2000)
        tlb.access(0x4000)  # Evicts page 0.
        assert tlb.access(0x0000) is False
        assert tlb.access(0x4000) is True

    def test_simulate_and_stats(self):
        tlb = TLB(entries=64)
        addresses = np.arange(0, 64 * 8192, 8192, dtype=np.uint64)
        mask = tlb.simulate(np.tile(addresses, 2))
        assert mask[:64].all()
        assert not mask[64:].any()
        assert tlb.stats.miss_rate == pytest.approx(0.5)
