"""Tests for the phase-analysis package."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.phases import (
    PhaseResult,
    basic_block_vectors,
    detect_phases,
    interval_count,
    interval_mix,
    phase_homogeneity,
    simulation_points,
    split_intervals,
)
from repro.trace import Trace, TraceBuilder


def two_phase_trace(phase_length=4000, interval_pc_a=0x1000,
                    interval_pc_b=0x9000):
    """A trace alternating between two code regions with distinct
    behavior: region A is ALU-only, region B is load-heavy."""
    builder = TraceBuilder(name="phased")
    for phase in range(4):
        base = interval_pc_a if phase % 2 == 0 else interval_pc_b
        for index in range(phase_length):
            pc = base + 4 * (index % 50)
            if phase % 2 == 0:
                builder.alu(pc, dst=1 + index % 8)
            elif index % 2 == 0:
                builder.load(pc, dst=1, addr_reg=2,
                             mem_addr=0x100000 + 8 * (index % 4096))
            else:
                builder.alu(pc, dst=1 + index % 8)
    return builder.build()


class TestIntervals:
    def test_split_counts(self, small_trace):
        intervals = split_intervals(small_trace, 1000)
        assert len(intervals) == 5
        assert all(len(chunk) == 1000 for chunk in intervals)

    def test_split_too_short_rejected(self, small_trace):
        with pytest.raises(AnalysisError):
            split_intervals(small_trace, len(small_trace))

    def test_split_bad_interval(self, small_trace):
        with pytest.raises(AnalysisError):
            split_intervals(small_trace, 0)

    def test_bbv_rows_sum_to_one(self, small_trace):
        vectors = basic_block_vectors(small_trace, 1000)
        assert np.allclose(vectors.sum(axis=1), 1.0)

    def test_bbv_separates_code_regions(self):
        trace = two_phase_trace()
        vectors = basic_block_vectors(trace, 4000)
        # Intervals 0/2 (region A) identical support; 1/3 (region B).
        support_a = vectors[0] > 0
        support_b = vectors[1] > 0
        assert not (support_a & support_b).any()
        assert np.allclose(vectors[0], vectors[2])

    def test_bbv_region_bytes_validated(self, small_trace):
        with pytest.raises(AnalysisError):
            basic_block_vectors(small_trace, 1000, region_bytes=100)

    def test_interval_mix_matches_global_mix(self, small_trace):
        from repro.mica import instruction_mix

        vectors = interval_mix(small_trace, 1000)
        overall = instruction_mix(small_trace)
        assert np.allclose(vectors.mean(axis=0), overall, atol=0.02)

    def test_interval_mix_row_sums(self, small_trace):
        vectors = interval_mix(small_trace, 1000)
        assert (vectors.sum(axis=1) <= 1.0 + 1e-9).all()

    @pytest.mark.parametrize("bad_interval", [0, -1, -1000])
    def test_non_positive_interval_rejected_everywhere(
        self, small_trace, bad_interval
    ):
        """All three extractors raise AnalysisError on interval <= 0
        (historically basic_block_vectors and interval_mix crashed with
        ZeroDivisionError)."""
        for extractor in (
            split_intervals, basic_block_vectors, interval_mix
        ):
            with pytest.raises(AnalysisError):
                extractor(small_trace, bad_interval)

    def test_interval_equal_to_trace_length_rejected(self, small_trace):
        for extractor in (
            split_intervals, basic_block_vectors, interval_mix
        ):
            with pytest.raises(AnalysisError):
                extractor(small_trace, len(small_trace))

    def test_exactly_two_intervals(self, small_trace):
        interval = len(small_trace) // 2
        assert interval_count(small_trace, interval) == 2
        assert len(split_intervals(small_trace, interval)) == 2
        assert basic_block_vectors(small_trace, interval).shape[0] == 2
        assert interval_mix(small_trace, interval).shape[0] == 2

    def test_trailing_partial_dropped(self, small_trace):
        # 5000 instructions at 1500 per interval: 3 intervals, 500 dropped.
        intervals = split_intervals(small_trace, 1500)
        assert len(intervals) == 3
        assert all(len(chunk) == 1500 for chunk in intervals)
        assert interval_count(small_trace, 1500) == 3
        assert basic_block_vectors(small_trace, 1500).shape[0] == 3


class TestPhaseDetection:
    def test_two_phases_detected(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        assert result.k == 2
        # Alternating phase labels.
        assert result.assignments[0] == result.assignments[2]
        assert result.assignments[1] == result.assignments[3]
        assert result.assignments[0] != result.assignments[1]

    def test_uniform_trace_one_phase(self):
        builder = TraceBuilder()
        for index in range(8000):
            builder.alu(0x1000 + 4 * (index % 32), dst=1 + index % 4)
        result = detect_phases(builder.build(), interval=1000, seed=1)
        assert result.k == 1

    def test_simulation_points_one_per_phase(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        points = simulation_points(result)
        assert len(points) == result.k
        labels = {int(result.assignments[p]) for p in points}
        assert len(labels) == result.k

    def test_timeline_renders(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        timeline = result.format_timeline()
        assert len(timeline.replace("\n", "")) == 4

    def test_phase_sizes_sum(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=2000, seed=1)
        assert result.phase_sizes().sum() == len(result.assignments)

    def test_signature_modes(self):
        trace = two_phase_trace()
        for signature, columns in (("bbv", None), ("mix", 6), ("mica", 47)):
            result = detect_phases(
                trace, interval=4000, seed=1, signature=signature
            )
            assert result.signature == signature
            assert result.k == 2
            if columns is not None:
                assert result.signatures.shape == (4, columns)

    def test_unknown_signature_rejected(self, small_trace):
        with pytest.raises(AnalysisError):
            detect_phases(small_trace, interval=1000, signature="bogus")

    def test_result_carries_trace_identity(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        assert result.trace_length == len(trace)
        assert result.trace_digest == trace.content_digest()

    def test_simulation_points_tie_broken_by_label(self):
        """Equal-population phases order earliest label first (a plain
        reversed argsort would produce descending labels)."""
        signatures = np.array(
            [[0.0, 1.0], [0.0, 1.1], [5.0, 0.0], [5.0, 0.1]]
        )
        result = PhaseResult(
            interval=100,
            assignments=np.array([0, 0, 1, 1]),
            k=2,
            signatures=signatures,
        )
        points = simulation_points(result)
        labels = [int(result.assignments[point]) for point in points]
        assert labels == [0, 1]

    def test_simulation_points_population_order(self):
        result = PhaseResult(
            interval=100,
            assignments=np.array([1, 1, 1, 0, 2, 2]),
            k=3,
            signatures=np.arange(12, dtype=float).reshape(6, 2),
        )
        points = simulation_points(result)
        labels = [int(result.assignments[point]) for point in points]
        assert labels == [1, 2, 0]  # By population, then label.

    def test_single_phase_trace_single_point(self):
        builder = TraceBuilder()
        for index in range(8000):
            builder.alu(0x1000 + 4 * (index % 32), dst=1 + index % 4)
        result = detect_phases(builder.build(), interval=1000, seed=1)
        assert result.k == 1
        points = simulation_points(result)
        assert len(points) == 1
        assert 0 <= points[0] < 8


class TestPhaseHomogeneity:
    def test_within_phase_variation_smaller(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)

        def load_fraction(chunk: Trace) -> float:
            return float(chunk.load_mask.mean())

        within, overall = phase_homogeneity(trace, result, load_fraction)
        assert within < overall * 0.5

    def test_mismatched_trace_rejected(self, small_trace):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        with pytest.raises(AnalysisError):
            phase_homogeneity(small_trace, result, lambda c: 0.0)

    def test_homogeneity_on_synthetic_benchmark(self, small_trace):
        result = detect_phases(small_trace, interval=500, seed=1)

        def branch_fraction(chunk: Trace) -> float:
            return float(chunk.branch_mask.mean())

        within, overall = phase_homogeneity(
            small_trace, result, branch_fraction
        )
        assert within <= overall + 1e-9

    def test_wrong_trace_same_length_rejected(self):
        """A different trace that happens to split into the same number
        of intervals must be rejected (content digest check), not
        silently accepted."""
        trace = two_phase_trace()
        impostor = two_phase_trace(interval_pc_a=0x2000)
        assert len(trace) == len(impostor)
        result = detect_phases(trace, interval=4000, seed=1)
        with pytest.raises(AnalysisError):
            phase_homogeneity(impostor, result, lambda chunk: 0.0)

    def test_signature_metric_reuses_signatures(self):
        """on="signatures" evaluates the metric on the stored rows
        without re-splitting the trace."""
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        within, overall = phase_homogeneity(
            trace, result, lambda row: float(row.max()), on="signatures"
        )
        values = np.array([float(row.max()) for row in result.signatures])
        assert overall == pytest.approx(float(values.std()))

    def test_unknown_metric_substrate_rejected(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        with pytest.raises(AnalysisError):
            phase_homogeneity(trace, result, lambda c: 0.0, on="bogus")

    def test_hand_built_result_skips_identity_check(self, small_trace):
        """Results without a digest (hand-constructed) keep the legacy
        length-only check."""
        result = PhaseResult(
            interval=1000,
            assignments=np.zeros(5, dtype=int),
            k=1,
            signatures=np.zeros((5, 2)),
        )
        within, overall = phase_homogeneity(
            small_trace, result, lambda chunk: 1.0
        )
        assert within == overall == 0.0
