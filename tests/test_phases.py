"""Tests for the phase-analysis package."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.phases import (
    basic_block_vectors,
    detect_phases,
    interval_mix,
    phase_homogeneity,
    simulation_points,
    split_intervals,
)
from repro.trace import Trace, TraceBuilder


def two_phase_trace(phase_length=4000, interval_pc_a=0x1000,
                    interval_pc_b=0x9000):
    """A trace alternating between two code regions with distinct
    behavior: region A is ALU-only, region B is load-heavy."""
    builder = TraceBuilder(name="phased")
    for phase in range(4):
        base = interval_pc_a if phase % 2 == 0 else interval_pc_b
        for index in range(phase_length):
            pc = base + 4 * (index % 50)
            if phase % 2 == 0:
                builder.alu(pc, dst=1 + index % 8)
            elif index % 2 == 0:
                builder.load(pc, dst=1, addr_reg=2,
                             mem_addr=0x100000 + 8 * (index % 4096))
            else:
                builder.alu(pc, dst=1 + index % 8)
    return builder.build()


class TestIntervals:
    def test_split_counts(self, small_trace):
        intervals = split_intervals(small_trace, 1000)
        assert len(intervals) == 5
        assert all(len(chunk) == 1000 for chunk in intervals)

    def test_split_too_short_rejected(self, small_trace):
        with pytest.raises(AnalysisError):
            split_intervals(small_trace, len(small_trace))

    def test_split_bad_interval(self, small_trace):
        with pytest.raises(AnalysisError):
            split_intervals(small_trace, 0)

    def test_bbv_rows_sum_to_one(self, small_trace):
        vectors = basic_block_vectors(small_trace, 1000)
        assert np.allclose(vectors.sum(axis=1), 1.0)

    def test_bbv_separates_code_regions(self):
        trace = two_phase_trace()
        vectors = basic_block_vectors(trace, 4000)
        # Intervals 0/2 (region A) identical support; 1/3 (region B).
        support_a = vectors[0] > 0
        support_b = vectors[1] > 0
        assert not (support_a & support_b).any()
        assert np.allclose(vectors[0], vectors[2])

    def test_bbv_region_bytes_validated(self, small_trace):
        with pytest.raises(AnalysisError):
            basic_block_vectors(small_trace, 1000, region_bytes=100)

    def test_interval_mix_matches_global_mix(self, small_trace):
        from repro.mica import instruction_mix

        vectors = interval_mix(small_trace, 1000)
        overall = instruction_mix(small_trace)
        assert np.allclose(vectors.mean(axis=0), overall, atol=0.02)

    def test_interval_mix_row_sums(self, small_trace):
        vectors = interval_mix(small_trace, 1000)
        assert (vectors.sum(axis=1) <= 1.0 + 1e-9).all()


class TestPhaseDetection:
    def test_two_phases_detected(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        assert result.k == 2
        # Alternating phase labels.
        assert result.assignments[0] == result.assignments[2]
        assert result.assignments[1] == result.assignments[3]
        assert result.assignments[0] != result.assignments[1]

    def test_uniform_trace_one_phase(self):
        builder = TraceBuilder()
        for index in range(8000):
            builder.alu(0x1000 + 4 * (index % 32), dst=1 + index % 4)
        result = detect_phases(builder.build(), interval=1000, seed=1)
        assert result.k == 1

    def test_simulation_points_one_per_phase(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        points = simulation_points(result)
        assert len(points) == result.k
        labels = {int(result.assignments[p]) for p in points}
        assert len(labels) == result.k

    def test_timeline_renders(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        timeline = result.format_timeline()
        assert len(timeline.replace("\n", "")) == 4

    def test_phase_sizes_sum(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=2000, seed=1)
        assert result.phase_sizes().sum() == len(result.assignments)


class TestPhaseHomogeneity:
    def test_within_phase_variation_smaller(self):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)

        def load_fraction(chunk: Trace) -> float:
            return float(chunk.load_mask.mean())

        within, overall = phase_homogeneity(trace, result, load_fraction)
        assert within < overall * 0.5

    def test_mismatched_trace_rejected(self, small_trace):
        trace = two_phase_trace()
        result = detect_phases(trace, interval=4000, seed=1)
        with pytest.raises(AnalysisError):
            phase_homogeneity(small_trace, result, lambda c: 0.0)

    def test_homogeneity_on_synthetic_benchmark(self, small_trace):
        result = detect_phases(small_trace, interval=500, seed=1)

        def branch_fraction(chunk: Trace) -> float:
            return float(chunk.branch_mask.mean())

        within, overall = phase_homogeneity(
            small_trace, result, branch_fraction
        )
        assert within <= overall + 1e-9
