"""Tests for correlation elimination and the genetic selector."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import (
    GeneticSelector,
    correlation_elimination_order,
    pairwise_distances,
    pearson,
    retain_by_correlation,
    zscore,
)


def make_correlated_data(n=40, seed=0):
    """Six columns: 0-2 nearly identical, 3-5 independent."""
    rng = np.random.default_rng(seed)
    base = rng.normal(size=n)
    columns = [
        base,
        base + rng.normal(scale=0.01, size=n),
        base + rng.normal(scale=0.01, size=n),
        rng.normal(size=n),
        rng.normal(size=n),
        rng.normal(size=n),
    ]
    return zscore(np.column_stack(columns))


class TestCorrelationElimination:
    def test_order_covers_all_columns(self):
        data = make_correlated_data()
        order = correlation_elimination_order(data)
        assert sorted(order) == list(range(6))

    def test_redundant_columns_removed_first(self):
        data = make_correlated_data()
        order = correlation_elimination_order(data)
        # Two of the three near-duplicates must go first.
        assert set(order[:2]) <= {0, 1, 2}

    def test_retain_keeps_independents(self):
        data = make_correlated_data()
        retained = retain_by_correlation(data, keep=4)
        assert {3, 4, 5} <= set(retained)
        assert len(set(retained) & {0, 1, 2}) == 1

    def test_retain_bounds(self):
        data = make_correlated_data()
        with pytest.raises(AnalysisError):
            retain_by_correlation(data, keep=0)
        with pytest.raises(AnalysisError):
            retain_by_correlation(data, keep=7)

    def test_max_ranking_variant(self):
        data = make_correlated_data()
        order = correlation_elimination_order(data, ranking="max")
        assert sorted(order) == list(range(6))
        assert set(order[:2]) <= {0, 1, 2}

    def test_unknown_ranking_rejected(self):
        with pytest.raises(AnalysisError):
            correlation_elimination_order(make_correlated_data(),
                                          ranking="median")

    def test_reduced_space_keeps_distance_structure(self):
        data = make_correlated_data()
        full = pairwise_distances(data)
        retained = retain_by_correlation(data, keep=4)
        reduced = pairwise_distances(data[:, retained])
        assert pearson(full, reduced) > 0.85


class TestGeneticSelector:
    def test_deterministic_given_seed(self):
        data = make_correlated_data()
        a = GeneticSelector(population=16, generations=10, seed=7).select(data)
        b = GeneticSelector(population=16, generations=10, seed=7).select(data)
        assert a.selected == b.selected
        assert a.fitness == b.fitness

    def test_selects_nonempty_subset(self):
        data = make_correlated_data()
        result = GeneticSelector(population=16, generations=10).select(data)
        assert 1 <= result.n_selected <= 6
        assert all(0 <= i < 6 for i in result.selected)

    def test_avoids_redundant_duplicates(self):
        data = make_correlated_data()
        result = GeneticSelector(
            population=32, generations=25, seed=1
        ).select(data)
        # At most one of the three near-identical columns is worth
        # keeping under the size penalty.
        assert len(set(result.selected) & {0, 1, 2}) <= 1

    def test_rho_matches_recomputation(self):
        data = make_correlated_data()
        result = GeneticSelector(population=16, generations=10).select(data)
        full = pairwise_distances(data)
        subset = pairwise_distances(data[:, list(result.selected)])
        assert result.rho == pytest.approx(pearson(full, subset))

    def test_fitness_formula(self):
        data = make_correlated_data()
        result = GeneticSelector(population=16, generations=10).select(data)
        expected = result.rho * (1.0 - result.n_selected / 6)
        assert result.fitness == pytest.approx(expected)

    def test_size_penalty_off_prefers_more_features(self):
        data = make_correlated_data()
        with_penalty = GeneticSelector(
            population=24, generations=15, seed=3
        ).select(data)
        without_penalty = GeneticSelector(
            population=24, generations=15, seed=3, size_penalty=False
        ).select(data)
        assert without_penalty.n_selected >= with_penalty.n_selected
        assert without_penalty.fitness == pytest.approx(without_penalty.rho)

    def test_history_is_monotone(self):
        data = make_correlated_data()
        result = GeneticSelector(population=16, generations=12).select(data)
        history = np.array(result.history)
        assert (np.diff(history) >= -1e-12).all()

    def test_patience_stops_early(self):
        data = make_correlated_data()
        result = GeneticSelector(
            population=16, generations=500, patience=3, seed=2
        ).select(data)
        assert result.generations_run < 500

    def test_parameter_validation(self):
        with pytest.raises(AnalysisError):
            GeneticSelector(population=1)
        with pytest.raises(AnalysisError):
            GeneticSelector(generations=0)
        with pytest.raises(AnalysisError):
            GeneticSelector(population=4, elite=4)

    def test_needs_enough_rows(self):
        with pytest.raises(AnalysisError):
            GeneticSelector().select(np.ones((2, 4)))
