"""Bit-exact equivalence of the HPC batch engines vs their references.

Every vectorized engine in the microarchitecture stack retains its
scalar executable specification; these tests pin each pair bit-for-bit —
miss masks / mispredict masks, statistics, AND the final mutable state —
on randomized streams, hand-built pathologies, and warm-started
simulators:

* ``SetAssociativeCache.simulate`` vs ``simulate_reference`` (the
  direct-mapped compare path, the small-associativity pointer
  recurrence, and the stack-distance path);
* ``TLB.simulate`` vs ``TLB.simulate_reference``;
* all four branch predictors' ``simulate_batch`` vs the scalar
  ``predict``/``update`` loop;
* ``producer_indices`` vs ``producer_indices_reference``;
* ``simulate_events(engine="batch")`` vs ``engine="reference"``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mica.ilp import producer_indices, producer_indices_reference
from repro.synth import WorkloadProfile, generate_trace
from repro.trace import TraceBuilder
from repro.uarch import (
    EV56_CONFIG,
    EV67_CONFIG,
    BimodalPredictor,
    CacheConfig,
    GSharePredictor,
    LocalHistoryPredictor,
    SetAssociativeCache,
    TLB,
    TournamentPredictor,
    simulate_predictor,
    simulate_predictor_reference,
)
from repro.uarch.events import simulate_events


def cache_config(assoc, sets=4, line=32):
    return CacheConfig(
        name="T",
        size_bytes=line * assoc * sets,
        line_bytes=line,
        associativity=assoc,
    )


def assert_cache_pair_equal(batch, reference):
    assert np.array_equal(batch._stack, reference._stack), (
        "final recency stacks diverged"
    )
    assert batch.stats.accesses == reference.stats.accesses
    assert batch.stats.misses == reference.stats.misses


class TestCacheEquivalence:
    @pytest.mark.parametrize("assoc,sets", [
        (1, 16), (2, 8), (3, 4), (4, 4), (8, 2), (16, 1), (64, 1),
    ])
    def test_random_streams(self, assoc, sets):
        rng = np.random.default_rng(assoc * 31 + sets)
        config = cache_config(assoc, sets)
        for span_lines in (2, 8, 64, 1024):
            addresses = rng.integers(
                0, span_lines * 32, size=1500
            ).astype(np.uint64)
            batch = SetAssociativeCache(config)
            reference = SetAssociativeCache(config)
            miss_batch = batch.simulate(addresses)
            miss_reference = reference.simulate_reference(addresses)
            assert np.array_equal(miss_batch, miss_reference)
            assert_cache_pair_equal(batch, reference)

    @pytest.mark.parametrize("assoc", [1, 2, 3, 64])
    def test_warm_start_continues_exactly(self, assoc):
        rng = np.random.default_rng(assoc)
        config = cache_config(assoc, sets=2)
        batch = SetAssociativeCache(config)
        reference = SetAssociativeCache(config)
        for address in rng.integers(0, 4096, size=64):
            batch.access(int(address))
            reference.access(int(address))
        addresses = rng.integers(0, 4096, size=700).astype(np.uint64)
        assert np.array_equal(
            batch.simulate(addresses),
            reference.simulate_reference(addresses),
        )
        assert_cache_pair_equal(batch, reference)

    @pytest.mark.parametrize("assoc", [2, 3, 4])
    def test_two_line_alternation_pathology(self, assoc):
        """Long A/B/A/B streams stress the pointer-jump fallback."""
        config = cache_config(assoc, sets=2)
        pattern = np.tile(
            np.array([0, 128], dtype=np.uint64), 3000
        )
        pattern = np.concatenate([
            pattern, np.array([4096, 0, 128, 8192], dtype=np.uint64)
        ])
        batch = SetAssociativeCache(config)
        reference = SetAssociativeCache(config)
        assert np.array_equal(
            batch.simulate(pattern),
            reference.simulate_reference(pattern),
        )
        assert_cache_pair_equal(batch, reference)

    def test_direct_mapped_state_not_stale(self):
        """The batch path must leave state a later access() trusts.

        (Historical bug: the direct-mapped fast path updated tags but
        left the LRU ages stale, so interleaving simulate() with
        access() diverged from a pure-scalar run.)
        """
        config = cache_config(1, sets=2)
        batch = SetAssociativeCache(config)
        reference = SetAssociativeCache(config)
        stream = np.array([0, 64, 0, 128, 64], dtype=np.uint64)
        batch.simulate(stream)
        for address in stream:
            reference.access(int(address))
        assert_cache_pair_equal(batch, reference)
        for address in (0, 64, 128, 192, 0):
            assert batch.access(address) == reference.access(address)
        assert_cache_pair_equal(batch, reference)

    def test_interleaved_batches_and_scalar_accesses(self):
        rng = np.random.default_rng(11)
        config = cache_config(3, sets=4)
        batch = SetAssociativeCache(config)
        reference = SetAssociativeCache(config)
        for round_ in range(4):
            addresses = rng.integers(0, 2048, size=200).astype(np.uint64)
            assert np.array_equal(
                batch.simulate(addresses),
                reference.simulate_reference(addresses),
            )
            for address in rng.integers(0, 2048, size=20):
                assert batch.access(int(address)) == reference.access(
                    int(address)
                )
            assert_cache_pair_equal(batch, reference)

    def test_empty_batch_is_a_no_op(self):
        cache = SetAssociativeCache(cache_config(2))
        cache.access(0x40)
        stack_before = cache._stack.copy()
        assert cache.simulate(np.empty(0, dtype=np.uint64)).shape == (0,)
        assert np.array_equal(cache._stack, stack_before)
        assert cache.stats.accesses == 1


class TestTLBEquivalence:
    def test_random_page_stream(self):
        rng = np.random.default_rng(5)
        pages = rng.integers(0, 200, size=4000) * 8192
        offsets = rng.integers(0, 8192, size=4000)
        addresses = (pages + offsets).astype(np.uint64)
        batch, reference = TLB(entries=64), TLB(entries=64)
        assert np.array_equal(
            batch.simulate(addresses),
            reference.simulate_reference(addresses),
        )
        assert batch.stats.misses == reference.stats.misses

    def test_thrash_and_locality_mix(self):
        # Round-robin over entries+1 pages (defeats LRU) then a tight
        # working set (all hits) — both sides of the distance cut.
        entries = 16
        pages = np.arange(entries + 1) * 8192
        stream = np.concatenate([
            np.tile(pages, 10),
            np.repeat(pages[:4], 50),
        ]).astype(np.uint64)
        batch, reference = TLB(entries=entries), TLB(entries=entries)
        assert np.array_equal(
            batch.simulate(stream),
            reference.simulate_reference(stream),
        )


class TestPredictorEquivalence:
    MAKERS = {
        "bimodal": lambda: BimodalPredictor(entries=64),
        "gshare": lambda: GSharePredictor(entries=128, history_bits=6),
        "local": lambda: LocalHistoryPredictor(
            history_entries=32, history_bits=5
        ),
        "tournament": lambda: TournamentPredictor(
            local_entries=32,
            local_history_bits=5,
            global_entries=128,
            global_history_bits=7,
        ),
    }

    @staticmethod
    def state_of(predictor):
        if isinstance(predictor, TournamentPredictor):
            return (
                predictor._chooser.copy(),
                predictor._history,
                TestPredictorEquivalence.state_of(predictor._local),
                TestPredictorEquivalence.state_of(predictor._global),
            )
        if isinstance(predictor, LocalHistoryPredictor):
            return (
                predictor._histories.copy(),
                predictor._counters.copy(),
            )
        if isinstance(predictor, GSharePredictor):
            return (predictor._history, predictor._counters.copy())
        return (predictor._counters.copy(),)

    @staticmethod
    def states_equal(one, two):
        if isinstance(one, tuple):
            return all(
                TestPredictorEquivalence.states_equal(a, b)
                for a, b in zip(one, two)
            )
        if isinstance(one, np.ndarray):
            return np.array_equal(one, two)
        return one == two

    @pytest.mark.parametrize("kind", sorted(MAKERS))
    def test_random_streams(self, kind):
        rng = np.random.default_rng(hash(kind) % (1 << 32))
        for bias in (0.1, 0.5, 0.9):
            for n in (0, 1, 2, 250, 2500):
                pcs = (
                    rng.integers(0, 96, size=n) * 4 + 0x1000
                ).astype(np.uint64)
                outcomes = rng.random(n) < bias
                batch = self.MAKERS[kind]()
                reference = self.MAKERS[kind]()
                stats_b, mask_b = simulate_predictor(
                    batch, pcs, outcomes, return_mask=True
                )
                stats_r, mask_r = simulate_predictor_reference(
                    reference, pcs, outcomes, return_mask=True
                )
                assert np.array_equal(mask_b, mask_r)
                assert stats_b == stats_r
                assert self.states_equal(
                    self.state_of(batch), self.state_of(reference)
                )

    @pytest.mark.parametrize("kind", sorted(MAKERS))
    def test_warm_start(self, kind):
        rng = np.random.default_rng(99)
        batch = self.MAKERS[kind]()
        reference = self.MAKERS[kind]()
        for pc, taken in zip(
            rng.integers(0, 64, size=80) * 4, rng.random(80) < 0.5
        ):
            batch.update(int(pc), bool(taken))
            reference.update(int(pc), bool(taken))
        pcs = (rng.integers(0, 64, size=500) * 4).astype(np.uint64)
        outcomes = rng.random(500) < 0.5
        _, mask_b = simulate_predictor(batch, pcs, outcomes, True)
        _, mask_r = simulate_predictor_reference(
            reference, pcs, outcomes, True
        )
        assert np.array_equal(mask_b, mask_r)
        assert self.states_equal(
            self.state_of(batch), self.state_of(reference)
        )

    @pytest.mark.parametrize("kind", sorted(MAKERS))
    def test_periodic_patterns(self, kind):
        pattern = [True, True, False, True, False]
        outcomes = np.array(
            [pattern[i % len(pattern)] for i in range(1200)]
        )
        pcs = np.tile(
            np.array([0x1000, 0x2000, 0x1000], dtype=np.uint64), 400
        )
        batch = self.MAKERS[kind]()
        reference = self.MAKERS[kind]()
        _, mask_b = simulate_predictor(batch, pcs, outcomes, True)
        _, mask_r = simulate_predictor_reference(
            reference, pcs, outcomes, True
        )
        assert np.array_equal(mask_b, mask_r)

    def test_foreign_predictor_falls_back_to_reference(self):
        class AlwaysTaken(
            BimodalPredictor.__mro__[1]  # BranchPredictor ABC.
        ):
            def predict(self, pc):
                return True

            def update(self, pc, taken):
                pass

        pcs = np.array([0x1000] * 4, dtype=np.uint64)
        outcomes = np.array([True, False, True, False])
        stats = simulate_predictor(AlwaysTaken(), pcs, outcomes)
        assert stats.mispredictions == 2


class TestProducerIndicesEquivalence:
    def test_generated_traces(self):
        for name, length, seed in (
            ("equiv/prod/1", 4000, 0),
            ("equiv/prod/2", 2500, 7),
        ):
            trace = generate_trace(
                WorkloadProfile(name=name), length, seed=seed
            )
            batch = producer_indices(trace)
            reference = producer_indices_reference(trace)
            assert np.array_equal(batch[0], reference[0])
            assert np.array_equal(batch[1], reference[1])

    def test_self_write_is_invisible_to_own_reads(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        builder.alu(0x1004, dst=1, src1=1, src2=1)
        builder.alu(0x1008, dst=2, src1=1, src2=2)
        trace = builder.build()
        producer1, producer2 = producer_indices(trace)
        reference1, reference2 = producer_indices_reference(trace)
        assert np.array_equal(producer1, reference1)
        assert np.array_equal(producer2, reference2)
        assert producer1[1] == 0  # Reads the previous writer, not itself.

    def test_no_writes_trace(self):
        builder = TraceBuilder()
        for index in range(8):
            builder.nop(0x1000 + 4 * index)
        trace = builder.build()
        batch = producer_indices(trace)
        reference = producer_indices_reference(trace)
        assert np.array_equal(batch[0], reference[0])
        assert np.array_equal(batch[1], reference[1])

    def test_live_reads_but_no_writes(self):
        # Branch-only traces read registers nothing ever writes; the
        # merged-sort path must degrade to all-NO_PRODUCER, not crash.
        builder = TraceBuilder()
        for index in range(6):
            builder.branch(0x1000 + 4 * index, cond_reg=3,
                           taken=index % 2 == 0, target=0x1000)
        trace = builder.build()
        batch = producer_indices(trace)
        reference = producer_indices_reference(trace)
        assert np.array_equal(batch[0], reference[0])
        assert np.array_equal(batch[1], reference[1])
        assert (batch[0] == -1).all() and (batch[1] == -1).all()


class TestSimulateEventsEquivalence:
    @pytest.mark.parametrize("machine", [EV56_CONFIG, EV67_CONFIG],
                             ids=["ev56", "ev67"])
    def test_full_event_equality(self, machine):
        trace = generate_trace(
            WorkloadProfile(name="equiv/events/1"), 6000
        )
        batch = simulate_events(trace, machine, engine="batch")
        reference = simulate_events(trace, machine, engine="reference")
        assert np.array_equal(batch.fetch_latency, reference.fetch_latency)
        assert np.array_equal(
            batch.memory_latency, reference.memory_latency
        )
        assert np.array_equal(batch.mispredict, reference.mispredict)
        for level in ("l1i", "l1d", "l2", "tlb"):
            assert getattr(batch, level).misses == getattr(
                reference, level
            ).misses
            assert getattr(batch, level).accesses == getattr(
                reference, level
            ).accesses
        assert batch.predictor == reference.predictor

    def test_unknown_engine_rejected(self):
        trace = generate_trace(
            WorkloadProfile(name="equiv/events/2"), 500
        )
        with pytest.raises(SimulationError):
            simulate_events(trace, EV56_CONFIG, engine="warp")
