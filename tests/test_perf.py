"""Tests for the repro.perf subsystem: cache, harness, parallel builds."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.perf.cache as perf_cache
from repro.config import DEFAULT_CONFIG, ReproConfig
from repro.experiments import build_dataset
from repro.experiments.dataset import _MEMORY_CACHE
from repro.mica import NUM_CHARACTERISTICS, characterize
from repro.perf import (
    CharacterizationCache,
    MicaBenchResult,
    cached_characterize,
    run_mica_bench,
    trace_fingerprint,
    write_bench_json,
)
from repro.synth import WorkloadProfile, generate_trace
from repro.trace import TraceBuilder

SMALL_CONFIG = ReproConfig(trace_length=2_000)


@pytest.fixture()
def tiny_trace():
    return generate_trace(WorkloadProfile(name="perf/t/1"), 2_000)


class TestTraceFingerprint:
    def test_deterministic(self, tiny_trace):
        assert trace_fingerprint(tiny_trace) == trace_fingerprint(tiny_trace)

    def test_name_independent(self):
        first = generate_trace(WorkloadProfile(name="perf/a/1"), 500)
        renamed = type(first)(first.data.copy(), name="other/name")
        assert trace_fingerprint(first) == trace_fingerprint(renamed)

    def test_content_sensitive(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        one = builder.build()
        builder2 = TraceBuilder()
        builder2.alu(0x1000, dst=2)
        other = builder2.build()
        assert trace_fingerprint(one) != trace_fingerprint(other)


class TestConfigFingerprint:
    def test_ignores_non_characterization_fields(self):
        base = DEFAULT_CONFIG
        other = base.with_overrides(trace_length=123, ga_generations=2)
        assert (
            base.characterization_fingerprint()
            == other.characterization_fingerprint()
        )

    def test_tracks_characterization_fields(self):
        base = DEFAULT_CONFIG
        other = base.with_overrides(ppm_max_order=6)
        assert (
            base.characterization_fingerprint()
            != other.characterization_fingerprint()
        )


class TestCharacterizationCache:
    def test_miss_then_hit(self, tiny_trace, tmp_path):
        cache = CharacterizationCache(tmp_path)
        assert cache.load(tiny_trace, SMALL_CONFIG) is None
        vector = characterize(tiny_trace, SMALL_CONFIG)
        cache.store(tiny_trace, SMALL_CONFIG, vector.values)
        assert len(cache) == 1
        loaded = cache.load(tiny_trace, SMALL_CONFIG)
        assert np.array_equal(loaded, vector.values)

    def test_config_keys_separate_entries(self, tiny_trace, tmp_path):
        cache = CharacterizationCache(tmp_path)
        vector = characterize(tiny_trace, SMALL_CONFIG)
        cache.store(tiny_trace, SMALL_CONFIG, vector.values)
        assert cache.load(
            tiny_trace, SMALL_CONFIG.with_overrides(ppm_max_order=2)
        ) is None

    def test_corrupt_entry_is_a_miss(self, tiny_trace, tmp_path):
        cache = CharacterizationCache(tmp_path)
        vector = characterize(tiny_trace, SMALL_CONFIG)
        path = cache.store(tiny_trace, SMALL_CONFIG, vector.values)
        path.write_bytes(b"not an npz")
        assert cache.load(tiny_trace, SMALL_CONFIG) is None

    def test_clear(self, tiny_trace, tmp_path):
        cache = CharacterizationCache(tmp_path)
        vector = characterize(tiny_trace, SMALL_CONFIG)
        cache.store(tiny_trace, SMALL_CONFIG, vector.values)
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_cached_characterize_warm_skips_analyzers(
        self, tiny_trace, tmp_path, monkeypatch
    ):
        cold = cached_characterize(tiny_trace, SMALL_CONFIG, tmp_path)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("analyzers ran on a warm cache")

        monkeypatch.setattr(perf_cache, "characterize", boom)
        warm = cached_characterize(tiny_trace, SMALL_CONFIG, tmp_path)
        assert np.array_equal(cold.values, warm.values)
        assert warm.name == tiny_trace.name

    def test_no_cache_dir_is_plain_characterize(self, tiny_trace):
        direct = characterize(tiny_trace, SMALL_CONFIG)
        wrapped = cached_characterize(tiny_trace, SMALL_CONFIG, None)
        assert np.array_equal(direct.values, wrapped.values)


class TestParallelDatasetBuilds:
    def test_jobs_warm_cache_matches_serial_cold(
        self, small_population, tmp_path
    ):
        population = small_population[:3]
        _MEMORY_CACHE.clear()
        serial_cold = build_dataset(
            SMALL_CONFIG,
            benchmarks=population,
            cache_dir=tmp_path,
            jobs=1,
        )
        # Remove the dataset-level matrices but keep the per-trace
        # entries, so the parallel build must go through the workers
        # and the warm repro.perf cache.
        removed = list(tmp_path.glob("dataset-*.npz"))
        for path in removed:
            path.unlink()
        assert removed, "serial build should have written the dataset cache"
        assert list(tmp_path.glob("char-*.npz")), (
            "serial build should have populated the per-trace cache"
        )
        _MEMORY_CACHE.clear()
        parallel_warm = build_dataset(
            SMALL_CONFIG,
            benchmarks=population,
            cache_dir=tmp_path,
            jobs=2,
        )
        assert parallel_warm.names == serial_cold.names
        assert np.array_equal(parallel_warm.mica, serial_cold.mica)
        assert np.array_equal(parallel_warm.hpc, serial_cold.hpc)
        _MEMORY_CACHE.clear()

    def test_jobs_alias_workers(self, small_population, tmp_path):
        population = small_population[:2]
        via_workers = build_dataset(
            SMALL_CONFIG, benchmarks=population, use_cache=False, workers=1
        )
        via_jobs = build_dataset(
            SMALL_CONFIG, benchmarks=population, use_cache=False, jobs=1
        )
        assert np.array_equal(via_workers.mica, via_jobs.mica)


class TestMicaBenchHarness:
    def test_smoke_run_structure(self, tiny_trace):
        result = run_mica_bench(trace=tiny_trace, repeats=1)
        names = {timing.name for timing in result.timings}
        assert {"ppm_predictabilities", "ilp_ipc", "characterize",
                "ppm_reference", "ilp_ipc_reference"} <= names
        assert set(result.speedups) == {"ppm", "ilp"}
        assert all(timing.seconds >= 0.0 for timing in result.timings)
        assert result.trace_length == len(tiny_trace)
        assert "Minstr/s" in result.format()

    def test_bench_json_round_trip(self, tiny_trace, tmp_path):
        result = run_mica_bench(
            trace=tiny_trace, repeats=1, include_reference=False
        )
        assert result.speedups == {}
        path = write_bench_json(result, tmp_path / "BENCH_mica.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == "BENCH_mica/v6"
        assert payload["meta"]["trace_length"] == len(tiny_trace)
        for entry in payload["analyzers"].values():
            assert entry["seconds"] >= 0.0
            assert entry["instructions_per_second"] >= 0.0

    def test_cli_bench_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "BENCH_mica.json"
        code = main([
            "--trace-length", "2000",
            "bench", "--repeats", "1", "--output", str(output),
            "--no-generation",
        ])
        assert code == 0
        assert output.is_file()
        payload = json.loads(output.read_text())
        assert "speedups" in payload
        assert "generation" not in payload
        assert "MICA perf harness" in capsys.readouterr().out

    def test_generation_section(self, tmp_path):
        result = run_mica_bench(
            trace=generate_trace(WorkloadProfile(name="perf/gen/1"), 2_000),
            config=ReproConfig(trace_length=3_000),
            repeats=1,
            include_reference=True,
            include_generation=True,
        )
        assert result.generation is not None
        payload = json.loads(
            write_bench_json(
                result, tmp_path / "BENCH_mica.json"
            ).read_text()
        )
        section = payload["generation"]
        assert set(section["speedups"]) == {"interpret", "expand", "engine"}
        for phase in (
            "generate_trace",
            "interpret",
            "interpret_reference",
            "expand",
            "expand_reference",
        ):
            assert section["phases"][phase]["seconds"] >= 0.0
        assert section["dataset"]["cold_seconds"] > 0.0
        assert section["dataset"]["warm_seconds"] > 0.0
        assert "generation engine" in result.format()


class TestHpcBenchSection:
    def test_hpc_section(self, tmp_path):
        result = run_mica_bench(
            trace=generate_trace(WorkloadProfile(name="perf/hpc/1"), 2_000),
            config=ReproConfig(trace_length=3_000),
            repeats=1,
            include_reference=True,
            include_hpc=True,
        )
        assert result.hpc is not None
        payload = json.loads(
            write_bench_json(
                result, tmp_path / "BENCH_mica.json"
            ).read_text()
        )
        section = payload["hpc"]
        assert set(section["speedups"]) == {
            "events", "events_ev56", "events_ev67",
            "pipelines", "pipeline_ev56", "pipeline_ev67",
            "cache_l1d", "tlb",
            "predictor_bimodal", "predictor_tournament",
            "producer_indices",
        }
        for engine in (
            "events_ev56", "events_ev56_reference",
            "events_ev67", "events_ev67_reference",
            "pipeline_ev56", "pipeline_ev56_reference",
            "pipeline_ev67", "pipeline_ev67_reference",
            "collect_hpc", "cache_l1d", "tlb",
            "predictor_bimodal", "predictor_tournament",
            "producer_indices", "producer_indices_reference",
        ):
            assert section["engines"][engine]["seconds"] >= 0.0
        assert section["cache"]["cold_seconds"] > 0.0
        assert section["cache"]["warm_seconds"] > 0.0
        assert "HPC engine" in result.format()

    def test_no_reference_skips_speedups(self):
        from repro.perf import run_hpc_bench

        result = run_hpc_bench(
            config=ReproConfig(trace_length=2_000),
            repeats=1,
            include_reference=False,
        )
        assert result.speedups == {}
        names = {timing.name for timing in result.timings}
        assert "events_ev56" in names
        assert "events_ev56_reference" not in names
        assert "HPC engine" in result.format()


class TestPhasesBenchSection:
    def test_phases_section(self, tmp_path):
        result = run_mica_bench(
            trace=generate_trace(WorkloadProfile(name="perf/ph/1"), 2_000),
            config=ReproConfig(trace_length=4_000),
            repeats=1,
            include_reference=True,
            include_phases=True,
        )
        assert result.phases is not None
        payload = json.loads(
            write_bench_json(
                result, tmp_path / "BENCH_mica.json"
            ).read_text()
        )
        section = payload["phases"]
        assert section["interval"] > 0
        assert set(section["speedups"]) == {"timeline"}
        for engine in (
            "mica_timeline", "mica_timeline_reference", "interval_mica",
            "basic_block_vectors", "interval_mix", "detect_phases",
        ):
            assert section["engines"][engine]["seconds"] >= 0.0
        # The acceptance ratio is surfaced at the top level too.
        assert payload["speedups"]["phases"] == (
            section["speedups"]["timeline"]
        )
        assert "phase engine" in result.format()

    def test_small_trace_shrinks_interval(self):
        from repro.perf import run_phases_bench

        result = run_phases_bench(
            config=ReproConfig(trace_length=2_000),
            repeats=1,
            interval=5_000,
        )
        assert result.interval == 500  # 2000 // 4

    def test_no_reference_skips_speedups(self):
        from repro.perf import run_phases_bench

        result = run_phases_bench(
            config=ReproConfig(trace_length=4_000),
            repeats=1,
            include_reference=False,
        )
        assert result.speedups == {}
        names = {timing.name for timing in result.timings}
        assert "mica_timeline" in names
        assert "mica_timeline_reference" not in names


@pytest.mark.slow
def test_hpc_events_speedup_floor_at_default_trace_length():
    """Acceptance floor for the HPC event engines: >=5x combined
    simulate_events over the scalar references at the default (100k)
    trace length."""
    from repro.perf import run_hpc_bench

    result = run_hpc_bench(repeats=3)
    assert result.trace_length == DEFAULT_CONFIG.trace_length
    assert result.speedups["events"] >= 5.0


@pytest.mark.slow
def test_pipeline_walk_never_slower_than_reference():
    """The batch pipeline walks must at least match the retained scalar
    loops at the default trace length (see ROADMAP: the serialized
    pipeline recurrence bounds how far ahead of the reference any exact
    engine can get).  The EV67 margin is only ~1.1x, so allow a little
    wall-clock noise without letting a real regression through."""
    from repro.perf import run_hpc_bench

    result = run_hpc_bench(repeats=3)
    assert result.speedups["pipelines"] >= 1.0
    assert result.speedups["pipeline_ev56"] >= 1.0
    assert result.speedups["pipeline_ev67"] >= 0.95


@pytest.mark.slow
def test_phases_speedup_floor_at_default_trace_length():
    """Acceptance floor for the segmented phase engine: >=5x over the
    chunked per-chunk reference for the default six-key timeline at the
    default (100k) trace length and 5k-instruction intervals (the
    committed ``BENCH_mica.json`` records the floor-qualifying run).
    Steady-state measures ~6x; the short engine runs are much more
    exposed to scheduler steal than the long reference runs, so — as
    with the pipeline-walk floor — leave headroom for wall-clock noise
    without letting a real regression through."""
    from repro.perf import run_phases_bench

    result = run_phases_bench(repeats=7)
    assert result.trace_length == DEFAULT_CONFIG.trace_length
    assert result.interval == 5_000
    assert result.speedups["timeline"] >= 4.0


@pytest.mark.slow
def test_speedup_floors_at_default_trace_length():
    """Acceptance floors for the vectorized engine: >=10x PPM, >=5x ILP
    over the scalar references at the default trace length."""
    result = run_mica_bench(repeats=3)
    assert result.trace_length == DEFAULT_CONFIG.trace_length
    assert result.speedups["ppm"] >= 10.0
    assert result.speedups["ilp"] >= 5.0


@pytest.mark.slow
def test_generation_speedup_floor_at_default_trace_length():
    """Acceptance floor for the generation engine: >=10x combined over
    the scalar interpret/expand references at the default (100k) trace
    length."""
    from repro.perf import run_generation_bench

    result = run_generation_bench(repeats=5)
    assert result.trace_length == DEFAULT_CONFIG.trace_length
    assert result.speedups["engine"] >= 10.0


def test_characteristic_vector_dimensions(tiny_trace, tmp_path):
    vector = cached_characterize(tiny_trace, SMALL_CONFIG, tmp_path)
    assert vector.values.shape == (NUM_CHARACTERISTICS,)
