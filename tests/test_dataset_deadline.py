"""Deadline plumbing and the warm dataset probe.

``build_dataset(deadline=...)`` gives the whole build a wall-clock
budget: benchmarks not built in time are recorded as failed with
``"build deadline exceeded"`` and the usual strict/salvage semantics
apply.  ``load_cached_dataset`` is the service's warm path: it answers
from the dataset-level cache or says ``None`` — it never builds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import AnalysisError, DatasetBuildError
from repro.experiments import build_dataset, load_cached_dataset
from repro.experiments.dataset import _MEMORY_CACHE

SMALL_CONFIG = ReproConfig(trace_length=2_000)
NAMES = ["spec2000/mcf/ref", "mibench/adpcm/rawcaudio"]


@pytest.fixture(autouse=True)
def _clean_memory_cache():
    _MEMORY_CACHE.clear()
    yield
    _MEMORY_CACHE.clear()


@pytest.fixture()
def population():
    from repro.workloads import get_benchmark

    return [get_benchmark(name) for name in NAMES]


class TestBuildDeadline:

    def test_expired_deadline_fails_every_benchmark_typed(
        self, population, tmp_path
    ):
        with pytest.raises(DatasetBuildError) as excinfo:
            build_dataset(
                SMALL_CONFIG, population, cache_dir=tmp_path / "cache",
                jobs=1, deadline=0.0,
            )
        report = excinfo.value.report
        assert report is not None
        assert [status.name for status in report.failed] == NAMES
        assert all(
            status.error == "build deadline exceeded"
            for status in report.failed
        )

    def test_expired_deadline_with_salvage_raises_no_survivors(
        self, population, tmp_path
    ):
        # Salvage mode still raises when *nothing* was built.
        with pytest.raises(DatasetBuildError):
            build_dataset(
                SMALL_CONFIG, population, cache_dir=tmp_path / "cache",
                jobs=1, strict=False, deadline=0.0,
            )

    def test_generous_deadline_is_bit_for_bit_no_deadline(
        self, population, tmp_path
    ):
        reference = build_dataset(
            SMALL_CONFIG, population, cache_dir=tmp_path / "a", jobs=1
        )
        _MEMORY_CACHE.clear()
        budgeted = build_dataset(
            SMALL_CONFIG, population, cache_dir=tmp_path / "b", jobs=1,
            deadline=600.0, retry_jitter_seed=7,
        )
        assert np.array_equal(budgeted.mica, reference.mica)
        assert np.array_equal(budgeted.hpc, reference.hpc)


class TestLoadCachedDataset:

    def test_cold_cache_returns_none(self, population, tmp_path):
        assert load_cached_dataset(
            SMALL_CONFIG, benchmarks=population,
            cache_dir=tmp_path / "cache",
        ) is None

    def test_warm_cache_round_trips(self, population, tmp_path):
        cache_dir = tmp_path / "cache"
        built = build_dataset(
            SMALL_CONFIG, population, cache_dir=cache_dir, jobs=1
        )
        _MEMORY_CACHE.clear()  # force the disk path
        loaded = load_cached_dataset(
            SMALL_CONFIG, benchmark_names=NAMES, cache_dir=cache_dir
        )
        assert loaded is not None
        assert loaded.names == built.names
        assert np.array_equal(loaded.mica, built.mica)
        assert np.array_equal(loaded.hpc, built.hpc)
        # A second probe answers from the in-memory cache.
        assert load_cached_dataset(
            SMALL_CONFIG, benchmark_names=NAMES, cache_dir=cache_dir
        ) is loaded

    def test_different_population_misses(self, population, tmp_path):
        cache_dir = tmp_path / "cache"
        build_dataset(
            SMALL_CONFIG, population, cache_dir=cache_dir, jobs=1
        )
        _MEMORY_CACHE.clear()
        assert load_cached_dataset(
            SMALL_CONFIG, benchmark_names=NAMES[:1],
            cache_dir=cache_dir,
        ) is None

    def test_both_population_arguments_rejected(self, population):
        with pytest.raises(AnalysisError):
            load_cached_dataset(
                SMALL_CONFIG, benchmarks=population,
                benchmark_names=NAMES,
            )
