"""Tests for the characteristic-timeline extension."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import AnalysisError
from repro.phases import (
    DEFAULT_TIMELINE_KEYS,
    mica_timeline,
    mica_timeline_reference,
)
from repro.trace import TraceBuilder

CONFIG = ReproConfig(trace_length=5_000)


def drifting_trace(n_intervals=6, interval=1000):
    """Load fraction grows interval by interval."""
    builder = TraceBuilder(name="drift")
    for block in range(n_intervals):
        load_every = max(8 - block, 2)
        for index in range(interval):
            pc = 0x1000 + 4 * (index % 32)
            if index % load_every == 0:
                builder.load(pc, dst=1, addr_reg=2,
                             mem_addr=0x2000 + 8 * (index % 256))
            else:
                builder.alu(pc, dst=1 + index % 4)
    return builder.build()


class TestMicaTimeline:
    def test_shape(self, small_trace):
        timeline = mica_timeline(small_trace, interval=1000, config=CONFIG)
        assert timeline.values.shape == (5, len(DEFAULT_TIMELINE_KEYS))
        assert np.isfinite(timeline.values).all()

    def test_tracks_drift(self):
        trace = drifting_trace()
        timeline = mica_timeline(
            trace, interval=1000, keys=("mix_loads",), config=CONFIG
        )
        loads = timeline.values[:, 0]
        assert loads[-1] > loads[0]  # The injected drift is visible.
        assert timeline.drift()[0] > 0.05

    def test_steady_trace_low_drift(self):
        builder = TraceBuilder()
        for index in range(6000):
            builder.alu(0x1000 + 4 * (index % 32), dst=1 + index % 4)
        timeline = mica_timeline(
            builder.build(), interval=1000, keys=("mix_loads", "ilp_w32"),
            config=CONFIG,
        )
        assert timeline.drift()[0] == 0.0  # No loads at all.
        assert timeline.drift()[1] < 0.05  # Uniform ILP.

    def test_unknown_key_rejected(self, small_trace):
        with pytest.raises(AnalysisError):
            mica_timeline(small_trace, interval=1000, keys=("mix_waffles",))

    def test_empty_keys_rejected(self, small_trace):
        with pytest.raises(AnalysisError):
            mica_timeline(small_trace, interval=1000, keys=())

    def test_too_short_trace_rejected(self, small_trace):
        with pytest.raises(AnalysisError):
            mica_timeline(small_trace, interval=len(small_trace))

    def test_format_renders_all_keys(self, small_trace):
        timeline = mica_timeline(small_trace, interval=1000, config=CONFIG)
        text = timeline.format()
        for key in DEFAULT_TIMELINE_KEYS:
            assert key in text

    def test_values_match_direct_characterization(self, small_trace):
        from repro.mica import characterize

        timeline = mica_timeline(
            small_trace, interval=1000, keys=("mix_loads",), config=CONFIG
        )
        first = small_trace[0:1000]
        direct = characterize(first, CONFIG)["mix_loads"]
        assert timeline.values[0, 0] == pytest.approx(direct)

    def test_non_positive_interval_rejected(self, small_trace):
        for bad in (0, -5):
            with pytest.raises(AnalysisError):
                mica_timeline(small_trace, interval=bad, config=CONFIG)
            with pytest.raises(AnalysisError):
                mica_timeline_reference(
                    small_trace, interval=bad, config=CONFIG
                )


class TestKeyDrivenComputation:
    """Requesting a key must not run unrelated analyzers (historically
    a mix-only timeline still ran PPM and ILP on every chunk)."""

    def test_engine_mix_only_skips_ppm_ilp_producers(
        self, small_trace, monkeypatch
    ):
        from repro.mica import segmented as segmented_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("unrequested analyzer ran")

        monkeypatch.setattr(segmented_module, "_segmented_ppm", boom)
        monkeypatch.setattr(segmented_module, "_segmented_ilp", boom)
        monkeypatch.setattr(
            segmented_module, "segmented_producer_indices", boom
        )
        timeline = mica_timeline(
            small_trace, interval=1000, keys=("mix_loads",), config=CONFIG
        )
        assert timeline.values.shape == (5, 1)

    def test_reference_mix_only_skips_ppm_ilp_producers(
        self, small_trace, monkeypatch
    ):
        from repro.phases import timeline as timeline_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("unrequested analyzer ran")

        monkeypatch.setattr(timeline_module, "ppm_predictabilities", boom)
        monkeypatch.setattr(timeline_module, "ilp_ipc", boom)
        monkeypatch.setattr(timeline_module, "producer_indices", boom)
        timeline = mica_timeline_reference(
            small_trace, interval=1000, keys=("mix_loads",), config=CONFIG
        )
        assert timeline.values.shape == (5, 1)

    def test_engine_single_window_skips_other_sweeps(
        self, small_trace, monkeypatch
    ):
        """ilp_w32 alone walks one window size, not four."""
        from repro.mica import segmented as segmented_module

        walked = []
        original = segmented_module._segmented_window_cycles

        def spy(producer1, producer2, count, interval, window_sizes):
            walked.extend(int(w) for w in window_sizes)
            return original(producer1, producer2, count, interval,
                           window_sizes)

        monkeypatch.setattr(
            segmented_module, "_segmented_window_cycles", spy
        )
        mica_timeline(
            small_trace, interval=1000, keys=("ilp_w32",), config=CONFIG
        )
        assert walked == [32]
