"""Tests for the PPM branch-predictability analyzers."""

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.trace import Trace, TraceBuilder
from repro.mica import PPMPredictor, ppm_predictabilities


def branch_trace(pcs_and_outcomes):
    builder = TraceBuilder()
    for index, (pc, taken) in enumerate(pcs_and_outcomes):
        builder.branch(pc, cond_reg=1, taken=taken, target=0x9000)
    return builder.build()


class TestPPMPredictor:
    def test_constant_branch_learned(self):
        predictor = PPMPredictor(max_order=4)
        for _ in range(100):
            predictor.predict_and_update(0x1000, True)
        assert predictor.accuracy > 0.95

    def test_alternating_pattern_learned(self):
        predictor = PPMPredictor(max_order=4)
        for index in range(400):
            predictor.predict_and_update(0x1000, index % 2 == 0)
        assert predictor.accuracy > 0.9

    def test_period_four_pattern_learned(self):
        predictor = PPMPredictor(max_order=4)
        pattern = [True, True, False, True]
        for index in range(800):
            predictor.predict_and_update(0x1000, pattern[index % 4])
        assert predictor.accuracy > 0.85

    def test_random_branch_near_chance(self):
        rng = np.random.default_rng(3)
        predictor = PPMPredictor(max_order=4)
        for outcome in rng.random(3000) < 0.5:
            predictor.predict_and_update(0x1000, bool(outcome))
        assert 0.4 < predictor.accuracy < 0.6

    def test_biased_branch_tracks_bias(self):
        rng = np.random.default_rng(4)
        predictor = PPMPredictor(max_order=2)
        outcomes = rng.random(3000) < 0.9
        for outcome in outcomes:
            predictor.predict_and_update(0x1000, bool(outcome))
        assert predictor.accuracy > 0.85

    def test_order_must_be_positive(self):
        with pytest.raises(CharacterizationError):
            PPMPredictor(max_order=0)

    def test_accuracy_zero_when_unused(self):
        assert PPMPredictor().accuracy == 0.0

    def test_shared_table_aliases_branches(self):
        """With one shared table and global history, two branches with
        opposite behavior interfere; per-address tables separate them."""
        shared = PPMPredictor(max_order=1, global_history=False,
                              shared_table=True)
        separate = PPMPredictor(max_order=1, global_history=False,
                                shared_table=False)
        for _ in range(300):
            for predictor in (shared, separate):
                predictor.predict_and_update(0x1000, True)
                predictor.predict_and_update(0x2000, False)
        assert separate.accuracy > shared.accuracy

    def test_global_history_captures_correlation(self):
        """A branch perfectly correlated with the previous branch's
        outcome is predictable with global history, not with local."""
        rng = np.random.default_rng(5)
        with_global = PPMPredictor(max_order=4, global_history=True)
        with_local = PPMPredictor(max_order=4, global_history=False)
        correct_global = 0
        correct_local = 0
        n = 2000
        for _ in range(n):
            first = bool(rng.random() < 0.5)
            # Branch A: random; branch B: copies branch A.
            with_global.predict_and_update(0x1000, first)
            with_local.predict_and_update(0x1000, first)
            correct_global += with_global.predict_and_update(0x2000, first)
            correct_local += with_local.predict_and_update(0x2000, first)
        assert correct_global / n > 0.9
        assert correct_local / n < 0.7


class TestPpmPredictabilities:
    def test_returns_four_accuracies(self, small_trace):
        values = ppm_predictabilities(small_trace)
        assert values.shape == (4,)
        assert ((values >= 0.0) & (values <= 1.0)).all()

    def test_no_branches_gives_zeros(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        values = ppm_predictabilities(builder.build())
        assert (values == 0.0).all()

    def test_loop_branches_highly_predictable(self):
        # 20-iteration loops: taken 19x then not-taken, repeatedly.
        sequence = []
        for _ in range(40):
            sequence.extend([(0x1000, True)] * 19)
            sequence.append((0x1000, False))
        values = ppm_predictabilities(branch_trace(sequence))
        assert values.max() > 0.9

    def test_predictability_knob(self):
        from repro.synth import (
            BranchSpec,
            CodeSpec,
            WorkloadProfile,
            generate_trace,
        )

        # Short loops + many diamonds so data-dependent branches
        # dominate the branch stream; then the model knob decides.
        code = CodeSpec(loop_iter_mean=3.0, diamond_rate=0.7, loop_blocks=4)
        predictable = generate_trace(
            WorkloadProfile(
                name="t/br/easy",
                code=code,
                branches=BranchSpec(pattern_fraction=0.95, taken_bias=0.05),
            ),
            10_000,
        )
        unpredictable = generate_trace(
            WorkloadProfile(
                name="t/br/hard",
                code=code,
                branches=BranchSpec(pattern_fraction=0.0, taken_bias=0.5),
            ),
            10_000,
        )
        easy = ppm_predictabilities(predictable)
        hard = ppm_predictabilities(unpredictable)
        assert easy.mean() > hard.mean() + 0.03

    def test_empty_trace_rejected(self):
        with pytest.raises(CharacterizationError):
            ppm_predictabilities(Trace.empty())
