"""End-to-end fault matrix for the characterization service.

Every injected fault at a service seam must yield the documented typed
status code while ``/healthz`` stays 200, and a faulted-then-recovered
response must be bit-for-bit identical to a cold serial computation:

==============================  =====================================
injected condition              documented response
==============================  =====================================
queue saturated                 429 ``queue_full`` + ``Retry-After``
slow handler past the deadline  504 ``deadline_exceeded`` (expired)
worker crash mid-request        retried; success is byte-identical
repeated worker failures        503 ``circuit_open`` + ``Retry-After``
cache degrades under load       200, compute-without-cache
SIGTERM                         503 ``draining``, then a clean drain
==============================  =====================================

All tests talk real HTTP to a ``ThreadingHTTPServer`` bound to an
ephemeral port; the last one exercises the actual ``repro serve``
process and its SIGTERM handler.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.config import ReproConfig
from repro.experiments.dataset import _MEMORY_CACHE
from repro.perf import (
    cached_characterize,
    cached_collect_hpc,
    cached_generate_trace,
    faults,
    reset_cache_degradation,
)
from repro.service import (
    CharacterizationService,
    ServiceSettings,
    characterize_payload,
    hpc_payload,
    make_server,
)
from repro.workloads import get_benchmark

SMALL_CONFIG = ReproConfig(trace_length=2_000)
BENCH = "spec2000/mcf/ref"


@dataclass
class Response:
    status: int
    headers: dict
    raw: bytes

    @property
    def body(self) -> dict:
        return json.loads(self.raw)

    @property
    def error_code(self) -> str:
        return self.body["error"]["code"]


class Client:
    """Minimal JSON-over-HTTP client against the live server."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    def request(self, method, path, body=None, raw_body=None) -> Response:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=30
        )
        try:
            data = raw_body if raw_body is not None else (
                json.dumps(body).encode() if body is not None else None
            )
            conn.request(
                method, path, data,
                {"Content-Type": "application/json"} if data else {},
            )
            response = conn.getresponse()
            return Response(
                response.status,
                dict(response.getheaders()),
                response.read(),
            )
        finally:
            conn.close()

    def get(self, path) -> Response:
        return self.request("GET", path)

    def post(self, path, body=None, **kwargs) -> Response:
        return self.request("POST", path, body=body, **kwargs)


@pytest.fixture(autouse=True)
def _clean_global_state():
    _MEMORY_CACHE.clear()
    reset_cache_degradation()
    yield
    _MEMORY_CACHE.clear()
    reset_cache_degradation()


@pytest.fixture()
def live_service(tmp_path):
    """Factory starting a service + HTTP server on an ephemeral port."""
    running = []

    def start(**overrides):
        kwargs = dict(
            cache_dir=tmp_path / "cache",
            workers=2,
            queue_capacity=8,
            default_deadline=20.0,
            retry_backoff=0.01,
            watchdog_interval=0.02,
            drain_timeout=5.0,
        )
        kwargs.update(overrides)
        service = CharacterizationService(
            config=SMALL_CONFIG, settings=ServiceSettings(**kwargs)
        ).start()
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        running.append((service, server, thread))
        host, port = server.server_address[:2]
        return service, Client(host, port)

    yield start
    for service, server, thread in running:
        service.begin_drain()
        service.drain(2.0)
        server.shutdown()
        server.server_close()
        thread.join(timeout=2.0)


def expected_characterize_bytes() -> bytes:
    """The cold serial characterize body, computed without the service
    (and without any cache): the bit-for-bit reference."""
    benchmark = get_benchmark(BENCH)
    trace = cached_generate_trace(
        benchmark.profile, SMALL_CONFIG.trace_length, seed=0,
        cache_dir=None,
    )
    vector = cached_characterize(trace, SMALL_CONFIG, None)
    return json.dumps(characterize_payload(
        BENCH, SMALL_CONFIG.trace_length, 0, vector.values
    )).encode("utf-8")


def expected_hpc_bytes() -> bytes:
    benchmark = get_benchmark(BENCH)
    trace = cached_generate_trace(
        benchmark.profile, SMALL_CONFIG.trace_length, seed=0,
        cache_dir=None,
    )
    vector = cached_collect_hpc(trace, cache_dir=None)
    return json.dumps(hpc_payload(
        BENCH, SMALL_CONFIG.trace_length, 0, vector.values
    )).encode("utf-8")


class TestWarmAndColdPaths:

    def test_cold_then_warm_characterize_is_bit_for_bit(
        self, live_service
    ):
        _, client = live_service()
        cold = client.post(
            "/v1/characterize", {"benchmark": "mcf", "wait": True}
        )
        assert cold.status == 200
        assert cold.headers["X-Repro-Source"] == "computed"
        warm = client.post("/v1/characterize", {"benchmark": "mcf"})
        assert warm.status == 200
        assert warm.headers["X-Repro-Source"] == "cache"
        assert warm.raw == cold.raw
        assert cold.raw == expected_characterize_bytes()

    def test_hpc_round_trip_matches_cold_serial(self, live_service):
        _, client = live_service()
        cold = client.post("/v1/hpc", {"benchmark": "mcf", "wait": True})
        assert cold.status == 200
        assert cold.raw == expected_hpc_bytes()
        warm = client.post("/v1/hpc", {"benchmark": "mcf"})
        assert warm.headers["X-Repro-Source"] == "cache"
        assert warm.raw == cold.raw

    def test_async_submit_then_poll(self, live_service):
        _, client = live_service()
        accepted = client.post(
            "/v1/characterize", {"benchmark": "mcf"}
        )
        assert accepted.status == 202
        body = accepted.body
        assert body["kind"] == "characterize"
        assert accepted.headers["Location"] == body["poll"]
        result = client.get(f"{body['poll']}?wait=10")
        assert result.status == 200
        assert result.headers["X-Repro-Source"] == "computed"
        assert result.raw == expected_characterize_bytes()

    def test_phases_round_trip(self, live_service):
        _, client = live_service()
        response = client.post(
            "/v1/phases",
            {"benchmark": "mcf", "interval": 500, "wait": True},
        )
        assert response.status == 200
        body = response.body
        assert body["kind"] == "phases"
        assert body["k"] >= 1
        assert len(body["assignments"]) == (
            SMALL_CONFIG.trace_length // 500
        )
        assert len(body["simulation_points"]) == body["k"]

    def test_dataset_cold_then_warm(self, live_service):
        _, client = live_service()
        request = {
            "benchmarks": ["mcf", "adpcm/rawcaudio"], "wait": True
        }
        cold = client.post("/v1/dataset", request)
        assert cold.status == 200
        assert cold.headers["X-Repro-Source"] == "computed"
        assert cold.body["kind"] == "dataset"
        assert len(cold.body["names"]) == 2
        warm = client.post("/v1/dataset", request)
        assert warm.headers["X-Repro-Source"] == "cache"
        assert warm.raw == cold.raw


class TestValidation:

    def test_unknown_route_is_typed_404(self, live_service):
        _, client = live_service()
        response = client.get("/v2/nope")
        assert response.status == 404
        assert response.error_code == "not_found"

    def test_unknown_benchmark_is_typed_404(self, live_service):
        _, client = live_service()
        response = client.post(
            "/v1/characterize", {"benchmark": "no-such-benchmark"}
        )
        assert response.status == 404

    def test_unknown_job_is_typed_404(self, live_service):
        _, client = live_service()
        response = client.get("/v1/jobs/characterize-ffffffff")
        assert response.status == 404
        assert response.error_code == "job_not_found"

    @pytest.mark.parametrize("body", [
        {"benchmark": "mcf", "trace_length": True},
        {"benchmark": "mcf", "trace_length": -5},
        {"benchmark": "mcf", "trace_length": 10_000_000_000},
        {"benchmark": "mcf", "deadline_ms": "soon"},
        {"benchmark": "mcf", "deadline_ms": -1},
        {"benchmark": "mcf", "wait": "maybe"},
        {"benchmark": ""},
        {},
    ])
    def test_bad_requests_are_typed_400(self, live_service, body):
        _, client = live_service()
        response = client.post("/v1/characterize", body)
        assert response.status == 400
        assert response.error_code == "bad_request"

    def test_bad_phases_signature_is_400(self, live_service):
        _, client = live_service()
        response = client.post(
            "/v1/phases", {"benchmark": "mcf", "signature": "vibes"}
        )
        assert response.status == 400

    def test_empty_dataset_population_is_400(self, live_service):
        _, client = live_service()
        response = client.post("/v1/dataset", {"benchmarks": []})
        assert response.status == 400

    def test_non_object_body_is_400(self, live_service):
        _, client = live_service()
        response = client.post(
            "/v1/characterize", raw_body=b'["not", "an", "object"]'
        )
        assert response.status == 400

    def test_oversized_body_is_400(self, live_service):
        _, client = live_service(max_body_bytes=64)
        padding = "x" * 128
        response = client.post(
            "/v1/characterize", {"benchmark": "mcf", "pad": padding}
        )
        assert response.status == 400

    def test_oversized_body_closes_the_connection(self, live_service):
        # The oversized body is rejected without being read; on a
        # keep-alive connection the server must close, or the unread
        # bytes desync into the next request line.
        _, client = live_service(max_body_bytes=64)
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=10
        )
        try:
            payload = json.dumps(
                {"benchmark": "mcf", "pad": "x" * 128}
            ).encode()
            conn.request(
                "POST", "/v1/characterize", payload,
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            assert response.will_close
            response.read()
        finally:
            conn.close()

    def test_keep_alive_survives_a_read_body_400(self, live_service):
        # A 400 whose body *was* read keeps the persistent connection
        # usable: the next request on the same socket must line up.
        _, client = live_service()
        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=10
        )
        try:
            conn.request(
                "POST", "/v1/characterize", b'["not", "an", "object"]',
                {"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 400
            assert not first.will_close
            first.read()
            conn.request("GET", "/healthz")
            second = conn.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["status"] == "ok"
        finally:
            conn.close()


class TestInjectedFaults:

    def test_queue_saturation_yields_429_and_service_stays_live(
        self, live_service, tmp_path
    ):
        _, client = live_service(workers=1, queue_capacity=1)
        plan = [faults.ServiceFault(
            "*", mode="slow", times=8, seconds=0.4
        )]
        with faults.inject_service_faults(plan, tmp_path / "state"):
            responses = [
                client.post("/v1/characterize",
                            {"benchmark": "mcf", "seed": seed})
                for seed in range(5)
            ]
        statuses = [response.status for response in responses]
        rejected = [r for r in responses if r.status == 429]
        assert rejected, f"expected a 429 in {statuses}"
        assert statuses[0] == 202  # admission worked until saturation
        refusal = rejected[0]
        assert refusal.error_code == "queue_full"
        assert int(refusal.headers["Retry-After"]) >= 1
        # Overload never kills liveness.
        assert client.get("/healthz").status == 200

    def test_slow_handler_past_deadline_yields_504(
        self, live_service, tmp_path
    ):
        service, client = live_service(workers=1)
        plan = [faults.ServiceFault(
            BENCH, mode="slow", times=1, seconds=1.5
        )]
        with faults.inject_service_faults(plan, tmp_path / "state"):
            response = client.post(
                "/v1/characterize",
                {"benchmark": "mcf", "deadline_ms": 150, "wait": True},
            )
        assert response.status == 504
        assert response.error_code == "deadline_exceeded"
        assert client.get("/healthz").status == 200
        assert service.queue.expired_total == 1
        # The abandoned slow attempt finishes in the background; the
        # service then serves the same request fine — and the late
        # result was never handed to anyone (first writer wins).
        recovered = client.post(
            "/v1/characterize", {"benchmark": "mcf", "wait": True}
        )
        assert recovered.status == 200
        assert recovered.raw == expected_characterize_bytes()

    def test_worker_crash_is_retried_to_a_bit_for_bit_result(
        self, live_service, tmp_path
    ):
        service, client = live_service(max_attempts=3)
        plan = [faults.ServiceFault(BENCH, mode="crash", times=2)]
        with faults.inject_service_faults(plan, tmp_path / "state"):
            response = client.post(
                "/v1/characterize", {"benchmark": "mcf", "wait": True}
            )
        assert response.status == 200
        assert response.raw == expected_characterize_bytes()
        stats = service.stats()
        assert stats["retries"] == 2
        assert stats["breaker"]["state"] == "closed"

    def test_exhausted_attempts_fail_typed_not_raw(
        self, live_service, tmp_path
    ):
        _, client = live_service(max_attempts=2)
        plan = [faults.ServiceFault(BENCH, mode="error", times=5)]
        with faults.inject_service_faults(plan, tmp_path / "state"):
            response = client.post(
                "/v1/characterize", {"benchmark": "mcf", "wait": True}
            )
        assert response.status == 500
        assert "2 attempt(s)" in response.body["error"]["message"]

    def test_breaker_opens_then_recovers_bit_for_bit(
        self, live_service, tmp_path
    ):
        service, client = live_service(
            workers=1,
            max_attempts=1,
            breaker_failure_threshold=2,
            breaker_recovery=0.3,
        )
        plan = [faults.ServiceFault(BENCH, mode="crash", times=2)]
        with faults.inject_service_faults(plan, tmp_path / "state"):
            for _ in range(2):
                failed = client.post(
                    "/v1/characterize",
                    {"benchmark": "mcf", "wait": True},
                )
                assert failed.status == 500
        # Two consecutive crashes tripped the breaker: cold work is
        # refused with the documented typed 503 while liveness holds.
        assert service.breaker.state == "open"
        refused = client.post("/v1/characterize", {"benchmark": "mcf"})
        assert refused.status == 503
        assert refused.error_code == "circuit_open"
        assert int(refused.headers["Retry-After"]) >= 1
        ready = client.get("/readyz")
        assert ready.status == 503
        assert ready.body["ready"] is False
        assert client.get("/healthz").status == 200
        # After the recovery window the half-open probe succeeds (the
        # fault's triggers are exhausted), closing the breaker — and
        # the recovered response is bit-for-bit the cold serial one.
        time.sleep(0.35)
        recovered = client.post(
            "/v1/characterize", {"benchmark": "mcf", "wait": True}
        )
        assert recovered.status == 200
        assert recovered.raw == expected_characterize_bytes()
        assert service.breaker.state == "closed"
        assert client.get("/readyz").status == 200

    def test_expired_probe_releases_the_half_open_slot(
        self, live_service, tmp_path
    ):
        # A half-open probe job that the watchdog expires (it never
        # reports an outcome to the breaker) must hand the probe slot
        # back — otherwise the breaker wedges half-open and every cold
        # submission gets 503 forever.
        service, client = live_service(
            workers=2,
            max_attempts=1,
            breaker_failure_threshold=1,
            breaker_recovery=0.2,
        )
        trip = [faults.ServiceFault(BENCH, mode="crash", times=1)]
        with faults.inject_service_faults(trip, tmp_path / "trip"):
            failed = client.post(
                "/v1/characterize", {"benchmark": "mcf", "wait": True}
            )
        assert failed.status == 500
        assert service.breaker.state == "open"
        time.sleep(0.25)  # recovery window -> half-open
        # The probe job wedges past its deadline; the watchdog answers
        # 504 and must release the probe slot it consumed.
        slow = [faults.ServiceFault(
            BENCH, mode="slow", times=1, seconds=2.0
        )]
        with faults.inject_service_faults(slow, tmp_path / "slow"):
            expired = client.post(
                "/v1/characterize",
                {"benchmark": "mcf", "deadline_ms": 100, "wait": True},
            )
            assert expired.status == 504
            assert expired.error_code == "deadline_exceeded"
            assert service.breaker.state == "half_open"
            # The very next cold submission must win the freed probe
            # slot, succeed, and close the breaker — not 503.
            recovered = client.post(
                "/v1/characterize", {"benchmark": "mcf", "wait": True}
            )
        assert recovered.status == 200
        assert recovered.raw == expected_characterize_bytes()
        assert service.breaker.state == "closed"

    def test_queue_refused_probe_releases_the_slot(self, tmp_path):
        # A probe refused at admission (queue full) never runs; the
        # slot must come back immediately.  No HTTP, no threads: the
        # queue's workers are deliberately never started, so the
        # filler job pins the single queue slot.
        from repro.service.breaker import CircuitBreaker

        service = CharacterizationService(
            config=SMALL_CONFIG,
            settings=ServiceSettings(
                cache_dir=tmp_path / "cache",
                queue_capacity=1,
                workers=1,
            ),
        )
        now = [100.0]
        service.breaker = CircuitBreaker(
            failure_threshold=1,
            recovery_seconds=5.0,
            clock=lambda: now[0],
        )
        filler = service.registry.create(
            "characterize", {}, time.monotonic() + 60.0
        )
        service.queue.submit(filler)
        service.breaker.record_failure()  # trip
        now[0] += 5.0                     # recovery -> half-open
        assert service.breaker.state == "half_open"
        status, body, _ = service.handle(
            "POST", "/v1/characterize", {}, {"benchmark": "mcf"}
        )
        assert status == 429
        assert body["error"]["code"] == "queue_full"
        # The refused probe produced no evidence: the very next
        # cold submission must be offered the slot again.
        assert service.breaker.acquire() == (True, True)

    def test_cache_degrade_under_load_keeps_serving(
        self, live_service
    ):
        service, client = live_service()
        with faults.inject_io_faults("store", indices=range(64)):
            first = client.post(
                "/v1/characterize", {"benchmark": "mcf", "wait": True}
            )
        assert first.status == 200
        assert service.degraded
        ready = client.get("/readyz")
        assert ready.status == 200  # degraded alone does not unready
        assert ready.body["cache_degraded"] is True
        # Still serving — compute-without-cache — and still exact.
        second = client.post(
            "/v1/characterize", {"benchmark": "mcf", "wait": True}
        )
        assert second.status == 200
        assert second.headers["X-Repro-Source"] == "computed"
        assert second.raw == first.raw == expected_characterize_bytes()

    def test_drain_refuses_new_work_and_finishes_in_flight(
        self, live_service, tmp_path
    ):
        service, client = live_service(workers=1)
        plan = [faults.ServiceFault(
            BENCH, mode="slow", times=1, seconds=0.3
        )]
        with faults.inject_service_faults(plan, tmp_path / "state"):
            accepted = client.post(
                "/v1/characterize", {"benchmark": "mcf"}
            )
            assert accepted.status == 202
            time.sleep(0.05)  # let the worker pick the job up
            service.begin_drain()
            refused = client.post(
                "/v1/characterize", {"benchmark": "mcf", "seed": 1}
            )
            assert refused.status == 503
            assert refused.error_code == "draining"
            assert service.drain(5.0)
        done = client.get(accepted.body["poll"])
        assert done.status == 200
        assert done.raw == expected_characterize_bytes()
        # Atomic writers: a drain leaves no torn temporaries behind.
        cache_dir = Path(service.cache_dir)
        assert not list(cache_dir.glob("tmp-*"))
        assert not list(cache_dir.glob("*.quarantined"))


class TestStats:

    def test_stats_counts_the_traffic(self, live_service):
        service, client = live_service()
        client.post("/v1/characterize", {"benchmark": "mcf",
                                         "wait": True})
        client.post("/v1/characterize", {"benchmark": "mcf"})
        stats = client.get("/v1/stats").body
        assert stats["submitted"] == 2
        assert stats["warm_hits"] == 1
        assert stats["completed"] == 1
        assert stats["queue_capacity"] == 8
        assert stats["jobs"] == {"done": 1}
        assert stats["breaker"]["state"] == "closed"


class TestServeProcess:
    """The actual ``repro serve`` process: SIGTERM drains cleanly."""

    def test_sigterm_drains_cleanly(self, tmp_path):
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        cache_dir = tmp_path / "cache"
        process = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro",
                "--trace-length", "2000",
                "--cache-dir", str(cache_dir),
                "serve", "--port", "0", "--drain-timeout", "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving on http://")
            port = int(banner.rsplit(":", 1)[1])
            client = Client("127.0.0.1", port)
            assert client.get("/healthz").status == 200
            cold = client.post(
                "/v1/characterize", {"benchmark": "mcf", "wait": True}
            )
            assert cold.status == 200
            warm = client.post(
                "/v1/characterize", {"benchmark": "mcf"}
            )
            assert warm.status == 200
            assert warm.headers["X-Repro-Source"] == "cache"
            assert warm.raw == cold.raw
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=15)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, out
        assert "drained cleanly" in out
        assert not list(cache_dir.glob("tmp-*"))
        assert not list(cache_dir.glob("*.quarantined"))
