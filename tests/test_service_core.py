"""Unit tests for the service's robustness primitives.

Covers the pieces the HTTP fault matrix builds on: the circuit
breaker's state machine (including the single half-open probe slot),
the bounded admission queue and its deadline watchdog, the job
registry's first-writer-wins transitions and bounded terminal history,
the readiness policy, and the deterministic seedable retry jitter
(satellite: bounds, determinism, the :data:`_RETRY_BACKOFF_CAP`
ceiling).
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    DeadlineExceededError,
    JobNotFoundError,
    QueueFullError,
    ServiceDrainingError,
    ServiceError,
)
from repro.experiments.dataset import _RETRY_BACKOFF_CAP, _retry_delay
from repro.service import CircuitBreaker, JobRegistry, ServiceQueue
from repro.service.health import readiness


class FakeClock:
    """Controllable monotonic clock for breaker tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(
        failure_threshold=3, recovery_seconds=5.0, clock=clock
    )


class TestCircuitBreaker:

    def test_closed_allows_and_successes_keep_it_closed(self, breaker):
        assert breaker.state == "closed"
        for _ in range(10):
            assert breaker.allow()
            breaker.record_success()
        assert breaker.state == "closed"

    def test_opens_after_threshold_consecutive_failures(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(5.0)

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_grants_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        assert breaker.allow()       # the probe slot
        assert not breaker.allow()   # everyone else keeps waiting
        assert not breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_the_clock(
        self, breaker, clock
    ):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(5.0)
        assert breaker.snapshot()["trips"] == 2
        # A second recovery window admits a fresh probe.
        clock.advance(5.0)
        assert breaker.allow()

    def test_release_probe_returns_the_slot(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        # The probe submission was refused downstream (queue full)
        # before producing any evidence: the slot must come back.
        breaker.release_probe()
        assert breaker.allow()

    def test_acquire_reports_probe_ownership(self, breaker, clock):
        # Closed: admitted, but no probe slot was taken — releasing
        # on a downstream refusal must not clear anyone else's probe.
        assert breaker.acquire() == (True, False)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.acquire() == (False, False)
        clock.advance(5.0)
        assert breaker.acquire() == (True, True)   # the probe slot
        assert breaker.acquire() == (False, False)

    def test_snapshot_shape(self, breaker):
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["failure_threshold"] == 3
        assert snap["retry_after"] == 0.0
        assert snap["trips"] == 0

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestJobLifecycle:

    def test_first_terminal_writer_wins(self):
        registry = JobRegistry()
        job = registry.create(
            "characterize", {}, time.monotonic() + 10.0
        )
        assert job.start_running()
        assert job.finish_error(
            DeadlineExceededError("expired"), state="expired"
        )
        # The worker finishing late cannot overwrite the 504.
        assert not job.finish_ok({"kind": "characterize"})
        assert job.state == "expired"
        assert job.result is None
        assert job.error.status == 504
        assert job.cancel_requested.is_set()

    def test_finish_ok_blocks_later_errors(self):
        registry = JobRegistry()
        job = registry.create("hpc", {}, time.monotonic() + 10.0)
        assert job.finish_ok({"kind": "hpc"})
        assert not job.finish_error(ServiceError("late"))
        assert job.state == "done"
        assert job.error is None

    def test_terminal_states_only(self):
        registry = JobRegistry()
        job = registry.create("hpc", {}, time.monotonic() + 10.0)
        with pytest.raises(ValueError):
            job.finish_error(ServiceError("bad"), state="running")

    def test_start_running_refuses_terminal_jobs(self):
        registry = JobRegistry()
        job = registry.create("hpc", {}, time.monotonic() + 10.0)
        job.finish_error(ServiceError("dead"))
        assert not job.start_running()

    def test_status_body(self):
        registry = JobRegistry()
        job = registry.create("phases", {}, time.monotonic() + 10.0)
        body = job.status_body()
        assert body["job"] == job.id
        assert body["kind"] == "phases"
        assert body["state"] == "queued"
        assert body["poll"] == f"/v1/jobs/{job.id}"
        assert 0.0 < body["deadline_in"] <= 10.0

    def test_wait_returns_on_completion(self):
        registry = JobRegistry()
        job = registry.create("hpc", {}, time.monotonic() + 10.0)
        assert not job.wait(0.01)
        job.finish_ok({})
        assert job.wait(0.01)

    def test_on_terminal_fires_exactly_once_for_the_winner(self):
        registry = JobRegistry()
        fired = []
        job = registry.create(
            "hpc", {}, time.monotonic() + 10.0,
            on_terminal=fired.append,
        )
        assert job.finish_error(ServiceError("first"))
        assert not job.finish_error(ServiceError("late loser"))
        assert not job.finish_ok({})
        assert fired == [job]

    def test_on_terminal_fires_on_success_too(self):
        registry = JobRegistry()
        fired = []
        job = registry.create(
            "hpc", {}, time.monotonic() + 10.0,
            on_terminal=fired.append,
        )
        assert job.finish_ok({})
        assert fired == [job]

    def test_claim_probe_is_one_shot_and_probe_jobs_only(self):
        registry = JobRegistry()
        plain = registry.create("hpc", {}, time.monotonic() + 10.0)
        assert not plain.claim_probe()
        probe = registry.create(
            "hpc", {}, time.monotonic() + 10.0, probe=True
        )
        assert probe.claim_probe()
        assert not probe.claim_probe()


class TestJobRegistry:

    def test_ids_are_unique_and_kind_prefixed(self):
        registry = JobRegistry()
        ids = {
            registry.create("hpc", {}, time.monotonic() + 1).id
            for _ in range(32)
        }
        assert len(ids) == 32
        assert all(job_id.startswith("hpc-") for job_id in ids)

    def test_get_unknown_raises_typed_404(self):
        registry = JobRegistry()
        with pytest.raises(JobNotFoundError) as excinfo:
            registry.get("characterize-ffffffff")
        assert excinfo.value.status == 404

    def test_bounded_terminal_history_evicts_oldest(self):
        registry = JobRegistry(max_finished=2)
        finished = []
        for _ in range(5):
            job = registry.create("hpc", {}, time.monotonic() + 1)
            job.finish_ok({})
            finished.append(job)
        registry.create("hpc", {}, time.monotonic() + 1)  # triggers evict
        with pytest.raises(JobNotFoundError):
            registry.get(finished[0].id)
        # The newest terminal jobs are still pollable.
        assert registry.get(finished[-1].id) is finished[-1]

    def test_active_excludes_terminal(self):
        registry = JobRegistry()
        alive = registry.create("hpc", {}, time.monotonic() + 1)
        dead = registry.create("hpc", {}, time.monotonic() + 1)
        dead.finish_error(ServiceError("x"))
        assert registry.active() == [alive]
        counts = registry.counts()
        assert counts == {"queued": 1, "failed": 1}


class TestServiceQueue:

    def _queue(self, capacity=2, workers=1, execute=None, **kwargs):
        registry = JobRegistry()
        queue = ServiceQueue(
            capacity=capacity,
            workers=workers,
            execute=execute or (lambda job: job.finish_ok({})),
            registry=registry,
            watchdog_interval=0.01,
            **kwargs,
        )
        return queue, registry

    def test_admission_is_strictly_bounded(self):
        queue, registry = self._queue(capacity=2)
        # Workers not started: jobs stay queued.
        for _ in range(2):
            queue.submit(
                registry.create("hpc", {}, time.monotonic() + 10)
            )
        overflow = registry.create("hpc", {}, time.monotonic() + 10)
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(overflow)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None
        assert queue.rejected_total == 1
        assert queue.depth() == 2

    def test_draining_refuses_submissions(self):
        queue, registry = self._queue()
        queue.begin_drain()
        with pytest.raises(ServiceDrainingError) as excinfo:
            queue.submit(
                registry.create("hpc", {}, time.monotonic() + 10)
            )
        assert excinfo.value.status == 503

    def test_workers_execute_submitted_jobs(self):
        queue, registry = self._queue(capacity=8, workers=2)
        queue.start()
        jobs = [
            registry.create("hpc", {}, time.monotonic() + 10)
            for _ in range(4)
        ]
        for job in jobs:
            queue.submit(job)
        for job in jobs:
            assert job.wait(2.0)
            assert job.state == "done"
        assert queue.drain(1.0)

    def test_watchdog_expires_overdue_running_jobs(self):
        # The executor wedges until cancelled; only the watchdog can
        # answer the client.
        queue, registry = self._queue(
            execute=lambda job: job.cancel_requested.wait(5.0)
        )
        queue.start()
        job = registry.create("hpc", {}, time.monotonic() + 0.05)
        queue.submit(job)
        assert job.wait(2.0)
        assert job.state == "expired"
        assert job.error.status == 504
        assert queue.expired_total == 1
        assert queue.drain(1.0)

    def test_watchdog_expires_jobs_stuck_in_the_queue(self):
        # One worker wedged on the first job: the second job never
        # leaves the queue and must be expired right there.
        queue, registry = self._queue(
            workers=1,
            execute=lambda job: job.cancel_requested.wait(5.0),
        )
        queue.start()
        blocker = registry.create("hpc", {}, time.monotonic() + 30.0)
        queue.submit(blocker)
        stuck = registry.create("hpc", {}, time.monotonic() + 0.05)
        queue.submit(stuck)
        assert stuck.wait(2.0)
        assert stuck.state == "expired"
        blocker.finish_error(ServiceError("unblock"))
        assert queue.drain(1.0)

    def test_drain_cancels_stragglers_with_typed_error(self):
        queue, registry = self._queue(
            execute=lambda job: job.cancel_requested.wait(5.0)
        )
        queue.start()
        job = registry.create("hpc", {}, time.monotonic() + 30.0)
        queue.submit(job)
        time.sleep(0.05)
        clean = queue.drain(0.1)
        assert not clean
        assert job.state == "cancelled"
        assert job.error.status == 503
        assert job.error.code == "cancelled"

    def test_drain_is_clean_when_jobs_finish(self):
        queue, registry = self._queue()
        queue.start()
        job = registry.create("hpc", {}, time.monotonic() + 10)
        queue.submit(job)
        assert job.wait(2.0)
        assert queue.drain(1.0)

    def test_invalid_construction(self):
        registry = JobRegistry()
        with pytest.raises(ValueError):
            ServiceQueue(0, 1, lambda job: None, registry)
        with pytest.raises(ValueError):
            ServiceQueue(1, 0, lambda job: None, registry)


class TestReadiness:

    CLOSED = {"state": "closed"}
    OPEN = {"state": "open"}

    def test_ready_in_the_steady_state(self):
        status, body = readiness(self.CLOSED, 0, 10, False, False)
        assert status == 200
        assert body["ready"] is True

    def test_open_breaker_unreadies(self):
        status, body = readiness(self.OPEN, 0, 10, False, False)
        assert status == 503
        assert body["ready"] is False

    def test_saturated_queue_unreadies(self):
        status, body = readiness(self.CLOSED, 8, 10, False, False)
        assert status == 503
        assert body["queue"]["saturated"] is True

    def test_draining_unreadies(self):
        status, _ = readiness(self.CLOSED, 0, 10, True, False)
        assert status == 503

    def test_degraded_cache_alone_stays_ready(self):
        # Degraded mode keeps serving (compute-without-cache); only the
        # flag is reported.
        status, body = readiness(self.CLOSED, 0, 10, False, True)
        assert status == 200
        assert body["cache_degraded"] is True

    def test_job_counts_are_attached_when_given(self):
        _, body = readiness(
            self.CLOSED, 0, 10, False, False, job_counts={"done": 3}
        )
        assert body["jobs"] == {"done": 3}


class TestRetryJitter:
    """Satellite: deterministic seedable jitter in the retry sleeps."""

    def test_unseeded_keeps_the_historical_schedule(self):
        assert _retry_delay(0.1, 0) == pytest.approx(0.1)
        assert _retry_delay(0.1, 3) == pytest.approx(0.8)

    def test_cap_is_the_ceiling_with_or_without_jitter(self):
        assert _retry_delay(0.5, 10) == _RETRY_BACKOFF_CAP
        for seed in range(20):
            assert (
                _retry_delay(0.5, 10, jitter_seed=seed, token="x")
                <= _RETRY_BACKOFF_CAP
            )

    def test_zero_backoff_never_sleeps(self):
        assert _retry_delay(0.0, 5, jitter_seed=7, token="x") == 0.0
        assert _retry_delay(-1.0, 5) == 0.0

    @pytest.mark.parametrize("round_index", [0, 1, 2, 5])
    def test_jitter_bounds(self, round_index):
        base = _retry_delay(0.1, round_index)
        for seed in range(50):
            jittered = _retry_delay(
                0.1, round_index, jitter_seed=seed, token="bench"
            )
            assert base / 2.0 <= jittered <= base

    def test_deterministic_for_same_seed_token_round(self):
        first = _retry_delay(0.1, 2, jitter_seed=42, token="mcf")
        second = _retry_delay(0.1, 2, jitter_seed=42, token="mcf")
        assert first == second

    def test_desynchronizes_across_seeds_and_tokens(self):
        by_seed = {
            _retry_delay(0.1, 2, jitter_seed=seed, token="mcf")
            for seed in range(8)
        }
        assert len(by_seed) > 1
        assert _retry_delay(0.1, 2, jitter_seed=1, token="mcf") != (
            _retry_delay(0.1, 2, jitter_seed=1, token="swim")
        )
