"""Smoke tests: every example script must run end to end.

Examples are a deliverable; these tests execute them as subprocesses
with small trace lengths and an isolated dataset cache so they stay
fast and leave no state behind.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def run_example(tmp_path, script, args=()):
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=420,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_all_examples_present(self):
        scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
        assert scripts == [
            "compare_emerging_suite.py",
            "external_trace.py",
            "phase_analysis.py",
            "pitfall_case_study.py",
            "quickstart.py",
            "select_key_characteristics.py",
        ]

    def test_quickstart(self, tmp_path):
        out = run_example(tmp_path, "quickstart.py", ["mcf", "3000"])
        assert "characteristics of spec2000/mcf/ref" in out
        assert "ipc_ev56" in out

    def test_external_trace(self, tmp_path):
        out = run_example(tmp_path, "external_trace.py")
        assert "all invariants hold" in out
        assert "identical" in out

    def test_phase_analysis(self, tmp_path):
        out = run_example(
            tmp_path, "phase_analysis.py", ["gcc/166", "30000"]
        )
        assert "phase timeline" in out
        assert "simulation points" in out

    @pytest.mark.slow
    def test_pitfall_case_study(self, tmp_path):
        out = run_example(tmp_path, "pitfall_case_study.py", ["2000"])
        assert "correlation coefficient" in out
        assert "Table III" in out
        assert "Figures 2-3 case study" in out

    @pytest.mark.slow
    def test_select_key_characteristics(self, tmp_path):
        out = run_example(
            tmp_path, "select_key_characteristics.py", ["2000"]
        )
        assert "Table IV" in out
        assert "method comparison" in out

    @pytest.mark.slow
    def test_compare_emerging_suite(self, tmp_path):
        out = run_example(
            tmp_path, "compare_emerging_suite.py", ["2000"]
        )
        assert "nearest existing benchmarks" in out
        assert "emerging/ml/gemm" in out
