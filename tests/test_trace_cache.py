"""Tests for the profile+seed-keyed trace cache and the static-code memo.

The trace cache sits *below* the content-keyed characterization cache:
it skips generation itself, which a content hash cannot (hashing needs
the bytes).  These tests pin the cache key contract (profile
fingerprint, length, seed, TRACE_GEN_VERSION) and that warm dataset
builds never invoke the generator.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.perf.cache as perf_cache
from repro.config import ReproConfig
from repro.experiments import build_dataset, clear_dataset_cache
from repro.experiments.dataset import _MEMORY_CACHE
from repro.perf import TraceCache, cached_generate_trace
from repro.synth import (
    CodeSpec,
    WorkloadProfile,
    clear_code_cache,
    generate_trace,
    generation_call_count,
)
from repro.synth import generator

SMALL_CONFIG = ReproConfig(trace_length=2_000)

PROFILE = WorkloadProfile(name="cache/profile/1")


class TestProfileFingerprint:
    def test_deterministic(self):
        assert PROFILE.fingerprint() == PROFILE.fingerprint()

    def test_equal_knobs_equal_fingerprint(self):
        twin = WorkloadProfile(name="cache/profile/1")
        assert PROFILE.fingerprint() == twin.fingerprint()

    def test_behavior_mix_order_independent(self):
        forward = WorkloadProfile(
            name="cache/mix",
            memory=PROFILE.memory.__class__(
                load_mix={"scalar": 0.5, "random": 0.5},
            ),
        )
        backward = WorkloadProfile(
            name="cache/mix",
            memory=PROFILE.memory.__class__(
                load_mix={"random": 0.5, "scalar": 0.5},
            ),
        )
        assert forward.fingerprint() == backward.fingerprint()

    def test_distinct_knobs_distinct_fingerprint(self):
        assert PROFILE.fingerprint() != PROFILE.with_overrides(
            seed=1
        ).fingerprint()
        assert PROFILE.fingerprint() != PROFILE.with_overrides(
            name="cache/profile/2"
        ).fingerprint()


class TestTraceCache:
    def test_hit_returns_bit_identical_bytes(self, tmp_path):
        cold = cached_generate_trace(PROFILE, 2_000, seed=4, cache_dir=tmp_path)
        warm = cached_generate_trace(PROFILE, 2_000, seed=4, cache_dir=tmp_path)
        assert warm.data.tobytes() == cold.data.tobytes()
        assert warm.name == PROFILE.name
        assert len(TraceCache(tmp_path)) == 1

    def test_hit_skips_the_generator(self, tmp_path, monkeypatch):
        cached_generate_trace(PROFILE, 2_000, cache_dir=tmp_path)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("generator ran on a warm trace cache")

        monkeypatch.setattr(perf_cache, "generate_trace", boom)
        cached_generate_trace(PROFILE, 2_000, cache_dir=tmp_path)

    def test_distinct_seed_length_profile_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cached_generate_trace(PROFILE, 2_000, seed=0, cache_dir=tmp_path)
        assert cache.load(PROFILE, 2_000, seed=1) is None
        assert cache.load(PROFILE, 1_999, seed=0) is None
        assert cache.load(PROFILE.with_overrides(seed=5), 2_000) is None
        assert (
            cache.load(WorkloadProfile(name="cache/other/1"), 2_000) is None
        )

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = TraceCache(tmp_path)
        cached_generate_trace(PROFILE, 2_000, cache_dir=tmp_path)
        assert cache.load(PROFILE, 2_000) is not None
        monkeypatch.setattr(
            perf_cache, "TRACE_GEN_VERSION", perf_cache.TRACE_GEN_VERSION + 1
        )
        assert cache.load(PROFILE, 2_000) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        cached_generate_trace(PROFILE, 2_000, cache_dir=tmp_path)
        for path in tmp_path.glob("trace-*.npz"):
            path.write_bytes(b"not an npz")
        assert cache.load(PROFILE, 2_000) is None

    def test_no_cache_dir_is_plain_generate(self):
        direct = generate_trace(PROFILE, 1_000, seed=2)
        wrapped = cached_generate_trace(PROFILE, 1_000, seed=2, cache_dir=None)
        assert np.array_equal(direct.data, wrapped.data)

    def test_clear(self, tmp_path):
        cache = TraceCache(tmp_path)
        cached_generate_trace(PROFILE, 2_000, cache_dir=tmp_path)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestWarmDatasetBuildSkipsGeneration:
    def test_second_build_performs_zero_generator_calls(
        self, small_population, tmp_path
    ):
        population = small_population[:3]
        _MEMORY_CACHE.clear()
        cold = build_dataset(
            SMALL_CONFIG, benchmarks=population, cache_dir=tmp_path, jobs=1
        )
        # Drop the dataset-level matrices but keep the per-trace caches,
        # so the rebuild must go through the workers.
        removed = list(tmp_path.glob("dataset-*.npz"))
        assert removed, "cold build should have written the dataset cache"
        for path in removed:
            path.unlink()
        assert list(tmp_path.glob("trace-*.npz")), (
            "cold build should have populated the trace cache"
        )
        _MEMORY_CACHE.clear()

        calls_before = generation_call_count()
        warm = build_dataset(
            SMALL_CONFIG, benchmarks=population, cache_dir=tmp_path, jobs=1
        )
        assert generation_call_count() == calls_before
        assert np.array_equal(warm.mica, cold.mica)
        assert np.array_equal(warm.hpc, cold.hpc)
        _MEMORY_CACHE.clear()

    def test_clear_dataset_cache_removes_trace_entries(
        self, small_population, tmp_path
    ):
        build_dataset(
            SMALL_CONFIG,
            benchmarks=small_population[:2],
            cache_dir=tmp_path,
            jobs=1,
        )
        assert list(tmp_path.glob("trace-*.npz"))
        clear_dataset_cache(tmp_path)
        assert not list(tmp_path.glob("trace-*.npz"))
        assert not list(tmp_path.glob("char-*.npz"))
        assert not list(tmp_path.glob("dataset-*.npz"))


class TestStaticCodeMemo:
    def test_build_code_runs_once_across_lengths_and_seeds(
        self, monkeypatch
    ):
        profile = WorkloadProfile(
            name="cache/memo/1", code=CodeSpec(num_functions=4)
        )
        clear_code_cache()
        calls = []
        real_build = generator.build_code

        def counting_build(*args, **kwargs):
            calls.append(1)
            return real_build(*args, **kwargs)

        monkeypatch.setattr(generator, "build_code", counting_build)
        generate_trace(profile, 500)
        generate_trace(profile, 2_000)
        generate_trace(profile, 500, seed=9)
        assert len(calls) == 1

        generate_trace(profile.with_overrides(seed=1), 500)
        assert len(calls) == 2
        clear_code_cache()

    def test_memoized_code_replays_identically(self):
        profile = WorkloadProfile(name="cache/memo/2")
        clear_code_cache()
        first = generate_trace(profile, 3_000)
        second = generate_trace(profile, 3_000)
        assert np.array_equal(first.data, second.data)

    def test_code_is_length_and_seed_invariant(self):
        profile = WorkloadProfile(name="cache/memo/3")
        clear_code_cache()
        generate_trace(profile, 500)
        image = generator.code_for_profile(profile)
        generate_trace(profile, 4_000, seed=11)
        assert generator.code_for_profile(profile) is image
        clear_code_cache()
