"""--runslow: SIGKILL mid-write at every cache level, plus the journal.

The atomic-writer contract under uncatchable death: an interrupted
store is never half-visible — the entry either fully exists and
verifies, or does not exist at all (at worst a ``tmp-*`` temp is
stranded for the sweep). One parametrized kill per cache level
(trace, char, hpc, dataset) plus one mid-append journal tear, each
followed by a resume that must converge bit-for-bit.

A serial build stores trace → char → hpc per benchmark, then the
dataset matrices last; ``after`` counts writer-seam hits, which is
what aims the kill at a specific level.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.experiments import build_dataset, resume_dataset
from repro.experiments.dataset import _MEMORY_CACHE
from repro.perf import replay_journal, sweep_temporaries, verify_cache
from repro.workloads import all_benchmarks

from conftest import TEST_CONFIG

pytestmark = pytest.mark.slow

POPULATION = all_benchmarks()[:2]
NAMES = ",".join(b.full_name for b in POPULATION)

CHILD = textwrap.dedent("""
    import sys
    from pathlib import Path
    from repro.config import ReproConfig
    from repro.experiments import build_dataset
    from repro.workloads import get_benchmark
    names = sys.argv[1].split(",")
    config = ReproConfig(
        trace_length=5_000, ga_generations=8, ga_population=16)
    build_dataset(
        config, benchmarks=[get_benchmark(name) for name in names],
        cache_dir=Path(sys.argv[2]), jobs=1, journal=Path(sys.argv[3]))
""")

# label -> (seam, writer hits to allow first, visible entry counts the
# killed cache must show as (trace, char, hpc, dataset)).
CASES = {
    "trace": ("writer-before-replace", 0, (0, 0, 0, 0)),
    "char": ("writer-before-replace", 1, (1, 0, 0, 0)),
    "hpc": ("writer-before-replace", 2, (1, 1, 0, 0)),
    "dataset": (
        "writer-before-replace",
        3 * len(POPULATION),
        (len(POPULATION), len(POPULATION), len(POPULATION), 0),
    ),
    "journal": ("journal-append-unsynced", 3, None),
}


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    _MEMORY_CACHE.clear()
    yield
    _MEMORY_CACHE.clear()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    cold = tmp_path_factory.mktemp("kill-matrix-cold")
    return build_dataset(
        TEST_CONFIG, benchmarks=POPULATION, cache_dir=cold, jobs=1
    )


def _counts(cache):
    return tuple(
        len(list(cache.glob(f"{prefix}-*.npz")))
        for prefix in ("trace", "char", "hpc", "dataset")
    )


@pytest.mark.parametrize("label", sorted(CASES))
def test_kill_mid_write_leaves_no_half_entry(
    tmp_path, reference, label
):
    seam, after, expected_counts = CASES[label]
    import repro

    cache = tmp_path / "cache"
    journal = tmp_path / "journal.jsonl"
    faults_dir = tmp_path / "faults"
    faults_dir.mkdir()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    env["REPRO_KILL_FAULTS"] = json.dumps({
        "state_dir": str(faults_dir),
        "faults": [{"seam": seam, "after": after, "times": 1}],
    })
    proc = subprocess.run(
        [sys.executable, "-c", CHILD, NAMES, str(cache), str(journal)],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, (
        label, proc.returncode, proc.stdout, proc.stderr,
    )

    if expected_counts is not None:
        # The kill landed on exactly the level it was aimed at: every
        # earlier store is fully visible, the interrupted one is not.
        assert _counts(cache) == expected_counts, (label, _counts(cache))
        # The interrupted writer strands its temp; nothing else leaks.
        temps = list(cache.glob("tmp-*.npz"))
        assert len(temps) == 1, (label, temps)

    # Nothing half-visible: every surviving entry verifies clean, and
    # the journal replays to a valid (possibly repaired) prefix.
    report = verify_cache(cache, sweep_older_than=0.0)
    assert not report.quarantined, (label, report.format())
    assert not list(cache.glob("tmp-*")), label
    assert replay_journal(journal, repair=True).truncation is None

    resumed = resume_dataset(
        TEST_CONFIG, benchmarks=POPULATION, cache_dir=cache, jobs=1,
        journal=journal,
    )
    assert resumed.mica.tobytes() == reference.mica.tobytes(), label
    assert resumed.hpc.tobytes() == reference.hpc.tobytes(), label
    sweep_temporaries(cache, older_than=0.0)
    assert verify_cache(cache).quarantined == ()
