"""Tests for the Table II schema and the full characterization driver."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import CharacterizationError
from repro.trace import Trace
from repro.mica import (
    CHARACTERISTICS,
    CharacteristicVector,
    NUM_CHARACTERISTICS,
    category_slices,
    characteristic_by_key,
    characteristic_names,
    characterize,
)


class TestSchema:
    def test_exactly_47(self):
        assert NUM_CHARACTERISTICS == 47

    def test_indices_match_paper_order(self):
        assert [c.index for c in CHARACTERISTICS] == list(range(1, 48))

    def test_categories_match_table2_counts(self):
        slices = category_slices()
        sizes = {
            category: s.stop - s.start for category, s in slices.items()
        }
        assert sizes == {
            "instruction mix": 6,
            "ILP": 4,
            "register traffic": 9,
            "working set size": 4,
            "data stream strides": 20,
            "branch predictability": 4,
        }

    def test_keys_unique(self):
        keys = characteristic_names()
        assert len(keys) == len(set(keys)) == 47

    def test_lookup_by_key(self):
        characteristic = characteristic_by_key("ilp_w256")
        assert characteristic.index == 10
        assert characteristic.category == "ILP"

    def test_paper_landmarks(self):
        # Spot-check the Table II numbering used by Table IV.
        assert characteristic_by_key("mix_loads").index == 1
        assert characteristic_by_key("reg_input_operands").index == 11
        assert characteristic_by_key("reg_dep_le8").index == 16
        assert characteristic_by_key("ws_data_pages").index == 21
        assert characteristic_by_key("stride_local_load_le64").index == 26
        assert characteristic_by_key("stride_global_load_le512").index == 32
        assert characteristic_by_key("stride_local_store_le4096").index == 38
        assert characteristic_by_key("ppm_GAg").index == 44
        assert characteristic_by_key("ppm_PAs").index == 47

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            characteristic_by_key("mix_teleport")


class TestCharacterize:
    def test_full_vector_shape(self, small_trace):
        vector = characterize(small_trace)
        assert vector.values.shape == (47,)
        assert np.isfinite(vector.values).all()

    def test_deterministic(self, small_trace):
        a = characterize(small_trace).values
        b = characterize(small_trace).values
        assert np.array_equal(a, b)

    def test_sections_match_analyzers(self, small_trace, test_config):
        from repro.mica import (
            ilp_ipc,
            instruction_mix,
            ppm_predictabilities,
            register_traffic,
            stride_profile,
            working_set,
        )

        vector = characterize(small_trace, test_config).values
        assert np.allclose(vector[0:6], instruction_mix(small_trace))
        assert np.allclose(
            vector[6:10],
            ilp_ipc(small_trace, test_config.ilp_window_sizes),
        )
        assert np.allclose(
            vector[10:19],
            register_traffic(small_trace, test_config.reg_dep_thresholds),
        )
        assert np.allclose(vector[19:23], working_set(small_trace))
        assert np.allclose(vector[23:43], stride_profile(small_trace))
        assert np.allclose(
            vector[43:47],
            ppm_predictabilities(small_trace, test_config.ppm_max_order),
        )

    def test_getitem_by_key(self, small_trace):
        vector = characterize(small_trace)
        assert vector["mix_loads"] == vector.values[0]
        assert vector["ppm_PAs"] == vector.values[46]

    def test_as_dict_ordered(self, small_trace):
        vector = characterize(small_trace)
        keys = list(vector.as_dict().keys())
        assert keys == characteristic_names()

    def test_format_contains_categories(self, small_trace):
        text = characterize(small_trace).format()
        assert "[instruction mix]" in text
        assert "[branch predictability]" in text

    def test_wrong_shape_rejected(self):
        with pytest.raises(CharacterizationError):
            CharacteristicVector(name="x", values=np.zeros(10))

    def test_empty_trace_rejected(self):
        with pytest.raises(CharacterizationError):
            characterize(Trace.empty())

    def test_distinct_profiles_distinct_vectors(self, serial_profile,
                                                fp_heavy_profile):
        from repro.synth import generate_trace

        a = characterize(generate_trace(serial_profile, 5_000)).values
        b = characterize(generate_trace(fp_heavy_profile, 5_000)).values
        assert not np.allclose(a, b)
