"""Edge-case and failure-injection tests for the simulators.

The pipeline models and event simulation must behave sensibly on
degenerate traces: no branches, no memory operations, single
instructions, all-NOP streams, pathological conflict patterns.
"""

import numpy as np
import pytest

from repro.isa import NO_REG, OpClass
from repro.trace import TraceBuilder
from repro.uarch import (
    EV56_CONFIG,
    EV67_CONFIG,
    InOrderModel,
    OutOfOrderModel,
    collect_hpc,
)
from repro.uarch.events import simulate_events


def branchless_trace(n=500):
    builder = TraceBuilder(name="branchless")
    for index in range(n):
        if index % 3 == 0:
            builder.load(0x1000 + 4 * (index % 40), dst=1, addr_reg=2,
                         mem_addr=0x2000 + 8 * (index % 64))
        else:
            builder.alu(0x1000 + 4 * (index % 40), dst=1 + index % 4,
                        src1=1)
    return builder.build()


def memoryless_trace(n=500):
    builder = TraceBuilder(name="memoryless")
    for index in range(n):
        if index % 10 == 9:
            builder.branch(0x1000 + 4 * (index % 40), cond_reg=1,
                           taken=index % 20 == 9, target=0x1000)
        else:
            builder.alu(0x1000 + 4 * (index % 40), dst=1 + index % 4)
    return builder.build()


def nop_trace(n=100):
    builder = TraceBuilder(name="nops")
    for index in range(n):
        builder.nop(0x1000 + 4 * (index % 16))
    return builder.build()


class TestDegenerateTraces:
    def test_branchless_trace_runs(self):
        trace = branchless_trace()
        hpc = collect_hpc(trace)
        assert hpc["branch_mispredict_rate"] == 0.0
        assert hpc["ipc_ev56"] > 0.0

    def test_memoryless_trace_runs(self):
        trace = memoryless_trace()
        hpc = collect_hpc(trace)
        assert hpc["l1d_miss_rate"] == 0.0
        assert hpc["dtlb_miss_rate"] == 0.0
        assert hpc["ipc_ev67"] > 0.0

    def test_nop_trace_runs(self):
        trace = nop_trace()
        ipc, events = InOrderModel(EV56_CONFIG).run(trace)
        assert 0.0 < ipc <= 2.0
        assert events.l1d.accesses == 0

    def test_single_instruction_trace(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        trace = builder.build()
        ipc, _ = InOrderModel(EV56_CONFIG).run(trace)
        assert ipc > 0.0
        ipc, _ = OutOfOrderModel(EV67_CONFIG).run(trace)
        assert ipc > 0.0

    def test_all_taken_branches(self):
        builder = TraceBuilder()
        for index in range(300):
            builder.jump(0x1000 + 4 * (index % 16), target=0x1000)
        trace = builder.build()
        events = simulate_events(trace, EV56_CONFIG)
        # Unconditional always-taken branches become predictable.
        assert events.predictor.misprediction_rate < 0.2

    def test_characterize_degenerate_traces(self):
        from repro.mica import characterize

        for trace in (branchless_trace(), memoryless_trace(), nop_trace()):
            vector = characterize(trace)
            assert np.isfinite(vector.values).all()


class TestConflictPatterns:
    def test_cache_thrash_pattern(self):
        """Two addresses conflicting in every level still simulate."""
        builder = TraceBuilder()
        stride = EV56_CONFIG.l1d.size_bytes  # Same set in L1D.
        for index in range(400):
            builder.load(0x1000 + 4 * (index % 16), dst=1, addr_reg=2,
                         mem_addr=0x10_0000 + (index % 2) * stride)
        trace = builder.build()
        events = simulate_events(trace, EV56_CONFIG)
        assert events.l1d.miss_rate > 0.9  # Direct-mapped ping-pong.

    def test_tlb_thrash_pattern(self):
        builder = TraceBuilder()
        pages = EV56_CONFIG.tlb_entries + 1
        page = EV56_CONFIG.tlb_page_bytes
        for index in range(pages * 3):
            builder.load(0x1000, dst=1, addr_reg=2,
                         mem_addr=0x10_0000 + (index % pages) * page)
        trace = builder.build()
        events = simulate_events(trace, EV56_CONFIG)
        # Round-robin over entries+1 pages defeats LRU completely.
        assert events.tlb.miss_rate > 0.9

    def test_alternating_branch_defeats_bimodal_not_tournament(self):
        builder = TraceBuilder()
        for index in range(2000):
            builder.branch(0x1000, cond_reg=1, taken=index % 2 == 0,
                           target=0x2000)
        trace = builder.build()
        ev56 = simulate_events(trace, EV56_CONFIG)
        ev67 = simulate_events(trace, EV67_CONFIG)
        assert ev56.predictor.misprediction_rate > 0.3
        assert ev67.predictor.misprediction_rate < 0.1


class TestEventConsistency:
    def test_ipc_decreases_with_memory_latency(self):
        """Injecting a slower memory must not speed anything up."""
        from dataclasses import replace

        trace = branchless_trace(2000)
        slow_machine = replace(
            EV56_CONFIG,
            latencies=replace(EV56_CONFIG.latencies, memory=300),
        )
        fast_ipc, _ = InOrderModel(EV56_CONFIG).run(trace)
        slow_ipc, _ = InOrderModel(slow_machine).run(trace)
        assert slow_ipc <= fast_ipc

    def test_wider_machine_not_slower(self):
        from dataclasses import replace

        trace = branchless_trace(2000)
        narrow = replace(EV67_CONFIG, issue_width=1)
        wide_ipc, _ = OutOfOrderModel(EV67_CONFIG).run(trace)
        narrow_ipc, _ = OutOfOrderModel(narrow).run(trace)
        assert wide_ipc >= narrow_ipc - 1e-9

    def test_larger_window_not_slower(self):
        from dataclasses import replace

        trace = branchless_trace(2000)
        small = replace(EV67_CONFIG, window_size=4)
        big_ipc, _ = OutOfOrderModel(EV67_CONFIG).run(trace)
        small_ipc, _ = OutOfOrderModel(small).run(trace)
        assert big_ipc >= small_ipc - 1e-9
