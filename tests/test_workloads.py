"""Tests for the repro.workloads package (Table I registry)."""

import pytest

from repro.errors import ProfileError, UnknownBenchmarkError
from repro.workloads import (
    ProfileTheme,
    all_benchmarks,
    all_suites,
    benchmark_names,
    benchmarks_of,
    build_profile,
    get_benchmark,
    suite_of,
)
from repro.workloads.registry import EXPECTED_BENCHMARK_COUNT


class TestRegistry:
    def test_total_is_122(self):
        assert len(all_benchmarks()) == EXPECTED_BENCHMARK_COUNT == 122

    def test_suite_sizes_match_table1(self):
        sizes = {suite.name: len(suite) for suite in all_suites()}
        assert sizes == {
            "bioinfomark": 12,
            "biometrics": 8,
            "commbench": 12,
            "mediabench": 12,
            "mibench": 30,
            "spec2000": 48,
        }

    def test_names_are_unique(self):
        names = benchmark_names()
        assert len(names) == len(set(names))

    def test_profiles_have_matching_names(self):
        for benchmark in all_benchmarks():
            assert benchmark.profile.name == benchmark.full_name

    def test_icounts_positive(self):
        assert all(b.icount_millions > 0 for b in all_benchmarks())

    def test_known_icounts_from_table1(self):
        assert get_benchmark("spec2000/mcf/ref").icount_millions == 59_800
        assert get_benchmark("bioinfomark/blast/protein").icount_millions == (
            81_092
        )
        assert get_benchmark(
            "mibench/adpcm/rawcaudio"
        ).icount_millions == 758

    def test_spec_has_48_entries(self):
        assert len(benchmarks_of("spec2000")) == 48

    def test_suite_programs(self):
        programs = suite_of("commbench").programs()
        assert programs == [
            "cast", "drr", "frag", "jpeg", "reed", "rtr", "tcp", "zip",
        ]


class TestLookup:
    def test_full_name(self):
        assert get_benchmark("spec2000/bzip2/graphic").program == "bzip2"

    def test_partial_program(self):
        assert get_benchmark("mcf").full_name == "spec2000/mcf/ref"

    def test_partial_program_input(self):
        assert get_benchmark("bzip2/source").input == "source"

    def test_unknown_raises_with_candidates(self):
        with pytest.raises(UnknownBenchmarkError) as excinfo:
            get_benchmark("bzip3")
        assert excinfo.value.candidates

    def test_ambiguous_partial_raises(self):
        with pytest.raises(UnknownBenchmarkError):
            get_benchmark("bzip2")  # Three inputs.

    def test_unknown_suite(self):
        with pytest.raises(UnknownBenchmarkError):
            suite_of("spec2017")


class TestBuildProfile:
    def test_deterministic(self):
        theme = ProfileTheme()
        a = build_profile(theme, "s", "p", "i")
        b = build_profile(theme, "s", "p", "i")
        assert a == b

    def test_name_changes_sampled_values(self):
        theme = ProfileTheme()
        a = build_profile(theme, "s", "p", "i1")
        b = build_profile(theme, "s", "p", "i2")
        assert a.code != b.code or a.mix != b.mix

    def test_override_memory(self):
        profile = build_profile(
            ProfileTheme(), "s", "p", "i",
            {"footprint_bytes": 12345_600},
        )
        assert profile.memory.footprint_bytes == 12345_600

    def test_override_mix(self):
        profile = build_profile(
            ProfileTheme(), "s", "p", "i",
            {"mix": {"load": 0.5, "store": 0.1, "branch": 0.1,
                     "int_alu": 0.3, "int_mul": 0.0, "fp": 0.0}},
        )
        assert profile.mix.load == pytest.approx(0.5)

    def test_override_registers_and_branches(self):
        profile = build_profile(
            ProfileTheme(), "s", "p", "i",
            {"dep_mean": 7.5, "pattern_fraction": 0.9},
        )
        assert profile.registers.dep_mean == 7.5
        assert profile.branches.pattern_fraction == 0.9

    def test_unknown_override_rejected(self):
        with pytest.raises(ProfileError):
            build_profile(ProfileTheme(), "s", "p", "i", {"warp_speed": 9})

    def test_theme_ranges_respected(self):
        theme = ProfileTheme(dep_mean=(3.0, 3.5), loop_iter_mean=(9.0, 9.0))
        for label in ("a", "b", "c"):
            profile = build_profile(theme, "s", "p", label)
            assert 3.0 <= profile.registers.dep_mean <= 3.5
            assert profile.code.loop_iter_mean == 9.0


class TestProfileDiversity:
    def test_paper_outliers_are_extreme(self):
        """The benchmarks the paper isolates must sit at knob extremes."""
        blast = get_benchmark("blast").profile
        adpcm = get_benchmark("adpcm/rawcaudio").profile
        mcf = get_benchmark("mcf").profile
        others = [
            b.profile.memory.footprint_bytes
            for b in all_benchmarks()
            if b.program not in ("blast", "mcf")
        ]
        assert blast.memory.footprint_bytes > max(others) * 0.5
        assert adpcm.memory.footprint_bytes < 64 << 10
        assert mcf.memory.load_mix.get("pointer", 0) >= 0.5

    def test_specfp_core_is_tight(self):
        """The nine SPECfp-core benchmarks share their mix (the paper
        finds 9 of 14 SPECfp in one cluster)."""
        core = ["applu", "apsi", "fma3d", "galgel", "lucas", "mgrid",
                "sixtrack", "swim", "wupwise"]
        mixes = {get_benchmark(p).profile.mix for p in core}
        assert len(mixes) == 1
