"""Tests for ROC evaluation and quadrant classification."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import auc, classify_quadrants, roc_curve


@pytest.fixture()
def spaces():
    """Reference distances and a noisy copy as candidate."""
    rng = np.random.default_rng(0)
    reference = rng.uniform(0.0, 10.0, size=500)
    candidate = reference + rng.normal(scale=1.0, size=500)
    return reference, np.clip(candidate, 0.0, None)


class TestRocCurve:
    def test_perfect_candidate_auc_one(self):
        rng = np.random.default_rng(1)
        reference = rng.uniform(0.0, 10.0, size=400)
        curve = roc_curve(reference, reference)
        assert curve.area == pytest.approx(1.0, abs=0.01)

    def test_random_candidate_auc_half(self):
        rng = np.random.default_rng(2)
        reference = rng.uniform(0.0, 10.0, size=3000)
        candidate = rng.uniform(0.0, 10.0, size=3000)
        curve = roc_curve(reference, candidate)
        assert curve.area == pytest.approx(0.5, abs=0.05)

    def test_noisy_candidate_in_between(self, spaces):
        reference, candidate = spaces
        curve = roc_curve(reference, candidate)
        assert 0.7 < curve.area < 1.0

    def test_curve_endpoints(self, spaces):
        reference, candidate = spaces
        curve = roc_curve(reference, candidate)
        assert curve.true_positive_rate[0] == 0.0
        assert curve.false_positive_rate[0] == 0.0
        assert curve.true_positive_rate[-1] == 1.0
        assert curve.false_positive_rate[-1] == 1.0

    def test_curve_monotone(self, spaces):
        reference, candidate = spaces
        curve = roc_curve(reference, candidate)
        assert (np.diff(curve.true_positive_rate) >= 0.0).all()
        assert (np.diff(curve.false_positive_rate) >= 0.0).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            roc_curve(np.ones(4), np.ones(5))

    def test_degenerate_reference_rejected(self):
        with pytest.raises(AnalysisError):
            roc_curve(np.ones(10), np.ones(10))

    def test_threshold_fraction_bounds(self, spaces):
        reference, candidate = spaces
        with pytest.raises(AnalysisError):
            roc_curve(reference, candidate, reference_threshold_fraction=0.0)


class TestAuc:
    def test_unit_square_diagonal(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 1.0])
        assert auc(x, y) == pytest.approx(0.5)

    def test_step_function(self):
        x = np.array([0.0, 0.0, 1.0])
        y = np.array([0.0, 1.0, 1.0])
        assert auc(x, y) == pytest.approx(1.0)

    def test_order_independent(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(size=30)
        y = rng.uniform(size=30)
        shuffle = rng.permutation(30)
        assert auc(x, y) == pytest.approx(auc(x[shuffle], y[shuffle]))

    def test_needs_two_points(self):
        with pytest.raises(AnalysisError):
            auc(np.array([1.0]), np.array([1.0]))


class TestClassifyQuadrants:
    def test_fractions_sum_to_one(self, spaces):
        reference, candidate = spaces
        quadrants = classify_quadrants(reference, candidate)
        total = (
            quadrants.true_positive + quadrants.false_negative
            + quadrants.false_positive + quadrants.true_negative
        )
        assert total == pytest.approx(1.0)
        assert quadrants.tuples == len(reference)

    def test_identical_spaces_have_no_confusion(self):
        rng = np.random.default_rng(4)
        distances = rng.uniform(0.0, 10.0, size=200)
        quadrants = classify_quadrants(distances, distances)
        assert quadrants.false_positive == 0.0
        assert quadrants.false_negative == 0.0

    def test_known_quadrants(self):
        reference = np.array([10.0, 10.0, 1.0, 1.0])
        candidate = np.array([10.0, 1.0, 10.0, 1.0])
        quadrants = classify_quadrants(reference, candidate)
        assert quadrants.true_positive == 0.25
        assert quadrants.false_negative == 0.25
        assert quadrants.false_positive == 0.25
        assert quadrants.true_negative == 0.25

    def test_threshold_moves_boundary(self):
        reference = np.linspace(0.0, 10.0, 100)
        candidate = reference.copy()
        low = classify_quadrants(
            reference, candidate,
            reference_threshold_fraction=0.1,
            candidate_threshold_fraction=0.1,
        )
        high = classify_quadrants(
            reference, candidate,
            reference_threshold_fraction=0.5,
            candidate_threshold_fraction=0.5,
        )
        assert low.true_positive > high.true_positive

    def test_format_layout(self, spaces):
        reference, candidate = spaces
        text = classify_quadrants(reference, candidate).format()
        assert "false positive" in text
        assert "true negative" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            classify_quadrants(np.empty(0), np.empty(0))
