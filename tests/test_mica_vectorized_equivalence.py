"""Vectorized-vs-reference equivalence for the PPM and ILP engines.

The vectorized :func:`repro.mica.ppm_predictabilities` and
:func:`repro.mica.ilp_ipc` must produce *bit-identical* characteristic
values to the retained scalar reference implementations, on randomized
traces across seeds, lengths and shapes, and on hand-built edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import FP_ZERO_REG, INT_ZERO_REG, NO_REG
from repro.mica import (
    ilp_ipc,
    ilp_ipc_reference,
    ppm_predictabilities,
    ppm_predictabilities_reference,
    producer_indices,
)
from repro.mica.ilp import (
    _window_critical_paths_reference,
    window_cycle_counts,
)
from repro.mica.segmented import (
    MAX_VECTOR_ORDER,
    VARIANTS,
    _SegmentedContext,
    _segmented_ppm,
    _segmented_ppm_reference,
)
from repro.synth import (
    BranchSpec,
    RegisterSpec,
    WorkloadProfile,
    generate_trace,
)
from repro.trace import TraceBuilder


def random_branchy_trace(seed: int, length: int, pcs: int = 4):
    """Adversarial branch stream: few PCs, random outcomes, random deps.

    Few distinct PCs maximize context aliasing in the shared tables;
    random ALU dependencies (including the hardwired-zero registers)
    exercise producer resolution.
    """
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(name=f"equiv/rand/{seed}")
    pc_pool = [0x1000 + 4 * i for i in range(pcs)]
    for _ in range(length):
        kind = rng.random()
        pc = int(rng.choice(pc_pool))
        if kind < 0.45:
            builder.branch(
                pc, cond_reg=int(rng.integers(1, 8)),
                taken=bool(rng.random() < 0.6), target=0x9000,
            )
        else:
            # Sources may be absent, real, or a hardwired-zero register.
            choices = [NO_REG, INT_ZERO_REG, FP_ZERO_REG] + list(range(1, 9))
            builder.alu(
                pc,
                dst=int(rng.integers(1, 9)),
                src1=int(rng.choice(choices)),
                src2=int(rng.choice(choices)),
            )
    return builder.build()


class TestPpmEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("length", [10, 500, 4000])
    def test_randomized_traces_match(self, seed, length):
        trace = random_branchy_trace(seed, length)
        assert np.array_equal(
            ppm_predictabilities(trace),
            ppm_predictabilities_reference(trace),
        )

    @pytest.mark.parametrize("seed", [11, 12])
    def test_synthetic_profiles_match(self, seed):
        profile = WorkloadProfile(
            name=f"equiv/synth/{seed}",
            branches=BranchSpec(pattern_fraction=0.5, taken_bias=0.4),
        )
        trace = generate_trace(profile, 8_000, seed=seed)
        assert np.array_equal(
            ppm_predictabilities(trace),
            ppm_predictabilities_reference(trace),
        )

    @pytest.mark.parametrize("max_order", [1, 2, 6, 10])
    def test_orders_match(self, max_order):
        trace = random_branchy_trace(7, 2_000)
        assert np.array_equal(
            ppm_predictabilities(trace, max_order=max_order),
            ppm_predictabilities_reference(trace, max_order=max_order),
        )

    def test_no_branches(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        trace = builder.build()
        assert np.array_equal(
            ppm_predictabilities(trace), np.zeros(4)
        )
        assert np.array_equal(
            ppm_predictabilities(trace),
            ppm_predictabilities_reference(trace),
        )

    def test_single_branch(self):
        builder = TraceBuilder()
        builder.branch(0x1000, cond_reg=1, taken=True, target=0x9000)
        trace = builder.build()
        assert np.array_equal(
            ppm_predictabilities(trace),
            ppm_predictabilities_reference(trace),
        )

    def test_constant_and_alternating_streams(self):
        for pattern in ([True] * 64, [False] * 64,
                        [True, False] * 32, [True, True, False] * 21):
            builder = TraceBuilder()
            for taken in pattern:
                builder.branch(0x1000, cond_reg=1, taken=taken,
                               target=0x9000)
            trace = builder.build()
            assert np.array_equal(
                ppm_predictabilities(trace),
                ppm_predictabilities_reference(trace),
            )

    def test_many_distinct_pcs(self):
        rng = np.random.default_rng(21)
        builder = TraceBuilder()
        for i in range(1_500):
            builder.branch(0x1000 + 4 * i, cond_reg=1,
                           taken=bool(rng.random() < 0.5), target=0x9000)
        trace = builder.build()
        assert np.array_equal(
            ppm_predictabilities(trace),
            ppm_predictabilities_reference(trace),
        )


class TestIlpEquivalence:
    WINDOWS = ((32, 64, 128, 256), (1,), (3, 5, 7), (2, 2, 4))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("length", [10, 500, 4000])
    def test_randomized_traces_match(self, seed, length):
        trace = random_branchy_trace(seed, length)
        producers = producer_indices(trace)
        for windows in self.WINDOWS:
            assert np.array_equal(
                ilp_ipc(trace, windows, producers=producers),
                ilp_ipc_reference(trace, windows, producers=producers),
            )

    @pytest.mark.parametrize("seed", [31, 32])
    def test_synthetic_profiles_match(self, seed):
        profile = WorkloadProfile(
            name=f"equiv/ilp/{seed}",
            registers=RegisterSpec(dep_mean=2.0),
        )
        trace = generate_trace(profile, 8_000, seed=seed)
        assert np.array_equal(
            ilp_ipc(trace), ilp_ipc_reference(trace)
        )

    def test_window_larger_than_trace(self):
        trace = random_branchy_trace(41, 100)
        assert np.array_equal(
            ilp_ipc(trace, (512,)), ilp_ipc_reference(trace, (512,))
        )

    def test_single_window_exact_boundary(self):
        trace = random_branchy_trace(42, 256)
        for windows in ((256,), (255,), (257,)):
            assert np.array_equal(
                ilp_ipc(trace, windows),
                ilp_ipc_reference(trace, windows),
            )

    def test_hardwired_zero_sources_carry_no_dependence(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=INT_ZERO_REG)
        for i in range(64):
            builder.alu(0x1004 + 4 * i, dst=1,
                        src1=INT_ZERO_REG, src2=FP_ZERO_REG)
        trace = builder.build()
        ipc = ilp_ipc(trace, (32,))
        # No true dependencies: a full window issues each cycle.
        assert ipc[0] == pytest.approx(65 / 3)
        assert np.array_equal(ipc, ilp_ipc_reference(trace, (32,)))

    def test_serial_chain_all_windows(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        for i in range(1, 200):
            builder.alu(0x1000 + 4 * i, dst=1 + (i % 4),
                        src1=1 + ((i - 1) % 4))
        trace = builder.build()
        for windows in self.WINDOWS:
            assert np.array_equal(
                ilp_ipc(trace, windows),
                ilp_ipc_reference(trace, windows),
            )


class TestWindowCriticalPathEquivalence:
    """:func:`window_cycle_counts` (the all-window-sizes vectorized
    engine) must match the retained scalar specification
    :func:`_window_critical_paths_reference` per window size."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("length", [10, 257, 1500])
    def test_randomized_traces_match(self, seed, length):
        trace = random_branchy_trace(seed, length)
        producer1, producer2 = producer_indices(trace)
        windows = (16, 32, 64, 128)
        counts = window_cycle_counts(producer1, producer2, windows)
        for window, total in zip(windows, counts):
            assert total == _window_critical_paths_reference(
                producer1, producer2, window
            )

    def test_window_larger_than_trace(self):
        trace = random_branchy_trace(7, 50)
        producer1, producer2 = producer_indices(trace)
        assert window_cycle_counts(producer1, producer2, (512,))[0] == (
            _window_critical_paths_reference(producer1, producer2, 512)
        )


class TestSegmentedPpmReferenceEquivalence:
    """The packed per-interval PPM engine must be bit-identical to the
    retained per-chunk fallback :func:`_segmented_ppm_reference`."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_vectorized_matches_reference(self, seed):
        trace = random_branchy_trace(seed, 1200, pcs=6)
        interval, count = 300, 4
        wanted = np.ones(len(VARIANTS), dtype=bool)
        engine = _segmented_ppm(
            _SegmentedContext(trace, interval, count), 3, wanted
        )
        reference = _segmented_ppm_reference(
            _SegmentedContext(trace, interval, count), 3
        )
        assert np.array_equal(engine, reference)

    def test_overwide_order_falls_back_to_reference(self):
        trace = random_branchy_trace(3, 600, pcs=4)
        interval, count = 200, 3
        wanted = np.ones(len(VARIANTS), dtype=bool)
        over = MAX_VECTOR_ORDER + 1
        engine = _segmented_ppm(
            _SegmentedContext(trace, interval, count), over, wanted
        )
        reference = _segmented_ppm_reference(
            _SegmentedContext(trace, interval, count), over
        )
        assert np.array_equal(engine, reference)
