"""Segmented-engine-vs-chunked-reference equivalence for the phase layer.

The segmented interval-characterization engine
(:func:`repro.mica.segmented_characterize` and the
:func:`repro.phases.mica_timeline` built on it) must produce
*bit-identical* values to characterizing every chunk separately — the
retained :func:`repro.phases.mica_timeline_reference` per-chunk loop —
on the real registry population, randomized traces, hand-built edge
cases, per-key partial requests, and odd interval/window geometries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.mica import (
    characterize,
    characteristic_names,
    producer_indices,
    segmented_characterize,
    segmented_producer_indices,
)
from repro.mica.ilp import NO_PRODUCER
from repro.phases import (
    DEFAULT_TIMELINE_KEYS,
    detect_phases,
    interval_mica_vectors,
    mica_timeline,
    mica_timeline_reference,
)
from repro.synth import WorkloadProfile, generate_trace
from repro.trace import TraceBuilder
from test_mica_vectorized_equivalence import random_branchy_trace

CONFIG = ReproConfig(trace_length=5_000)


def chunk_rows(trace, interval, config=CONFIG):
    """Per-chunk characterize rows — the ground truth."""
    count = len(trace) // interval
    return np.vstack([
        characterize(trace[i * interval : (i + 1) * interval], config).values
        for i in range(count)
    ])


def assert_segmented_matches(trace, interval, config=CONFIG):
    segmented = segmented_characterize(trace, interval, config)
    assert np.array_equal(segmented, chunk_rows(trace, interval, config))


class TestSegmentedProducerIndices:
    @pytest.mark.parametrize("interval", [1, 7, 333, 1000])
    def test_matches_per_chunk_producers(self, interval):
        trace = random_branchy_trace(1, 2_000)
        count = len(trace) // interval
        producer1, producer2 = segmented_producer_indices(trace, interval)
        for index in range(count):
            chunk = trace[index * interval : (index + 1) * interval]
            chunk1, chunk2 = producer_indices(chunk)
            base = index * interval
            for segmented, chunked in (
                (producer1, chunk1), (producer2, chunk2)
            ):
                rebased = np.where(
                    chunked != NO_PRODUCER, chunked + base, NO_PRODUCER
                )
                window = segmented[base : base + interval]
                assert np.array_equal(window, rebased)

    def test_same_register_in_both_slots(self):
        builder = TraceBuilder(name="dup-read")
        for index in range(400):
            register = 1 + (index + 1) % 3
            builder.alu(0x1000 + 4 * (index % 8), dst=1 + index % 3,
                        src1=register, src2=register)
        assert_segmented_matches(builder.build(), 100)


class TestSegmentedCharacterize:
    def test_population_bit_identical(self, small_population):
        for benchmark in small_population:
            trace = generate_trace(benchmark.profile, 4_000)
            assert_segmented_matches(trace, 500)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("interval", [1, 7, 250, 1000, 1499])
    def test_randomized_traces(self, seed, interval):
        assert_segmented_matches(random_branchy_trace(seed, 3_000), interval)

    def test_interval_not_dividing_windows(self):
        """Interval sizes that leave trailing short ILP windows."""
        trace = random_branchy_trace(5, 2_500)
        config = ReproConfig(
            trace_length=5_000, ilp_window_sizes=(1, 3, 300, 7),
            ppm_max_order=2,
        )
        for interval in (9, 50, 299, 1250):
            segmented = segmented_characterize(trace, interval, config)
            assert np.array_equal(
                segmented, chunk_rows(trace, interval, config)
            )

    def test_branchless_memoryless_trace(self):
        builder = TraceBuilder(name="alu-only")
        for index in range(1_200):
            builder.alu(0x1000 + 4 * (index % 16), dst=1 + index % 4,
                        src1=1 + (index + 1) % 4)
        assert_segmented_matches(builder.build(), 100)

    def test_deep_ppm_order_fallback(self):
        """Orders beyond the packed-key ceiling use the per-chunk path."""
        trace = random_branchy_trace(9, 600)
        config = ReproConfig(trace_length=5_000, ppm_max_order=25)
        segmented = segmented_characterize(trace, 150, config)
        assert np.array_equal(segmented, chunk_rows(trace, 150, config))

    def test_every_single_key_partial_request(self):
        """Per-key requests match the full rows on their column and
        skip everything else (NaN or exact sibling values)."""
        trace = random_branchy_trace(3, 2_000)
        rows = chunk_rows(trace, 500)
        for index, key in enumerate(characteristic_names()):
            segmented = segmented_characterize(
                trace, 500, CONFIG, indices=[index]
            )
            assert np.array_equal(segmented[:, index], rows[:, index]), key

    def test_partial_categories_leave_nan(self):
        trace = random_branchy_trace(4, 1_000)
        segmented = segmented_characterize(
            trace, 250, CONFIG, categories=("instruction mix",)
        )
        assert np.isfinite(segmented[:, :6]).all()
        assert np.isnan(segmented[:, 6:]).all()


class TestTimelineEquivalence:
    def test_default_keys_bit_identical(self, small_population):
        for benchmark in small_population:
            trace = generate_trace(benchmark.profile, 4_000)
            engine = mica_timeline(trace, 500, config=CONFIG)
            reference = mica_timeline_reference(trace, 500, config=CONFIG)
            assert np.array_equal(engine.values, reference.values)
            assert engine.keys == reference.keys

    @pytest.mark.parametrize("keys", [
        ("mix_loads",),
        ("ilp_w64",),
        ("ppm_PAs",),
        ("stride_global_store_le512", "ws_instr_pages"),
        DEFAULT_TIMELINE_KEYS,
    ])
    def test_key_subsets_bit_identical(self, keys):
        trace = random_branchy_trace(7, 2_000)
        engine = mica_timeline(trace, 250, keys=keys, config=CONFIG)
        reference = mica_timeline_reference(
            trace, 250, keys=keys, config=CONFIG
        )
        assert np.array_equal(engine.values, reference.values)

    def test_detect_phases_mica_signatures_match_chunks(self):
        trace = random_branchy_trace(8, 2_000)
        result = detect_phases(
            trace, interval=500, signature="mica", config=CONFIG
        )
        assert np.array_equal(result.signatures, chunk_rows(trace, 500))

    def test_interval_mica_vectors_match_chunks(self, small_trace):
        vectors = interval_mica_vectors(small_trace, 1_000, CONFIG)
        assert np.array_equal(vectors, chunk_rows(small_trace, 1_000))


class TestSyntheticProfiles:
    @pytest.mark.parametrize("seed", [21, 22])
    def test_generated_traces(self, seed):
        profile = WorkloadProfile(name=f"segeq/synth/{seed}")
        trace = generate_trace(profile, 6_000, seed=seed)
        assert_segmented_matches(trace, 1_000)
        assert_segmented_matches(trace, 999)
