"""Meta tests: public-API shape and documentation coverage.

Every public item (exported through a package's ``__all__``) must carry
a docstring, and every ``__all__`` entry must resolve — guarding the
"doc comments on every public item" deliverable mechanically.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.trace",
    "repro.synth",
    "repro.workloads",
    "repro.mica",
    "repro.uarch",
    "repro.analysis",
    "repro.experiments",
    "repro.phases",
    "repro.reporting",
    "repro.lint",
    "repro.lint.rules",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPublicApi:
    def test_module_docstring(self, package_name):
        module = importlib.import_module(package_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_all_entries_resolve(self, package_name):
        module = importlib.import_module(package_name)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{package_name}.{name} missing"

    def test_public_items_documented(self, package_name):
        module = importlib.import_module(package_name)
        exported = getattr(module, "__all__", [])
        undocumented = []
        for name in exported:
            item = getattr(module, name)
            if inspect.isfunction(item) or inspect.isclass(item):
                if not (item.__doc__ and item.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, (
            f"{package_name}: missing docstrings on {undocumented}"
        )

    def test_public_classes_document_public_methods(self, package_name):
        module = importlib.import_module(package_name)
        exported = getattr(module, "__all__", [])
        undocumented = []
        for name in exported:
            item = getattr(module, name)
            if not inspect.isclass(item):
                continue
            for method_name, method in inspect.getmembers(
                item, inspect.isfunction
            ):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != item.__name__:
                    continue  # Inherited (e.g. from dataclasses).
                if method.__doc__ and method.__doc__.strip():
                    continue
                # An override of a documented base method inherits its
                # contract (and its documentation).
                base_documented = any(
                    getattr(base, method_name, None) is not None
                    and getattr(base, method_name).__doc__
                    for base in item.__mro__[1:]
                )
                if not base_documented:
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, (
            f"{package_name}: missing method docstrings on {undocumented}"
        )


class TestVersioning:
    def test_version_exposed(self):
        import repro

        assert repro.__version__


class TestGzipTraces:
    def test_gz_round_trip(self, tmp_path, small_trace):
        import numpy as np

        from repro.trace import read_trace, write_trace

        plain = tmp_path / "t.mtf"
        compressed = tmp_path / "t.mtf.gz"
        write_trace(small_trace, plain)
        write_trace(small_trace, compressed)
        assert np.array_equal(
            read_trace(compressed).data, small_trace.data
        )
        assert compressed.stat().st_size < plain.stat().st_size
