"""Tests for normalization, distances, correlation and PCA."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import (
    PCA,
    condensed_index,
    correlation_matrix,
    distance_matrix,
    max_normalize,
    pairwise_distances,
    pearson,
    zscore,
)


@pytest.fixture()
def random_matrix():
    return np.random.default_rng(0).normal(size=(20, 6))


class TestNormalize:
    def test_zscore_moments(self, random_matrix):
        z = zscore(random_matrix)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(z.std(axis=0), 1.0)

    def test_zscore_constant_column(self):
        data = np.ones((5, 2))
        data[:, 1] = [1, 2, 3, 4, 5]
        z = zscore(data)
        assert (z[:, 0] == 0.0).all()

    def test_zscore_needs_two_rows(self):
        with pytest.raises(AnalysisError):
            zscore(np.ones((1, 3)))

    def test_zscore_rejects_1d(self):
        with pytest.raises(AnalysisError):
            zscore(np.ones(5))

    def test_max_normalize_bounds(self, random_matrix):
        normalized = max_normalize(np.abs(random_matrix))
        assert normalized.max() <= 1.0 + 1e-12
        assert np.allclose(np.abs(normalized).max(axis=0), 1.0)

    def test_max_normalize_zero_column(self):
        data = np.zeros((4, 2))
        data[:, 1] = [1, 2, 3, 4]
        normalized = max_normalize(data)
        assert (normalized[:, 0] == 0.0).all()


class TestDistance:
    def test_condensed_length(self, random_matrix):
        distances = pairwise_distances(random_matrix)
        n = len(random_matrix)
        assert len(distances) == n * (n - 1) // 2

    def test_known_distances(self):
        data = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 0.0]])
        distances = pairwise_distances(data)
        assert distances[0] == pytest.approx(5.0)   # (0,1)
        assert distances[1] == pytest.approx(0.0)   # (0,2)
        assert distances[2] == pytest.approx(5.0)   # (1,2)

    def test_distance_matrix_round_trip(self, random_matrix):
        condensed = pairwise_distances(random_matrix)
        square = distance_matrix(condensed)
        assert square.shape == (20, 20)
        assert np.allclose(square, square.T)
        assert np.allclose(np.diag(square), 0.0)

    def test_condensed_index_consistency(self, random_matrix):
        condensed = pairwise_distances(random_matrix)
        square = distance_matrix(condensed)
        n = len(random_matrix)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                index = condensed_index(i, j, n)
                assert condensed[index] == pytest.approx(square[i, j])

    def test_condensed_index_rejects_self_pair(self):
        with pytest.raises(AnalysisError):
            condensed_index(2, 2, 5)

    def test_condensed_index_rejects_out_of_range(self):
        with pytest.raises(AnalysisError):
            condensed_index(0, 9, 5)

    def test_empty_columns_rejected(self):
        with pytest.raises(AnalysisError):
            pairwise_distances(np.empty((5, 0)))


class TestCorrelation:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_vector_returns_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            pearson(np.ones(4), np.ones(5))

    def test_matrix_diagonal_is_one(self, random_matrix):
        matrix = correlation_matrix(random_matrix)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_matrix_matches_pairwise_pearson(self, random_matrix):
        matrix = correlation_matrix(random_matrix)
        assert matrix[0, 1] == pytest.approx(
            pearson(random_matrix[:, 0], random_matrix[:, 1])
        )

    def test_matrix_symmetric_bounded(self, random_matrix):
        matrix = correlation_matrix(random_matrix)
        assert np.allclose(matrix, matrix.T)
        assert (np.abs(matrix) <= 1.0 + 1e-9).all()

    def test_duplicated_column_fully_correlated(self):
        rng = np.random.default_rng(1)
        column = rng.normal(size=12)
        data = np.column_stack([column, column, rng.normal(size=12)])
        matrix = correlation_matrix(data)
        assert matrix[0, 1] == pytest.approx(1.0)


class TestPCA:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(2)
        direction = np.array([3.0, 1.0]) / np.sqrt(10.0)
        data = np.outer(rng.normal(size=300), direction)
        data += rng.normal(scale=0.01, size=data.shape)
        pca = PCA().fit(data)
        leading = pca.components[0]
        assert abs(np.dot(leading, direction)) == pytest.approx(1.0, abs=1e-3)

    def test_explained_variance_descending(self):
        rng = np.random.default_rng(3)
        pca = PCA().fit(rng.normal(size=(50, 8)))
        assert (np.diff(pca.explained_variance) <= 1e-9).all()
        assert pca.explained_variance_ratio.sum() == pytest.approx(1.0)

    def test_transform_shape(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(30, 10))
        reduced = PCA(n_components=3).fit_transform(data)
        assert reduced.shape == (30, 3)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(AnalysisError):
            PCA().transform(np.ones((3, 3)))

    def test_components_for_variance(self):
        rng = np.random.default_rng(5)
        # One dominant direction: one component should reach 90%.
        data = np.outer(rng.normal(size=100), np.ones(5))
        data += rng.normal(scale=0.01, size=data.shape)
        pca = PCA().fit(data)
        assert pca.components_for_variance(0.9) == 1

    def test_components_for_variance_bounds(self):
        pca = PCA().fit(np.random.default_rng(6).normal(size=(10, 3)))
        with pytest.raises(AnalysisError):
            pca.components_for_variance(0.0)

    def test_distances_preserved_with_all_components(self):
        rng = np.random.default_rng(7)
        data = rng.normal(size=(15, 4))
        projected = PCA().fit_transform(data)
        assert np.allclose(
            pairwise_distances(data), pairwise_distances(projected)
        )
