"""Tests for the repro.isa package."""

import numpy as np
import pytest

from repro.isa import (
    InstructionRecord,
    NO_REG,
    OpClass,
    TRACE_DTYPE,
    is_valid_register,
    is_zero_register,
    record_from_row,
    register_name,
)
from repro.isa.registers import (
    FP_ZERO_REG,
    INT_ZERO_REG,
    NUM_INT_REGS,
    TOTAL_REGS,
)


class TestOpClass:
    def test_values_are_stable(self):
        # On-disk format depends on these; never renumber.
        assert int(OpClass.LOAD) == 0
        assert int(OpClass.STORE) == 1
        assert int(OpClass.BRANCH) == 2
        assert int(OpClass.INT_ALU) == 3
        assert int(OpClass.INT_MUL) == 4
        assert int(OpClass.FP) == 5
        assert int(OpClass.NOP) == 6

    def test_memory_property(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.BRANCH.is_memory
        assert not OpClass.INT_ALU.is_memory

    def test_control_property(self):
        assert OpClass.BRANCH.is_control
        assert not OpClass.LOAD.is_control

    def test_compute_property(self):
        for op in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP):
            assert op.is_compute
        for op in (OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.NOP):
            assert not op.is_compute

    def test_short_name_round_trip(self):
        for op in OpClass:
            assert OpClass.from_short_name(op.short_name) is op

    def test_unknown_short_name_raises(self):
        with pytest.raises(KeyError):
            OpClass.from_short_name("xyz")


class TestRegisters:
    def test_counts(self):
        assert TOTAL_REGS == 64
        assert NUM_INT_REGS == 32

    def test_zero_registers(self):
        assert is_zero_register(INT_ZERO_REG)
        assert is_zero_register(FP_ZERO_REG)
        assert not is_zero_register(0)
        assert not is_zero_register(30)

    def test_register_names(self):
        assert register_name(0) == "$0"
        assert register_name(31) == "$31"
        assert register_name(32) == "$f0"
        assert register_name(63) == "$f31"
        assert register_name(NO_REG) == "-"

    def test_register_name_rejects_invalid(self):
        with pytest.raises(ValueError):
            register_name(64)

    def test_validity(self):
        assert is_valid_register(0)
        assert is_valid_register(63)
        assert is_valid_register(NO_REG)
        assert not is_valid_register(64)
        assert not is_valid_register(-1)


class TestInstructionRecord:
    def test_load_record(self):
        record = InstructionRecord(
            pc=0x1000, opclass=OpClass.LOAD, src1=2, dst=3, mem_addr=0x2000
        )
        assert record.source_registers == (2,)
        assert record.has_destination

    def test_memory_requires_address(self):
        with pytest.raises(ValueError):
            InstructionRecord(pc=0x1000, opclass=OpClass.LOAD, dst=1)

    def test_non_memory_rejects_address(self):
        with pytest.raises(ValueError):
            InstructionRecord(
                pc=0x1000, opclass=OpClass.INT_ALU, dst=1, mem_addr=0x2000
            )

    def test_only_branches_taken(self):
        with pytest.raises(ValueError):
            InstructionRecord(pc=0x1000, opclass=OpClass.INT_ALU, taken=True)

    def test_invalid_register_rejected(self):
        with pytest.raises(ValueError):
            InstructionRecord(pc=0x1000, opclass=OpClass.INT_ALU, dst=100)

    def test_row_round_trip(self):
        record = InstructionRecord(
            pc=0x4000,
            opclass=OpClass.BRANCH,
            src1=5,
            taken=True,
            target=0x5000,
        )
        row = np.array([record.to_row()], dtype=TRACE_DTYPE)[0]
        assert record_from_row(row) == record

    def test_str_contains_fields(self):
        record = InstructionRecord(
            pc=0x1000, opclass=OpClass.LOAD, src1=2, dst=3, mem_addr=0x2000
        )
        text = str(record)
        assert "ld" in text
        assert "$3" in text
        assert "0x2000" in text

    def test_two_source_registers(self):
        record = InstructionRecord(
            pc=0x1000, opclass=OpClass.INT_ALU, src1=1, src2=2, dst=3
        )
        assert record.source_registers == (1, 2)


class TestTraceDtype:
    def test_field_order(self):
        assert TRACE_DTYPE.names == (
            "pc", "opclass", "src1", "src2", "dst",
            "mem_addr", "taken", "target",
        )

    def test_itemsize_is_compact(self):
        # 8 + 1 + 1 + 1 + 1 + 8 + 1 + 8 = 29 bytes unaligned.
        assert TRACE_DTYPE.itemsize == 29
