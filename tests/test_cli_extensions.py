"""Tests for the extension CLI commands.

These commands build a full dataset, which is expensive; the tests
point the cache at a temp directory and use a tiny trace length so the
122-benchmark build stays fast, then share it across commands.
"""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def cache_env(tmp_path_factory):
    import os

    cache_dir = tmp_path_factory.mktemp("cli-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield cache_dir
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


ARGS = ["--trace-length", "2000"]


class TestParserExtensions:
    def test_export_requires_space(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export"])

    def test_export_space_choices(self):
        args = build_parser().parse_args(["export", "mica"])
        assert args.space == "mica"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "nonsense"])

    def test_dendro_method_choices(self):
        args = build_parser().parse_args(["dendro", "--method", "average"])
        assert args.method == "average"

    def test_new_commands_parse(self):
        for command in ("subset", "sensitivity"):
            assert build_parser().parse_args([command]).command == command


@pytest.mark.slow
class TestExtensionCommands:
    def test_export_csv(self, cache_env, capsys):
        assert main(ARGS + ["export", "mica"]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("benchmark,")
        assert len(out.splitlines()) == 123  # Header + 122 rows.

    def test_export_json(self, cache_env, capsys):
        assert main(ARGS + ["export", "hpc", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["benchmarks"]) == 122
        assert payload["metadata"]["space"] == "hpc"

    def test_sensitivity(self, cache_env, capsys):
        assert main(ARGS + ["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "separation" in out
        assert "bzip2" in out

    def test_subset(self, cache_env, capsys):
        assert main(ARGS + ["subset"]) == 0
        out = capsys.readouterr().out
        assert "representative subset" in out

    def test_dendro(self, cache_env, capsys):
        assert main(ARGS + ["dendro"]) == 0
        out = capsys.readouterr().out
        assert "spec2000/mcf/ref" in out
