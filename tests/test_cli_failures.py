"""CLI failure semantics: every failure path exits nonzero with a
one-line ``error:`` message on stderr — never a traceback.

Satellites covered here: the documented exit codes for
``repro dataset --keep-going`` on partial failure, ``repro cache
verify`` on a corrupted directory and unknown-benchmark lookups; plus
the ``--max-attempts`` / ``--retry-backoff`` retry-policy flags on
``repro dataset`` and the ``repro serve`` parser surface.
"""

from __future__ import annotations

import argparse

import pytest

from repro.cli import (
    _dataset_kwargs,
    _serve_settings,
    build_parser,
    main,
)
from repro.config import ReproConfig
from repro.experiments import build_dataset
from repro.experiments.dataset import _MEMORY_CACHE
from repro.perf import faults
from repro.workloads import get_benchmark

SMALL_POPULATION = ["spec2000/mcf/ref", "mibench/adpcm/rawcaudio"]


@pytest.fixture(autouse=True)
def _clean_memory_cache():
    _MEMORY_CACHE.clear()
    yield
    _MEMORY_CACHE.clear()


@pytest.fixture()
def small_registry(monkeypatch):
    """Shrink the dataset population so CLI builds stay fast."""
    population = [get_benchmark(name) for name in SMALL_POPULATION]
    monkeypatch.setattr(
        "repro.experiments.dataset.all_benchmarks", lambda: population
    )
    return population


def _dataset_argv(tmp_path, *extra):
    return [
        "--trace-length", "2000",
        "--cache-dir", str(tmp_path / "cache"),
        "--jobs", "1",
        "dataset", *extra,
    ]


class TestDatasetExitCodes:

    def test_clean_build_exits_zero(
        self, small_registry, tmp_path, capsys
    ):
        assert main(_dataset_argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "dataset ready: 2 benchmarks" in out

    def test_keep_going_partial_failure_exits_one(
        self, small_registry, tmp_path, capsys
    ):
        plan = [faults.WorkerFault(
            SMALL_POPULATION[0], mode="error", times=10
        )]
        with faults.inject_worker_faults(plan, tmp_path / "state"):
            code = main(_dataset_argv(
                tmp_path, "--keep-going",
                "--max-attempts", "1", "--retry-backoff", "0",
            ))
        assert code == 1
        captured = capsys.readouterr()
        error_lines = [
            line for line in captured.err.splitlines()
            if line.startswith("error:")
        ]
        assert error_lines == [
            "error: 1 benchmark(s) failed to build: "
            f"{SMALL_POPULATION[0]}"
        ]
        assert "Traceback" not in captured.err
        assert "Traceback" not in captured.out
        # The salvage still produced the surviving benchmark.
        assert "dataset ready: 1 benchmarks" in captured.out

    def test_strict_failure_exits_one_without_traceback(
        self, small_registry, tmp_path, capsys
    ):
        plan = [faults.WorkerFault(
            SMALL_POPULATION[0], mode="error", times=10
        )]
        with faults.inject_worker_faults(plan, tmp_path / "state"):
            code = main(_dataset_argv(
                tmp_path, "--max-attempts", "1", "--retry-backoff", "0",
            ))
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestCacheVerifyExitCodes:

    def test_clean_directory_exits_zero(
        self, small_registry, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        build_dataset(
            ReproConfig(trace_length=2_000), small_registry,
            cache_dir=cache_dir, jobs=1,
        )
        code = main(["--cache-dir", str(cache_dir), "cache", "verify"])
        assert code == 0
        assert "error:" not in capsys.readouterr().err

    def test_corrupted_directory_exits_one(
        self, small_registry, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        build_dataset(
            ReproConfig(trace_length=2_000), small_registry,
            cache_dir=cache_dir, jobs=1,
        )
        victim = sorted(cache_dir.glob("char-*.npz"))[0]
        faults.corrupt_entry(victim, "bitflip", seed=3)
        code = main(["--cache-dir", str(cache_dir), "cache", "verify"])
        assert code == 1
        captured = capsys.readouterr()
        error_lines = [
            line for line in captured.err.splitlines()
            if line.startswith("error:")
        ]
        assert error_lines == [
            "error: 1 cache entry failed verification and were "
            "quarantined"
        ]
        assert "Traceback" not in captured.err

    def test_unknown_benchmark_exits_one(self, capsys):
        code = main(["--trace-length", "2000", "hpc", "nonesuch"])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestRetryPolicyFlags:
    """Satellite: ``--max-attempts`` / ``--retry-backoff`` reach
    :func:`~repro.experiments.build_dataset`."""

    def test_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["dataset"])
        assert args.max_attempts is None
        assert args.retry_backoff is None

    def test_defaults_leave_build_dataset_defaults_alone(self):
        args = build_parser().parse_args(["dataset"])
        kwargs = _dataset_kwargs(args)
        assert "max_attempts" not in kwargs
        assert "retry_backoff" not in kwargs

    def test_flags_thread_through_dataset_kwargs(self, tmp_path):
        args = build_parser().parse_args([
            "--cache-dir", str(tmp_path), "--jobs", "2",
            "dataset", "--max-attempts", "5", "--retry-backoff", "0.5",
        ])
        kwargs = _dataset_kwargs(args)
        assert kwargs["max_attempts"] == 5
        assert kwargs["retry_backoff"] == 0.5
        assert kwargs["jobs"] == 2

    def test_zero_backoff_is_threaded_not_dropped(self):
        args = build_parser().parse_args(
            ["dataset", "--retry-backoff", "0"]
        )
        assert _dataset_kwargs(args)["retry_backoff"] == 0.0

    def test_explicit_max_attempts_zero_is_an_error_not_the_default(
        self, capsys
    ):
        # '--max-attempts 0' used to be swallowed by a truthiness
        # check and silently fall back to 3; it must be rejected.
        code = main(["dataset", "--max-attempts", "0"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: --max-attempts must be >= 1")
        assert "Traceback" not in err

    def test_build_receives_the_flags(
        self, small_registry, tmp_path, monkeypatch
    ):
        seen = {}

        def spy(config, progress, strict, **kwargs):
            seen.update(kwargs)
            raise SystemExit(0)

        monkeypatch.setattr("repro.experiments.build_dataset", spy)
        with pytest.raises(SystemExit):
            main(_dataset_argv(
                tmp_path, "--max-attempts", "7",
                "--retry-backoff", "0.25",
            ))
        assert seen["max_attempts"] == 7
        assert seen["retry_backoff"] == 0.25


class TestServeParser:

    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert isinstance(args, argparse.Namespace)
        assert args.host == "127.0.0.1"
        assert args.port == 8177
        assert args.queue_capacity == 64
        assert args.service_workers == 2
        assert args.deadline_ms == 30_000.0
        assert args.max_attempts == 3
        assert args.retry_backoff == 0.05
        assert args.breaker_threshold == 5
        assert args.breaker_recovery == 5.0
        assert args.drain_timeout == 10.0

    def test_overrides_parse(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--queue-capacity", "4",
            "--service-workers", "1", "--deadline-ms", "500",
            "--breaker-threshold", "2",
        ])
        assert args.port == 0
        assert args.queue_capacity == 4
        assert args.service_workers == 1
        assert args.deadline_ms == 500.0
        assert args.breaker_threshold == 2

    def test_default_deadline_keeps_the_default_ceiling(self):
        from repro.service import ServiceSettings

        args = build_parser().parse_args(["serve"])
        settings = _serve_settings(args)
        assert settings.default_deadline == 30.0
        assert settings.max_deadline == ServiceSettings.max_deadline

    def test_large_deadline_flag_is_not_silently_clamped(self):
        # --deadline-ms beyond the 300 s ceiling must raise the
        # ceiling with it, not contradict the flag.
        args = build_parser().parse_args(
            ["serve", "--deadline-ms", "600000"]
        )
        settings = _serve_settings(args)
        assert settings.default_deadline == 600.0
        assert settings.max_deadline >= 600.0

    def test_nonpositive_serve_knobs_are_rejected(self, capsys):
        for argv in (
            ["serve", "--deadline-ms", "0"],
            ["serve", "--max-attempts", "0"],
        ):
            code = main(argv)
            assert code == 1
            err = capsys.readouterr().err
            assert err.startswith("error:")
            assert "Traceback" not in err


class TestShardFlagExitCodes:
    """Satellite: the sharded characterization CLI surface fails
    loudly — conflicting or nonsensical geometry flags exit 1 with a
    one-line ``error:``, and ``repro cache verify`` covers the shard
    cache level."""

    def test_shards_and_shard_size_conflict(self, capsys):
        code = main([
            "--trace-length", "2000", "characterize", "mcf",
            "--shards", "2", "--shard-size", "100",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith(
            "error: give at most one of --shards and --shard-size"
        )
        assert "Traceback" not in err

    def test_negative_shards_exits_one(self, capsys):
        code = main([
            "--trace-length", "2000", "characterize", "mcf",
            "--shards", "-1",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "shards must be" in err
        assert "Traceback" not in err

    def test_negative_shard_size_exits_one(self, capsys):
        code = main([
            "--trace-length", "2000", "characterize", "mcf",
            "--shard-size", "-5",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "shard_size must be" in err

    def test_sharded_report_matches_one_shot_report(self, capsys):
        assert main([
            "--trace-length", "2000", "characterize", "mcf",
        ]) == 0
        one_shot = capsys.readouterr().out
        assert main([
            "--trace-length", "2000", "characterize", "mcf",
            "--shards", "4",
        ]) == 0
        assert capsys.readouterr().out == one_shot

    def test_dataset_negative_shards_is_rejected(self):
        args = build_parser().parse_args(["dataset", "--shards", "-2"])
        with pytest.raises(Exception, match="--shards must be >= 1"):
            _dataset_kwargs(args)

    def test_dataset_shards_thread_through_kwargs(self):
        args = build_parser().parse_args(["dataset", "--shards", "3"])
        assert _dataset_kwargs(args)["shards"] == 3
        args = build_parser().parse_args(["dataset"])
        assert "shards" not in _dataset_kwargs(args)

    def test_corrupted_shard_entry_exits_one(self, tmp_path, capsys):
        from repro.config import ReproConfig as _Config
        from repro.perf import sharded_characterize
        from repro.synth import generate_trace
        from repro.workloads import get_benchmark as _get

        trace = generate_trace(_get(SMALL_POPULATION[0]).profile, 2_000)
        cache_dir = tmp_path / "cache"
        sharded_characterize(
            trace, _Config(trace_length=2_000), shards=3,
            cache_dir=cache_dir,
        )
        victim = sorted(cache_dir.glob("shard-*.npz"))[0]
        faults.corrupt_entry(victim, "bitflip", seed=7)
        code = main(["--cache-dir", str(cache_dir), "cache", "verify"])
        assert code == 1
        captured = capsys.readouterr()
        assert "3 shard" in captured.out  # per-level scan count
        assert captured.err.splitlines() == [
            "error: 1 cache entry failed verification and were "
            "quarantined"
        ]
        assert "Traceback" not in captured.err

    def test_clean_shard_entries_verify_green(self, tmp_path, capsys):
        from repro.config import ReproConfig as _Config
        from repro.perf import sharded_characterize
        from repro.synth import generate_trace
        from repro.workloads import get_benchmark as _get

        trace = generate_trace(_get(SMALL_POPULATION[1]).profile, 2_000)
        cache_dir = tmp_path / "cache"
        sharded_characterize(
            trace, _Config(trace_length=2_000), shards=4,
            cache_dir=cache_dir,
        )
        code = main(["--cache-dir", str(cache_dir), "cache", "verify"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 shard" in out
        assert "0 quarantined" in out


class TestLintCommand:
    """``repro lint`` exit-code and ``--format json`` semantics."""

    REPO_ROOT = str(__import__("pathlib").Path(__file__).parent.parent)

    @staticmethod
    def _violating_repo(tmp_path):
        """A miniature checkout with one determinism violation."""
        package = tmp_path / "src" / "repro" / "mica"
        package.mkdir(parents=True)
        package.joinpath("bad.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8",
        )
        return tmp_path

    def test_clean_repo_exits_zero(self, capsys):
        code = main(["lint", "--root", self.REPO_ROOT])
        assert code == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_new_finding_exits_one(self, tmp_path, capsys):
        root = self._violating_repo(tmp_path)
        code = main(["lint", "--root", str(root)])
        assert code == 1
        out = capsys.readouterr().out
        assert "determinism" in out
        assert "bad.py" in out

    def test_format_json_is_machine_readable(self, tmp_path, capsys):
        import json

        root = self._violating_repo(tmp_path)
        code = main(["lint", "--root", str(root), "--format", "json"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-lint/1"
        assert document["clean"] is False
        assert len(document["new"]) == 1
        assert document["new"][0]["rule"] == "determinism"
        assert document["new"][0]["path"].endswith("bad.py")

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        root = self._violating_repo(tmp_path)
        assert main(["lint", "--root", str(root),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        code = main(["lint", "--root", str(root)])
        assert code == 0
        assert "baselined" in capsys.readouterr().out

    def test_stale_baseline_entry_exits_one(self, tmp_path, capsys):
        import json

        root = self._violating_repo(tmp_path)
        baseline = {
            "schema": "repro-lint-baseline/1",
            "entries": [
                {
                    "rule": "determinism",
                    "path": "src/repro/mica/bad.py",
                    "message": "clock read time.time() breaks "
                    "determinism; thread an explicit timestamp in "
                    "from the caller",
                },
                {
                    "rule": "dead-code",
                    "path": "src/repro/mica/removed.py",
                    "message": "import os is never used in this "
                    "module; remove it",
                },
            ],
        }
        (root / "lint-baseline.json").write_text(json.dumps(baseline))
        code = main(["lint", "--root", str(root)])
        assert code == 1
        assert "stale" in capsys.readouterr().out

    def test_missing_explicit_baseline_exits_two(self, tmp_path, capsys):
        code = main(["lint", "--root", self.REPO_ROOT,
                     "--baseline", str(tmp_path / "absent.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_unknown_rule_explain_exits_two(self, capsys):
        code = main(["lint", "--explain", "no-such-rule"])
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_explain_prints_rationale(self, capsys):
        code = main(["lint", "--explain", "lock-discipline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lock-discipline:" in out
        assert "data race" in out

    def test_bad_root_exits_two(self, tmp_path, capsys):
        code = main(["lint", "--root", str(tmp_path / "nowhere")])
        assert code == 2
        assert "src/repro" in capsys.readouterr().err
