"""Tests for the integrity-checked cache hierarchy.

Every ``.npz`` the four cache levels write embeds a payload checksum
plus schema metadata (level, semantic version, shape/dtype).  These
tests pin the contract: any corrupted, wrong-shape, stale-version or
foreign entry reads back as a *verified miss* that quarantines the file
(never re-served, never raised, never silently served), unwritable
directories degrade to compute-without-cache with a single warning, and
``verify_cache`` / ``repro cache verify`` scan and quarantine offline.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import CacheDegradedWarning, CacheIntegrityError
from repro.mica import NUM_CHARACTERISTICS, characterize
from repro.perf import (
    CharacterizationCache,
    HpcCache,
    TraceCache,
    cached_characterize,
    cached_collect_hpc,
    cached_generate_trace,
    faults,
    integrity,
    reset_cache_degradation,
    sweep_temporaries,
    verify_cache,
)
from repro.synth import WorkloadProfile, generate_trace

SMALL_CONFIG = ReproConfig(trace_length=2_000)
PROFILE = WorkloadProfile(name="integrity/p/1")


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(PROFILE, 2_000)


def _populate_all_levels(trace, directory) -> None:
    cached_generate_trace(PROFILE, 2_000, cache_dir=directory)
    cached_characterize(trace, SMALL_CONFIG, directory)
    cached_collect_hpc(trace, cache_dir=directory)


class TestIntegrityMetadata:
    def test_entries_embed_metadata(self, tiny_trace, tmp_path):
        _populate_all_levels(tiny_trace, tmp_path)
        for prefix, level in (("char", "char"), ("hpc", "hpc"),
                              ("trace", "trace")):
            entry = next(tmp_path.glob(f"{prefix}-*.npz"))
            with np.load(entry, allow_pickle=False) as archive:
                assert integrity.METADATA_FIELD in archive.files
                metadata = json.loads(
                    str(archive[integrity.METADATA_FIELD][()])
                )
            assert metadata["level"] == level
            assert metadata["format"] == integrity.METADATA_FORMAT
            for spec in metadata["fields"].values():
                assert set(spec) == {"shape", "dtype", "sha256"}

    def test_verify_entry_passes_on_healthy_entry(
        self, tiny_trace, tmp_path
    ):
        cache = CharacterizationCache(tmp_path)
        vector = characterize(tiny_trace, SMALL_CONFIG)
        path = cache.store(tiny_trace, SMALL_CONFIG, vector.values)
        arrays = integrity.verify_entry(
            path, level="char", version=1,
            expected={"values": ((NUM_CHARACTERISTICS,), np.float64)},
        )
        assert np.array_equal(arrays["values"], vector.values)

    def test_legacy_entry_without_metadata_is_verified_miss(
        self, tiny_trace, tmp_path
    ):
        cache = CharacterizationCache(tmp_path)
        vector = characterize(tiny_trace, SMALL_CONFIG)
        path = cache.store(tiny_trace, SMALL_CONFIG, vector.values)
        np.savez(path, values=vector.values)  # pre-integrity format
        assert cache.load(tiny_trace, SMALL_CONFIG) is None
        assert not path.exists()
        assert path.with_name(
            path.name + integrity.QUARANTINE_SUFFIX
        ).exists()


class TestCorruptionModesQuarantine:
    """Every corruption mode reads as a verified miss and quarantines."""

    @pytest.mark.parametrize("mode", faults.CORRUPTION_MODES)
    def test_char_entry(self, tiny_trace, tmp_path, mode):
        cache = CharacterizationCache(tmp_path)
        vector = characterize(tiny_trace, SMALL_CONFIG)
        path = cache.store(tiny_trace, SMALL_CONFIG, vector.values)
        faults.corrupt_entry(path, mode, seed=7)
        assert cache.load(tiny_trace, SMALL_CONFIG) is None
        assert not path.exists(), "bad entry must be moved aside"
        quarantined = path.with_name(
            path.name + integrity.QUARANTINE_SUFFIX
        )
        assert quarantined.exists()
        # Never re-served: a second load is still a plain miss.
        assert cache.load(tiny_trace, SMALL_CONFIG) is None

    @pytest.mark.parametrize("mode", faults.CORRUPTION_MODES)
    def test_trace_entry(self, tmp_path, mode):
        cache = TraceCache(tmp_path)
        cached_generate_trace(PROFILE, 2_000, cache_dir=tmp_path)
        path = next(tmp_path.glob("trace-*.npz"))
        faults.corrupt_entry(path, mode, seed=3)
        assert cache.load(PROFILE, 2_000) is None
        assert not path.exists()

    @pytest.mark.parametrize("mode", faults.CORRUPTION_MODES)
    def test_hpc_entry(self, tiny_trace, tmp_path, mode):
        cache = HpcCache(tmp_path)
        cached_collect_hpc(tiny_trace, cache_dir=tmp_path)
        path = next(tmp_path.glob("hpc-*.npz"))
        faults.corrupt_entry(path, mode, seed=5)
        assert cache.load(tiny_trace) is None
        assert not path.exists()

    def test_recompute_after_quarantine_restores_entry(
        self, tiny_trace, tmp_path
    ):
        cold = cached_characterize(tiny_trace, SMALL_CONFIG, tmp_path)
        path = next(tmp_path.glob("char-*.npz"))
        faults.corrupt_entry(path, "bitflip", seed=0)
        recomputed = cached_characterize(tiny_trace, SMALL_CONFIG, tmp_path)
        assert np.array_equal(recomputed.values, cold.values)
        assert CharacterizationCache(tmp_path).load(
            tiny_trace, SMALL_CONFIG
        ) is not None

    def test_corruption_is_seeded_deterministic(self, tiny_trace, tmp_path):
        vector = characterize(tiny_trace, SMALL_CONFIG)
        cache = CharacterizationCache(tmp_path)
        digests = []
        for attempt in ("one", "two"):
            path = cache.store(tiny_trace, SMALL_CONFIG, vector.values)
            faults.corrupt_entry(path, "bitflip", seed=42)
            with np.load(path, allow_pickle=False) as archive:
                digests.append(archive["values"].tobytes())
            path.unlink()
        assert digests[0] == digests[1]


class TestShapeDtypeValidation:
    """Wrong-shape entries must never flow into ``np.vstack``."""

    def test_char_rejects_wrong_shape(self, tiny_trace, tmp_path):
        cache = CharacterizationCache(tmp_path)
        cache.store(
            tiny_trace, SMALL_CONFIG,
            np.zeros(NUM_CHARACTERISTICS + 1),
        )
        assert cache.load(tiny_trace, SMALL_CONFIG) is None

    def test_char_rejects_wrong_dtype(self, tiny_trace, tmp_path):
        cache = CharacterizationCache(tmp_path)
        cache.store(
            tiny_trace, SMALL_CONFIG,
            np.zeros(NUM_CHARACTERISTICS, dtype=np.float32),
        )
        assert cache.load(tiny_trace, SMALL_CONFIG) is None

    def test_hpc_rejects_wrong_shape(self, tiny_trace, tmp_path):
        cache = HpcCache(tmp_path)
        from repro.uarch import EV56_CONFIG, EV67_CONFIG

        cache.store(
            tiny_trace, EV56_CONFIG, EV67_CONFIG, np.zeros(3)
        )
        assert cache.load(tiny_trace) is None

    def test_trace_rejects_wrong_length(self, tmp_path):
        cache = TraceCache(tmp_path)
        trace = generate_trace(PROFILE, 1_000)
        cache.store(PROFILE, 2_000, 0, trace)  # stored under wrong key
        assert cache.load(PROFILE, 2_000) is None


class TestGracefulDegradation:
    """Unwritable cache directories degrade, with a single warning."""

    def test_enospc_store_degrades_once(self, tiny_trace, tmp_path):
        reset_cache_degradation()
        with pytest.warns(CacheDegradedWarning) as caught:
            with faults.inject_io_faults(
                "store", indices=range(8), partial_write=True
            ):
                first = cached_characterize(
                    tiny_trace, SMALL_CONFIG, tmp_path
                )
                second = cached_characterize(
                    tiny_trace, SMALL_CONFIG, tmp_path
                )
        assert len(caught) == 1, "exactly one warning per directory"
        direct = characterize(tiny_trace, SMALL_CONFIG)
        assert np.array_equal(first.values, direct.values)
        assert np.array_equal(second.values, direct.values)
        reset_cache_degradation()

    def test_failed_store_leaves_no_temp_litter(self, tiny_trace, tmp_path):
        reset_cache_degradation()
        with pytest.warns(CacheDegradedWarning):
            with faults.inject_io_faults(
                "store", indices=(0,), partial_write=True
            ):
                cached_collect_hpc(tiny_trace, cache_dir=tmp_path)
        assert not list(tmp_path.glob("tmp-*.npz"))
        reset_cache_degradation()

    def test_rename_failure_degrades_and_cleans_temp(
        self, tiny_trace, tmp_path
    ):
        reset_cache_degradation()
        with pytest.warns(CacheDegradedWarning):
            with faults.inject_io_faults("rename", indices=(0,)):
                trace = cached_generate_trace(
                    PROFILE, 1_000, cache_dir=tmp_path
                )
        assert len(trace) == 1_000
        assert not list(tmp_path.glob("tmp-*.npz"))
        reset_cache_degradation()

    def test_load_io_error_is_transient_miss(self, tiny_trace, tmp_path):
        cold = cached_characterize(tiny_trace, SMALL_CONFIG, tmp_path)
        path = next(tmp_path.glob("char-*.npz"))
        import errno

        with faults.inject_io_faults(
            "load", indices=(0,), errno=errno.EIO
        ):
            assert CharacterizationCache(tmp_path).load(
                tiny_trace, SMALL_CONFIG
            ) is None
        # The entry survives (not quarantined) and serves again.
        assert path.exists()
        warm = CharacterizationCache(tmp_path).load(
            tiny_trace, SMALL_CONFIG
        )
        assert np.array_equal(warm, cold.values)


class TestClearRaceAndSweep:
    def test_clear_tolerates_concurrent_deletion(
        self, tiny_trace, tmp_path, monkeypatch
    ):
        cache = CharacterizationCache(tmp_path)
        cache.store(tiny_trace, SMALL_CONFIG,
                    np.zeros(NUM_CHARACTERISTICS))
        cache.store(
            tiny_trace, SMALL_CONFIG.with_overrides(ppm_max_order=2),
            np.zeros(NUM_CHARACTERISTICS),
        )
        real_unlink = Path.unlink
        raced = []

        def racing_unlink(self, *args, **kwargs):
            if not raced and self.suffix == ".npz":
                raced.append(self)
                real_unlink(self)
                # Simulate a concurrent worker winning the race.
                raise FileNotFoundError(str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        assert cache.clear() == 1  # the raced entry counts for the winner
        assert len(cache) == 0

    def test_clear_sweeps_temp_and_quarantine_litter(
        self, tiny_trace, tmp_path
    ):
        cache = HpcCache(tmp_path)
        cached_collect_hpc(tiny_trace, cache_dir=tmp_path)
        (tmp_path / "tmp-hpc-dead.1234.npz").write_bytes(b"crashed writer")
        entry = next(tmp_path.glob("hpc-*.npz"))
        faults.corrupt_entry(entry, "truncate")
        assert cache.load(tiny_trace) is None  # quarantines
        assert cache.clear() == 2  # quarantined + tmp litter
        assert not list(tmp_path.glob("tmp-*.npz"))
        assert not list(tmp_path.glob("*.quarantined"))

    def test_sweep_temporaries_respects_age(self, tmp_path):
        import os

        stale = tmp_path / "tmp-char-old.99.npz"
        fresh = tmp_path / "tmp-char-new.99.npz"
        stale.write_bytes(b"x")
        fresh.write_bytes(b"x")
        os.utime(stale, (0, 0))
        assert sweep_temporaries(tmp_path, older_than=3600.0) == 1
        assert fresh.exists() and not stale.exists()


class TestVerifyCache:
    def test_scan_quarantines_bad_entries_only(self, tiny_trace, tmp_path):
        _populate_all_levels(tiny_trace, tmp_path)
        bad = next(tmp_path.glob("char-*.npz"))
        faults.corrupt_entry(bad, "bitflip", seed=1)
        report = verify_cache(tmp_path, sweep_older_than=0.0)
        assert report.scanned["char"] == 1
        assert report.scanned["hpc"] == 1
        assert report.scanned["trace"] == 1
        assert len(report.quarantined) == 1
        assert report.quarantined[0].path == str(bad)
        assert "checksum" in report.quarantined[0].reason
        # Healthy entries untouched; the scan is idempotent.
        clean = verify_cache(tmp_path, sweep_older_than=0.0)
        assert len(clean.quarantined) == 0
        assert "quarantined" in report.format()

    def test_scan_sweeps_stale_temporaries(self, tmp_path):
        (tmp_path / "tmp-trace-dead.7.npz").write_bytes(b"x")
        report = verify_cache(tmp_path, sweep_older_than=0.0)
        assert report.swept_temporaries == 1

    def test_scan_sweeps_journal_rotation_temporaries(self, tmp_path):
        (tmp_path / "tmp-journal-build.123.jsonl").write_bytes(b"x")
        report = verify_cache(tmp_path, sweep_older_than=0.0)
        assert report.swept_temporaries == 1
        assert not list(tmp_path.glob("tmp-journal-*"))

    def test_scan_repairs_and_reports_torn_journal_tails(
        self, tmp_path
    ):
        from repro.perf import WriteAheadJournal, replay_journal

        path = tmp_path / "journal-dataset-abc.jsonl"
        with WriteAheadJournal(path) as wal:
            wal.append({"event": "a"})
            wal.append({"event": "b"})
        good_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"fmt": "repro-journal/1", "seq": 2')

        report = verify_cache(tmp_path, sweep_older_than=0.0)
        assert report.scanned["journal"] == 1
        assert len(report.journal_truncations) == 1
        truncation = report.journal_truncations[0]
        assert truncation.repaired
        assert truncation.valid_records == 2
        assert truncation.dropped_bytes > 0
        assert path.stat().st_size == good_size
        assert "torn journal tail" in report.format()
        assert "repaired" in report.format()
        # The repaired journal replays clean; the scan is idempotent.
        assert replay_journal(path).truncation is None
        clean = verify_cache(tmp_path, sweep_older_than=0.0)
        assert clean.journal_truncations == ()

    def test_verify_entry_raises_typed_error(self, tiny_trace, tmp_path):
        cache = CharacterizationCache(tmp_path)
        vector = characterize(tiny_trace, SMALL_CONFIG)
        path = cache.store(tiny_trace, SMALL_CONFIG, vector.values)
        faults.corrupt_entry(path, "foreign")
        with pytest.raises(CacheIntegrityError, match="foreign"):
            integrity.verify_entry(path, level="char", version=1)


class TestCacheCli:
    def test_cache_verify_command(self, tiny_trace, tmp_path, capsys):
        from repro.cli import main

        cached_characterize(tiny_trace, SMALL_CONFIG, tmp_path)
        bad = next(tmp_path.glob("char-*.npz"))
        faults.corrupt_entry(bad, "truncate")
        code = main(["--cache-dir", str(tmp_path), "cache", "verify"])
        # Quarantined entries are a reportable failure: exit 1 with a
        # one-line error on stderr (clean directories still exit 0).
        assert code == 1
        captured = capsys.readouterr()
        assert "1 quarantined" in captured.out
        assert captured.err.startswith("error:")
        assert list(tmp_path.glob("*.quarantined"))

    def test_cache_clear_command(self, tiny_trace, tmp_path, capsys):
        from repro.cli import main

        cached_characterize(tiny_trace, SMALL_CONFIG, tmp_path)
        code = main(["--cache-dir", str(tmp_path), "cache", "clear"])
        assert code == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.npz"))
