"""Tests for the vectorized MICA analyzers: instruction mix, working
sets and stride profiles — validated against hand-built traces with
known answers."""

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.trace import Trace, TraceBuilder
from repro.mica import instruction_mix, stride_profile, working_set


def alu_only(n):
    builder = TraceBuilder()
    for i in range(n):
        builder.alu(0x1000 + 4 * i, dst=1)
    return builder.build()


class TestInstructionMix:
    def test_known_mix(self):
        builder = TraceBuilder()
        for i in range(4):
            builder.load(0x1000 + 16 * i, dst=1, addr_reg=2,
                         mem_addr=0x2000 + 8 * i)
            builder.store(0x1004 + 16 * i, value_reg=1, addr_reg=2,
                          mem_addr=0x3000 + 8 * i)
            builder.alu(0x1008 + 16 * i, dst=1)
            builder.branch(0x100C + 16 * i, cond_reg=1, taken=False,
                           target=0)
        mix = instruction_mix(builder.build())
        assert mix[0] == pytest.approx(0.25)  # Loads.
        assert mix[1] == pytest.approx(0.25)  # Stores.
        assert mix[2] == pytest.approx(0.25)  # Branches.
        assert mix[3] == pytest.approx(0.25)  # Arithmetic.
        assert mix[4] == 0.0
        assert mix[5] == 0.0

    def test_sums_to_at_most_one(self, small_trace):
        mix = instruction_mix(small_trace)
        assert mix.sum() <= 1.0 + 1e-9
        assert (mix >= 0.0).all()

    def test_mul_and_fp_counted_separately(self):
        builder = TraceBuilder()
        builder.mul(0x1000, dst=1, src1=2, src2=3)
        builder.fp(0x1004, dst=33)
        mix = instruction_mix(builder.build())
        assert mix[4] == pytest.approx(0.5)
        assert mix[5] == pytest.approx(0.5)
        assert mix[3] == 0.0  # Mul is not counted as plain arithmetic.

    def test_empty_trace_rejected(self):
        with pytest.raises(CharacterizationError):
            instruction_mix(Trace.empty())


class TestWorkingSet:
    def test_counts_unique_blocks_and_pages(self):
        builder = TraceBuilder()
        # 16 loads at 8-byte stride: 128 bytes = 4 blocks, 1 page.
        for i in range(16):
            builder.load(0x1000, dst=1, addr_reg=2,
                         mem_addr=0x10000 + 8 * i)
        ws = working_set(builder.build())
        d_blocks, d_pages, i_blocks, i_pages = ws
        assert d_blocks == 4
        assert d_pages == 1
        assert i_blocks == 1  # All at the same PC.
        assert i_pages == 1

    def test_instruction_stream_counts_pcs(self):
        trace = alu_only(64)  # 64 * 4 bytes = 256 bytes = 8 blocks.
        ws = working_set(trace)
        assert ws[2] == 8
        assert ws[3] == 1

    def test_page_boundary(self):
        builder = TraceBuilder()
        builder.load(0x1000, dst=1, addr_reg=2, mem_addr=4095)
        builder.load(0x1004, dst=1, addr_reg=2, mem_addr=4096)
        ws = working_set(builder.build())
        assert ws[1] == 2

    def test_custom_granularities(self):
        builder = TraceBuilder()
        for i in range(4):
            builder.load(0x1000, dst=1, addr_reg=2,
                         mem_addr=0x10000 + 64 * i)
        ws = working_set(builder.build(), block_bytes=64, page_bytes=128)
        assert ws[0] == 4
        assert ws[1] == 2

    def test_rejects_non_power_of_two(self, small_trace):
        with pytest.raises(CharacterizationError):
            working_set(small_trace, block_bytes=48)


class TestStrides:
    def make_load_trace(self, addresses, pcs=None):
        builder = TraceBuilder()
        for index, addr in enumerate(addresses):
            pc = pcs[index] if pcs else 0x1000
            builder.load(pc, dst=1, addr_reg=2, mem_addr=addr)
        return builder.build()

    def test_sequential_loads_local_equals_global(self):
        trace = self.make_load_trace([0x1000 + 8 * i for i in range(50)])
        profile = stride_profile(trace)
        # All strides are 8 bytes: P(=0)=0, P(<=8)=1 for both local
        # (single PC) and global load streams.
        local_load = profile[0:5]
        global_load = profile[5:10]
        assert local_load[0] == 0.0
        assert local_load[1] == 1.0
        assert np.array_equal(local_load, global_load)

    def test_scalar_loads_stride_zero(self):
        trace = self.make_load_trace([0x2000] * 20)
        profile = stride_profile(trace)
        assert profile[0] == 1.0  # local load = 0
        assert profile[5] == 1.0  # global load = 0

    def test_interleaved_streams_differ_local_vs_global(self):
        # Two static loads, each sequential in its own distant region:
        # local strides small, global strides huge.
        addresses = []
        pcs = []
        for i in range(30):
            addresses.append(0x10_0000 + 8 * i)
            pcs.append(0x1000)
            addresses.append(0x90_0000 + 8 * i)
            pcs.append(0x1004)
        trace = self.make_load_trace(addresses, pcs)
        profile = stride_profile(trace)
        local_le8 = profile[1]
        global_le4096 = profile[4 + 1 + 4]  # global load <= 4096
        assert local_le8 > 0.9
        assert global_le4096 < 0.1

    def test_store_strides_independent_of_loads(self):
        builder = TraceBuilder()
        for i in range(20):
            builder.load(0x1000, dst=1, addr_reg=2, mem_addr=0x2000)
            builder.store(0x1004, value_reg=1, addr_reg=2,
                          mem_addr=0x8000 + 512 * i)
        profile = stride_profile(builder.build())
        local_store = profile[10:15]
        assert local_store[0] == 0.0          # Stride 512, never 0.
        assert local_store[2] == 0.0          # Not <= 64.
        assert local_store[3] == 1.0          # All <= 512.

    def test_thresholds_are_cumulative(self, small_trace):
        profile = stride_profile(small_trace)
        for start in (0, 5, 10, 15):
            section = profile[start:start + 5]
            assert (np.diff(section) >= -1e-12).all()
            assert (section >= 0.0).all() and (section <= 1.0).all()

    def test_no_memory_ops_gives_zeros(self):
        profile = stride_profile(alu_only(10))
        assert (profile == 0.0).all()

    def test_negative_strides_use_magnitude(self):
        trace = self.make_load_trace(
            [0x2000, 0x2008, 0x2000, 0x2008, 0x2000]
        )
        profile = stride_profile(trace)
        assert profile[1] == 1.0  # |stride| = 8 always.
        assert profile[0] == 0.0
