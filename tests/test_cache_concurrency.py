"""Concurrency tests for the on-disk cache (satellite: torn reads).

Real ``ProcessPoolExecutor`` workers hammer one cache key — several
writers racing each other and readers loading mid-write.  The atomic
temp-file + rename protocol plus integrity verification must guarantee:
a reader observes either a miss or one writer's *complete* entry (never
a torn mix), the last writer wins, and nobody leaves ``tmp-*.npz``
litter or quarantine files behind.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, wait

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.mica import NUM_CHARACTERISTICS, characterize
from repro.perf import CharacterizationCache
from repro.synth import WorkloadProfile, generate_trace

SMALL_CONFIG = ReproConfig(trace_length=2_000)
PROFILE = WorkloadProfile(name="concurrency/p/1")
LENGTH = 2_000


def _shared_trace():
    # Deterministic: every worker regenerates the identical trace, so
    # all processes address the same cache key.
    return generate_trace(PROFILE, LENGTH)


def _writer_job(directory, worker_id, stores):
    """Repeatedly store a worker-identifiable vector under one key."""
    trace = _shared_trace()
    cache = CharacterizationCache(directory)
    values = np.full(NUM_CHARACTERISTICS, float(worker_id))
    for _ in range(stores):
        cache.store(trace, SMALL_CONFIG, values)
    return worker_id


def _reader_job(directory, loads):
    """Load the racing key in a loop; report every observed vector."""
    trace = _shared_trace()
    cache = CharacterizationCache(directory)
    observed = []
    for _ in range(loads):
        values = cache.load(trace, SMALL_CONFIG)
        if values is not None:
            observed.append(values.copy())
    return observed


def _real_writer_job(directory, stores):
    """Store the genuine characterization vector repeatedly."""
    trace = _shared_trace()
    values = characterize(trace, SMALL_CONFIG).values
    cache = CharacterizationCache(directory)
    for _ in range(stores):
        cache.store(trace, SMALL_CONFIG, values)
    return values


class TestConcurrentSameKeyWriters:
    def test_last_writer_wins_and_no_torn_reads(self, tmp_path):
        writer_ids = [1, 2, 3]
        with ProcessPoolExecutor(max_workers=len(writer_ids) + 2) as pool:
            writers = [
                pool.submit(_writer_job, tmp_path, wid, 25)
                for wid in writer_ids
            ]
            readers = [
                pool.submit(_reader_job, tmp_path, 50) for _ in range(2)
            ]
            wait(writers + readers)
            observed = [
                vector for future in readers for vector in future.result()
            ]
            for future in writers:
                future.result()

        # Every mid-write load was a miss or ONE writer's complete
        # vector — constant fill, never a mix of two writers' bytes.
        for vector in observed:
            assert vector.shape == (NUM_CHARACTERISTICS,)
            fill = vector[0]
            assert fill in {float(wid) for wid in writer_ids}
            assert np.all(vector == fill), "torn read detected"

        # Last writer wins: the surviving entry is one complete vector.
        final = CharacterizationCache(tmp_path).load(
            _shared_trace(), SMALL_CONFIG
        )
        assert final is not None
        assert np.all(final == final[0])
        assert final[0] in {float(wid) for wid in writer_ids}

        # Atomic protocol leaves no litter and quarantined nothing.
        assert not list(tmp_path.glob("tmp-*.npz"))
        assert not list(tmp_path.glob("*.quarantined"))
        assert len(list(tmp_path.glob("char-*.npz"))) == 1

    def test_warm_read_during_write_serves_verified_entries(
        self, tmp_path
    ):
        expected = characterize(_shared_trace(), SMALL_CONFIG).values
        with ProcessPoolExecutor(max_workers=4) as pool:
            writers = [
                pool.submit(_real_writer_job, tmp_path, 15)
                for _ in range(2)
            ]
            readers = [
                pool.submit(_reader_job, tmp_path, 40) for _ in range(2)
            ]
            wait(writers + readers)
            observed = [
                vector for future in readers for vector in future.result()
            ]
            for future in writers:
                assert np.array_equal(future.result(), expected)

        # Identical writers: every non-miss load is bit-for-bit the
        # true vector (a torn read would fail its checksum and show up
        # as a quarantine instead).
        for vector in observed:
            assert np.array_equal(vector, expected)
        assert not list(tmp_path.glob("tmp-*.npz"))
        assert not list(tmp_path.glob("*.quarantined"))

        warm = CharacterizationCache(tmp_path).load(
            _shared_trace(), SMALL_CONFIG
        )
        assert np.array_equal(warm, expected)
