"""Tests for ASCII tables, plots and exporters."""

import json

import numpy as np
import pytest

from repro.reporting import (
    ascii_lines,
    ascii_scatter,
    dataset_to_json,
    format_table,
    matrix_to_csv,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_right_alignment(self):
        text = format_table(
            ["k", "v"], [["x", 1], ["y", 100]], align_right=[False, True]
        )
        rows = text.splitlines()[2:]
        assert rows[0].endswith("  1")
        assert rows[1].endswith("100")

    def test_title(self):
        text = format_table(["a"], [["x"]], title="caption:")
        assert text.splitlines()[0] == "caption:"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_align_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x"]], align_right=[True, False])

    def test_column_width_adapts(self):
        text = format_table(["h"], [["a-very-long-cell"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("a-very-long-cell")


class TestAsciiPlots:
    def test_scatter_renders_markers(self):
        rng = np.random.default_rng(0)
        art = ascii_scatter(rng.uniform(size=200), rng.uniform(size=200))
        assert any(ch in art for ch in ".:*@")
        assert "x:" in art

    def test_scatter_density_escalates(self):
        x = np.zeros(100)
        y = np.zeros(100)
        art = ascii_scatter(x, y)
        assert "@" in art  # 100 overlapping points.

    def test_scatter_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.empty(0), np.empty(0))

    def test_scatter_subsamples_large_input(self):
        rng = np.random.default_rng(1)
        n = 100_000
        art = ascii_scatter(rng.uniform(size=n), rng.uniform(size=n),
                            max_points=1000)
        assert isinstance(art, str)

    def test_lines_renders_legend(self):
        x = np.linspace(0.0, 1.0, 20)
        art = ascii_lines({"up": (x, x), "down": (x, 1 - x)})
        assert "u = up" in art
        assert "d = down" in art

    def test_lines_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_lines({})


class TestExport:
    def test_csv_round_trip_values(self):
        matrix = np.array([[1.5, 2.0], [3.25, 4.0]])
        text = matrix_to_csv(["a", "b"], ["x", "y"], matrix)
        lines = text.strip().splitlines()
        assert lines[0] == "benchmark,x,y"
        assert lines[1].split(",") == ["a", "1.5", "2"]

    def test_csv_escapes_commas(self):
        text = matrix_to_csv(["a,b"], ["x"], np.array([[1.0]]))
        assert '"a,b"' in text

    def test_csv_validates_shapes(self):
        with pytest.raises(ValueError):
            matrix_to_csv(["a"], ["x", "y"], np.array([[1.0]]))
        with pytest.raises(ValueError):
            matrix_to_csv(["a", "b"], ["x"], np.array([[1.0]]))

    def test_json_round_trip(self):
        matrix = np.array([[1.0, 2.0]])
        text = dataset_to_json(["a"], ["x", "y"], matrix,
                               metadata={"k": "v"})
        payload = json.loads(text)
        assert payload["benchmarks"] == ["a"]
        assert payload["columns"] == ["x", "y"]
        assert payload["values"] == [[1.0, 2.0]]
        assert payload["metadata"] == {"k": "v"}
