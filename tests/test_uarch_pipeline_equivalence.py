"""Batch pipeline engines vs the retained scalar references.

Three implementations of each pipeline model must agree bit-for-bit on
IPC: the production batch walk (``run``), the retained scalar loop
(``run_reference``) and the independent max-plus fixed-point engine
(:mod:`repro.uarch.pipeline_batch`'s ``inorder_cycles``/``ooo_cycles``).
Coverage spans the eight-benchmark test population, randomized traces,
and hand-built adversarial traces exercising window-full stalls,
memory-port conflicts at full issue width, back-to-back mispredicted
branches, fetch-latency/dependence ties, length-1 traces and
``issue_width=1`` machines.
"""

import numpy as np
import pytest

from conftest import make_alu_chain, make_independent_alu
from repro.isa import OpClass
from repro.mica.ilp import producer_indices
from repro.synth import generate_trace
from repro.trace import TraceBuilder
from repro.uarch import (
    EV56_CONFIG,
    EV67_CONFIG,
    InOrderModel,
    MachineConfig,
    OutOfOrderModel,
)
from repro.uarch.configs import LatencyModel
from repro.uarch.events import simulate_events
from repro.uarch.pipeline_batch import inorder_cycles, ooo_cycles
from repro.workloads import all_benchmarks


def assert_all_engines_agree(trace, inorder=EV56_CONFIG, ooo=EV67_CONFIG):
    """Pin walk == reference == fixed-point, bit for bit, both models."""
    producers = producer_indices(trace)
    if inorder is not None:
        events = simulate_events(trace, inorder)
        model = InOrderModel(inorder)
        ipc_walk, _ = model.run(trace, events=events)
        ipc_ref, _ = model.run_reference(trace, events=events)
        assert ipc_walk == ipc_ref, "in-order walk != reference"
        cycles = inorder_cycles(trace, inorder, events, producers)
        assert len(trace) / cycles == ipc_ref, "in-order fixed-point"
    if ooo is not None:
        events = simulate_events(trace, ooo)
        model = OutOfOrderModel(ooo)
        ipc_walk, _ = model.run(trace, events=events)
        ipc_ref, _ = model.run_reference(trace, events=events)
        assert ipc_walk == ipc_ref, "out-of-order walk != reference"
        cycles = ooo_cycles(trace, ooo, events, producers)
        assert len(trace) / cycles == ipc_ref, "out-of-order fixed-point"


def narrow_inorder(width: int, penalty: int = 5) -> MachineConfig:
    """An in-order config with a chosen issue width."""
    return MachineConfig(
        name=f"inorder-w{width}",
        issue_width=width,
        l1i=EV56_CONFIG.l1i,
        l1d=EV56_CONFIG.l1d,
        l2=EV56_CONFIG.l2,
        tlb_entries=EV56_CONFIG.tlb_entries,
        tlb_page_bytes=EV56_CONFIG.tlb_page_bytes,
        latencies=LatencyModel(
            l1_hit=2, l2_hit=8, memory=60, tlb_miss=40,
            mispredict_penalty=penalty,
        ),
        predictor_kind="bimodal",
    )


def tiny_window_ooo(window: int, width: int = 4) -> MachineConfig:
    """An out-of-order config with a chosen (small) window."""
    return MachineConfig(
        name=f"ooo-win{window}",
        issue_width=width,
        l1i=EV67_CONFIG.l1i,
        l1d=EV67_CONFIG.l1d,
        l2=EV67_CONFIG.l2,
        tlb_entries=EV67_CONFIG.tlb_entries,
        tlb_page_bytes=EV67_CONFIG.tlb_page_bytes,
        latencies=EV67_CONFIG.latencies,
        predictor_kind="tournament",
        window_size=window,
    )


class TestPopulationEquivalence:
    @pytest.mark.parametrize(
        "bench", list(all_benchmarks())[:8],
        ids=lambda b: b.short_name,
    )
    def test_population_bit_identical(self, bench):
        trace = generate_trace(bench.profile, 3_000)
        assert_all_engines_agree(trace)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_traces(self, seed):
        rng = np.random.default_rng(seed)
        builder = TraceBuilder(name=f"random/{seed}")
        length = int(rng.integers(200, 1_500))
        for index in range(length):
            kind = rng.random()
            pc = 0x1000 + 4 * int(rng.integers(0, 512))
            dst = int(rng.integers(1, 30))
            src1 = int(rng.integers(1, 30))
            src2 = int(rng.integers(1, 30))
            if kind < 0.25:
                builder.append(pc, OpClass.LOAD, src1=src1, dst=dst,
                               mem_addr=int(rng.integers(1, 1 << 20)) * 8)
            elif kind < 0.35:
                builder.append(pc, OpClass.STORE, src1=src1, src2=src2,
                               mem_addr=int(rng.integers(1, 1 << 20)) * 8)
            elif kind < 0.5:
                builder.append(pc, OpClass.BRANCH, src1=src1,
                               taken=bool(rng.random() < 0.5),
                               target=0x1000 + 4 * int(rng.integers(0, 512)))
            elif kind < 0.6:
                builder.append(pc, OpClass.INT_MUL, src1=src1, src2=src2,
                               dst=dst)
            elif kind < 0.7:
                builder.append(pc, OpClass.FP, src1=src1, src2=src2, dst=dst)
            else:
                builder.append(pc, OpClass.INT_ALU, src1=src1, src2=src2,
                               dst=dst)
        trace = builder.build()
        assert_all_engines_agree(trace)
        assert_all_engines_agree(
            trace, inorder=narrow_inorder(1), ooo=tiny_window_ooo(4)
        )
        assert_all_engines_agree(
            trace,
            inorder=narrow_inorder(3),
            ooo=tiny_window_ooo(7, width=2),
        )
        assert_all_engines_agree(
            trace, inorder=None, ooo=tiny_window_ooo(8, width=1)
        )


class TestAdversarialEquivalence:
    def test_window_full_stalls(self):
        """Serial chains much deeper than a tiny window stall fetch."""
        trace = make_alu_chain(600)
        assert_all_engines_agree(trace, inorder=None, ooo=tiny_window_ooo(2))
        assert_all_engines_agree(trace, inorder=None, ooo=tiny_window_ooo(8))

    def test_memory_port_conflicts_at_full_width(self):
        """Back-to-back independent loads fight over the memory port."""
        builder = TraceBuilder(name="memport")
        for index in range(500):
            builder.append(0x1000 + 4 * (index % 32), OpClass.LOAD,
                           src1=1, dst=2 + (index % 8),
                           mem_addr=0x10000 + 8 * (index % 64))
        trace = builder.build()
        assert_all_engines_agree(trace)
        assert_all_engines_agree(trace, inorder=narrow_inorder(4), ooo=None)

    def test_back_to_back_mispredicted_branches(self):
        """Alternating-direction branches mispredict in bursts."""
        builder = TraceBuilder(name="branchy")
        for index in range(600):
            builder.append(0x1000 + 4 * (index % 7), OpClass.BRANCH,
                           src1=1, taken=bool((index * 7) % 3 == 0),
                           target=0x2000)
        trace = builder.build()
        assert_all_engines_agree(trace)

    def test_fetch_latency_dependence_ties(self):
        """Cold PCs (I-misses) racing register dependences of equal age."""
        builder = TraceBuilder(name="ties")
        for index in range(400):
            # Fresh PC every instruction: every fetch misses the L1I.
            pc = 0x1000 + 64 * index
            if index % 3 == 0:
                builder.append(pc, OpClass.LOAD, src1=1 + (index % 4),
                               dst=1 + ((index + 1) % 4),
                               mem_addr=0x100000 + 8 * index)
            else:
                builder.append(pc, OpClass.INT_ALU, src1=1 + (index % 4),
                               src2=1 + ((index + 2) % 4),
                               dst=1 + ((index + 1) % 4))
        trace = builder.build()
        assert_all_engines_agree(trace)

    def test_length_one_trace(self):
        builder = TraceBuilder(name="one")
        builder.append(0x1000, OpClass.LOAD, src1=1, dst=2, mem_addr=0x8000)
        trace = builder.build()
        assert_all_engines_agree(trace)

    def test_issue_width_one(self):
        trace = make_independent_alu(400)
        assert_all_engines_agree(
            trace, inorder=narrow_inorder(1), ooo=tiny_window_ooo(8, width=1)
        )
        chain = make_alu_chain(400)
        assert_all_engines_agree(
            chain, inorder=narrow_inorder(1), ooo=tiny_window_ooo(8, width=1)
        )

    def test_narrow_ooo_widths(self):
        """Width-1/2 out-of-order machines exercise the fetch-bump fold
        and the run-straddling skip eligibility the production width
        never hits."""
        trace = make_independent_alu(300)
        for width in (1, 2):
            for window in (2, 7, 80):
                assert_all_engines_agree(
                    trace, inorder=None,
                    ooo=tiny_window_ooo(window, width=width),
                )

    def test_trailing_mispredicted_branch(self):
        """A mispredicted final branch still pays its redirect: the
        reference advances the cycle after the last instruction."""
        builder = TraceBuilder(name="trailing-mp")
        builder.append(0x1000, OpClass.INT_ALU, src1=1, dst=2)
        # One PC: the bimodal counter saturates taken, then the final
        # not-taken branch mispredicts.
        for index in range(5):
            builder.append(0x2000, OpClass.BRANCH, src1=2,
                           taken=index < 4, target=0x3000)
        trace = builder.build()
        events = simulate_events(trace, EV56_CONFIG)
        assert events.mispredict[-1], "fixture must end mispredicted"
        assert_all_engines_agree(trace)

    def test_zero_penalty_mispredicts(self):
        """A zero redirect penalty exercises the no-bump corner."""
        builder = TraceBuilder(name="zero-pen")
        for index in range(300):
            builder.append(0x1000 + 4 * (index % 5), OpClass.BRANCH,
                           src1=1, taken=bool(index % 2), target=0x2000)
        trace = builder.build()
        assert_all_engines_agree(
            trace, inorder=narrow_inorder(2, penalty=0), ooo=None
        )

    def test_pointer_chase_serialization(self):
        """Loads feeding the next load's address: maximal serialization."""
        builder = TraceBuilder(name="chase")
        for index in range(500):
            builder.append(0x1000 + 4 * (index % 16), OpClass.LOAD,
                           src1=1, dst=1,
                           mem_addr=0x10000 + 8 * ((index * 7919) % 4096))
        trace = builder.build()
        assert_all_engines_agree(trace)


class TestGeneratedProfiles:
    def test_serial_and_parallel_profiles(
        self, serial_profile, parallel_profile
    ):
        for profile in (serial_profile, parallel_profile):
            trace = generate_trace(profile, 2_000)
            assert_all_engines_agree(trace)

    def test_collect_hpc_threads_events(self, small_trace):
        """Threaded events reproduce the on-demand result exactly."""
        from repro.uarch import collect_hpc

        plain = collect_hpc(small_trace)
        threaded = collect_hpc(
            small_trace,
            inorder_events=simulate_events(small_trace, EV56_CONFIG),
            ooo_events=simulate_events(small_trace, EV67_CONFIG),
        )
        assert np.array_equal(plain.values, threaded.values)
