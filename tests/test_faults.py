"""Deterministic fault-injection suite for dataset builds.

Pins the ISSUE invariant: **under every injected fault, a build that
completes produces matrices bit-for-bit identical to a cold serial
build.**  Corrupted cache entries at any level are verified misses that
trigger recompute; crashed/raising/timing-out workers are retried with
bounded backoff and, when they fail for good, named in a
:class:`~repro.experiments.DatasetBuildReport` instead of dying as a
bare ``BrokenProcessPool``.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import CacheDegradedWarning, DatasetBuildError
from repro.experiments import build_dataset
from repro.experiments.dataset import _MEMORY_CACHE
from repro.perf import faults, reset_cache_degradation

SMALL_CONFIG = ReproConfig(trace_length=2_000)

pytestmark = pytest.mark.usefixtures("small_population")


@pytest.fixture(scope="module")
def population(small_population):
    return small_population[:3]


@pytest.fixture(scope="module")
def reference(population, tmp_path_factory):
    """Cold serial build; its cache directory seeds the fault tests."""
    directory = tmp_path_factory.mktemp("faults-reference")
    _MEMORY_CACHE.clear()
    dataset = build_dataset(
        SMALL_CONFIG, population, cache_dir=directory, jobs=1
    )
    _MEMORY_CACHE.clear()
    return dataset, directory


def _warm_copy(reference_dir, tmp_path):
    target = tmp_path / "cache"
    shutil.copytree(reference_dir, target)
    return target


class TestCorruptionEquivalence:
    """Corruption at any cache level never changes a completed build."""

    @pytest.mark.parametrize("prefix", ["char", "hpc", "trace", "dataset"])
    @pytest.mark.parametrize("mode", faults.CORRUPTION_MODES)
    def test_rebuild_matches_cold_serial(
        self, reference, population, tmp_path, mode, prefix
    ):
        ref, ref_dir = reference
        cache_dir = _warm_copy(ref_dir, tmp_path)
        if prefix != "dataset":
            # Force the build past the dataset-level cache so the
            # corrupted per-trace entry is actually consulted.
            for entry in cache_dir.glob("dataset-*.npz"):
                entry.unlink()
        victim = sorted(cache_dir.glob(f"{prefix}-*.npz"))[0]
        faults.corrupt_entry(victim, mode, seed=11)
        _MEMORY_CACHE.clear()
        rebuilt = build_dataset(
            SMALL_CONFIG, population, cache_dir=cache_dir, jobs=1
        )
        _MEMORY_CACHE.clear()
        assert np.array_equal(rebuilt.mica, ref.mica)
        assert np.array_equal(rebuilt.hpc, ref.hpc)
        # The corrupt bytes were moved aside (and the path may hold a
        # freshly recomputed, healthy entry again).
        assert victim.with_name(
            victim.name + ".quarantined"
        ).exists(), "corrupt entry must be quarantined"
        assert rebuilt.report is not None
        assert any(
            event.path == str(victim)
            for event in rebuilt.report.quarantines
        )

    def test_quarantines_are_reported(
        self, reference, population, tmp_path
    ):
        ref, ref_dir = reference
        cache_dir = _warm_copy(ref_dir, tmp_path)
        victim = sorted(cache_dir.glob("char-*.npz"))[0]
        faults.corrupt_entry(victim, "bitflip", seed=2)
        dataset_entry = sorted(cache_dir.glob("dataset-*.npz"))[0]
        faults.corrupt_entry(dataset_entry, "truncate")
        _MEMORY_CACHE.clear()
        rebuilt = build_dataset(
            SMALL_CONFIG, population, cache_dir=cache_dir, jobs=1
        )
        _MEMORY_CACHE.clear()
        assert np.array_equal(rebuilt.mica, ref.mica)
        report = rebuilt.report
        assert report is not None
        assert len(report.dataset_quarantines) == 1
        assert len(report.quarantines) >= 2  # dataset entry + char entry


class TestWorkerCrashIsolation:
    def test_crash_once_retries_and_matches(
        self, reference, population, tmp_path
    ):
        ref, _ = reference
        victim = population[1].full_name
        _MEMORY_CACHE.clear()
        with faults.inject_worker_faults(
            [faults.WorkerFault(victim, mode="crash", times=1)],
            tmp_path / "state",
        ):
            dataset = build_dataset(
                SMALL_CONFIG, population, cache_dir=tmp_path / "cache",
                jobs=2, retry_backoff=0.0,
            )
        _MEMORY_CACHE.clear()
        assert np.array_equal(dataset.mica, ref.mica)
        assert np.array_equal(dataset.hpc, ref.hpc)
        report = dataset.report
        assert report is not None
        assert report.pool_rebuilds >= 1
        status = next(s for s in report.statuses if s.name == victim)
        # A crash with pool-mates in flight is uncharged (the casualty
        # re-runs in isolation), so 1 charged attempt is legitimate.
        assert status.ok and status.attempts >= 1

    def test_persistent_crash_strict_names_the_benchmark(
        self, population, tmp_path
    ):
        victim = population[0].full_name
        _MEMORY_CACHE.clear()
        with faults.inject_worker_faults(
            [faults.WorkerFault(victim, mode="crash", times=99)],
            tmp_path / "state",
        ):
            with pytest.raises(DatasetBuildError) as excinfo:
                build_dataset(
                    SMALL_CONFIG, population,
                    cache_dir=tmp_path / "cache",
                    jobs=2, retry_backoff=0.0,
                )
        _MEMORY_CACHE.clear()
        assert victim in str(excinfo.value)
        report = excinfo.value.report
        assert report is not None
        assert [s.name for s in report.failed] == [victim]
        status = report.failed[0]
        assert status.attempts == 3
        assert "crash" in (status.error or "").lower() or status.error

    def test_salvage_mode_keeps_surviving_rows_bit_identical(
        self, reference, population, tmp_path
    ):
        ref, _ = reference
        victim = population[1].full_name
        survivors = [0, 2]
        _MEMORY_CACHE.clear()
        with faults.inject_worker_faults(
            [faults.WorkerFault(victim, mode="crash", times=99)],
            tmp_path / "state",
        ):
            dataset = build_dataset(
                SMALL_CONFIG, population, cache_dir=tmp_path / "cache",
                jobs=2, retry_backoff=0.0, strict=False,
            )
        _MEMORY_CACHE.clear()
        assert dataset.names == tuple(
            population[i].full_name for i in survivors
        )
        assert np.array_equal(dataset.mica, ref.mica[survivors])
        assert np.array_equal(dataset.hpc, ref.hpc[survivors])
        assert [s.name for s in dataset.report.failed] == [victim]
        # A salvage build must never poison the dataset-level cache.
        assert not list((tmp_path / "cache").glob("dataset-*.npz"))

    def test_error_mode_attempts_accounting(self, population, tmp_path):
        victim = population[2].full_name
        _MEMORY_CACHE.clear()
        with faults.inject_worker_faults(
            [faults.WorkerFault(victim, mode="error", times=2)],
            tmp_path / "state",
        ):
            dataset = build_dataset(
                SMALL_CONFIG, population, cache_dir=tmp_path / "cache",
                jobs=2, retry_backoff=0.0, max_attempts=3,
            )
        _MEMORY_CACHE.clear()
        status = next(
            s for s in dataset.report.statuses if s.name == victim
        )
        assert status.ok and status.attempts == 3

    def test_error_mode_exhausts_attempts_strict(
        self, population, tmp_path
    ):
        victim = population[2].full_name
        _MEMORY_CACHE.clear()
        with faults.inject_worker_faults(
            [faults.WorkerFault(victim, mode="error", times=5)],
            tmp_path / "state",
        ):
            with pytest.raises(DatasetBuildError, match="1 of 3"):
                build_dataset(
                    SMALL_CONFIG, population,
                    cache_dir=tmp_path / "cache",
                    jobs=2, retry_backoff=0.0, max_attempts=2,
                )
        _MEMORY_CACHE.clear()

    def test_timeout_mode_serial_retry(
        self, reference, population, tmp_path
    ):
        ref, _ = reference
        victim = population[0].full_name
        _MEMORY_CACHE.clear()
        with faults.inject_worker_faults(
            [faults.WorkerFault(victim, mode="timeout", times=1)],
            tmp_path / "state",
        ):
            dataset = build_dataset(
                SMALL_CONFIG, population, cache_dir=tmp_path / "cache",
                jobs=1, retry_backoff=0.0,
            )
        _MEMORY_CACHE.clear()
        assert np.array_equal(dataset.mica, ref.mica)
        status = next(
            s for s in dataset.report.statuses if s.name == victim
        )
        assert status.ok and status.attempts == 2

    def test_serial_persistent_error_strict(self, population, tmp_path):
        victim = population[1].full_name
        _MEMORY_CACHE.clear()
        with faults.inject_worker_faults(
            [faults.WorkerFault(victim, mode="error", times=99)],
            tmp_path / "state",
        ):
            with pytest.raises(DatasetBuildError) as excinfo:
                build_dataset(
                    SMALL_CONFIG, population,
                    cache_dir=tmp_path / "cache",
                    jobs=1, retry_backoff=0.0,
                )
        _MEMORY_CACHE.clear()
        assert [s.name for s in excinfo.value.report.failed] == [victim]


class TestDegradedBuild:
    def test_store_faults_degrade_but_build_matches(
        self, reference, population, tmp_path
    ):
        ref, _ = reference
        reset_cache_degradation()
        _MEMORY_CACHE.clear()
        with pytest.warns(CacheDegradedWarning):
            with faults.inject_io_faults("store", indices=range(64)):
                dataset = build_dataset(
                    SMALL_CONFIG, population,
                    cache_dir=tmp_path / "cache", jobs=1,
                )
        _MEMORY_CACHE.clear()
        reset_cache_degradation()
        assert np.array_equal(dataset.mica, ref.mica)
        assert np.array_equal(dataset.hpc, ref.hpc)
        assert not list((tmp_path / "cache").glob("tmp-*.npz"))
