"""Tests for the repro.trace package (container, builder, filters,
stats, validation)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa import NO_REG, OpClass, TRACE_DTYPE
from repro.trace import (
    Trace,
    TraceBuilder,
    head,
    sample_interval,
    sample_random,
    split_windows,
    summarize,
    validate_trace,
)


def build_mixed_trace(n: int = 60) -> Trace:
    builder = TraceBuilder(name="mixed")
    for index in range(n):
        pc = 0x1000 + 4 * index
        kind = index % 5
        if kind == 0:
            builder.load(pc, dst=1, addr_reg=2, mem_addr=0x2000 + 8 * index)
        elif kind == 1:
            builder.store(pc, value_reg=1, addr_reg=2,
                          mem_addr=0x3000 + 8 * index)
        elif kind == 2:
            builder.branch(pc, cond_reg=1, taken=index % 2 == 0,
                           target=0x1000)
        elif kind == 3:
            builder.alu(pc, dst=3, src1=1, src2=2)
        else:
            builder.fp(pc, dst=33, src1=34)
    return builder.build()


class TestTraceContainer:
    def test_length_and_iteration(self):
        trace = build_mixed_trace(25)
        assert len(trace) == 25
        records = list(trace)
        assert len(records) == 25
        assert records[0].opclass == OpClass.LOAD

    def test_indexing_returns_record(self):
        trace = build_mixed_trace(10)
        record = trace[3]
        assert record.opclass == OpClass.INT_ALU

    def test_slicing_returns_trace(self):
        trace = build_mixed_trace(20)
        sliced = trace[5:10]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 5

    def test_data_is_read_only(self):
        trace = build_mixed_trace(10)
        with pytest.raises((ValueError, RuntimeError)):
            trace.data["pc"][0] = 7

    def test_masks_partition_memory(self):
        trace = build_mixed_trace(50)
        assert (trace.load_mask & trace.store_mask).sum() == 0
        assert (trace.load_mask | trace.store_mask).sum() == (
            trace.memory_mask.sum()
        )

    def test_branch_streams_align(self):
        trace = build_mixed_trace(50)
        assert len(trace.branch_pcs) == len(trace.branch_outcomes)
        assert len(trace.branch_pcs) == int(trace.branch_mask.sum())

    def test_class_counts_sum_to_length(self):
        trace = build_mixed_trace(37)
        assert sum(trace.class_counts().values()) == 37

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TraceError):
            Trace(np.zeros(4, dtype=np.int64))

    def test_from_records_round_trip(self):
        trace = build_mixed_trace(8)
        rebuilt = Trace.from_records(list(trace), name="copy")
        assert np.array_equal(trace.data, rebuilt.data)

    def test_concat(self):
        a = build_mixed_trace(5)
        b = build_mixed_trace(7)
        joined = a.concat(b)
        assert len(joined) == 12
        assert np.array_equal(joined.data[:5], a.data)

    def test_empty(self):
        trace = Trace.empty()
        assert len(trace) == 0
        assert list(trace) == []


class TestTraceBuilder:
    def test_typed_helpers_set_classes(self):
        builder = TraceBuilder()
        builder.load(0x0, dst=1, addr_reg=2, mem_addr=0x100)
        builder.store(0x4, value_reg=1, addr_reg=2, mem_addr=0x108)
        builder.branch(0x8, cond_reg=1, taken=True, target=0x0)
        builder.jump(0xC, target=0x0)
        builder.alu(0x10, dst=1)
        builder.mul(0x14, dst=1, src1=2, src2=3)
        builder.fp(0x18, dst=33)
        builder.nop(0x1C)
        trace = builder.build()
        classes = [record.opclass for record in trace]
        assert classes == [
            OpClass.LOAD, OpClass.STORE, OpClass.BRANCH, OpClass.BRANCH,
            OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP, OpClass.NOP,
        ]

    def test_grows_beyond_initial_capacity(self):
        builder = TraceBuilder(capacity=2)
        for index in range(100):
            builder.alu(4 * index, dst=1)
        assert len(builder.build()) == 100

    def test_rejects_memory_without_address(self):
        builder = TraceBuilder()
        with pytest.raises(TraceError):
            builder.append(0x0, OpClass.LOAD, dst=1)

    def test_rejects_bad_register(self):
        builder = TraceBuilder()
        with pytest.raises(TraceError):
            builder.alu(0x0, dst=200)

    def test_build_is_snapshot(self):
        builder = TraceBuilder()
        builder.alu(0x0, dst=1)
        first = builder.build()
        builder.alu(0x4, dst=1)
        second = builder.build()
        assert len(first) == 1
        assert len(second) == 2


class TestFilters:
    def test_head(self):
        trace = build_mixed_trace(30)
        assert len(head(trace, 10)) == 10
        assert len(head(trace, 100)) == 30

    def test_head_negative_rejected(self):
        with pytest.raises(TraceError):
            head(build_mixed_trace(5), -1)

    def test_sample_interval(self):
        trace = build_mixed_trace(100)
        sampled = sample_interval(trace, period=10, length=3)
        assert len(sampled) == 30

    def test_sample_interval_validation(self):
        trace = build_mixed_trace(10)
        with pytest.raises(TraceError):
            sample_interval(trace, period=2, length=5)
        with pytest.raises(TraceError):
            sample_interval(trace, period=0, length=1)

    def test_sample_random_fraction_bounds(self):
        trace = build_mixed_trace(10)
        with pytest.raises(TraceError):
            sample_random(trace, 0.0)
        with pytest.raises(TraceError):
            sample_random(trace, 1.5)

    def test_sample_random_is_seeded(self):
        trace = build_mixed_trace(200)
        a = sample_random(trace, 0.5, seed=3)
        b = sample_random(trace, 0.5, seed=3)
        assert np.array_equal(a.data, b.data)

    def test_split_windows_drop_last(self):
        trace = build_mixed_trace(25)
        windows = split_windows(trace, 10)
        assert [len(w) for w in windows] == [10, 10]

    def test_split_windows_keep_last(self):
        trace = build_mixed_trace(25)
        windows = split_windows(trace, 10, drop_last=False)
        assert [len(w) for w in windows] == [10, 10, 5]


class TestStatsAndValidate:
    def test_summary_counts(self):
        trace = build_mixed_trace(50)
        summary = summarize(trace)
        assert summary.instruction_count == 50
        counts = trace.class_counts()
        assert summary.load_count == counts[OpClass.LOAD]
        assert summary.branch_count == counts[OpClass.BRANCH]
        assert 0.0 <= summary.branch_taken_fraction <= 1.0
        assert summary.memory_fraction == pytest.approx(
            (summary.load_count + summary.store_count) / 50
        )

    def test_summary_format_renders(self):
        text = summarize(build_mixed_trace(10)).format()
        assert "instructions" in text

    def test_validate_accepts_good_trace(self, small_trace):
        validate_trace(small_trace)

    def test_validate_rejects_bad_opclass(self):
        data = np.zeros(1, dtype=TRACE_DTYPE)
        data["opclass"] = 99
        with pytest.raises(TraceError):
            validate_trace(Trace(data))

    def test_validate_rejects_bad_register(self):
        data = np.zeros(1, dtype=TRACE_DTYPE)
        data["opclass"] = int(OpClass.INT_ALU)
        data["src1"] = 99
        data["src2"] = NO_REG
        data["dst"] = NO_REG
        with pytest.raises(TraceError):
            validate_trace(Trace(data))

    def test_validate_rejects_memory_without_address(self):
        data = np.zeros(1, dtype=TRACE_DTYPE)
        data["opclass"] = int(OpClass.LOAD)
        data["src1"] = NO_REG
        data["src2"] = NO_REG
        data["dst"] = 1
        with pytest.raises(TraceError):
            validate_trace(Trace(data))

    def test_validate_rejects_taken_non_branch(self):
        data = np.zeros(1, dtype=TRACE_DTYPE)
        data["opclass"] = int(OpClass.INT_ALU)
        data["src1"] = NO_REG
        data["src2"] = NO_REG
        data["dst"] = 1
        data["taken"] = 1
        with pytest.raises(TraceError):
            validate_trace(Trace(data))

    def test_validate_rejects_taken_branch_without_target(self):
        data = np.zeros(1, dtype=TRACE_DTYPE)
        data["opclass"] = int(OpClass.BRANCH)
        data["src1"] = NO_REG
        data["src2"] = NO_REG
        data["dst"] = NO_REG
        data["taken"] = 1
        data["target"] = 0
        with pytest.raises(TraceError):
            validate_trace(Trace(data))

    def test_validate_empty_trace_ok(self):
        validate_trace(Trace.empty())
