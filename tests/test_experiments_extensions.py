"""Tests for the extension experiments (input sensitivity, subsetting)."""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.experiments import (
    build_dataset,
    run_input_sensitivity,
    run_subsetting,
)
from repro.workloads import get_benchmark

SMALL_CONFIG = ReproConfig(
    trace_length=8_000, ga_generations=6, ga_population=12
)


@pytest.fixture(scope="module")
def multi_input_dataset():
    """A small population including multi-input programs."""
    names = [
        "spec2000/bzip2/graphic",
        "spec2000/bzip2/program",
        "spec2000/bzip2/source",
        "spec2000/gzip/graphic",
        "spec2000/gzip/log",
        "spec2000/mcf/ref",
        "mibench/adpcm/rawcaudio",
        "mibench/adpcm/rawdaudio",
        "bioinfomark/blast/protein",
    ]
    return build_dataset(
        SMALL_CONFIG,
        benchmarks=[get_benchmark(name) for name in names],
        use_cache=False,
        workers=1,
    )


class TestInputSensitivity:
    def test_multi_input_programs_found(self, multi_input_dataset):
        result = run_input_sensitivity(multi_input_dataset)
        assert set(result.per_program) == {"bzip2", "gzip", "adpcm"}
        assert result.per_program["bzip2"][0] == 3

    def test_same_program_closer_than_cross(self, multi_input_dataset):
        result = run_input_sensitivity(multi_input_dataset)
        assert result.intra_mean < result.inter_mean
        assert result.separation > 1.0

    def test_percentile_low(self, multi_input_dataset):
        result = run_input_sensitivity(multi_input_dataset)
        assert result.intra_percentile < 0.5

    def test_format_renders(self, multi_input_dataset):
        text = run_input_sensitivity(multi_input_dataset).format()
        assert "bzip2" in text
        assert "separation" in text


class TestSubsetting:
    def test_subset_smaller_than_population(self, multi_input_dataset):
        result = run_subsetting(
            multi_input_dataset, SMALL_CONFIG
        )
        assert 1 <= result.subset.size < len(multi_input_dataset)
        assert 0.0 < result.reduction < 1.0

    def test_representatives_are_population_members(
        self, multi_input_dataset
    ):
        result = run_subsetting(multi_input_dataset, SMALL_CONFIG)
        for representative in result.subset.representatives:
            assert 0 <= representative < len(multi_input_dataset)

    def test_errors_finite(self, multi_input_dataset):
        result = run_subsetting(multi_input_dataset, SMALL_CONFIG)
        assert np.isfinite(result.hpc_errors).all()
        assert (result.hpc_errors >= 0.0).all()

    def test_format_renders(self, multi_input_dataset):
        text = run_subsetting(multi_input_dataset, SMALL_CONFIG).format()
        assert "representative subset" in text
        assert "simulation reduction" in text


class TestPhaseHomogeneity:
    @pytest.fixture(scope="class")
    def homogeneity_result(self):
        from repro.experiments import run_phase_homogeneity

        return run_phase_homogeneity(
            ReproConfig(trace_length=6_000),
            benchmarks=("spec2000/gcc/166", "spec2000/mcf/ref"),
            interval=1_000,
        )

    def test_one_row_per_benchmark(self, homogeneity_result):
        assert len(homogeneity_result.rows) == 2
        names = [row.name for row in homogeneity_result.rows]
        assert names == ["spec2000/gcc/166", "spec2000/mcf/ref"]

    def test_rows_are_consistent(self, homogeneity_result):
        for row in homogeneity_result.rows:
            assert row.intervals == 6
            assert 1 <= row.k <= row.intervals
            assert row.within_std <= row.overall_std + 1e-9
            assert row.true_mean > 0.0
            assert np.isfinite(row.simpoint_estimate)
            assert row.simpoint_error < 1.0

    def test_simpoint_estimate_near_truth(self, homogeneity_result):
        # The SimPoint premise on this substrate: the phase-weighted
        # simulation-point IPC approximates the whole-run interval mean.
        assert homogeneity_result.mean_simpoint_error < 0.25

    def test_signature_choice_respected(self):
        from repro.experiments import run_phase_homogeneity

        result = run_phase_homogeneity(
            ReproConfig(trace_length=4_000),
            benchmarks=("spec2000/mcf/ref",),
            interval=1_000,
            signature="mica",
        )
        assert result.signature == "mica"
        assert len(result.rows) == 1

    def test_format_renders(self, homogeneity_result):
        text = homogeneity_result.format()
        assert "Phase homogeneity" in text
        assert "ipc_ev56" in text
        assert "simpoint err" in text
