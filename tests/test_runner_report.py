"""Tests for the full-report runner (including extensions)."""

import pytest

from repro.config import ReproConfig
from repro.experiments import build_dataset, run_all

SMALL_CONFIG = ReproConfig(
    trace_length=8_000, ga_generations=6, ga_population=12
)


@pytest.fixture(scope="module")
def report(small_population):
    dataset = build_dataset(
        SMALL_CONFIG, benchmarks=small_population, use_cache=False, workers=1
    )
    return run_all(SMALL_CONFIG, dataset=dataset, include_extensions=True)


class TestFullReport:
    def test_extension_sections_present(self, report):
        assert report.input_sensitivity is not None
        assert report.subsetting is not None
        text = report.format()
        assert "Input-set sensitivity" in text
        assert "Benchmark subsetting" in text

    def test_extensions_optional(self, small_population):
        dataset = build_dataset(
            SMALL_CONFIG, benchmarks=small_population, use_cache=False,
            workers=1,
        )
        plain = run_all(SMALL_CONFIG, dataset=dataset)
        assert plain.input_sensitivity is None
        assert plain.subsetting is None
        assert "Input-set sensitivity" not in plain.format()

    def test_report_sections_ordered(self, report):
        text = report.format()
        positions = [
            text.index(marker)
            for marker in ("Figure 1", "Table III", "Figures 2-3",
                           "Figure 4", "Figure 5", "Table IV", "Figure 6")
        ]
        assert positions == sorted(positions)

    def test_kiviat_toggle(self, report):
        with_kiviats = report.format(kiviat_plots=True)
        without = report.format(kiviat_plots=False)
        assert len(with_kiviats) > len(without)
