"""Resumable dataset builds: journal recording, replay, convergence.

The contract under test: a journaled build interrupted at *any* point
and finished with ``resume_dataset`` produces matrices bit-for-bit
identical to an uninterrupted cold serial build — completed benchmarks
are never recomputed (their journaled float64 vectors are exact),
completed-but-corrupted cache entries are quarantined and rebuilt, and
a journal written for a different build is refused.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import JournalError
from repro.experiments import (
    build_dataset,
    dataset_journal_path,
    resume_dataset,
)
from repro.experiments.dataset import _MEMORY_CACHE
from repro.perf import replay_journal
from repro.workloads import all_benchmarks

from conftest import TEST_CONFIG

POPULATION = all_benchmarks()[:4]


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    """Journal semantics are about *disk* state; defeat the memo."""
    _MEMORY_CACHE.clear()
    yield
    _MEMORY_CACHE.clear()


def _rows(dataset):
    return [
        (status.name, status.ok, status.error)
        for status in dataset.report.statuses
    ]


def _reference(cache_dir):
    return build_dataset(
        TEST_CONFIG, benchmarks=POPULATION, cache_dir=cache_dir, jobs=1
    )


class TestJournaledBuild:
    def test_journaled_build_matches_plain_build(self, tmp_path):
        reference = _reference(tmp_path / "cold")
        _MEMORY_CACHE.clear()
        journal = tmp_path / "journal.jsonl"
        dataset = build_dataset(
            TEST_CONFIG, benchmarks=POPULATION,
            cache_dir=tmp_path / "warm", jobs=1, journal=journal,
        )
        assert dataset.mica.tobytes() == reference.mica.tobytes()
        assert dataset.hpc.tobytes() == reference.hpc.tobytes()
        assert _rows(dataset) == _rows(reference)

    def test_journal_records_full_lifecycle(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        build_dataset(
            TEST_CONFIG, benchmarks=POPULATION, cache_dir=tmp_path,
            jobs=1, journal=journal,
        )
        records = replay_journal(journal).records
        events = [record["event"] for record in records]
        assert events[0] == "build-started"
        assert events.count("admitted") == len(POPULATION)
        assert events.count("attempt-started") == len(POPULATION)
        assert events.count("completed") == len(POPULATION)
        completed = [r for r in records if r["event"] == "completed"]
        for record in completed:
            assert set(record["entries"]) == {"trace", "char", "hpc"}
            # Vectors are exact float64 bytes, not lossy repr.
            mica = np.frombuffer(
                bytes.fromhex(record["mica"]), dtype=np.float64
            )
            assert mica.size > 0 and np.isfinite(mica).all()

    def test_default_journal_path_is_keyed(self, tmp_path):
        path = dataset_journal_path(
            TEST_CONFIG, benchmarks=POPULATION, cache_dir=tmp_path
        )
        assert path.parent == tmp_path
        assert path.name.startswith("journal-dataset-")
        other = dataset_journal_path(
            TEST_CONFIG.with_overrides(trace_length=4_999),
            benchmarks=POPULATION, cache_dir=tmp_path,
        )
        assert other != path


class TestResume:
    def _interrupted_journal(self, tmp_path, keep_completed=2):
        """Build fully, then cut the journal back to a prefix in which
        only ``keep_completed`` benchmarks completed — the on-disk
        state a kill between those completions would leave (cache
        entries for finished work survive either way)."""
        cache = tmp_path / "cache"
        journal = tmp_path / "journal.jsonl"
        build_dataset(
            TEST_CONFIG, benchmarks=POPULATION, cache_dir=cache,
            jobs=1, journal=journal,
        )
        # Drop the dataset-level matrices: an interrupted build never
        # wrote them, and they would short-circuit the resume.
        for path in cache.glob("dataset-*.npz"):
            path.unlink()
        _MEMORY_CACHE.clear()
        lines = journal.read_bytes().splitlines(keepends=True)
        completed_seen = 0
        cut = len(lines)
        for index, line in enumerate(lines):
            if b'"completed"' in line:
                completed_seen += 1
                if completed_seen > keep_completed:
                    cut = index
                    break
        journal.write_bytes(b"".join(lines[:cut]))
        return cache, journal

    def test_resume_converges_bit_for_bit(self, tmp_path):
        reference = _reference(tmp_path / "cold")
        _MEMORY_CACHE.clear()
        cache, journal = self._interrupted_journal(tmp_path)
        resumed = resume_dataset(
            TEST_CONFIG, benchmarks=POPULATION, cache_dir=cache,
            jobs=1, journal=journal,
        )
        assert resumed.mica.tobytes() == reference.mica.tobytes()
        assert resumed.hpc.tobytes() == reference.hpc.tobytes()
        assert _rows(resumed) == _rows(reference)

    def test_resume_with_torn_tail_and_corrupt_entry(self, tmp_path):
        reference = _reference(tmp_path / "cold")
        _MEMORY_CACHE.clear()
        cache, journal = self._interrupted_journal(tmp_path)
        # Tear the journal tail (crash mid-append)...
        with open(journal, "ab") as handle:
            handle.write(b'{"fmt": "repro-journal/1", "seq":')
        # ...and rot the char entry under one completed benchmark.
        completed = [
            record for record in replay_journal(journal).records
            if record["event"] == "completed"
        ]
        assert completed
        from pathlib import Path

        char_entry = Path(completed[0]["entries"]["char"])
        assert char_entry.is_file()
        char_entry.write_bytes(b"rotten bytes")
        resumed = resume_dataset(
            TEST_CONFIG, benchmarks=POPULATION, cache_dir=cache,
            jobs=1, journal=journal,
        )
        assert resumed.mica.tobytes() == reference.mica.tobytes()
        assert resumed.hpc.tobytes() == reference.hpc.tobytes()
        assert len(resumed.report.quarantines) >= 1

    def test_resume_without_cache_uses_journaled_vectors(self, tmp_path):
        reference = build_dataset(
            TEST_CONFIG, benchmarks=POPULATION, use_cache=False, jobs=1
        )
        journal = tmp_path / "journal.jsonl"
        build_dataset(
            TEST_CONFIG, benchmarks=POPULATION, use_cache=False,
            jobs=1, journal=journal,
        )
        lines = journal.read_bytes().splitlines(keepends=True)
        cut = [
            index for index, line in enumerate(lines)
            if b'"completed"' in line
        ][1]
        journal.write_bytes(b"".join(lines[: cut + 1]))
        resumed = resume_dataset(
            TEST_CONFIG, benchmarks=POPULATION, use_cache=False,
            jobs=1, journal=journal,
        )
        assert resumed.mica.tobytes() == reference.mica.tobytes()
        assert resumed.hpc.tobytes() == reference.hpc.tobytes()

    def test_foreign_journal_is_refused(self, tmp_path):
        cache, journal = self._interrupted_journal(tmp_path)
        foreign_config = TEST_CONFIG.with_overrides(trace_length=4_000)
        with pytest.raises(JournalError):
            resume_dataset(
                foreign_config, benchmarks=POPULATION,
                cache_dir=cache, jobs=1, journal=journal,
            )

    def test_resume_of_complete_journal_recomputes_nothing(
        self, tmp_path, monkeypatch
    ):
        reference = _reference(tmp_path / "cold")
        _MEMORY_CACHE.clear()
        cache, journal = self._interrupted_journal(
            tmp_path, keep_completed=len(POPULATION)
        )
        import repro.experiments.dataset as dataset_module

        def boom(*args, **kwargs):
            raise AssertionError(
                "resume of a complete journal must not characterize"
            )

        monkeypatch.setattr(dataset_module, "_characterize_one", boom)
        resumed = resume_dataset(
            TEST_CONFIG, benchmarks=POPULATION, cache_dir=cache,
            jobs=1, journal=journal,
        )
        assert resumed.mica.tobytes() == reference.mica.tobytes()
        assert resumed.hpc.tobytes() == reference.hpc.tobytes()
