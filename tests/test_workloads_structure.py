"""Structural tests over the suite definition modules.

Every suite module must declare well-formed entries whose overrides
construct valid profiles; Table I totals and spot values are pinned.
"""

import pytest

from repro.workloads import (
    bioinfomark,
    biometrics,
    commbench,
    mediabench,
    mibench,
    spec2000,
)
from repro.workloads.builder import build_profile

SUITE_MODULES = [
    bioinfomark, biometrics, commbench, mediabench, mibench, spec2000,
]


@pytest.mark.parametrize(
    "module", SUITE_MODULES, ids=lambda m: m.NAME
)
class TestSuiteModules:
    def test_entries_unique(self, module):
        pairs = [(program, label) for program, label, _, _ in module.ENTRIES]
        assert len(pairs) == len(set(pairs))

    def test_icounts_positive(self, module):
        assert all(icount > 0 for _, _, icount, _ in module.ENTRIES)

    def test_overrides_build_valid_profiles(self, module):
        for program, label, _, overrides in module.ENTRIES:
            profile = build_profile(
                module.THEME, module.NAME, program, label, overrides
            )
            assert profile.name == f"{module.NAME}/{program}/{label}"

    def test_theme_ranges_well_formed(self, module):
        theme = module.THEME
        for field in ("load", "store", "branch", "int_alu", "int_mul",
                      "fp", "footprint_log2", "num_functions",
                      "loop_iter_mean", "dep_mean", "pattern_fraction",
                      "taken_bias"):
            low, high = getattr(theme, field)
            assert low <= high, f"{module.NAME}.{field}"

    def test_descriptions_present(self, module):
        assert module.NAME
        assert module.DESCRIPTION


class TestTable1Pinned:
    """Pin the per-suite sizes and a sample of I-counts to Table I."""

    def test_sizes(self):
        sizes = {module.NAME: len(module.ENTRIES)
                 for module in SUITE_MODULES}
        assert sizes == {
            "bioinfomark": 12,
            "biometrics": 8,
            "commbench": 12,
            "mediabench": 12,
            "mibench": 30,
            "spec2000": 48,
        }

    @pytest.mark.parametrize(
        "module,program,label,icount",
        [
            (bioinfomark, "hmmer", "search-sprot", 1_785_862),
            (bioinfomark, "clustalw", "clustalw", 884_859),
            (biometrics, "csu", "subspace-train-lda", 51_297),
            (commbench, "reed", "decode", 1_298),
            (mediabench, "mpeg2", "encode", 1_528),
            (mibench, "basicmath", "large", 1_523),
            (mibench, "tiff", "dither", 1_228),
            (spec2000, "parser", "ref", 530_784),
            (spec2000, "sixtrack", "ref", 452_446),
            (spec2000, "perlbmk", "makerand", 2_055),
        ],
    )
    def test_spot_icounts(self, module, program, label, icount):
        match = [
            entry_icount
            for entry_program, entry_label, entry_icount, _ in module.ENTRIES
            if entry_program == program and entry_label == label
        ]
        assert match == [icount]

    def test_footprints_reflect_suite_scale(self):
        """Embedded suites must sit below bioinformatics footprints."""
        def median_footprint(module):
            values = sorted(
                build_profile(module.THEME, module.NAME, program, label,
                              overrides).memory.footprint_bytes
                for program, label, _, overrides in module.ENTRIES
            )
            return values[len(values) // 2]

        assert median_footprint(commbench) < median_footprint(spec2000)
        assert median_footprint(mibench) < median_footprint(bioinfomark)
        assert median_footprint(spec2000) < median_footprint(bioinfomark)
