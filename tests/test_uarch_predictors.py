"""Tests for the hardware branch predictors."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.uarch import (
    BimodalPredictor,
    GSharePredictor,
    LocalHistoryPredictor,
    TournamentPredictor,
    simulate_predictor,
)


def run(predictor, pcs, outcomes):
    stats = simulate_predictor(
        predictor,
        np.asarray(pcs, dtype=np.uint64),
        np.asarray(outcomes, dtype=bool),
    )
    return 1.0 - stats.misprediction_rate


class TestBimodal:
    def test_learns_constant_branch(self):
        accuracy = run(BimodalPredictor(), [0x1000] * 500, [True] * 500)
        assert accuracy > 0.95

    def test_struggles_with_alternation(self):
        outcomes = [i % 2 == 0 for i in range(500)]
        accuracy = run(BimodalPredictor(), [0x1000] * 500, outcomes)
        assert accuracy < 0.7  # No history: alternation defeats 2-bit.

    def test_rejects_non_power_of_two(self):
        with pytest.raises(SimulationError):
            BimodalPredictor(entries=1000)

    def test_saturating_counters_resist_noise(self):
        # One not-taken glitch in a taken stream costs at most one
        # following misprediction.
        outcomes = [True] * 100 + [False] + [True] * 100
        accuracy = run(BimodalPredictor(), [0x1000] * 201, outcomes)
        assert accuracy > 0.97


class TestGShare:
    def test_learns_alternation(self):
        outcomes = [i % 2 == 0 for i in range(1000)]
        accuracy = run(GSharePredictor(), [0x1000] * 1000, outcomes)
        assert accuracy > 0.9

    def test_learns_cross_branch_correlation(self):
        rng = np.random.default_rng(0)
        predictor = GSharePredictor()
        correct = 0
        n = 2000
        for _ in range(n):
            first = bool(rng.random() < 0.5)
            predictor.update(0x1000, first)
            if predictor.predict(0x2000) == first:
                correct += 1
            predictor.update(0x2000, first)
        assert correct / n > 0.8


class TestLocalHistory:
    def test_learns_periodic_pattern(self):
        pattern = [True, True, False]
        outcomes = [pattern[i % 3] for i in range(1500)]
        accuracy = run(LocalHistoryPredictor(), [0x1000] * 1500, outcomes)
        assert accuracy > 0.9

    def test_separate_histories_per_pc(self):
        predictor = LocalHistoryPredictor()
        # Branch A alternates, branch B always taken; interleaved.
        correct_b = 0
        for index in range(1000):
            predictor.update(0x1000, index % 2 == 0)
            if predictor.predict(0x2000):
                correct_b += 1
            predictor.update(0x2000, True)
        assert correct_b / 1000 > 0.85


class TestTournament:
    def test_beats_components_on_mixed_workload(self):
        # Mix of a local-friendly periodic branch and a globally
        # correlated pair; the tournament should do well on both.
        rng = np.random.default_rng(2)
        tournament = TournamentPredictor()
        pcs = []
        outcomes = []
        for index in range(1500):
            pcs.append(0x1000)
            outcomes.append(index % 2 == 0)  # Alternating.
            lead = bool(rng.random() < 0.5)
            pcs.append(0x2000)
            outcomes.append(lead)
            pcs.append(0x3000)
            outcomes.append(lead)  # Copies the previous branch.
        accuracy = run(tournament, pcs, outcomes)
        assert accuracy > 0.8

    def test_chooser_picks_better_component(self):
        # Purely periodic per-branch patterns: local component wins and
        # the tournament should converge to near-local accuracy.
        pattern = [True, False, False, True]
        outcomes = [pattern[i % 4] for i in range(2000)]
        tournament_accuracy = run(
            TournamentPredictor(), [0x1000] * 2000, outcomes
        )
        assert tournament_accuracy > 0.85


class TestSimulatePredictor:
    def test_mask_matches_stats(self):
        rng = np.random.default_rng(3)
        pcs = np.full(300, 0x1000, dtype=np.uint64)
        outcomes = rng.random(300) < 0.7
        stats, mask = simulate_predictor(
            BimodalPredictor(), pcs, outcomes, return_mask=True
        )
        assert mask.sum() == stats.mispredictions
        assert stats.branches == 300

    def test_empty_stream(self):
        stats = simulate_predictor(
            BimodalPredictor(),
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=bool),
        )
        assert stats.misprediction_rate == 0.0
