"""Landscape tests: the characteristic relationships the paper's
narrative depends on must hold between the synthetic benchmarks.

These are the load-bearing facts behind Figures 3 and 6 — if any of
them drifts, the clustering story (isolated blast/mcf/adpcm, grouped
SPECfp) silently falls apart, so they are pinned here as tests.
"""

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.mica import characterize
from repro.synth import generate_trace
from repro.workloads import get_benchmark

CONFIG = ReproConfig(trace_length=20_000)

_VECTORS = {}


def vector(name):
    if name not in _VECTORS:
        benchmark = get_benchmark(name)
        trace = generate_trace(benchmark.profile, CONFIG.trace_length)
        _VECTORS[name] = characterize(trace, CONFIG)
    return _VECTORS[name]


class TestWorkingSetLandscape:
    def test_blast_has_the_largest_data_working_set(self):
        blast = vector("blast")["ws_data_pages"]
        for other in ("bzip2/graphic", "adpcm/rawcaudio", "swim",
                      "gzip/log", "cast/decode"):
            assert blast > vector(other)["ws_data_pages"]

    def test_adpcm_has_a_tiny_working_set(self):
        adpcm = vector("adpcm/rawcaudio")
        assert adpcm["ws_data_pages"] <= 4
        assert adpcm["ws_instr_pages"] <= 2

    def test_gcc_has_the_largest_instruction_working_set(self):
        gcc = vector("gcc/166")["ws_instr_blocks"]
        for other in ("bzip2/graphic", "swim", "mcf", "adpcm/rawcaudio"):
            assert gcc > vector(other)["ws_instr_blocks"]


class TestIlpLandscape:
    def test_specfp_core_has_high_ilp(self):
        assert vector("swim")["ilp_w256"] > 2 * vector("mcf")["ilp_w256"]

    def test_mcf_is_serial(self):
        mcf = vector("mcf")
        assert mcf["reg_dep_le8"] > 0.9  # Short dependencies dominate.

    def test_specfp_has_long_dependencies(self):
        swim = vector("swim")
        mcf = vector("mcf")
        assert swim["reg_dep_le4"] < mcf["reg_dep_le4"]


class TestBranchLandscape:
    def test_kernels_are_most_predictable(self):
        adpcm = vector("adpcm/rawcaudio")["ppm_PAs"]
        gcc = vector("gcc/166")["ppm_PAs"]
        assert adpcm > gcc + 0.05

    def test_specfp_branches_predictable(self):
        swim = vector("swim")["ppm_GAg"]
        parser = vector("parser")["ppm_GAg"]
        assert swim > parser

    def test_branch_fraction_contrast(self):
        # Header-processing CommBench is branchy; SPECfp is not.
        drr = vector("drr")["mix_branches"]
        swim = vector("swim")["mix_branches"]
        assert drr > 2 * swim


class TestStrideLandscape:
    def test_streaming_benchmarks_have_small_local_strides(self):
        fasta = vector("fasta")
        mcf = vector("mcf")
        assert fasta["stride_local_load_le8"] > mcf["stride_local_load_le8"]

    def test_tiff_uses_large_strides(self):
        tiff = vector("tiff/2bw")
        # Strided accesses beyond 64 bytes but within 512.
        jump = tiff["stride_local_load_le512"] - tiff["stride_local_load_le64"]
        assert jump > 0.1

    def test_fp_fraction_contrast(self):
        swim = vector("swim")["mix_fp"]
        gzip = vector("gzip/log")["mix_fp"]
        assert swim > 0.3
        assert gzip < 0.02


class TestHpcLandscape:
    """Spot checks on the microarchitecture-dependent side."""

    @pytest.fixture(scope="class")
    def hpc(self):
        from repro.uarch import collect_hpc

        def compute(name):
            benchmark = get_benchmark(name)
            trace = generate_trace(benchmark.profile, CONFIG.trace_length)
            return collect_hpc(trace)

        return compute

    def test_kernel_ipc_beats_pointer_chaser(self, hpc):
        assert hpc("adpcm/rawcaudio")["ipc_ev56"] > 4 * hpc("mcf")["ipc_ev56"]

    def test_mcf_thrashes_the_tlb(self, hpc):
        assert hpc("mcf")["dtlb_miss_rate"] > 0.3
        assert hpc("adpcm/rawcaudio")["dtlb_miss_rate"] < 0.01

    def test_ooo_speedup_higher_for_ilp_rich_code(self, hpc):
        swim = hpc("swim")
        mcf = hpc("mcf")
        swim_speedup = swim["ipc_ev67"] / swim["ipc_ev56"]
        mcf_speedup = mcf["ipc_ev67"] / mcf["ipc_ev56"]
        assert swim_speedup > mcf_speedup
