"""Durable service jobs: SIGKILL the service, restart, recover.

The journaled service (``state_dir`` set) must survive uncatchable
process death: after a restart, jobs that reached a terminal state
keep answering ``GET /v1/jobs/<id>`` byte-identically from the
journal, and jobs that were admitted but never finished are re-run
under their original ids. Also pins the robustness counters: the
``journal`` recovery block and the ``quarantines`` counter on
``/v1/stats``.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.config import ReproConfig
from repro.perf.faults import corrupt_entry
from repro.service import CharacterizationService, ServiceSettings

CONFIG = ReproConfig(trace_length=4_000, ga_generations=4, ga_population=8)

# The child admits two jobs — one runs to done, one is still queued —
# then SIGKILLs itself. It prints one JSON line per job so the test
# can demand byte-identical payloads after recovery.
CHILD = textwrap.dedent("""
    import json, os, sys
    from repro.config import ReproConfig
    from repro.service import CharacterizationService, ServiceSettings
    config = ReproConfig(
        trace_length=4_000, ga_generations=4, ga_population=8)
    service = CharacterizationService(
        config=config,
        settings=ServiceSettings(
            cache_dir=sys.argv[2], state_dir=sys.argv[1], workers=1,
            default_deadline=30.0),
    ).start()
    status, body, _ = service.handle(
        "POST", "/v1/characterize",
        body={"benchmark": "spec2000/gzip/log", "wait": True})
    assert status == 200, (status, body)
    (job1,) = [job_id for job_id, job in service.registry._jobs.items()
               if job.kind == "characterize"]
    print(json.dumps({"job1": job1, "payload": body}), flush=True)
    status, body, _ = service.handle(
        "POST", "/v1/hpc", body={"benchmark": "spec2000/swim/ref"})
    assert status == 202, (status, body)
    print(json.dumps({"job2": body["job"]}), flush=True)
    os.kill(os.getpid(), 9)
""")


def _settings(tmp_path, **overrides):
    kwargs = dict(
        cache_dir=str(tmp_path / "cache"),
        state_dir=str(tmp_path / "state"),
        workers=1,
        default_deadline=30.0,
    )
    kwargs.update(overrides)
    return ServiceSettings(**kwargs)


def _kill_journaled_service(tmp_path):
    import os

    import repro

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    (tmp_path / "state").mkdir(exist_ok=True)
    proc = subprocess.run(
        [sys.executable, "-c", CHILD,
         str(tmp_path / "state"), str(tmp_path / "cache")],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, (
        proc.returncode, proc.stdout, proc.stderr,
    )
    first, second = [
        json.loads(line) for line in proc.stdout.splitlines() if line
    ]
    return first["job1"], first["payload"], second["job2"]


class TestRestartRecovery:
    def test_restart_recovers_terminal_and_interrupted_jobs(
        self, tmp_path
    ):
        job1, payload1, job2 = _kill_journaled_service(tmp_path)

        service = CharacterizationService(
            config=CONFIG, settings=_settings(tmp_path)
        ).start()
        try:
            recovery = service.stats()["journal"]
            assert recovery["recovered_terminal"] == 1, recovery
            assert recovery["resubmitted"] == 1, recovery

            # Terminal job: the journal answers, byte for byte.
            status, body, _ = service.handle("GET", f"/v1/jobs/{job1}")
            assert status == 200, (status, body)
            assert json.dumps(body, sort_keys=True) == json.dumps(
                payload1, sort_keys=True
            ), "recovered payload diverged from the pre-kill response"

            # Interrupted job: re-admitted under its old id, runs to
            # done on the restarted queue.
            status, body, _ = service.handle(
                "GET", f"/v1/jobs/{job2}", query={"wait": "60"}
            )
            assert status == 200, (status, body)
            assert body["kind"] == "hpc", body
            assert body["benchmark"] == "spec2000/swim/ref", body

            # New admissions continue past the recovered id floor
            # rather than colliding with journaled ids.
            status, body, _ = service.handle(
                "POST", "/v1/hpc", body={"benchmark": "mcf"},
            )
            assert status == 202, (status, body)
            suffix = int(body["job"].rsplit("-", 1)[-1], 16)
            assert suffix > int(job2.rsplit("-", 1)[-1], 16)

            status, body, _ = service.handle("GET", "/readyz")
            assert body["recovery"]["resubmitted"] == 1, body
        finally:
            assert service.drain(30.0)

        # Second restart reads the compacted journal: both jobs are
        # now terminal and still answer.
        service2 = CharacterizationService(
            config=CONFIG, settings=_settings(tmp_path)
        ).start()
        try:
            status, body, _ = service2.handle("GET", f"/v1/jobs/{job1}")
            assert status == 200
            assert json.dumps(body, sort_keys=True) == json.dumps(
                payload1, sort_keys=True
            ), "second restart lost the terminal payload"
            status, body, _ = service2.handle("GET", f"/v1/jobs/{job2}")
            assert status == 200, (status, body)
            assert body["benchmark"] == "spec2000/swim/ref", body
            recovery = service2.stats()["journal"]
            assert recovery["recovered_terminal"] >= 2, recovery
            assert recovery["resubmitted"] == 0, recovery
        finally:
            assert service2.drain(30.0)

    def test_restart_with_torn_journal_tail(self, tmp_path):
        job1, payload1, _ = _kill_journaled_service(tmp_path)
        journals = list((tmp_path / "state").glob("journal-*.jsonl"))
        assert len(journals) == 1, journals
        with open(journals[0], "ab") as handle:
            handle.write(b'{"fmt": "repro-journal/1", "seq": 99')

        service = CharacterizationService(
            config=CONFIG, settings=_settings(tmp_path)
        ).start()
        try:
            recovery = service.stats()["journal"]
            assert recovery["repaired_torn_tail"] is True, recovery
            status, body, _ = service.handle("GET", f"/v1/jobs/{job1}")
            assert status == 200
            assert json.dumps(body, sort_keys=True) == json.dumps(
                payload1, sort_keys=True
            )
        finally:
            assert service.drain(30.0)


class TestRobustnessCounters:
    def test_unjournaled_service_reports_no_journal_block(
        self, tmp_path
    ):
        service = CharacterizationService(
            config=CONFIG, settings=_settings(tmp_path, state_dir=None)
        ).start()
        try:
            stats = service.stats()
            assert "journal" not in stats
            assert stats["quarantines"] == 0
            status, body, _ = service.handle("GET", "/readyz")
            assert "recovery" not in body, body
        finally:
            assert service.drain(30.0)

    def test_quarantine_counter_counts_corrupt_entries(self, tmp_path):
        service = CharacterizationService(
            config=CONFIG, settings=_settings(tmp_path, state_dir=None)
        ).start()
        try:
            status, _, _ = service.handle(
                "POST", "/v1/characterize",
                body={"benchmark": "mcf", "wait": True},
            )
            assert status == 200
            assert service.stats()["quarantines"] == 0

            victim = sorted((tmp_path / "cache").glob("char-*.npz"))[0]
            corrupt_entry(victim, "bitflip", seed=3)

            status, _, headers = service.handle(
                "POST", "/v1/characterize",
                body={"benchmark": "mcf", "wait": True},
            )
            assert status == 200
            assert headers["X-Repro-Source"] == "computed", headers
            assert service.stats()["quarantines"] >= 1
        finally:
            assert service.drain(30.0)
