"""Tests for trace file formats (binary .mtf and text)."""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.trace import (
    TraceBuilder,
    read_trace,
    read_trace_text,
    write_trace,
    write_trace_text,
)
from repro.trace.io import MAGIC, trace_from_text


@pytest.fixture()
def sample_trace():
    builder = TraceBuilder(name="io-sample")
    builder.load(0x1000, dst=1, addr_reg=2, mem_addr=0x2000)
    builder.alu(0x1004, dst=3, src1=1, src2=2)
    builder.store(0x1008, value_reg=3, addr_reg=2, mem_addr=0x2008)
    builder.branch(0x100C, cond_reg=3, taken=True, target=0x1000)
    builder.branch(0x1010, cond_reg=3, taken=False, target=0x0)
    builder.fp(0x1014, dst=40, src1=41, src2=42)
    builder.nop(0x1018)
    return builder.build()


class TestBinaryFormat:
    def test_round_trip(self, sample_trace, tmp_path):
        path = tmp_path / "trace.mtf"
        write_trace(sample_trace, path)
        loaded = read_trace(path, name="io-sample")
        assert np.array_equal(loaded.data, sample_trace.data)

    def test_magic_is_first(self, sample_trace, tmp_path):
        path = tmp_path / "trace.mtf"
        write_trace(sample_trace, path)
        assert path.read_bytes()[:4] == MAGIC

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.mtf"
        path.write_bytes(b"XXXX" + b"\x00" * 8)
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "short.mtf"
        path.write_bytes(b"MT")
        with pytest.raises(TraceFormatError, match="truncated"):
            read_trace(path)

    def test_truncated_payload_rejected(self, sample_trace, tmp_path):
        path = tmp_path / "cut.mtf"
        write_trace(sample_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(TraceFormatError, match="payload"):
            read_trace(path)

    def test_empty_trace_round_trip(self, tmp_path):
        from repro.trace import Trace

        path = tmp_path / "empty.mtf"
        write_trace(Trace.empty(), path)
        assert len(read_trace(path)) == 0


class TestTextFormat:
    def test_round_trip_via_file(self, sample_trace, tmp_path):
        path = tmp_path / "trace.txt"
        write_trace_text(sample_trace, path)
        loaded = read_trace_text(path)
        assert np.array_equal(loaded.data, sample_trace.data)

    def test_round_trip_via_stream(self, sample_trace):
        buffer = io.StringIO()
        write_trace_text(sample_trace, buffer)
        buffer.seek(0)
        loaded = read_trace_text(buffer)
        assert np.array_equal(loaded.data, sample_trace.data)

    def test_comments_and_blanks_ignored(self):
        trace = trace_from_text(
            "# comment line\n"
            "\n"
            "0x1000 alu 3 1 2\n"
        )
        assert len(trace) == 1

    def test_hand_written_load(self):
        trace = trace_from_text("0x1000 ld 1 2 - 0x2000\n")
        record = trace[0]
        assert record.mem_addr == 0x2000
        assert record.dst == 1

    def test_hand_written_branch(self):
        trace = trace_from_text("0x1000 br - 3 - T 0x4000\n")
        record = trace[0]
        assert record.taken
        assert record.target == 0x4000

    @pytest.mark.parametrize(
        "line",
        [
            "0x1000 alu 3 1",              # Too few fields.
            "zzz alu 3 1 2",               # Bad PC.
            "0x1000 wat 3 1 2",            # Unknown class.
            "0x1000 alu 3 1 bad",          # Bad register.
            "0x1000 ld 1 2 -",             # Missing address.
            "0x1000 ld 1 2 - zz",          # Bad address.
            "0x1000 br - 3 -",             # Missing outcome.
            "0x1000 br - 3 - X 0x0",       # Bad outcome.
            "0x1000 br - 3 - T zz",        # Bad target.
            "0x1000 alu 3 1 2 extra",      # Trailing fields.
        ],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(TraceFormatError):
            trace_from_text(line + "\n")

    def test_external_trace_is_characterizable(self, tmp_path):
        """End-to-end: a text trace produced by external tooling can be
        consumed by the MICA analyzers."""
        from repro.mica import characterize
        from repro.config import ReproConfig

        lines = []
        for index in range(200):
            pc = 0x1000 + 4 * (index % 10)
            if index % 10 == 9:
                lines.append(f"{pc:#x} br - 3 - "
                             f"{'T' if index % 20 == 9 else 'N'} 0x1000")
            elif index % 3 == 0:
                lines.append(f"{pc:#x} ld 1 2 - {0x2000 + 8 * index:#x}")
            else:
                lines.append(f"{pc:#x} alu 3 1 2")
        path = tmp_path / "external.txt"
        path.write_text("\n".join(lines) + "\n")
        trace = read_trace_text(path)
        vector = characterize(trace, ReproConfig(trace_length=200))
        assert vector.values.shape == (47,)
