"""Shared fixtures.

Trace-producing fixtures are session-scoped and sized for speed: the
full library behavior is exercised with 2k-20k instruction traces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.synth import (
    BranchSpec,
    CodeSpec,
    MemorySpec,
    MixSpec,
    RegisterSpec,
    WorkloadProfile,
    generate_trace,
)
from repro.trace import Trace, TraceBuilder


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run tests marked slow (perf harness, end-to-end runs)",
    )


def pytest_collection_modifyitems(config, items):
    """Keep tier-1 ``pytest -x -q`` fast: deselect slow-marked tests."""
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


#: A fast configuration shared by tests that need one.
TEST_CONFIG = ReproConfig(
    trace_length=5_000,
    ga_generations=8,
    ga_population=16,
)


@pytest.fixture(scope="session")
def test_config() -> ReproConfig:
    return TEST_CONFIG


@pytest.fixture(scope="session")
def default_profile() -> WorkloadProfile:
    """A plain profile with default knobs."""
    return WorkloadProfile(name="test/default/1")


@pytest.fixture(scope="session")
def small_trace(default_profile) -> Trace:
    """A 5k-instruction synthetic trace."""
    return generate_trace(default_profile, 5_000)


@pytest.fixture(scope="session")
def serial_profile() -> WorkloadProfile:
    """A profile engineered for long dependency chains (low ILP)."""
    return WorkloadProfile(
        name="test/serial/1",
        registers=RegisterSpec(dep_mean=1.2, imm_fraction=0.02),
    )


@pytest.fixture(scope="session")
def parallel_profile() -> WorkloadProfile:
    """A profile engineered for high ILP."""
    return WorkloadProfile(
        name="test/parallel/1",
        registers=RegisterSpec(dep_mean=12.0, imm_fraction=0.4),
    )


@pytest.fixture(scope="session")
def fp_heavy_profile() -> WorkloadProfile:
    """A floating-point-dominated profile."""
    return WorkloadProfile(
        name="test/fp/1",
        mix=MixSpec.normalized(load=0.25, store=0.08, branch=0.06,
                               int_alu=0.2, int_mul=0.01, fp=0.4),
    )


@pytest.fixture()
def tiny_builder() -> TraceBuilder:
    """An empty builder for hand-crafted traces."""
    return TraceBuilder(name="test/hand/1")


def make_alu_chain(length: int, pool: int = 8, code_span: int = 64) -> Trace:
    """A fully serial ALU chain: each instruction reads the previous
    destination.  PCs loop over a small code region so instruction-cache
    behavior does not dominate pipeline-model tests."""
    builder = TraceBuilder(name="chain")
    for index in range(length):
        dst = 1 + (index % pool)
        src = 1 + ((index - 1) % pool) if index else 255
        builder.alu(pc=0x1000 + 4 * (index % code_span), dst=dst,
                    src1=src if index else 255)
    return builder.build()


def make_independent_alu(
    length: int, pool: int = 8, code_span: int = 64
) -> Trace:
    """Fully independent ALU instructions (no sources), looping PCs."""
    builder = TraceBuilder(name="independent")
    for index in range(length):
        builder.alu(pc=0x1000 + 4 * (index % code_span),
                    dst=1 + (index % pool))
    return builder.build()


@pytest.fixture(scope="session")
def small_population():
    """Eight contrasting real registry benchmarks for dataset tests.

    Includes same-program/different-input pairs (the three bzip2
    inputs) so the pairwise-distance spread always contains genuinely
    close pairs — threshold-based drivers (e.g. the Figure 4 ROC
    reference space) need both sides of their cut populated.
    """
    from repro.workloads import get_benchmark

    names = [
        "spec2000/mcf/ref",
        "spec2000/swim/ref",
        "spec2000/bzip2/graphic",
        "mibench/adpcm/rawcaudio",
        "bioinfomark/blast/protein",
        "commbench/drr/drr",
        "spec2000/bzip2/source",
        "spec2000/bzip2/program",
    ]
    return [get_benchmark(name) for name in names]
