"""The write-ahead journal: records, replay, repair, rotation.

Crash-safety at the byte level: every append is one checksummed JSONL
record; replay never raises on damaged bytes — it stops at the first
torn/corrupt/out-of-sequence line and (with ``repair=True``, or on
open-for-append) truncates the file back to the longest valid prefix.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.errors import JournalError
from repro.perf import (
    WriteAheadJournal,
    replay_journal,
    rotate_journal,
)
from repro.perf.journal import JOURNAL_FORMAT, _parse_line, _record_line


class TestRecordFormat:
    def test_round_trip(self):
        line = _record_line(3, {"event": "x", "value": [1.5, "a"]})
        assert line.endswith(b"\n")
        record = _parse_line(line, expected_seq=3)
        assert record == {"event": "x", "value": [1.5, "a"]}

    def test_checksum_mismatch_raises(self):
        line = _record_line(0, {"event": "x"})
        payload = json.loads(line)
        payload["data"]["event"] = "tampered"
        tampered = (json.dumps(payload) + "\n").encode()
        with pytest.raises(JournalError):
            _parse_line(tampered, expected_seq=0)

    def test_sequence_break_raises(self):
        line = _record_line(5, {"event": "x"})
        with pytest.raises(JournalError):
            _parse_line(line, expected_seq=4)

    def test_garbage_raises(self):
        with pytest.raises(JournalError):
            _parse_line(b"not json at all\n", expected_seq=0)

    def test_foreign_format_raises(self):
        line = _record_line(0, {"event": "x"})
        payload = json.loads(line)
        payload["fmt"] = "other-journal/9"
        with pytest.raises(JournalError):
            _parse_line((json.dumps(payload) + "\n").encode(), 0)


class TestAppendReplay:
    def test_append_then_replay(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        with WriteAheadJournal(path) as wal:
            assert wal.append({"event": "a"}) == 0
            assert wal.append({"event": "b", "n": 2}) == 1
            assert len(wal) == 2
        replay = replay_journal(path)
        assert [r["event"] for r in replay.records] == ["a", "b"]
        assert replay.next_seq == 2
        assert replay.truncation is None

    def test_missing_file_is_empty(self, tmp_path):
        replay = replay_journal(tmp_path / "journal-none.jsonl")
        assert replay.records == ()
        assert replay.next_seq == 0
        assert replay.truncation is None

    def test_reopen_appends_after_existing(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        with WriteAheadJournal(path) as wal:
            wal.append({"event": "a"})
        with WriteAheadJournal(path) as wal:
            assert wal.append({"event": "b"}) == 1
        assert len(replay_journal(path).records) == 2

    def test_open_is_idempotent(self, tmp_path):
        wal = WriteAheadJournal(tmp_path / "journal-t.jsonl")
        wal.open()
        wal.open()
        wal.append({"event": "a"})
        wal.close()
        assert len(replay_journal(wal.path).records) == 1


class TestTornTailRepair:
    def _journal_with_torn_tail(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        with WriteAheadJournal(path) as wal:
            wal.append({"event": "a"})
            wal.append({"event": "b"})
        good_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"fmt": "repro-journal/1", "seq": 2, "sh')
        return path, good_size

    def test_replay_reports_torn_tail(self, tmp_path):
        path, good_size = self._journal_with_torn_tail(tmp_path)
        replay = replay_journal(path)
        assert len(replay.records) == 2
        assert replay.truncation is not None
        assert replay.truncation.dropped_bytes > 0
        assert not replay.truncation.repaired
        # Without repair the bytes are untouched.
        assert path.stat().st_size > good_size

    def test_repair_truncates_to_valid_prefix(self, tmp_path):
        path, good_size = self._journal_with_torn_tail(tmp_path)
        replay = replay_journal(path, repair=True)
        assert replay.truncation is not None
        assert replay.truncation.repaired
        assert path.stat().st_size == good_size
        clean = replay_journal(path)
        assert clean.truncation is None
        assert len(clean.records) == 2

    def test_open_for_append_repairs(self, tmp_path):
        path, good_size = self._journal_with_torn_tail(tmp_path)
        with WriteAheadJournal(path) as wal:
            assert wal.truncation is not None
            assert wal.append({"event": "c"}) == 2
        replay = replay_journal(path)
        assert replay.truncation is None
        assert [r["event"] for r in replay.records] == ["a", "b", "c"]

    def test_mid_file_corruption_drops_suffix(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        with WriteAheadJournal(path) as wal:
            for index in range(4):
                wal.append({"event": f"r{index}"})
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]
        path.write_bytes(b"".join(lines))
        replay = replay_journal(path, repair=True)
        # Everything from the corrupt record on is untrusted.
        assert [r["event"] for r in replay.records] == ["r0"]
        assert replay.truncation is not None

    def test_whole_file_garbage_keeps_nothing(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        path.write_bytes(b"\x00\xff garbage\nmore garbage\n")
        replay = replay_journal(path, repair=True)
        assert replay.records == ()
        assert path.stat().st_size == 0


class TestRotation:
    def test_rotate_replaces_atomically(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        with WriteAheadJournal(path) as wal:
            for index in range(5):
                wal.append({"event": f"old{index}"})
        rotate_journal(path, [{"event": "new0"}, {"event": "new1"}])
        replay = replay_journal(path)
        assert [r["event"] for r in replay.records] == ["new0", "new1"]
        assert replay.next_seq == 2  # sequence numbers reassigned
        assert not list(tmp_path.glob("tmp-*")), "rotation temp leaked"

    def test_rewrite_keeps_journal_appendable(self, tmp_path):
        path = tmp_path / "journal-t.jsonl"
        wal = WriteAheadJournal(path)
        wal.append({"event": "a"})
        wal.append({"event": "b"})
        wal.rewrite([{"event": "compacted"}])
        assert wal.append({"event": "c"}) == 1
        wal.close()
        events = [r["event"] for r in replay_journal(path).records]
        assert events == ["compacted", "c"]


class TestKillDuringAppend:
    def test_sigkill_mid_append_leaves_valid_prefix(self, tmp_path):
        """A real SIGKILL between write and fsync never corrupts the
        journal: replay sees a valid prefix (possibly including the
        final record — the kill lands after the OS accepted the bytes),
        and repair leaves an appendable file."""
        path = tmp_path / "journal-t.jsonl"
        child = textwrap.dedent(f"""
            from repro.perf import WriteAheadJournal
            from repro.perf.faults import KillFault, inject_kill_faults
            wal = WriteAheadJournal({str(path)!r})
            with inject_kill_faults(
                [KillFault("journal-append-unsynced", after=2)],
                {str(tmp_path / "faults")!r},
            ):
                for index in range(10):
                    wal.append({{"event": f"r{{index}}"}})
            raise SystemExit("kill did not fire")
        """)
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(
            os.path.dirname(repro.__file__)
        )
        proc = subprocess.run(
            [sys.executable, "-c", child],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL, (
            proc.returncode, proc.stdout, proc.stderr,
        )
        replay = replay_journal(path, repair=True)
        events = [r["event"] for r in replay.records]
        # Two appends fully survived; the third was in flight when the
        # kill landed — it either made it to the OS or was torn off.
        assert events[:2] == ["r0", "r1"]
        assert len(events) in (2, 3)
        with WriteAheadJournal(path) as wal:
            wal.append({"event": "resumed"})
        final = replay_journal(path)
        assert final.truncation is None
        assert final.records[-1]["event"] == "resumed"


class TestChaosSchedule:
    def test_deterministic(self):
        from repro.perf.faults import chaos_schedule

        assert chaos_schedule(7, 12) == chaos_schedule(7, 12)
        assert chaos_schedule(7, 12) != chaos_schedule(8, 12)

    def test_covers_fault_kinds(self):
        from repro.perf.faults import chaos_schedule

        kinds = {round["kind"] for round in chaos_schedule(0, 200)}
        assert {"kill", "corrupt", "worker", "io", "service",
                "none"} <= kinds

    def test_rounds_are_well_formed(self):
        from repro.perf.faults import KILL_SEAMS, chaos_schedule

        for round in chaos_schedule(3, 50):
            if round["kind"] == "kill":
                assert round["seam"] in KILL_SEAMS
                assert round["after"] >= 0
