"""Fixture-snippet tests for every ``repro.lint`` rule.

Each rule gets at least one *firing* fixture (a minimal snippet that
must produce a finding) and one *quiet* fixture (a near-miss that must
not) — the true-positive/false-positive contract of ISSUE 10.  Projects
are built in memory with :meth:`LintProject.from_sources`, so these
tests never touch the real tree.
"""

from __future__ import annotations

import pytest

from repro.lint import LintProject, run_rules
from repro.lint.rules import (
    DeadCodeRule,
    DeterminismRule,
    DurabilityRule,
    LockDisciplineRule,
    TypedErrorsRule,
    VectorizationRule,
    VersionCouplingRule,
    default_rules,
    rule_by_id,
)
from repro.lint.model import LintUsageError


def findings_for(rule, sources):
    """Run one rule over an in-memory project; return its findings."""
    project = LintProject.from_sources(sources)
    return [
        finding
        for finding in run_rules(project, [rule])
        if finding.rule == rule.id
    ]


ENGINE_PATH = "src/repro/mica/snippet.py"
SERVICE_PATH = "src/repro/service/snippet.py"
PERF_PATH = "src/repro/perf/snippet.py"


class TestDeterminismRule:
    def test_fires_on_clock_read(self):
        found = findings_for(
            DeterminismRule(),
            {ENGINE_PATH: "import time\n\ndef f():\n    return time.time()\n"},
        )
        assert len(found) == 1
        assert "time.time" in found[0].message
        assert found[0].line == 4

    def test_fires_on_legacy_numpy_draw(self):
        source = (
            "import numpy as np\n\ndef f():\n"
            "    return np.random.rand(4)\n"
        )
        found = findings_for(DeterminismRule(), {ENGINE_PATH: source})
        assert len(found) == 1
        assert "np.random.rand" in found[0].message

    def test_fires_on_unseeded_default_rng(self):
        source = (
            "import numpy as np\n\ndef f():\n"
            "    return np.random.default_rng()\n"
        )
        found = findings_for(DeterminismRule(), {ENGINE_PATH: source})
        assert len(found) == 1

    def test_quiet_on_seeded_default_rng(self):
        source = (
            "import numpy as np\n\ndef f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert findings_for(DeterminismRule(), {ENGINE_PATH: source}) == []

    def test_fires_on_stdlib_random(self):
        source = "import random\n\ndef f():\n    return random.random()\n"
        found = findings_for(DeterminismRule(), {ENGINE_PATH: source})
        assert len(found) == 1

    def test_quiet_on_local_variable_named_random(self):
        # No top-level 'import random': 'random.choice' here is some
        # other object (e.g. an rng parameter), not the stdlib module.
        source = "def f(random):\n    return random.choice([1, 2])\n"
        assert findings_for(DeterminismRule(), {ENGINE_PATH: source}) == []

    def test_quiet_outside_engine_scopes(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert findings_for(
            DeterminismRule(), {"src/repro/perf/snippet.py": source}
        ) == []

    def test_fires_on_datetime_now(self):
        source = (
            "import datetime\n\ndef f():\n"
            "    return datetime.datetime.now()\n"
        )
        found = findings_for(DeterminismRule(), {ENGINE_PATH: source})
        assert len(found) == 1


class TestVectorizationRule:
    def test_fires_on_range_len_loop(self):
        source = (
            "def f(values):\n"
            "    total = 0\n"
            "    for i in range(len(values)):\n"
            "        total += values[i]\n"
            "    return total\n"
        )
        found = findings_for(VectorizationRule(), {ENGINE_PATH: source})
        assert len(found) == 1
        assert found[0].line == 3

    def test_fires_on_trace_column_iteration(self):
        source = (
            "def f(trace):\n"
            "    for pc in trace.pc:\n"
            "        print(pc)\n"
        )
        found = findings_for(VectorizationRule(), {ENGINE_PATH: source})
        assert len(found) == 1
        assert "'pc'" in found[0].message

    def test_quiet_in_reference_function(self):
        source = (
            "def f_reference(values):\n"
            "    total = 0\n"
            "    for i in range(len(values)):\n"
            "        total += values[i]\n"
            "    return total\n"
        )
        assert findings_for(
            VectorizationRule(), {ENGINE_PATH: source}
        ) == []

    def test_quiet_in_serial_core_modules(self):
        source = (
            "def f(values):\n"
            "    for i in range(len(values)):\n"
            "        pass\n"
        )
        assert findings_for(
            VectorizationRule(), {"src/repro/uarch/inorder.py": source}
        ) == []

    def test_quiet_on_plain_range(self):
        source = "def f(n):\n    for i in range(n):\n        pass\n"
        assert findings_for(
            VectorizationRule(), {ENGINE_PATH: source}
        ) == []


class TestDurabilityRule:
    def test_fires_on_open_for_write(self):
        source = (
            "def f(path, data):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(data)\n"
        )
        found = findings_for(DurabilityRule(), {PERF_PATH: source})
        assert len(found) == 1
        assert "'w'" in found[0].message

    def test_fires_on_os_replace(self):
        source = "import os\n\ndef f(a, b):\n    os.replace(a, b)\n"
        found = findings_for(DurabilityRule(), {PERF_PATH: source})
        assert len(found) == 1

    def test_fires_on_np_savez(self):
        source = (
            "import numpy as np\n\ndef f(path, x):\n"
            "    np.savez(path, x=x)\n"
        )
        found = findings_for(DurabilityRule(), {PERF_PATH: source})
        assert len(found) == 1

    def test_quiet_on_read(self):
        source = (
            "def f(path):\n"
            "    with open(path, 'r') as handle:\n"
            "        return handle.read()\n"
        )
        assert findings_for(DurabilityRule(), {PERF_PATH: source}) == []

    def test_quiet_inside_seam_modules(self):
        source = (
            "import os\n\ndef f(a, b):\n    os.replace(a, b)\n"
        )
        assert findings_for(
            DurabilityRule(), {"src/repro/perf/integrity.py": source}
        ) == []

    def test_quiet_outside_persistence_scopes(self):
        source = "def f(p, d):\n    open(p, 'w').write(d)\n"
        assert findings_for(
            DurabilityRule(), {"src/repro/mica/snippet.py": source}
        ) == []


LOCKED_CLASS = """\
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump_locked_path(self):
        with self._lock:
            self.count += 1

    def bump_unlocked(self):
        self.count += 1
"""


class TestLockDisciplineRule:
    def test_fires_on_unlocked_mutation(self):
        found = findings_for(
            LockDisciplineRule(), {SERVICE_PATH: LOCKED_CLASS}
        )
        assert len(found) == 1
        assert "bump_unlocked" in found[0].message
        assert "count" in found[0].message

    def test_quiet_when_every_mutation_is_locked(self):
        source = LOCKED_CLASS.replace(
            "    def bump_unlocked(self):\n        self.count += 1\n", ""
        )
        assert findings_for(
            LockDisciplineRule(), {SERVICE_PATH: source}
        ) == []

    def test_quiet_in_init_and_locked_helpers(self):
        source = """\
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def add(self, item):
        with self._lock:
            self.items.append(item)

    def _evict_locked(self):
        self.items.pop()
"""
        assert findings_for(
            LockDisciplineRule(), {SERVICE_PATH: source}
        ) == []

    def test_fires_on_unlocked_mutating_call(self):
        source = """\
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def add(self, item):
        with self._lock:
            self.items.append(item)

    def sneak(self, item):
        self.items.append(item)
"""
        found = findings_for(
            LockDisciplineRule(), {SERVICE_PATH: source}
        )
        assert len(found) == 1
        assert "sneak" in found[0].message

    def test_quiet_on_never_locked_attributes(self):
        source = """\
class Plain:
    def __init__(self):
        self.count = 0

    def bump(self):
        self.count += 1
"""
        assert findings_for(
            LockDisciplineRule(), {SERVICE_PATH: source}
        ) == []

    def test_quiet_outside_scopes(self):
        assert findings_for(
            LockDisciplineRule(),
            {"src/repro/mica/snippet.py": LOCKED_CLASS},
        ) == []


class TestTypedErrorsRule:
    def test_fires_on_swallowing_broad_except(self):
        source = """\
def f():
    try:
        work()
    except Exception:
        pass
"""
        found = findings_for(TypedErrorsRule(), {SERVICE_PATH: source})
        assert len(found) == 1

    def test_fires_on_bare_except(self):
        source = """\
def f():
    try:
        work()
    except:
        return None
"""
        found = findings_for(TypedErrorsRule(), {SERVICE_PATH: source})
        assert len(found) == 1
        assert "bare except" in found[0].message

    def test_quiet_when_reraising(self):
        source = """\
def f():
    try:
        work()
    except Exception:
        cleanup()
        raise
"""
        assert findings_for(
            TypedErrorsRule(), {SERVICE_PATH: source}
        ) == []

    def test_quiet_when_wrapping_into_typed_error(self):
        source = """\
from repro.errors import ServiceError

def f():
    try:
        work()
    except Exception as error:
        return ServiceError(str(error))
"""
        assert findings_for(
            TypedErrorsRule(), {SERVICE_PATH: source}
        ) == []

    def test_quiet_on_narrow_except(self):
        source = """\
def f():
    try:
        work()
    except KeyError:
        return None
"""
        assert findings_for(
            TypedErrorsRule(), {SERVICE_PATH: source}
        ) == []

    def test_quiet_outside_scopes(self):
        source = """\
def f():
    try:
        work()
    except Exception:
        pass
"""
        assert findings_for(
            TypedErrorsRule(), {"src/repro/mica/snippet.py": source}
        ) == []


class TestVersionCouplingRule:
    def test_fires_on_orphaned_version_constant(self):
        found = findings_for(
            VersionCouplingRule(),
            {PERF_PATH: "SNIPPET_CACHE_VERSION = 3\n"},
        )
        assert len(found) == 1
        assert "SNIPPET_CACHE_VERSION" in found[0].message

    def test_quiet_when_constant_is_read(self):
        sources = {
            PERF_PATH: "SNIPPET_CACHE_VERSION = 3\n",
            "src/repro/perf/keys.py": (
                "from .snippet import SNIPPET_CACHE_VERSION\n\n"
                "def key():\n"
                "    return f'v{SNIPPET_CACHE_VERSION}'\n"
            ),
        }
        assert findings_for(VersionCouplingRule(), sources) == []

    def test_fires_on_untested_reference_function(self):
        found = findings_for(
            VersionCouplingRule(),
            {ENGINE_PATH: "def frob_reference(x):\n    return x\n"},
        )
        assert len(found) == 1
        assert "frob_reference" in found[0].message

    def test_quiet_when_reference_is_tested(self):
        sources = {
            ENGINE_PATH: "def frob_reference(x):\n    return x\n",
            "tests/test_frob.py": (
                "from repro.mica.snippet import frob_reference\n\n"
                "def test_frob():\n"
                "    assert frob_reference(1) == 1\n"
            ),
        }
        assert findings_for(VersionCouplingRule(), sources) == []


class TestDeadCodeRule:
    def test_fires_on_unused_import(self):
        found = findings_for(
            DeadCodeRule(),
            {PERF_PATH: "import os\n\n\ndef f():\n    return 1\n"},
        )
        assert len(found) == 1
        assert "import os" in found[0].message

    def test_quiet_on_used_import(self):
        source = "import os\n\n\ndef f():\n    return os.getpid()\n"
        assert findings_for(DeadCodeRule(), {PERF_PATH: source}) == []

    def test_quiet_on_string_annotation_use(self):
        source = (
            "from typing import Optional\n\n\n"
            "def f(x: \"Optional[int]\"):\n    return x\n"
        )
        assert findings_for(DeadCodeRule(), {PERF_PATH: source}) == []

    def test_quiet_on_dunder_all_reexport(self):
        source = "from .other import thing\n\n__all__ = [\"thing\"]\n"
        assert findings_for(DeadCodeRule(), {PERF_PATH: source}) == []

    def test_quiet_in_package_init(self):
        source = "from .other import thing\n"
        assert findings_for(
            DeadCodeRule(), {"src/repro/perf/__init__.py": source}
        ) == []

    def test_fires_on_dead_dunder_all_entry(self):
        source = "def f():\n    return 1\n\n__all__ = [\"f\", \"gone\"]\n"
        found = findings_for(DeadCodeRule(), {PERF_PATH: source})
        assert len(found) == 1
        assert "'gone'" in found[0].message

    def test_quiet_on_future_annotations(self):
        source = "from __future__ import annotations\n\nX = 1\n"
        assert findings_for(DeadCodeRule(), {PERF_PATH: source}) == []


class TestSuppressions:
    def test_trailing_comment_suppresses(self):
        source = (
            "import time\n\ndef f():\n"
            "    return time.time()  "
            "# repro: lint-ok[determinism] test fixture\n"
        )
        project = LintProject.from_sources({ENGINE_PATH: source})
        findings = run_rules(project, [DeterminismRule()])
        assert findings == []

    def test_comment_block_above_suppresses(self):
        source = (
            "import time\n\ndef f():\n"
            "    # repro: lint-ok[determinism] two-line justification\n"
            "    # carried onto a second comment line\n"
            "    return time.time()\n"
        )
        project = LintProject.from_sources({ENGINE_PATH: source})
        assert run_rules(project, [DeterminismRule()]) == []

    def test_unused_suppression_is_reported(self):
        source = (
            "def f():\n"
            "    # repro: lint-ok[determinism] nothing here fires\n"
            "    return 1\n"
        )
        project = LintProject.from_sources({ENGINE_PATH: source})
        findings = run_rules(project, [DeterminismRule()])
        assert len(findings) == 1
        assert findings[0].rule == "unused-suppression"

    def test_docstring_mention_does_not_suppress(self):
        source = (
            '"""Docs quoting # repro: lint-ok[determinism] syntax."""\n'
            "import time\n\ndef f():\n"
            "    return time.time()\n"
        )
        project = LintProject.from_sources({ENGINE_PATH: source})
        findings = run_rules(project, [DeterminismRule()])
        assert [f.rule for f in findings] == ["determinism"]

    def test_wrong_rule_id_does_not_suppress(self):
        source = (
            "import time\n\ndef f():\n"
            "    return time.time()  # repro: lint-ok[dead-code] wrong\n"
        )
        project = LintProject.from_sources({ENGINE_PATH: source})
        rules = [f.rule for f in run_rules(project, [DeterminismRule()])]
        assert "determinism" in rules
        assert "unused-suppression" in rules


class TestEngine:
    def test_syntax_error_becomes_parse_finding(self):
        project = LintProject.from_sources(
            {ENGINE_PATH: "def broken(:\n    pass\n"}
        )
        findings = run_rules(project, default_rules())
        assert [f.rule for f in findings] == ["parse"]

    def test_rule_by_id_round_trips(self):
        for rule in default_rules():
            assert rule_by_id(rule.id).id == rule.id

    def test_rule_by_id_unknown_raises_usage_error(self):
        with pytest.raises(LintUsageError):
            rule_by_id("no-such-rule")

    def test_every_rule_documents_itself(self):
        for rule in default_rules():
            assert rule.id
            assert rule.summary
            assert rule.explanation
