"""Tests for the dataflow-based MICA analyzers: producer resolution,
idealized-window ILP and register traffic."""

import numpy as np
import pytest

from conftest import make_alu_chain, make_independent_alu
from repro.errors import CharacterizationError
from repro.isa import NO_REG
from repro.trace import Trace, TraceBuilder
from repro.mica import ilp_ipc, producer_indices, register_traffic
from repro.mica.ilp import NO_PRODUCER


class TestProducerIndices:
    def test_simple_chain(self):
        trace = make_alu_chain(10)
        p1, p2 = producer_indices(trace)
        assert p1[0] == NO_PRODUCER
        assert list(p1[1:]) == list(range(9))
        assert (p2 == NO_PRODUCER).all()

    def test_zero_register_reads_have_no_producer(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=31)       # Write to $31 (zero reg).
        builder.alu(0x1004, dst=1, src1=31)  # Read $31.
        p1, _ = producer_indices(builder.build())
        assert p1[1] == NO_PRODUCER

    def test_unwritten_register_has_no_producer(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1, src1=7)
        p1, _ = producer_indices(builder.build())
        assert p1[0] == NO_PRODUCER

    def test_most_recent_writer_wins(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=5)
        builder.alu(0x1004, dst=5)
        builder.alu(0x1008, dst=1, src1=5)
        p1, _ = producer_indices(builder.build())
        assert p1[2] == 1

    def test_self_write_not_own_producer(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=5)
        builder.alu(0x1004, dst=5, src1=5)  # Reads previous value.
        p1, _ = producer_indices(builder.build())
        assert p1[1] == 0

    def test_second_source_slot(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        builder.alu(0x1004, dst=2)
        builder.alu(0x1008, dst=3, src1=1, src2=2)
        p1, p2 = producer_indices(builder.build())
        assert p1[2] == 0
        assert p2[2] == 1


class TestIlp:
    def test_serial_chain_ipc_one(self):
        trace = make_alu_chain(512)
        assert np.allclose(ilp_ipc(trace), 1.0)

    def test_independent_ipc_equals_window(self):
        trace = make_independent_alu(1024)
        ipc = ilp_ipc(trace, window_sizes=(32, 64))
        assert ipc[0] == pytest.approx(32.0)
        assert ipc[1] == pytest.approx(64.0)

    def test_ipc_monotone_in_window(self, small_trace):
        ipc = ilp_ipc(small_trace)
        assert (np.diff(ipc) >= -1e-9).all()

    def test_serial_vs_parallel_profiles(self, serial_profile,
                                          parallel_profile):
        from repro.synth import generate_trace

        serial = generate_trace(serial_profile, 10_000)
        parallel = generate_trace(parallel_profile, 10_000)
        assert ilp_ipc(parallel)[3] > 2.0 * ilp_ipc(serial)[3]

    def test_window_partition_boundary(self):
        # A chain within each window but independent across windows:
        # depth = window, so IPC = 1 regardless of window size.
        trace = make_alu_chain(256)
        ipc = ilp_ipc(trace, window_sizes=(16,))
        assert ipc[0] == pytest.approx(1.0)

    def test_rejects_bad_window(self, small_trace):
        with pytest.raises(CharacterizationError):
            ilp_ipc(small_trace, window_sizes=(0,))

    def test_rejects_empty(self):
        with pytest.raises(CharacterizationError):
            ilp_ipc(Trace.empty())

    def test_precomputed_producers_match(self, small_trace):
        producers = producer_indices(small_trace)
        assert np.allclose(
            ilp_ipc(small_trace),
            ilp_ipc(small_trace, producers=producers),
        )


class TestRegisterTraffic:
    def test_chain_has_one_operand(self):
        trace = make_alu_chain(100)
        traffic = register_traffic(trace)
        # 99 of 100 instructions have one source.
        assert traffic[0] == pytest.approx(0.99)

    def test_chain_degree_of_use_one(self):
        trace = make_alu_chain(100)
        traffic = register_traffic(trace)
        assert traffic[1] == pytest.approx(0.99)

    def test_chain_dependency_distance_one(self):
        trace = make_alu_chain(100)
        traffic = register_traffic(trace)
        # All dependency distances are exactly 1.
        assert traffic[2] == pytest.approx(1.0)   # P(= 1)
        assert traffic[8] == pytest.approx(1.0)   # P(<= 64)

    def test_known_distance_distribution(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        builder.alu(0x1004, dst=2)
        builder.alu(0x1008, dst=3)
        builder.alu(0x100C, dst=4, src1=1)  # Distance 3.
        builder.alu(0x1010, dst=5, src1=3)  # Distance 2.
        traffic = register_traffic(builder.build())
        assert traffic[2] == pytest.approx(0.0)       # P(= 1)
        assert traffic[3] == pytest.approx(0.5)       # P(<= 2)
        assert traffic[4] == pytest.approx(1.0)       # P(<= 4)

    def test_distances_cumulative(self, small_trace):
        traffic = register_traffic(small_trace)
        distances = traffic[2:]
        assert (np.diff(distances) >= -1e-12).all()

    def test_degree_of_use_counts_multiple_reads(self):
        builder = TraceBuilder()
        builder.alu(0x1000, dst=1)
        for i in range(4):
            builder.alu(0x1004 + 4 * i, dst=2, src1=1)
        traffic = register_traffic(builder.build())
        # 4 consumed reads / 5 writes.
        assert traffic[1] == pytest.approx(0.8)

    def test_independent_trace_zero_distances(self):
        trace = make_independent_alu(50)
        traffic = register_traffic(trace)
        assert traffic[0] == 0.0
        assert traffic[1] == 0.0
        assert (traffic[2:] == 0.0).all()

    def test_dep_mean_knob_shifts_distances(self):
        from repro.synth import RegisterSpec, WorkloadProfile, generate_trace

        short = generate_trace(
            WorkloadProfile(name="t/d/short",
                            registers=RegisterSpec(dep_mean=1.2)),
            10_000,
        )
        long = generate_trace(
            WorkloadProfile(name="t/d/long",
                            registers=RegisterSpec(dep_mean=10.0)),
            10_000,
        )
        short_le4 = register_traffic(short)[4]
        long_le4 = register_traffic(long)[4]
        assert short_le4 > long_le4 + 0.1
