"""Tests for the content+machine-keyed HPC cache and golden vectors.

The HPC cache sits beside the characterization cache (same content
hash, machine fingerprints + ``HPC_SIM_VERSION`` instead of the config
fingerprint).  These tests pin the key contract and that warm dataset
builds never run a pipeline model (via :func:`repro.uarch.hpc_call_count`,
the analogue of ``generation_call_count`` for the trace cache), plus a
golden-vector regression over the eight-benchmark test population.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

import repro.perf.cache as perf_cache
from repro.config import ReproConfig
from repro.experiments import build_dataset, clear_dataset_cache
from repro.experiments.dataset import _MEMORY_CACHE
from repro.perf import HpcCache, cached_collect_hpc
from repro.synth import WorkloadProfile, generate_trace
from repro.uarch import (
    EV56_CONFIG,
    EV67_CONFIG,
    collect_hpc,
    hpc_call_count,
)

SMALL_CONFIG = ReproConfig(trace_length=2_000)

GOLDEN_PATH = Path(__file__).parent / "data" / "hpc_golden.json"


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(WorkloadProfile(name="hpc/cache/1"), 2_000)


class TestHpcCache:
    def test_hit_returns_identical_vector(self, small_trace, tmp_path):
        cold = cached_collect_hpc(small_trace, cache_dir=tmp_path)
        warm = cached_collect_hpc(small_trace, cache_dir=tmp_path)
        assert np.array_equal(cold.values, warm.values)
        assert warm.name == small_trace.name
        assert len(HpcCache(tmp_path)) == 1

    def test_hit_skips_the_pipeline_models(self, small_trace, tmp_path):
        cached_collect_hpc(small_trace, cache_dir=tmp_path)
        calls_before = hpc_call_count()
        cached_collect_hpc(small_trace, cache_dir=tmp_path)
        assert hpc_call_count() == calls_before

    def test_distinct_trace_machine_version_miss(
        self, small_trace, tmp_path
    ):
        cache = HpcCache(tmp_path)
        cached_collect_hpc(small_trace, cache_dir=tmp_path)
        other_trace = generate_trace(
            WorkloadProfile(name="hpc/cache/2"), 2_000
        )
        assert cache.load(other_trace) is None
        slower = replace(
            EV56_CONFIG,
            latencies=replace(EV56_CONFIG.latencies, memory=300),
        )
        assert cache.load(small_trace, inorder=slower) is None
        assert cache.load(small_trace, ooo=replace(
            EV67_CONFIG, window_size=16
        )) is None
        assert cache.load(small_trace) is not None

    def test_version_bump_invalidates(self, small_trace, tmp_path,
                                      monkeypatch):
        cache = HpcCache(tmp_path)
        cached_collect_hpc(small_trace, cache_dir=tmp_path)
        assert cache.load(small_trace) is not None
        monkeypatch.setattr(
            perf_cache, "HPC_SIM_VERSION",
            perf_cache.HPC_SIM_VERSION + 1,
        )
        assert cache.load(small_trace) is None

    def test_corrupt_entry_is_a_miss(self, small_trace, tmp_path):
        cache = HpcCache(tmp_path)
        cached_collect_hpc(small_trace, cache_dir=tmp_path)
        for path in tmp_path.glob("hpc-*.npz"):
            path.write_bytes(b"not an npz")
        assert cache.load(small_trace) is None

    def test_no_cache_dir_is_plain_collect(self, small_trace):
        direct = collect_hpc(small_trace)
        wrapped = cached_collect_hpc(small_trace, cache_dir=None)
        assert np.array_equal(direct.values, wrapped.values)

    def test_clear(self, small_trace, tmp_path):
        cache = HpcCache(tmp_path)
        cached_collect_hpc(small_trace, cache_dir=tmp_path)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestWarmDatasetBuildSkipsPipelines:
    def test_second_build_performs_zero_pipeline_runs(
        self, small_population, tmp_path
    ):
        population = small_population[:3]
        _MEMORY_CACHE.clear()
        cold = build_dataset(
            SMALL_CONFIG, benchmarks=population, cache_dir=tmp_path, jobs=1
        )
        # Drop the dataset-level matrices but keep the per-trace
        # caches, so the rebuild must go through the workers.
        removed = list(tmp_path.glob("dataset-*.npz"))
        assert removed, "cold build should have written the dataset cache"
        for path in removed:
            path.unlink()
        assert list(tmp_path.glob("hpc-*.npz")), (
            "cold build should have populated the HPC cache"
        )
        _MEMORY_CACHE.clear()

        calls_before = hpc_call_count()
        warm = build_dataset(
            SMALL_CONFIG, benchmarks=population, cache_dir=tmp_path, jobs=1
        )
        assert hpc_call_count() == calls_before
        assert np.array_equal(warm.mica, cold.mica)
        assert np.array_equal(warm.hpc, cold.hpc)
        _MEMORY_CACHE.clear()

    def test_clear_dataset_cache_removes_hpc_entries(
        self, small_population, tmp_path
    ):
        build_dataset(
            SMALL_CONFIG,
            benchmarks=small_population[:2],
            cache_dir=tmp_path,
            jobs=1,
        )
        assert list(tmp_path.glob("hpc-*.npz"))
        clear_dataset_cache(tmp_path)
        assert not list(tmp_path.glob("hpc-*.npz"))


class TestGoldenHpcVectors:
    """Regression fixtures for the eight-benchmark test population.

    The committed vectors were produced by the scalar-specification
    semantics; the engines are bit-exact, so any drift here is a
    semantic change and must come with an ``HPC_SIM_VERSION`` bump and
    a fixture refresh.
    """

    def test_vectors_match_goldens(self):
        from repro.workloads import get_benchmark

        payload = json.loads(GOLDEN_PATH.read_text())
        assert payload["vectors"], "golden fixture must not be empty"
        for name, expected in payload["vectors"].items():
            trace = generate_trace(
                get_benchmark(name).profile, payload["trace_length"],
                seed=payload["seed"],
            )
            vector = collect_hpc(trace)
            assert vector.values.tolist() == expected, (
                f"HPC vector drifted for {name}"
            )

    def test_goldens_cover_the_test_population(self, small_population):
        payload = json.loads(GOLDEN_PATH.read_text())
        assert set(payload["vectors"]) == {
            benchmark.full_name for benchmark in small_population
        }
