"""Perf-trajectory history rows and the floor gate.

No engines are actually timed here: the tests build a synthetic
:class:`MicaBenchResult` and pin the row schema, the append-only JSONL
behaviour, and the gate's floor arithmetic — including the rule that a
floor whose engine went unmeasured is itself a violation (CI must not
pass because a flag silently disabled a section).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.perf import (
    append_bench_history,
    bench_history_row,
    check_bench_floors,
    load_bench_history,
)
from repro.perf.history import HISTORY_SCHEMA
from repro.perf.timing import (
    GenerationBenchResult,
    HpcBenchResult,
    MicaBenchResult,
    PhasesBenchResult,
)

REPO_FLOORS = Path(__file__).parent.parent / "benchmarks/perf/floors.json"


def _result(
    ppm=12.0, ilp=6.0, phases=7.0, generation=11.0, events=9.0,
    pipelines=1.5, include_generation=True, include_hpc=True,
    include_phases=True,
):
    speedups = {"ppm": ppm, "ilp": ilp}
    if include_phases:
        speedups["phases"] = phases
    return MicaBenchResult(
        trace_length=100_000,
        profile="mcf",
        repeats=3,
        timings=(),
        speedups=speedups,
        generation=GenerationBenchResult(
            trace_length=100_000, profile="mcf", repeats=3, timings=(),
            speedups={"interpret": 9.0, "engine": generation},
        ) if include_generation else None,
        hpc=HpcBenchResult(
            trace_length=100_000, profile="mcf", repeats=3, timings=(),
            speedups={"events": events, "pipelines": pipelines},
        ) if include_hpc else None,
        phases=PhasesBenchResult(
            trace_length=100_000, profile="mcf", repeats=3,
            interval=5_000, timings=(), speedups={"timeline": phases},
        ) if include_phases else None,
    )


class TestHistoryRow:
    def test_row_collects_every_engine(self):
        row = bench_history_row(_result())
        assert row["schema"] == HISTORY_SCHEMA
        assert row["trace_length"] == 100_000
        assert row["profile"] == "mcf"
        assert row["repeats"] == 3
        assert row["speedups"] == {
            "ppm": 12.0, "ilp": 6.0, "phases": 7.0,
            "generation": 11.0, "events": 9.0, "pipelines": 1.5,
        }

    def test_skipped_sections_are_absent_not_zero(self):
        row = bench_history_row(_result(
            include_generation=False, include_hpc=False,
            include_phases=False,
        ))
        assert set(row["speedups"]) == {"ppm", "ilp"}

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "BENCH_history.jsonl"
        append_bench_history(_result(), path)
        append_bench_history(_result(ppm=13.0), path)
        rows = load_bench_history(path)
        assert len(rows) == 2
        assert rows[0]["speedups"]["ppm"] == 12.0
        assert rows[1]["speedups"]["ppm"] == 13.0
        # One JSON object per line: the file merges/greps trivially.
        lines = path.read_text().splitlines()
        assert all(json.loads(line)["schema"] == HISTORY_SCHEMA
                   for line in lines)

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_bench_history(tmp_path / "absent.jsonl") == []


class TestFloorGate:
    FLOORS = {"ppm": 10.0, "ilp": 5.0, "generation": 10.0,
              "events": 5.0, "pipelines": 1.0, "phases": 5.0}

    def test_passing_row_has_no_violations(self):
        row = bench_history_row(_result())
        assert check_bench_floors(row, self.FLOORS) == ()

    def test_below_floor_is_named(self):
        row = bench_history_row(_result(ppm=9.5, events=2.0))
        violations = check_bench_floors(row, self.FLOORS)
        assert len(violations) == 2
        assert any("ppm: 9.50x" in v for v in violations)
        assert any("events: 2.00x" in v for v in violations)

    def test_missing_engine_is_a_violation_by_default(self):
        row = bench_history_row(_result(include_hpc=False))
        violations = check_bench_floors(row, self.FLOORS)
        assert any("events: no speedup measured" in v
                   for v in violations)
        assert any("pipelines: no speedup measured" in v
                   for v in violations)

    def test_missing_engine_tolerated_when_not_required(self):
        row = bench_history_row(_result(include_hpc=False))
        assert check_bench_floors(
            row, self.FLOORS, require_all=False
        ) == ()

    def test_committed_floors_file_is_well_formed(self):
        payload = json.loads(REPO_FLOORS.read_text())
        assert payload["schema"] == "bench-floors/v1"
        for tier in ("full", "smoke"):
            floors = payload[tier]["floors"]
            assert set(floors) == {
                "ppm", "ilp", "generation", "events", "pipelines",
                "phases", "sharded",
            }
            # "sharded" gates a merge-overhead ratio (< 1 by
            # construction); every other floor is a speedup (>= 1).
            assert all(
                float(value) >= (1.0 if engine != "sharded" else 0.0)
                for engine, value in floors.items()
            )
            assert 0.0 < float(floors["sharded"]) < 1.0
        # The documented acceptance floors from the bench harness.
        full = payload["full"]["floors"]
        assert full["ppm"] >= 10 and full["generation"] >= 10
        assert full["ilp"] >= 5 and full["events"] >= 5
        assert full["phases"] >= 5 and full["pipelines"] >= 1
        assert full["sharded"] >= 0.4
