"""Shard+merge must be bit-for-bit identical to one-shot characterize.

The shard-mergeable engine (:mod:`repro.mica.shard`) and its scheduler
(:mod:`repro.perf.sharding`) promise that splitting a trace into any
contiguous shard geometry, characterizing the shards independently and
merging the states reproduces :func:`repro.mica.characterize` exactly —
not approximately: the same 47 IEEE doubles, for every geometry, for
full and per-key partial requests, sequentially or fanned across
workers, through the shard cache or cold.

Satellites covered here: the streaming content digest pinned equal to
the in-memory digest, the serialization roundtrip behind the shard
cache and worker transport, warm shard-cache reuse, and the engine's
error surfaces (empty shards, non-adjacent merges, unrooted finalize,
bad geometry, unknown categories, out-of-range indices, unshardable
PPM orders).
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.config import ReproConfig
from repro.errors import CharacterizationError, TraceError
from repro.mica import characterize
from repro.mica.shard import (
    SECTION_ORDER,
    characterize_stream,
    finalize_state,
    merge_states,
    ppm_empty_state,
    ppm_shard_correct,
    resolve_wanted,
    shard_state,
    state_from_arrays,
    state_to_arrays,
)
from repro.mica.characteristics import category_slices
from repro.perf import (
    cold_state_call_count,
    reset_cold_state_call_count,
    sharded_characterize,
    trace_fingerprint,
)
from repro.synth import WorkloadProfile, generate_trace
from repro.trace import (
    MappedTraceSource,
    MemoryTraceSource,
    as_trace_source,
    open_trace_source,
    shard_bounds,
    write_trace,
)

CONFIG = ReproConfig(trace_length=3_000)


def _cut(trace, start, end):
    """A contiguous chunk of ``trace`` as its own Trace."""
    from repro.trace import Trace

    return Trace(trace.data[start:end], name=trace.name)


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-for-bit equality, treating NaN == NaN."""
    return a.tobytes() == b.tobytes()


def _random_bounds(n: int, rng: np.random.Generator):
    """A random contiguous partition of ``[0, n)``."""
    count = int(rng.integers(2, 9))
    cuts = np.sort(rng.choice(np.arange(1, n), size=count - 1,
                              replace=False))
    edges = [0, *cuts.tolist(), n]
    return list(zip(edges[:-1], edges[1:]))


def _stream_values(trace, bounds, config=CONFIG, wanted=None):
    return characterize_stream(
        as_trace_source(trace), bounds, config, wanted
    )


class TestPopulationEquivalence:
    """Bit-for-bit over the eight contrasting registry benchmarks."""

    @pytest.fixture(scope="class")
    def population_traces(self, small_population):
        return [
            generate_trace(benchmark.profile, 3_000)
            for benchmark in small_population
        ]

    def test_random_geometries_match_one_shot(self, population_traces):
        for seed, trace in enumerate(population_traces):
            rng = np.random.default_rng(1_000 + seed)
            reference = characterize(trace, CONFIG).values
            for bounds in (
                _random_bounds(len(trace), rng),
                shard_bounds(len(trace), shards=int(rng.integers(2, 7))),
                shard_bounds(
                    len(trace),
                    shard_size=int(rng.integers(100, len(trace))),
                ),
            ):
                values = _stream_values(trace, bounds)
                assert _bitwise_equal(values, reference), \
                    f"{trace.name}: {bounds[:3]}... diverged"

    def test_one_giant_shard_matches_one_shot(self, population_traces):
        trace = population_traces[0]
        result = sharded_characterize(trace, CONFIG, shards=1)
        assert _bitwise_equal(
            result.values, characterize(trace, CONFIG).values
        )
        assert result.name == trace.name


class TestRandomizedTraces:
    """Random profiles x random boundaries, including degenerate cuts."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_profiles_random_boundaries(self, seed):
        profile = WorkloadProfile(name=f"test/shard-rand/{seed}")
        trace = generate_trace(profile, 2_000, seed=seed)
        reference = characterize(trace, CONFIG).values
        rng = np.random.default_rng(seed)
        for _ in range(3):
            bounds = _random_bounds(len(trace), rng)
            assert _bitwise_equal(
                _stream_values(trace, bounds), reference
            )

    def test_shard_size_one(self, default_profile):
        # Every shard is a single instruction: the most adversarial
        # geometry for every carry (strides, ILP windows, PPM history).
        trace = generate_trace(default_profile, 200)
        bounds = shard_bounds(len(trace), shard_size=1)
        assert len(bounds) == 200
        assert _bitwise_equal(
            _stream_values(trace, bounds),
            characterize(trace, CONFIG).values,
        )

    def test_fold_and_tree_merge_agree(self, small_trace):
        # merge_states is associative: a left fold and a balanced tree
        # over the same shard states produce identical merged states.
        bounds = shard_bounds(len(small_trace), shards=8)
        wanted = resolve_wanted()
        states = [
            shard_state(_cut(small_trace,start, end), start, CONFIG,
                        wanted)
            for start, end in bounds
        ]
        fold = states[0]
        for state in states[1:]:
            fold = merge_states(fold, state, CONFIG)
        level = list(states)
        while len(level) > 1:
            level = [
                merge_states(level[i], level[i + 1], CONFIG)
                if i + 1 < len(level) else level[i]
                for i in range(0, len(level), 2)
            ]
        tree = level[0]
        fold_arrays = state_to_arrays(fold)
        tree_arrays = state_to_arrays(tree)
        assert sorted(fold_arrays) == sorted(tree_arrays)
        for key, value in fold_arrays.items():
            assert np.array_equal(value, tree_arrays[key]), key


class TestPartialRequests:
    """Per-key partials: computed entries exact, the rest NaN."""

    @pytest.mark.parametrize("categories,indices", [
        (["instruction mix"], None),
        (["ILP", "register traffic"], None),
        (["branch predictability"], None),
        (["working set size", "data stream strides"], None),
        (None, [0, 6, 19, 23, 43]),
        (["instruction mix"], [46]),
    ])
    def test_partials_match_one_shot(
        self, small_trace, categories, indices
    ):
        reference = characterize(small_trace, CONFIG).values
        wanted = resolve_wanted(categories, indices)
        result = sharded_characterize(
            small_trace, CONFIG, shards=5,
            categories=categories, indices=indices,
        ).values
        assert _bitwise_equal(result[wanted], reference[wanted])
        assert np.isnan(result[~wanted]).all()

    def test_full_request_has_no_nans(self, small_trace):
        values = sharded_characterize(small_trace, CONFIG, shards=3).values
        assert not np.isnan(values).any()

    def test_category_slices_cover_the_mask(self):
        slices = category_slices()
        wanted = resolve_wanted(list(SECTION_ORDER))
        assert wanted.all()
        assert set(slices) == set(SECTION_ORDER)


class TestStreamingDigests:
    """Satellite: the incremental digest equals the in-memory digest."""

    def test_memory_source_digest(self, small_trace):
        source = MemoryTraceSource(small_trace)
        assert source.content_digest() == small_trace.content_digest()
        assert source.fingerprint() == trace_fingerprint(small_trace)

    def test_mapped_source_digest(self, small_trace, tmp_path):
        path = tmp_path / "trace.mtf"
        write_trace(small_trace, path)
        source = open_trace_source(path)
        assert isinstance(source, MappedTraceSource)
        assert len(source) == len(small_trace)
        assert source.content_digest() == small_trace.content_digest()
        assert source.fingerprint() == trace_fingerprint(small_trace)

    def test_mapped_source_characterizes_bit_for_bit(
        self, small_trace, tmp_path
    ):
        path = tmp_path / "trace.mtf"
        write_trace(small_trace, path)
        source = open_trace_source(path)
        result = sharded_characterize(source, CONFIG, shard_size=700)
        assert _bitwise_equal(
            result.values, characterize(small_trace, CONFIG).values
        )

    def test_mapped_shards_are_bounded_copies(self, small_trace, tmp_path):
        # The out-of-core contract: a shard materializes only its own
        # rows, never the whole file.
        path = tmp_path / "trace.mtf"
        write_trace(small_trace, path)
        source = open_trace_source(path)
        for start, chunk in source.iter_shards([(0, 100), (4_900, 5_000)]):
            assert len(chunk) == 100
            assert chunk.data.nbytes == small_trace.data[:100].nbytes


class TestParallelScheduler:
    """The two-round fan-out reduces to the same bits as the stream."""

    def test_jobs2_matches_one_shot(self, small_trace):
        result = sharded_characterize(
            small_trace, CONFIG, shards=4, jobs=2
        )
        assert _bitwise_equal(
            result.values, characterize(small_trace, CONFIG).values
        )

    def test_characterize_entrypoint_shards(self, small_trace):
        # characterize(trace, shards=N) routes through the scheduler.
        assert _bitwise_equal(
            characterize(small_trace, CONFIG, shards=6).values,
            characterize(small_trace, CONFIG).values,
        )

    def test_jobs_alone_implies_shards(self, small_trace):
        assert _bitwise_equal(
            characterize(small_trace, CONFIG, jobs=2).values,
            characterize(small_trace, CONFIG).values,
        )


class TestShardCache:
    """Satellite: warm shard-level cache entries skip the engine."""

    def test_warm_cache_skips_cold_states(self, small_trace, tmp_path):
        reset_cold_state_call_count()
        first = sharded_characterize(
            small_trace, CONFIG, shards=5, cache_dir=tmp_path
        )
        assert cold_state_call_count() == 5
        assert sorted(tmp_path.glob("shard-*.npz"))
        reset_cold_state_call_count()
        second = sharded_characterize(
            small_trace, CONFIG, shards=5, cache_dir=tmp_path
        )
        assert cold_state_call_count() == 0
        assert _bitwise_equal(first.values, second.values)

    def test_extended_trace_reuses_aligned_shards(
        self, default_profile, tmp_path
    ):
        # Fixed shard_size geometry: re-characterizing a trace that
        # grew at the end only computes the new tail shard.
        longer = generate_trace(default_profile, 3_000)
        prefix = _cut(longer, 0, 2_500)
        sharded_characterize(
            prefix, CONFIG, shard_size=500, cache_dir=tmp_path
        )
        reset_cold_state_call_count()
        result = sharded_characterize(
            longer, CONFIG, shard_size=500, cache_dir=tmp_path
        )
        assert cold_state_call_count() == 1  # only the new tail shard
        assert _bitwise_equal(
            result.values, characterize(longer, CONFIG).values
        )

    def test_offset_changes_the_state(self, small_trace):
        # ILP window alignment and register positions are absolute, so
        # the same bytes at a different offset are a different state —
        # the reason the shard cache keys on the absolute start.
        chunk = _cut(small_trace,64, 128)
        at_64 = shard_state(chunk, 64, CONFIG)
        at_96 = shard_state(chunk, 96, CONFIG)
        a, b = state_to_arrays(at_64), state_to_arrays(at_96)
        assert any(
            not np.array_equal(a[key], b[key]) for key in a
        )


class TestSerializationRoundtrip:
    """state_to_arrays / state_from_arrays through real npz bytes."""

    def test_npz_roundtrip_preserves_every_field(self, small_trace):
        bounds = shard_bounds(len(small_trace), shards=3)
        reference = characterize(small_trace, CONFIG).values
        prefix = None
        correct = np.zeros(4, dtype=np.int64)
        for start, end in bounds:
            chunk = _cut(small_trace,start, end)
            carry = (
                prefix.ppm if prefix is not None
                else ppm_empty_state(CONFIG.ppm_max_order)
            )
            correct += ppm_shard_correct(
                chunk, carry, CONFIG.ppm_max_order
            )
            state = shard_state(chunk, start, CONFIG)
            buffer = io.BytesIO()
            np.savez(buffer, **state_to_arrays(state))
            buffer.seek(0)
            with np.load(buffer) as payload:
                arrays = {key: payload[key] for key in payload.files}
            restored = state_from_arrays(arrays)
            prefix = (
                restored if prefix is None
                else merge_states(prefix, restored, CONFIG)
            )
        assert _bitwise_equal(
            finalize_state(prefix, correct, CONFIG), reference
        )

    def test_partial_state_roundtrip(self, small_trace):
        wanted = resolve_wanted(["ILP", "branch predictability"])
        state = shard_state(_cut(small_trace,0, 1_000), 0, CONFIG, wanted)
        restored = state_from_arrays(state_to_arrays(state))
        assert restored.sections == state.sections
        assert restored.start == 0 and restored.end == 1_000


class TestErrorSurfaces:

    def test_empty_trace_is_rejected(self, tiny_builder):
        with pytest.raises(CharacterizationError, match="empty trace"):
            sharded_characterize(tiny_builder.build(), CONFIG, shards=2)

    def test_empty_shard_is_rejected(self, small_trace):
        with pytest.raises(CharacterizationError, match="empty shard"):
            shard_state(_cut(small_trace,0, 0), 0, CONFIG)

    def test_non_adjacent_merge_is_rejected(self, small_trace):
        a = shard_state(_cut(small_trace,0, 100), 0, CONFIG)
        b = shard_state(_cut(small_trace,200, 300), 200, CONFIG)
        with pytest.raises(CharacterizationError, match="non-adjacent"):
            merge_states(a, b, CONFIG)

    def test_unrooted_finalize_is_rejected(self, small_trace):
        state = shard_state(_cut(small_trace,100, 200), 100, CONFIG)
        with pytest.raises(CharacterizationError, match="unrooted"):
            finalize_state(state, np.zeros(4, dtype=np.int64), CONFIG)

    def test_bad_geometry_is_rejected(self, small_trace):
        with pytest.raises(TraceError, match="exactly one"):
            sharded_characterize(small_trace, CONFIG)
        with pytest.raises(TraceError, match="exactly one"):
            sharded_characterize(
                small_trace, CONFIG, shards=2, shard_size=10
            )
        with pytest.raises(TraceError, match="shards must be"):
            sharded_characterize(small_trace, CONFIG, shards=0)
        with pytest.raises(TraceError, match="shard_size must be"):
            sharded_characterize(small_trace, CONFIG, shard_size=-1)

    def test_unknown_category_is_rejected(self, small_trace):
        with pytest.raises(CharacterizationError, match="unknown"):
            sharded_characterize(
                small_trace, CONFIG, shards=2, categories=["nonesuch"]
            )

    def test_out_of_range_index_is_rejected(self, small_trace):
        with pytest.raises(CharacterizationError, match="out of range"):
            sharded_characterize(
                small_trace, CONFIG, shards=2, indices=[47]
            )

    def test_unshardable_ppm_order_is_rejected(self, small_trace):
        config = CONFIG.with_overrides(ppm_max_order=25)
        with pytest.raises(CharacterizationError,
                           match="ppm_max_order"):
            sharded_characterize(small_trace, config, shards=2)

    def test_unrooted_ppm_carry_is_rejected(self, small_trace):
        # A mid-trace cold state still defers its leading branches; it
        # is not a valid prediction carry.
        state = shard_state(_cut(small_trace,1_000, 2_000), 1_000, CONFIG)
        if not (len(state.ppm.deferred_global[1])
                or len(state.ppm.deferred_local[1])):
            pytest.skip("no branches deferred at this boundary")
        with pytest.raises(CharacterizationError, match="rooted"):
            ppm_shard_correct(
                _cut(small_trace,2_000, 3_000), state.ppm,
                CONFIG.ppm_max_order,
            )
