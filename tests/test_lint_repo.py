"""The lint gate against the real repository, and the baseline model.

Three contracts from ISSUE 10: the repo itself lints clean against the
committed baseline; the baseline round-trips (an entry matching no
finding fails the gate as *stale*); and reverting a seed true-positive
fix — the vectorized ``RegisterState.finalize`` in
``repro.mica.shard`` — makes the gate fail again.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    BaselineEntry,
    Finding,
    LintProject,
    LintUsageError,
    apply_baseline,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.rules import VectorizationRule

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_finding(rule="determinism", path="src/repro/mica/x.py",
                 message="boom", line=1):
    return Finding(
        rule=rule, severity="error", path=path, line=line, col=0,
        message=message,
    )


class TestRepositoryIsClean:
    def test_repo_lints_clean_against_committed_baseline(self):
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        report = run_lint(root=REPO_ROOT, baseline=baseline)
        assert report.new == [], "\n".join(
            finding.format() for finding in report.new
        )
        assert report.stale == []
        assert report.exit_code == 0

    def test_committed_baseline_parses_and_is_justified(self):
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        for entry in baseline.entries:
            assert entry.justification, (
                f"baseline entry for {entry.rule} at {entry.path} "
                "carries no justification"
            )

    def test_every_module_parses(self):
        project = LintProject.load(REPO_ROOT)
        broken = [
            module.path
            for module in project.modules
            if module.parse_error is not None
        ]
        assert broken == []
        assert project.modules, "no modules discovered"
        assert project.test_modules, "no test modules discovered"


class TestRevertDetection:
    """Reverting the shard.py vectorization fix must trip the gate."""

    SHARD = "src/repro/mica/shard.py"
    FIXED = (
        "            values[2:] = (\n"
        "                np.asarray(self.dist_counts, dtype=float) / total\n"
        "            )\n"
    )
    REVERTED = (
        "            for position in range(len(self.dist_counts)):\n"
        "                values[2 + position] = (\n"
        "                    float(self.dist_counts[position]) / total\n"
        "                )\n"
    )

    def test_current_source_is_quiet(self):
        text = (REPO_ROOT / self.SHARD).read_text(encoding="utf-8")
        assert self.FIXED in text, "fixed block drifted; update test"
        project = LintProject.from_sources({self.SHARD: text})
        report = run_lint(project=project, rules=[VectorizationRule()])
        assert report.new == []

    def test_reverted_fix_fails_the_gate(self):
        text = (REPO_ROOT / self.SHARD).read_text(encoding="utf-8")
        reverted = text.replace(self.FIXED, self.REVERTED)
        assert reverted != text
        project = LintProject.from_sources({self.SHARD: reverted})
        report = run_lint(project=project, rules=[VectorizationRule()])
        assert len(report.new) == 1
        assert report.new[0].rule == "vectorization"
        assert report.exit_code == 1


class TestBaselineModel:
    def test_baseline_hides_matching_finding(self):
        finding = make_finding()
        baseline = Baseline(
            entries=(
                BaselineEntry(
                    rule=finding.rule, path=finding.path,
                    message=finding.message,
                ),
            )
        )
        new, matched, stale = apply_baseline([finding], baseline)
        assert new == []
        assert matched == [finding]
        assert stale == []

    def test_multiset_matching_exposes_second_occurrence(self):
        finding = make_finding()
        duplicate = make_finding(line=9)
        baseline = Baseline(
            entries=(
                BaselineEntry(
                    rule=finding.rule, path=finding.path,
                    message=finding.message,
                ),
            )
        )
        new, matched, stale = apply_baseline(
            [finding, duplicate], baseline
        )
        assert len(matched) == 1
        assert len(new) == 1
        assert stale == []

    def test_stale_entry_fails_the_gate(self):
        baseline = Baseline(
            entries=(
                BaselineEntry(
                    rule="determinism", path="src/repro/mica/gone.py",
                    message="no longer exists",
                ),
            )
        )
        new, matched, stale = apply_baseline([], baseline)
        assert new == []
        assert matched == []
        assert len(stale) == 1
        assert stale[0].path == "src/repro/mica/gone.py"

    def test_line_moves_do_not_invalidate_the_baseline(self):
        baseline = Baseline(
            entries=(
                BaselineEntry(
                    rule="determinism", path="src/repro/mica/x.py",
                    message="boom", line=1,
                ),
            )
        )
        moved = make_finding(line=500)
        new, matched, stale = apply_baseline([moved], baseline)
        assert new == [] and stale == []

    def test_write_then_load_round_trips(self, tmp_path):
        findings = [make_finding(), make_finding(rule="dead-code")]
        target = tmp_path / "baseline.json"
        write_baseline(target, findings, justification="test entry")
        loaded = load_baseline(target)
        assert len(loaded.entries) == 2
        new, matched, stale = apply_baseline(findings, loaded)
        assert new == [] and stale == []
        assert all(e.justification == "test entry"
                   for e in loaded.entries)

    def test_load_rejects_bad_schema(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(LintUsageError):
            load_baseline(target)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(LintUsageError):
            load_baseline(tmp_path / "absent.json")

    def test_load_rejects_malformed_entry(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps(
                {
                    "schema": "repro-lint-baseline/1",
                    "entries": [{"rule": "x"}],
                }
            )
        )
        with pytest.raises(LintUsageError):
            load_baseline(target)
