"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("list", "dataset", "fig1", "table3", "fig2-3",
                        "fig4", "fig5", "table4", "fig6", "all"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_benchmark_argument(self):
        args = build_parser().parse_args(["characterize", "mcf"])
        assert args.benchmark == "mcf"

    def test_trace_length_flag(self):
        args = build_parser().parse_args(
            ["--trace-length", "1234", "list"]
        )
        assert args.trace_length == 1234


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "122 benchmarks" in out
        assert "bzip2" in out

    def test_characterize(self, capsys):
        code = main(["--trace-length", "3000", "characterize", "mcf"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[instruction mix]" in out
        assert "ppm_PAs" in out

    def test_hpc(self, capsys):
        code = main(["--trace-length", "3000", "hpc", "adpcm/rawcaudio"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ipc_ev56" in out

    def test_phases(self, capsys):
        code = main([
            "--trace-length", "4000", "phases", "mcf", "--interval", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase analysis of mcf" in out
        assert "phase timeline" in out
        assert "simulation points" in out
        assert "characteristic timeline" in out

    def test_phases_homogeneity(self, capsys):
        code = main([
            "--trace-length", "4000", "phases", "mcf",
            "--interval", "1000", "--signature", "mix", "--homogeneity",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase homogeneity" in out
        assert "simpoint err" in out

    def test_phases_signature_choices(self):
        parser = build_parser()
        args = parser.parse_args(["phases", "mcf", "--signature", "mica"])
        assert args.signature == "mica"
        with pytest.raises(SystemExit):
            parser.parse_args(["phases", "mcf", "--signature", "bogus"])

    def test_unknown_benchmark_is_error(self, capsys):
        code = main(["--trace-length", "3000", "characterize", "nonesuch"])
        assert code == 1
        assert "error" in capsys.readouterr().err
