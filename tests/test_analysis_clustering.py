"""Tests for k-means, BIC, K selection and kiviat utilities."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import (
    ClusteringResult,
    bic_score,
    choose_k,
    cluster_benchmarks,
    kiviat_ascii,
    kiviat_normalize,
    kiviat_table,
    kmeans,
)


def make_blobs(k=3, per_cluster=15, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(k, 4))
    points = np.vstack(
        [
            center + rng.normal(scale=spread, size=(per_cluster, 4))
            for center in centers
        ]
    )
    labels = np.repeat(np.arange(k), per_cluster)
    return points, labels


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, labels = make_blobs(k=3)
        result = kmeans(points, 3, seed=1)
        # Each true cluster maps to exactly one predicted cluster.
        for true_cluster in range(3):
            predicted = result.assignments[labels == true_cluster]
            assert len(set(predicted.tolist())) == 1

    def test_inertia_decreases_with_k(self):
        points, _ = make_blobs(k=4)
        inertia = [
            kmeans(points, k, seed=2).inertia for k in (1, 2, 4, 8)
        ]
        assert inertia == sorted(inertia, reverse=True)

    def test_k_equals_n_gives_zero_inertia(self):
        points = np.random.default_rng(3).normal(size=(6, 2))
        result = kmeans(points, 6, seed=0, restarts=10)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_deterministic_given_seed(self):
        points, _ = make_blobs()
        a = kmeans(points, 3, seed=5)
        b = kmeans(points, 3, seed=5)
        assert np.array_equal(a.assignments, b.assignments)

    def test_cluster_sizes(self):
        points, _ = make_blobs(k=3, per_cluster=10)
        result = kmeans(points, 3, seed=1)
        assert sorted(result.cluster_sizes().tolist()) == [10, 10, 10]

    def test_bad_k_rejected(self):
        points, _ = make_blobs()
        with pytest.raises(AnalysisError):
            kmeans(points, 0)
        with pytest.raises(AnalysisError):
            kmeans(points, len(points) + 1)


class TestBic:
    def test_true_k_maximizes_bic(self):
        points, _ = make_blobs(k=4, per_cluster=20, spread=0.1, seed=7)
        scores = {}
        for k in range(1, 9):
            result = kmeans(points, k, seed=k)
            scores[k] = bic_score(points, result)
        assert max(scores, key=lambda k: scores[k]) == 4

    def test_degenerate_k_is_minus_infinity(self):
        points = np.random.default_rng(8).normal(size=(5, 2))
        result = kmeans(points, 5, seed=0)
        assert bic_score(points, result) == -np.inf


class TestChooseK:
    def test_finds_blob_count(self):
        points, _ = make_blobs(k=5, per_cluster=12, spread=0.1, seed=9)
        clustering = choose_k(points, k_range=(1, 12), seed=1)
        assert clustering.k == 5

    def test_prefers_smallest_k_at_threshold(self):
        points, _ = make_blobs(k=3, per_cluster=20, spread=0.1, seed=10)
        strict = choose_k(points, k_range=(1, 10), score_fraction=1.0,
                          seed=1)
        lenient = choose_k(points, k_range=(1, 10), score_fraction=0.5,
                           seed=1)
        assert lenient.k <= strict.k

    def test_result_contents(self):
        points, _ = make_blobs(k=3, seed=11)
        clustering = choose_k(points, k_range=(1, 8), seed=2)
        assert isinstance(clustering, ClusteringResult)
        assert set(clustering.bic_by_k) == set(range(1, 9))
        assert all(
            0.0 <= v <= 1.0 for v in clustering.normalized_scores.values()
        )
        members = np.concatenate(
            [clustering.members(c) for c in range(clustering.result.k)]
        )
        assert sorted(members.tolist()) == list(range(len(points)))

    def test_singletons_detected(self):
        rng = np.random.default_rng(12)
        cluster = rng.normal(size=(20, 3), scale=0.05)
        outlier = np.full((1, 3), 50.0)
        points = np.vstack([cluster, outlier])
        clustering = choose_k(points, k_range=(1, 6), seed=3)
        singletons = clustering.singleton_clusters()
        assert len(singletons) >= 1
        assert 20 in clustering.members(singletons[0])

    def test_invalid_range(self):
        points, _ = make_blobs()
        with pytest.raises(AnalysisError):
            choose_k(points, k_range=(0, 5))
        with pytest.raises(AnalysisError):
            choose_k(points, k_range=(1, 5), score_fraction=0.0)

    def test_cluster_benchmarks_names(self):
        points, _ = make_blobs(k=2, per_cluster=5, seed=13)
        names = [f"bench-{i}" for i in range(len(points))]
        clustering, members = cluster_benchmarks(
            points, names, k_range=(1, 5), seed=4
        )
        flat = [name for group in members.values() for name in group]
        assert sorted(flat) == sorted(names)

    def test_cluster_benchmarks_name_mismatch(self):
        points, _ = make_blobs()
        with pytest.raises(AnalysisError):
            cluster_benchmarks(points, ["only-one"], k_range=(1, 3))


class TestKiviat:
    def test_normalize_to_unit_range(self):
        rng = np.random.default_rng(14)
        data = rng.uniform(-5.0, 5.0, size=(10, 4))
        normalized = kiviat_normalize(data)
        assert normalized.min() == pytest.approx(0.0)
        assert normalized.max() == pytest.approx(1.0)

    def test_normalize_constant_column(self):
        data = np.ones((4, 2))
        data[:, 1] = [0, 1, 2, 3]
        normalized = kiviat_normalize(data)
        assert (normalized[:, 0] == 0.5).all()

    def test_ascii_renders_polygon(self):
        art = kiviat_ascii([1.0] * 8, radius=5)
        assert "*" in art
        assert "+" in art

    def test_ascii_with_labels(self):
        art = kiviat_ascii([0.5, 0.7], labels=["alpha", "beta"], radius=4)
        assert "alpha" in art
        assert "0.50" in art

    def test_ascii_rejects_out_of_range(self):
        with pytest.raises(AnalysisError):
            kiviat_ascii([1.5])
        with pytest.raises(AnalysisError):
            kiviat_ascii([])

    def test_ascii_label_count_checked(self):
        with pytest.raises(AnalysisError):
            kiviat_ascii([0.5, 0.5], labels=["only-one"])

    def test_table_renders_rows(self):
        data = np.array([[0.0, 1.0], [0.5, 0.25]])
        text = kiviat_table(["a", "b"], data, ["x", "y"])
        assert "a" in text and "b" in text
        assert "#" in text

    def test_table_validates(self):
        with pytest.raises(AnalysisError):
            kiviat_table(["a"], np.array([[2.0]]), ["x"])
