"""Batch-vs-reference equivalence for the trace-generation engine.

The batch control-flow interpreter :func:`repro.synth.generator._interpret`
and the grouped expansion :func:`repro.synth.generator._expand` must
produce *bit-identical* results to the retained scalar specifications
(:func:`_interpret_reference` / :func:`_expand_reference`) on randomized
profiles across shapes, lengths and seeds, and on hand-built edge cases
— the same contract ``test_mica_vectorized_equivalence`` enforces for
the PPM/ILP analyzers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth import (
    BranchSpec,
    CodeSpec,
    MemorySpec,
    PointerChase,
    WorkloadProfile,
    build_code,
    generate_trace,
    make_rng,
)
from repro.synth import generator


def fresh_code(profile: WorkloadProfile):
    """A newly built static image (private behavior/model state)."""
    return build_code(
        make_rng("code", profile.name, profile.seed),
        profile.code,
        profile.mix,
        profile.memory,
        profile.branches,
    )


def interpret_both(profile: WorkloadProfile, length: int, seed: int = 0):
    """(visits, outcomes) from the batch engine and the reference,
    each on a fresh image and identically seeded rng."""
    results = []
    for interpret in (generator._interpret, generator._interpret_reference):
        code = fresh_code(profile)
        rng = make_rng("trace", profile.name, profile.seed, seed)
        results.append(interpret(rng, code, profile, length))
    return results


def assert_interpret_matches(profile, length, seed=0):
    (visits, taken), (ref_visits, ref_taken) = interpret_both(
        profile, length, seed
    )
    assert np.array_equal(visits, ref_visits)
    assert np.array_equal(taken, ref_taken)


#: Profile shapes chosen to exercise every interpreter regime: no
#: diamonds (pure flat path), all diamonds (pure matrix path), pattern
#: vs biased outcome models, single-block loops, degenerate programs,
#: heavy cold detours, and large many-loop bodies.
PROFILE_SHAPES = {
    "default": WorkloadProfile(name="eqgen/default"),
    "no-diamonds": WorkloadProfile(
        name="eqgen/nodiamond", code=CodeSpec(diamond_rate=0.0)
    ),
    "all-diamonds": WorkloadProfile(
        name="eqgen/alldiamond", code=CodeSpec(diamond_rate=1.0)
    ),
    "all-pattern": WorkloadProfile(
        name="eqgen/pattern",
        code=CodeSpec(diamond_rate=1.0),
        branches=BranchSpec(pattern_fraction=1.0),
    ),
    "all-biased": WorkloadProfile(
        name="eqgen/biased",
        code=CodeSpec(diamond_rate=1.0),
        branches=BranchSpec(pattern_fraction=0.0, taken_bias=0.5),
    ),
    "single-block": WorkloadProfile(
        name="eqgen/singleblock",
        code=CodeSpec(num_functions=1, blocks_per_function=1),
    ),
    "short-loops": WorkloadProfile(
        name="eqgen/shortloops",
        code=CodeSpec(
            num_functions=2,
            blocks_per_function=2,
            loop_iter_mean=1.0,
            hot_function_fraction=1.0,
        ),
    ),
    "cold-heavy": WorkloadProfile(
        name="eqgen/cold", code=CodeSpec(cold_visit_rate=0.5)
    ),
    "large": WorkloadProfile(
        name="eqgen/large",
        code=CodeSpec(
            num_functions=40,
            blocks_per_function=24,
            loop_blocks=8,
            diamond_rate=0.6,
        ),
    ),
}


class TestInterpretEquivalence:
    @pytest.mark.parametrize("shape", sorted(PROFILE_SHAPES))
    @pytest.mark.parametrize("length", [10, 1_000, 8_000])
    def test_profiles_match(self, shape, length):
        assert_interpret_matches(PROFILE_SHAPES[shape], length)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_seeds_match(self, seed):
        assert_interpret_matches(PROFILE_SHAPES["default"], 4_000, seed)

    def test_exact_budget_boundaries(self):
        profile = PROFILE_SHAPES["default"]
        code = fresh_code(profile)
        lengths = code.block_lengths()
        for length in (1, 2, int(lengths[0]), int(lengths[0]) + 1, 97):
            assert_interpret_matches(profile, length)

    def test_visit_stream_is_well_formed(self):
        profile = PROFILE_SHAPES["all-diamonds"]
        code = fresh_code(profile)
        rng = make_rng("trace", profile.name, profile.seed, 0)
        visits, taken = generator._interpret(rng, code, profile, 20_000)
        lengths = code.block_lengths()
        # The budget is covered exactly at the final visit.
        totals = np.cumsum(lengths[visits])
        assert totals[-1] >= 20_000
        assert totals[-2] < 20_000
        # Not-taken visits always fall through to the next block.
        not_taken = np.flatnonzero(~taken[:-1])
        assert np.array_equal(visits[not_taken + 1], visits[not_taken] + 1)


class TestExpandEquivalence:
    @pytest.mark.parametrize(
        "shape", ["default", "no-diamonds", "large", "single-block"]
    )
    def test_profiles_match(self, shape):
        profile = PROFILE_SHAPES[shape]
        code = fresh_code(profile)
        rng = make_rng("trace", profile.name, profile.seed, 0)
        visits, outcomes = generator._interpret(rng, code, profile, 12_000)

        code.reset_state()
        batch = generator._expand(
            make_rng("expand-eq"), code, visits, outcomes, 12_000
        )
        code.reset_state()
        reference = generator._expand_reference(
            make_rng("expand-eq"), code, visits, outcomes, 12_000
        )
        assert set(batch) == set(reference)
        for column in batch:
            assert np.array_equal(batch[column], reference[column]), column

    def test_every_behavior_kind_matches(self):
        profile = WorkloadProfile(
            name="eqgen/memkinds",
            memory=MemorySpec(
                load_mix={
                    "scalar": 0.2,
                    "sequential": 0.2,
                    "strided": 0.2,
                    "random": 0.2,
                    "pointer": 0.2,
                },
                store_mix={"scalar": 0.4, "random": 0.3, "pointer": 0.3},
            ),
        )
        code = fresh_code(profile)
        rng = make_rng("trace", profile.name, profile.seed, 0)
        visits, outcomes = generator._interpret(rng, code, profile, 10_000)
        code.reset_state()
        batch = generator._expand(
            make_rng("mem-eq"), code, visits, outcomes, 10_000
        )
        code.reset_state()
        reference = generator._expand_reference(
            make_rng("mem-eq"), code, visits, outcomes, 10_000
        )
        assert np.array_equal(batch["mem_addr"], reference["mem_addr"])


class TestFullPipelineEquivalence:
    @pytest.mark.parametrize("shape", ["default", "all-diamonds", "large"])
    def test_generate_trace_matches_reference_engine(
        self, shape, monkeypatch
    ):
        """Swapping both batch phases for their references reproduces
        the identical trace — draws, expansion and registers included."""
        profile = PROFILE_SHAPES[shape]
        batch = generate_trace(profile, 6_000, seed=7)
        monkeypatch.setattr(
            generator, "_interpret", generator._interpret_reference
        )
        monkeypatch.setattr(
            generator, "_expand", generator._expand_reference
        )
        reference = generate_trace(profile, 6_000, seed=7)
        assert np.array_equal(batch.data, reference.data)


class TestPointerChaseBatching:
    def test_batch_equals_incremental(self):
        one = PointerChase(base=0x1000, footprint=1024, seed=9)
        many = PointerChase(base=0x1000, footprint=1024, seed=9)
        whole = one.generate(make_rng("x"), 300)
        parts = np.concatenate(
            [many.generate(make_rng("y"), n) for n in (1, 7, 120, 172)]
        )
        assert np.array_equal(whole, parts)

    def test_reset_restarts_the_cycle(self):
        stream = PointerChase(base=0x1000, footprint=512, seed=3)
        first = stream.generate(make_rng("x"), 40)
        stream.reset()
        again = stream.generate(make_rng("x"), 40)
        assert np.array_equal(first, again)
