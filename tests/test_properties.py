"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import (
    auc,
    classify_quadrants,
    kiviat_normalize,
    kmeans,
    max_normalize,
    pairwise_distances,
    pearson,
    zscore,
)
from repro.analysis.distance import condensed_index
from repro.mica import characterize, ppm_predictabilities
from repro.synth import (
    MixSpec,
    RegisterSpec,
    SequentialStream,
    WorkloadProfile,
    generate_trace,
)
from repro.trace import validate_trace

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

finite_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(3, 12), st.integers(1, 8)),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestNormalizationProperties:
    @_SETTINGS
    @given(finite_matrices)
    def test_zscore_idempotent_shape(self, data):
        z = zscore(data)
        assert z.shape == data.shape
        assert np.isfinite(z).all()
        # Columns are zero-mean after normalization.
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-6)

    @_SETTINGS
    @given(finite_matrices)
    def test_max_normalize_bounded(self, data):
        normalized = max_normalize(data)
        assert (np.abs(normalized) <= 1.0 + 1e-9).all()

    @_SETTINGS
    @given(finite_matrices)
    def test_kiviat_normalize_unit_interval(self, data):
        normalized = kiviat_normalize(data)
        assert (normalized >= -1e-12).all()
        assert (normalized <= 1.0 + 1e-12).all()


class TestDistanceProperties:
    @_SETTINGS
    @given(finite_matrices)
    def test_distances_non_negative_and_symmetric(self, data):
        condensed = pairwise_distances(data)
        assert (condensed >= 0.0).all()
        n = data.shape[0]
        assert len(condensed) == n * (n - 1) // 2
        for i in range(n):
            for j in range(i + 1, n):
                assert condensed_index(i, j, n) == condensed_index(j, i, n)

    @_SETTINGS
    @given(finite_matrices)
    def test_triangle_inequality(self, data):
        from repro.analysis import distance_matrix

        square = distance_matrix(pairwise_distances(data))
        n = len(square)
        for i in range(min(n, 5)):
            for j in range(min(n, 5)):
                for k in range(min(n, 5)):
                    assert square[i, j] <= (
                        square[i, k] + square[k, j] + 1e-6
                    )

    @_SETTINGS
    @given(
        arrays(
            np.float64,
            st.integers(2, 50),
            elements=st.floats(-1e3, 1e3, allow_nan=False),
        )
    )
    def test_pearson_bounded(self, x):
        y = np.roll(x, 1)
        value = pearson(x, y)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @_SETTINGS
    @given(finite_matrices)
    def test_self_classification_has_no_confusion(self, data):
        condensed = pairwise_distances(data)
        if condensed.max() == 0.0:
            return  # Degenerate: all rows identical.
        quadrants = classify_quadrants(condensed, condensed)
        assert quadrants.false_positive == 0.0
        assert quadrants.false_negative == 0.0


class TestAucProperties:
    @_SETTINGS
    @given(
        arrays(
            np.float64,
            st.integers(2, 40),
            elements=st.floats(0.0, 1.0, allow_nan=False),
        )
    )
    def test_auc_bounded_for_unit_box(self, y):
        x = np.linspace(0.0, 1.0, len(y))
        value = auc(x, y)
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestKMeansProperties:
    @_SETTINGS
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(4, 20), st.integers(1, 4)),
            elements=st.floats(-100.0, 100.0, allow_nan=False),
        ),
        st.integers(1, 4),
    )
    def test_assignments_complete_and_valid(self, data, k):
        k = min(k, len(data))
        result = kmeans(data, k, seed=0, restarts=2)
        assert len(result.assignments) == len(data)
        assert result.assignments.min() >= 0
        assert result.assignments.max() < k
        assert result.inertia >= 0.0

    @_SETTINGS
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(6, 15), st.integers(1, 3)),
            elements=st.floats(-50.0, 50.0, allow_nan=False),
        )
    )
    def test_more_clusters_never_increase_inertia(self, data):
        two = kmeans(data, 2, seed=1, restarts=4).inertia
        four = kmeans(data, min(4, len(data)), seed=1, restarts=4).inertia
        assert four <= two + 1e-6


class TestSynthProperties:
    @_SETTINGS
    @given(
        st.integers(100, 3000),
        st.integers(0, 2**31),
    )
    def test_generated_traces_always_validate(self, length, seed):
        profile = WorkloadProfile(name=f"prop/{seed % 7}", seed=seed % 5)
        trace = generate_trace(profile, length, seed=seed)
        assert len(trace) == length
        validate_trace(trace)

    @_SETTINGS
    @given(st.integers(1, 6))
    def test_characteristics_bounded(self, variant):
        profile = WorkloadProfile(name=f"prop/char/{variant}")
        trace = generate_trace(profile, 2_000)
        vector = characterize(trace).values
        # Fractions and probabilities are within [0, 1].
        mix = vector[0:6]
        assert ((mix >= 0.0) & (mix <= 1.0)).all()
        dep = vector[12:19]
        assert ((dep >= 0.0) & (dep <= 1.0)).all()
        strides = vector[23:43]
        assert ((strides >= 0.0) & (strides <= 1.0)).all()
        ppm = vector[43:47]
        assert ((ppm >= 0.0) & (ppm <= 1.0)).all()
        # Counts and rates are non-negative.
        assert (vector[6:12] >= 0.0).all()
        assert (vector[19:23] >= 0.0).all()

    @_SETTINGS
    @given(st.integers(1, 1000), st.integers(8, 512))
    def test_sequential_stream_stays_in_region(self, count, footprint_slots):
        stream = SequentialStream(
            base=0x1000, footprint=footprint_slots * 8
        )
        addrs = stream.generate(np.random.default_rng(0), count)
        assert (addrs >= 0x1000).all()
        assert (addrs < 0x1000 + footprint_slots * 8).all()

    @_SETTINGS
    @given(
        st.floats(0.01, 0.97),
        st.integers(0, 100),
    )
    def test_mix_normalized_always_valid(self, load_weight, seed):
        mix = MixSpec.normalized(
            load=load_weight,
            store=0.1,
            branch=0.1,
            int_alu=0.5,
            int_mul=0.02,
            fp=0.05,
        )
        assert abs(sum(mix.as_dict().values()) - 1.0) < 1e-9
