"""Tests for the repro.synth package (program model and generator)."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.isa import OpClass
from repro.synth import (
    BiasedBranch,
    BranchSpec,
    CodeSpec,
    MemorySpec,
    MixSpec,
    PatternBranch,
    PointerChase,
    RandomStream,
    RegisterSpec,
    ScalarStream,
    SequentialStream,
    StridedStream,
    WorkloadProfile,
    build_code,
    generate_trace,
    make_behavior,
    make_branch_model,
    make_rng,
    stable_seed,
)
from repro.trace import validate_trace


class TestRng:
    def test_stable_seed_is_deterministic(self):
        assert stable_seed("a", "b", 1) == stable_seed("a", "b", 1)

    def test_stable_seed_distinguishes_inputs(self):
        assert stable_seed("a", "b") != stable_seed("a", "c")
        assert stable_seed("ab") != stable_seed("a", "b")

    def test_make_rng_reproducible(self):
        a = make_rng("x").random(5)
        b = make_rng("x").random(5)
        assert np.array_equal(a, b)


class TestMemoryBehaviors:
    def test_scalar_always_same_address(self):
        stream = ScalarStream(base=0x1000, footprint=8)
        rng = make_rng("t")
        addrs = stream.generate(rng, 50)
        assert (addrs == 0x1000).all()

    def test_sequential_strides(self):
        stream = SequentialStream(base=0x1000, footprint=1024, stride=8)
        addrs = stream.generate(make_rng("t"), 10)
        assert list(np.diff(addrs.astype(np.int64))) == [8] * 9

    def test_sequential_wraps_at_footprint(self):
        stream = SequentialStream(base=0x1000, footprint=64, stride=8)
        addrs = stream.generate(make_rng("t"), 20)
        assert addrs.max() < 0x1000 + 64
        assert addrs.min() >= 0x1000

    def test_sequential_repeats_dwell(self):
        stream = SequentialStream(base=0x1000, footprint=1024, repeats=3)
        addrs = stream.generate(make_rng("t"), 9)
        assert list(addrs[:3]) == [0x1000] * 3
        assert list(addrs[3:6]) == [0x1008] * 3

    def test_sequential_state_persists_across_calls(self):
        stream = SequentialStream(base=0x1000, footprint=1 << 20)
        first = stream.generate(make_rng("t"), 4)
        second = stream.generate(make_rng("t"), 4)
        assert second[0] == first[-1] + 8

    def test_strided_large_stride(self):
        stream = StridedStream(base=0x1000, footprint=1 << 16, stride=256)
        addrs = stream.generate(make_rng("t"), 5)
        assert list(np.diff(addrs.astype(np.int64))) == [256] * 4

    def test_random_within_region(self):
        stream = RandomStream(base=0x1000, footprint=4096)
        addrs = stream.generate(make_rng("t"), 500)
        assert addrs.min() >= 0x1000
        assert addrs.max() < 0x1000 + 4096
        assert (addrs % 8 == 0).all()

    def test_random_hot_subset_concentrates(self):
        stream = RandomStream(
            base=0x1000, footprint=1 << 20,
            hot_probability=0.9, hot_divisor=16,
        )
        addrs = stream.generate(make_rng("t"), 2000)
        hot_limit = 0x1000 + (1 << 20) // 16
        assert (addrs < hot_limit).mean() > 0.8

    def test_pointer_chase_covers_region_without_repeats(self):
        stream = PointerChase(base=0x1000, footprint=256, seed=1)
        addrs = stream.generate(make_rng("t"), 32)
        assert len(set(addrs.tolist())) == 32  # 256/8 slots, full cycle.

    def test_pointer_chase_is_deterministic_walk(self):
        a = PointerChase(base=0x1000, footprint=1024, seed=5)
        b = PointerChase(base=0x1000, footprint=1024, seed=5)
        assert np.array_equal(
            a.generate(make_rng("x"), 20), b.generate(make_rng("y"), 20)
        )

    def test_make_behavior_kinds(self):
        rng = make_rng("t")
        for kind, cls in [
            ("scalar", ScalarStream),
            ("sequential", SequentialStream),
            ("strided", StridedStream),
            ("random", RandomStream),
            ("pointer", PointerChase),
        ]:
            behavior = make_behavior(kind, 0x1000, 4096, rng)
            assert isinstance(behavior, cls)

    def test_make_behavior_unknown_kind(self):
        with pytest.raises(ProfileError):
            make_behavior("zigzag", 0x1000, 4096, make_rng("t"))

    def test_invalid_parameters(self):
        with pytest.raises(ProfileError):
            SequentialStream(base=0, footprint=64)
        with pytest.raises(ProfileError):
            SequentialStream(base=0x1000, footprint=64, stride=7)
        with pytest.raises(ProfileError):
            SequentialStream(base=0x1000, footprint=64, repeats=0)
        with pytest.raises(ProfileError):
            ScalarStream(base=0x1000, footprint=2)


class TestBranchModels:
    def test_pattern_branch_repeats(self):
        model = PatternBranch([True, False, False])
        rng = make_rng("t")
        outcomes = [model.next_outcome(rng) for _ in range(9)]
        assert outcomes == [True, False, False] * 3

    def test_pattern_branch_rejects_empty(self):
        with pytest.raises(ProfileError):
            PatternBranch([])

    def test_biased_branch_respects_bias(self):
        model = BiasedBranch(0.9)
        rng = make_rng("t")
        outcomes = [model.next_outcome(rng) for _ in range(2000)]
        assert 0.85 < np.mean(outcomes) < 0.95

    def test_biased_branch_bounds(self):
        with pytest.raises(ProfileError):
            BiasedBranch(1.5)

    def test_make_branch_model_pattern_fraction(self):
        rng = make_rng("models")
        kinds = [
            type(make_branch_model(rng, pattern_fraction=1.0, taken_bias=0.5))
            for _ in range(10)
        ]
        assert all(kind is PatternBranch for kind in kinds)
        kinds = [
            type(make_branch_model(rng, pattern_fraction=0.0, taken_bias=0.5))
            for _ in range(10)
        ]
        assert all(kind is BiasedBranch for kind in kinds)


class TestSpecs:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ProfileError):
            MixSpec(load=0.9, store=0.9, branch=0.1,
                    int_alu=0.1, int_mul=0.0, fp=0.0)

    def test_mix_normalized_helper(self):
        mix = MixSpec.normalized(load=2, store=1, branch=1,
                                 int_alu=5, int_mul=0, fp=1)
        total = sum(mix.as_dict().values())
        assert total == pytest.approx(1.0)
        assert mix.load == pytest.approx(0.2)

    def test_mix_requires_branches(self):
        with pytest.raises(ProfileError):
            MixSpec(load=0.5, store=0.1, branch=0.0,
                    int_alu=0.4, int_mul=0.0, fp=0.0)

    def test_body_distribution_excludes_branch(self):
        classes, weights = MixSpec().body_distribution()
        assert int(OpClass.BRANCH) not in classes.tolist()
        assert weights.sum() == pytest.approx(1.0)

    def test_memory_spec_validates_behavior_kinds(self):
        with pytest.raises(ProfileError):
            MemorySpec(load_mix={"teleport": 1.0})

    def test_memory_spec_validates_stride(self):
        with pytest.raises(ProfileError):
            MemorySpec(stride_bytes=10)

    def test_register_spec_bounds(self):
        with pytest.raises(ProfileError):
            RegisterSpec(int_pool=31)
        with pytest.raises(ProfileError):
            RegisterSpec(dep_mean=0.5)
        with pytest.raises(ProfileError):
            RegisterSpec(two_op_fraction=1.5)

    def test_geometric_p(self):
        assert RegisterSpec(dep_mean=4.0).geometric_p == pytest.approx(0.25)
        assert RegisterSpec(dep_mean=1.0).geometric_p == 1.0

    def test_branch_spec_bounds(self):
        with pytest.raises(ProfileError):
            BranchSpec(pattern_fraction=-0.1)
        with pytest.raises(ProfileError):
            BranchSpec(max_pattern_period=1)

    def test_code_spec_bounds(self):
        with pytest.raises(ProfileError):
            CodeSpec(num_functions=0)
        with pytest.raises(ProfileError):
            CodeSpec(loop_iter_mean=0.5)
        with pytest.raises(ProfileError):
            CodeSpec(hot_function_fraction=0.0)

    def test_profile_requires_name(self):
        with pytest.raises(ProfileError):
            WorkloadProfile(name="")

    def test_profile_with_overrides(self):
        profile = WorkloadProfile(name="x")
        other = profile.with_overrides(seed=9)
        assert other.seed == 9
        assert profile.seed == 0


class TestStaticCode:
    def test_build_code_structure(self):
        profile = WorkloadProfile(name="t/code/1")
        rng = make_rng("code-test")
        code = build_code(rng, profile.code, profile.mix, profile.memory,
                          profile.branches)
        spec = profile.code
        assert len(code.functions) == spec.num_functions
        assert len(code.blocks) == spec.num_functions * spec.blocks_per_function
        assert len(code.hot_functions) + len(code.cold_functions) == (
            spec.num_functions
        )

    def test_every_block_ends_in_branch(self):
        profile = WorkloadProfile(name="t/code/2")
        rng = make_rng("code-test-2")
        code = build_code(rng, profile.code, profile.mix, profile.memory,
                          profile.branches)
        for block in code.blocks:
            assert block.opclasses[-1] == int(OpClass.BRANCH)
            assert len(block) >= 2

    def test_block_pcs_are_contiguous(self):
        profile = WorkloadProfile(name="t/code/3")
        rng = make_rng("code-test-3")
        code = build_code(rng, profile.code, profile.mix, profile.memory,
                          profile.branches)
        block = code.blocks[0]
        pcs = block.pcs
        assert list(np.diff(pcs.astype(np.int64))) == [4] * (len(block) - 1)

    def test_memory_slots_have_behaviors(self):
        profile = WorkloadProfile(name="t/code/4")
        rng = make_rng("code-test-4")
        code = build_code(rng, profile.code, profile.mix, profile.memory,
                          profile.branches)
        memory_slots = sum(len(b.memory_slots) for b in code.blocks)
        memory_templates = sum(
            int((b.opclasses == int(OpClass.LOAD)).sum()
                + (b.opclasses == int(OpClass.STORE)).sum())
            for b in code.blocks
        )
        assert memory_slots == memory_templates


class TestGenerateTrace:
    def test_exact_length(self, default_profile):
        for length in (100, 5_000):
            assert len(generate_trace(default_profile, length)) == length

    def test_rejects_bad_length(self, default_profile):
        with pytest.raises(ProfileError):
            generate_trace(default_profile, 0)

    def test_deterministic(self, default_profile):
        a = generate_trace(default_profile, 3_000)
        b = generate_trace(default_profile, 3_000)
        assert np.array_equal(a.data, b.data)

    def test_seed_changes_trace(self, default_profile):
        a = generate_trace(default_profile, 3_000, seed=0)
        b = generate_trace(default_profile, 3_000, seed=1)
        assert not np.array_equal(a.data, b.data)

    def test_generated_trace_validates(self, default_profile):
        validate_trace(generate_trace(default_profile, 5_000))

    def test_mix_approximately_matches(self, default_profile):
        trace = generate_trace(default_profile, 20_000)
        counts = trace.class_counts()
        mix = default_profile.mix
        assert counts[OpClass.LOAD] / len(trace) == pytest.approx(
            mix.load, abs=0.06
        )
        assert counts[OpClass.STORE] / len(trace) == pytest.approx(
            mix.store, abs=0.04
        )
        assert counts[OpClass.FP] / len(trace) == pytest.approx(
            mix.fp, abs=0.04
        )

    def test_fp_profile_has_fp_registers(self, fp_heavy_profile):
        trace = generate_trace(fp_heavy_profile, 5_000)
        fp_mask = trace.mask(OpClass.FP)
        assert fp_mask.sum() > 500
        fp_dsts = trace.dst[fp_mask]
        assert (fp_dsts >= 32).all()

    def test_branch_outcomes_consistent_with_flow(self, default_profile):
        """Not-taken terminators must fall through: the next PC is
        pc + 4."""
        trace = generate_trace(default_profile, 5_000)
        branch_positions = np.flatnonzero(trace.branch_mask)[:-1]
        not_taken = branch_positions[
            trace.taken[branch_positions] == 0
        ]
        next_pcs = trace.pc[not_taken + 1]
        assert (next_pcs == trace.pc[not_taken] + 4).all()

    def test_taken_branches_jump(self, default_profile):
        trace = generate_trace(default_profile, 5_000)
        positions = np.flatnonzero(
            trace.branch_mask & (trace.taken == 1)
        )[:-1]
        # Exclude the very last instruction; each taken branch's target
        # matches the next executed PC.
        positions = positions[positions < len(trace) - 1]
        assert (trace.target[positions] == trace.pc[positions + 1]).all()

    def test_footprint_monotone_in_knob(self):
        small = WorkloadProfile(
            name="t/foot/small", memory=MemorySpec(footprint_bytes=16 << 10)
        )
        large = WorkloadProfile(
            name="t/foot/large", memory=MemorySpec(footprint_bytes=16 << 20)
        )
        trace_small = generate_trace(small, 20_000)
        trace_large = generate_trace(large, 20_000)
        unique_small = len(np.unique(
            trace_small.mem_addr[trace_small.memory_mask] >> np.uint64(5)))
        unique_large = len(np.unique(
            trace_large.mem_addr[trace_large.memory_mask] >> np.uint64(5)))
        assert unique_large > unique_small * 2

    def test_code_footprint_monotone_in_functions(self):
        small = WorkloadProfile(
            name="t/code/small", code=CodeSpec(num_functions=3)
        )
        large = WorkloadProfile(
            name="t/code/large",
            code=CodeSpec(num_functions=60, cold_visit_rate=0.3),
        )
        trace_small = generate_trace(small, 20_000)
        trace_large = generate_trace(large, 20_000)
        assert len(np.unique(trace_large.pc)) > len(
            np.unique(trace_small.pc)
        )
