"""Tests for hierarchical clustering and benchmark subsetting."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.analysis import (
    LINKAGE_METHODS,
    format_subset,
    hierarchical_cluster,
    kmeans,
    select_representatives,
)


def make_blobs(k=3, per_cluster=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(k, 3))
    points = np.vstack(
        [c + rng.normal(scale=0.05, size=(per_cluster, 3)) for c in centers]
    )
    names = [f"blob{i // per_cluster}-{i % per_cluster}"
             for i in range(k * per_cluster)]
    labels = np.repeat(np.arange(k), per_cluster)
    return points, names, labels


class TestHierarchical:
    def test_cut_recovers_blobs(self):
        points, names, labels = make_blobs()
        result = hierarchical_cluster(points, names)
        groups = result.cut(3)
        assert len(groups) == 3
        for members in groups.values():
            prefixes = {name.split("-")[0] for name in members}
            assert len(prefixes) == 1

    def test_all_linkage_methods_run(self):
        points, names, _ = make_blobs()
        for method in LINKAGE_METHODS:
            result = hierarchical_cluster(points, names, method=method)
            assert result.linkage_matrix.shape == (len(points) - 1, 4)

    def test_unknown_method_rejected(self):
        points, names, _ = make_blobs()
        with pytest.raises(AnalysisError):
            hierarchical_cluster(points, names, method="centroid-ish")

    def test_name_count_checked(self):
        points, _, _ = make_blobs()
        with pytest.raises(AnalysisError):
            hierarchical_cluster(points, ["a"])

    def test_cut_bounds(self):
        points, names, _ = make_blobs()
        result = hierarchical_cluster(points, names)
        with pytest.raises(AnalysisError):
            result.cut(0)
        with pytest.raises(AnalysisError):
            result.cut(len(points) + 1)

    def test_cut_one_is_everything(self):
        points, names, _ = make_blobs()
        result = hierarchical_cluster(points, names)
        groups = result.cut(1)
        assert sorted(groups[0]) == sorted(names)

    def test_merge_heights_ascending(self):
        points, names, _ = make_blobs()
        result = hierarchical_cluster(points, names)
        heights = result.merge_heights()
        assert (np.diff(heights) >= -1e-9).all()

    def test_dendrogram_renders_all_names(self):
        points, names, _ = make_blobs(k=2, per_cluster=4)
        result = hierarchical_cluster(points, names)
        art = result.format_dendrogram()
        for name in names:
            assert name in art

    def test_blob_structure_visible_in_dendrogram(self):
        # Within-blob merges happen at low heights, cross-blob at high.
        points, names, labels = make_blobs()
        result = hierarchical_cluster(points, names)
        heights = result.merge_heights()
        low = heights[: len(points) - 3]   # All but the last k-1 merges.
        high = heights[-2:]                # Cross-blob merges.
        assert high.min() > low.max() * 5


class TestSubsetting:
    def test_one_representative_per_cluster(self):
        points, names, labels = make_blobs(k=3)
        clustering = kmeans(points, 3, seed=1)
        subset = select_representatives(points, clustering)
        assert subset.size == 3
        rep_clusters = {
            int(clustering.assignments[r]) for r in subset.representatives
        }
        assert len(rep_clusters) == 3

    def test_representative_is_nearest_to_centroid(self):
        points, names, labels = make_blobs(k=2, per_cluster=10, seed=3)
        clustering = kmeans(points, 2, seed=1)
        subset = select_representatives(points, clustering)
        for representative in subset.representatives:
            cluster = int(clustering.assignments[representative])
            members = np.flatnonzero(clustering.assignments == cluster)
            center = clustering.centers[cluster]
            distances = np.linalg.norm(points[members] - center, axis=1)
            best = members[int(np.argmin(distances))]
            assert representative == best

    def test_weights_sum_to_one(self):
        points, _, _ = make_blobs(k=3)
        clustering = kmeans(points, 3, seed=2)
        subset = select_representatives(points, clustering)
        assert subset.weights.sum() == pytest.approx(1.0)

    def test_tight_clusters_have_small_distances(self):
        points, _, _ = make_blobs(k=3)
        clustering = kmeans(points, 3, seed=1)
        subset = select_representatives(points, clustering)
        assert subset.max_distance < 1.0  # Blob spread is 0.05.

    def test_weighted_estimate_exact_for_constant_metric(self):
        points, _, _ = make_blobs(k=3)
        clustering = kmeans(points, 3, seed=1)
        subset = select_representatives(points, clustering)
        metrics = np.full((len(points), 2), 7.0)
        estimate = subset.weighted_estimate(metrics)
        assert np.allclose(estimate, 7.0)
        assert np.allclose(subset.estimation_error(metrics), 0.0)

    def test_estimation_error_detects_bias(self):
        points, _, _ = make_blobs(k=2, per_cluster=10, seed=4)
        clustering = kmeans(points, 2, seed=1)
        subset = select_representatives(points, clustering)
        rng = np.random.default_rng(5)
        metrics = rng.uniform(1.0, 2.0, size=(len(points), 1))
        errors = subset.estimation_error(metrics)
        assert (errors >= 0.0).all()

    def test_metrics_shape_checked(self):
        points, _, _ = make_blobs()
        clustering = kmeans(points, 2, seed=1)
        subset = select_representatives(points, clustering)
        with pytest.raises(AnalysisError):
            subset.weighted_estimate(np.ones((3, 2)))

    def test_format_lists_representatives(self):
        points, names, _ = make_blobs(k=2, per_cluster=5)
        clustering = kmeans(points, 2, seed=1)
        subset = select_representatives(points, clustering)
        text = format_subset(subset, names)
        for representative in subset.representatives:
            assert names[representative] in text
