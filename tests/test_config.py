"""Tests for repro.config."""

import pytest

from repro.config import DEFAULT_CONFIG, SMOKE_CONFIG, ReproConfig
from repro.errors import ConfigurationError


class TestReproConfig:
    def test_defaults_are_paper_values(self):
        config = ReproConfig()
        assert config.block_bytes == 32
        assert config.page_bytes == 4096
        assert config.ilp_window_sizes == (32, 64, 128, 256)
        assert config.reg_dep_thresholds == (1, 2, 4, 8, 16, 32, 64)
        assert config.stride_thresholds == (0, 8, 64, 512, 4096)
        assert config.similarity_threshold == 0.20
        assert config.kmeans_k_range == (1, 70)
        assert config.bic_score_fraction == 0.90

    def test_with_overrides_returns_new_instance(self):
        config = ReproConfig()
        other = config.with_overrides(trace_length=1234)
        assert other.trace_length == 1234
        assert config.trace_length != 1234
        assert other is not config

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            ReproConfig().trace_length = 5  # type: ignore[misc]

    def test_smoke_config_is_smaller(self):
        assert SMOKE_CONFIG.trace_length < DEFAULT_CONFIG.trace_length

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"trace_length": 0},
            {"trace_length": -5},
            {"block_bytes": 0},
            {"block_bytes": 33},
            {"page_bytes": 1000},
            {"similarity_threshold": 0.0},
            {"similarity_threshold": 1.0},
            {"bic_score_fraction": 0.0},
            {"bic_score_fraction": 1.5},
            {"kmeans_k_range": (0, 10)},
            {"kmeans_k_range": (10, 5)},
            {"ppm_max_order": 0},
            {"ga_generations": 0},
            {"ga_population": 1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReproConfig(**kwargs)
