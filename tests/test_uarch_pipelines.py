"""Tests for the pipeline models and HPC collection."""

import numpy as np
import pytest

from conftest import make_alu_chain, make_independent_alu
from repro.errors import SimulationError
from repro.synth import MemorySpec, WorkloadProfile, generate_trace
from repro.uarch import (
    EV56_CONFIG,
    EV67_CONFIG,
    HPC_METRIC_NAMES,
    HpcVector,
    InOrderModel,
    OutOfOrderModel,
    collect_hpc,
)
from repro.uarch.events import simulate_events


class TestEvents:
    def test_event_shapes(self, small_trace):
        events = simulate_events(small_trace, EV56_CONFIG)
        n = len(small_trace)
        assert events.fetch_latency.shape == (n,)
        assert events.memory_latency.shape == (n,)
        assert events.mispredict.shape == (n,)

    def test_memory_latency_only_on_memory_ops(self, small_trace):
        events = simulate_events(small_trace, EV56_CONFIG)
        non_memory = ~small_trace.memory_mask
        assert (events.memory_latency[non_memory] == 0).all()
        memory = small_trace.memory_mask
        assert (events.memory_latency[memory] >= (
            EV56_CONFIG.latencies.l1_hit
        )).all()

    def test_mispredicts_only_on_branches(self, small_trace):
        events = simulate_events(small_trace, EV56_CONFIG)
        assert not events.mispredict[~small_trace.branch_mask].any()

    def test_l2_sees_only_l1_misses(self, small_trace):
        events = simulate_events(small_trace, EV56_CONFIG)
        assert events.l2.accesses == (
            events.l1i.misses + events.l1d.misses
        )

    def test_bigger_caches_miss_less(self, small_trace):
        small_machine = simulate_events(small_trace, EV56_CONFIG)
        big_machine = simulate_events(small_trace, EV67_CONFIG)
        assert big_machine.l1d.miss_rate <= small_machine.l1d.miss_rate


class TestInOrderModel:
    def test_dual_issue_upper_bound(self):
        trace = make_independent_alu(2000)
        ipc, _ = InOrderModel(EV56_CONFIG).run(trace)
        assert ipc <= 2.0 + 1e-9
        assert ipc > 1.5  # Independent ALU should nearly saturate.

    def test_serial_chain_is_issue_limited(self):
        trace = make_alu_chain(2000)
        ipc, _ = InOrderModel(EV56_CONFIG).run(trace)
        assert ipc <= 1.05

    def test_rejects_ooo_config(self):
        with pytest.raises(SimulationError):
            InOrderModel(EV67_CONFIG)

    def test_memory_behavior_lowers_ipc(self):
        fits = WorkloadProfile(
            name="t/ipc/fits", memory=MemorySpec(footprint_bytes=4 << 10)
        )
        thrashes = WorkloadProfile(
            name="t/ipc/thrash",
            memory=MemorySpec(
                footprint_bytes=64 << 20,
                load_mix={"random": 0.8, "pointer": 0.2},
            ),
        )
        ipc_fits, _ = InOrderModel(EV56_CONFIG).run(
            generate_trace(fits, 10_000)
        )
        ipc_thrash, _ = InOrderModel(EV56_CONFIG).run(
            generate_trace(thrashes, 10_000)
        )
        assert ipc_fits > 2.0 * ipc_thrash

    def test_rejects_empty_trace(self):
        from repro.trace import Trace

        with pytest.raises(SimulationError):
            InOrderModel(EV56_CONFIG).run(Trace.empty())


class TestOutOfOrderModel:
    def test_width_upper_bound(self):
        # Long enough to amortize the cold-start I-cache misses.
        trace = make_independent_alu(20_000)
        ipc, _ = OutOfOrderModel(EV67_CONFIG).run(trace)
        assert ipc <= 4.0 + 1e-9
        assert ipc > 3.0

    def test_serial_chain_near_one(self):
        trace = make_alu_chain(2000)
        ipc, _ = OutOfOrderModel(EV67_CONFIG).run(trace)
        assert ipc <= 1.1

    def test_rejects_inorder_config(self):
        with pytest.raises(SimulationError):
            OutOfOrderModel(EV56_CONFIG)

    def test_ooo_beats_inorder(self, small_trace):
        inorder_ipc, _ = InOrderModel(EV56_CONFIG).run(small_trace)
        ooo_ipc, _ = OutOfOrderModel(EV67_CONFIG).run(small_trace)
        assert ooo_ipc > inorder_ipc

    def test_window_limits_ilp(self):
        # Independent instructions but a window-1 machine cannot overlap
        # long latencies... compare small vs large windows instead.
        trace = make_independent_alu(2000)
        small_window = EV67_CONFIG.__class__(
            **{**EV67_CONFIG.__dict__, "window_size": 8}
        )
        ipc_small, _ = OutOfOrderModel(small_window).run(trace)
        ipc_large, _ = OutOfOrderModel(EV67_CONFIG).run(trace)
        assert ipc_large >= ipc_small


class TestCollectHpc:
    def test_vector_shape_and_names(self, small_trace):
        hpc = collect_hpc(small_trace)
        assert hpc.values.shape == (len(HPC_METRIC_NAMES),)
        assert list(hpc.as_dict().keys()) == list(HPC_METRIC_NAMES)

    def test_rates_are_probabilities(self, small_trace):
        hpc = collect_hpc(small_trace)
        for name in HPC_METRIC_NAMES:
            if name.endswith("_rate"):
                assert 0.0 <= hpc[name] <= 1.0

    def test_ipcs_positive_and_bounded(self, small_trace):
        hpc = collect_hpc(small_trace)
        assert 0.0 < hpc["ipc_ev56"] <= 2.0
        assert 0.0 < hpc["ipc_ev67"] <= 4.0

    def test_deterministic(self, small_trace):
        a = collect_hpc(small_trace).values
        b = collect_hpc(small_trace).values
        assert np.array_equal(a, b)

    def test_format_renders(self, small_trace):
        text = collect_hpc(small_trace).format()
        assert "ipc_ev56" in text

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            HpcVector(name="x", values=np.zeros(3))

    def test_hpc_with_mix_appends_six(self, small_trace):
        from repro.uarch.hpc import hpc_with_mix

        hpc = collect_hpc(small_trace)
        names, values = hpc_with_mix(small_trace, hpc)
        assert len(names) == len(HPC_METRIC_NAMES) + 6
        assert values.shape == (len(names),)
