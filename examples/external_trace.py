"""Consuming externally produced instrumentation traces.

MICA's real-world workflow points the analyzers at traces produced by a
binary-instrumentation tool (ATOM in the paper, Pin in the released
MICA tool).  This library accepts such traces through two on-disk
formats: a line-oriented text format any tool can emit, and a compact
binary ``.mtf`` format.

The script writes a small hand-made text trace (as an external tool
would), reads it back, validates it, characterizes it, and converts it
to binary.

Run:  python examples/external_trace.py
"""

import sys
import tempfile
from pathlib import Path

from repro.mica import characterize
from repro.config import ReproConfig
from repro.trace import (
    read_trace,
    read_trace_text,
    validate_trace,
    write_trace,
)

#: What an external instrumentation tool would emit: a tight loop that
#: scans an array (ld), accumulates (alu), stores every 4th element and
#: loops back (br).  Fields: pc class dst src1 src2 [addr] [T|N target]
TRACE_TEMPLATE = """\
# one loop iteration, emitted {iterations} times by the tool
{body}
"""

BODY_TEMPLATE = """\
0x12000 ld 1 2 - {load_addr:#x}
0x12004 alu 3 3 1
0x12008 alu 4 3 -
0x1200c st - 4 2 {store_addr:#x}
0x12010 br - 3 - {taken} 0x12000
"""


def make_external_trace(path: Path, iterations: int = 400) -> None:
    lines = []
    for index in range(iterations):
        taken = "T" if index < iterations - 1 else "N"
        lines.append(
            BODY_TEMPLATE.format(
                load_addr=0x8_0000 + 8 * index,
                store_addr=0x9_0000 + 32 * (index // 4),
                taken=taken,
            )
        )
    path.write_text(
        TRACE_TEMPLATE.format(iterations=iterations, body="".join(lines))
    )


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        text_path = Path(tmp) / "external_trace.txt"
        make_external_trace(text_path)
        print(f"external tool wrote: {text_path} "
              f"({text_path.stat().st_size:,} bytes of text)")

        trace = read_trace_text(text_path, name="external/loop/demo")
        validate_trace(trace)
        print(f"parsed {len(trace):,} dynamic instructions; "
              "all invariants hold")
        print()

        config = ReproConfig(trace_length=len(trace))
        vector = characterize(trace, config)
        print(vector.format())
        print()

        binary_path = Path(tmp) / "external_trace.mtf"
        write_trace(trace, binary_path)
        reloaded = read_trace(binary_path)
        print(
            f"binary round trip: {binary_path.stat().st_size:,} bytes, "
            f"{len(reloaded):,} instructions "
            f"({'identical' if (reloaded.data == trace.data).all() else 'MISMATCH'})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
