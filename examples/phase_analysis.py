"""Phase analysis: code signatures within one benchmark.

The paper's related-work section rests on the SimPoint observation that
intervals executing similar code behave similarly on hardware metrics.
This script decomposes one benchmark's trace into phases by basic-block
vector, prints the phase timeline, picks simulation points, and then
*verifies the premise* on this substrate: the simulated EV56 IPC varies
far less within a phase than across the whole run.

Run:  python examples/phase_analysis.py [benchmark] [trace-length]
"""

import sys

from repro.phases import detect_phases, phase_homogeneity, simulation_points
from repro.synth import generate_trace
from repro.uarch import EV56_CONFIG, InOrderModel
from repro.workloads import get_benchmark


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "spec2000/gcc/166"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 100_000
    interval = 5_000

    benchmark = get_benchmark(name)
    print(f"benchmark: {benchmark.full_name}, "
          f"{length:,} instructions, {interval:,}-instruction intervals")
    trace = generate_trace(benchmark.profile, length)

    result = detect_phases(trace, interval=interval, seed=1)
    print(f"detected {result.k} phase(s) over "
          f"{len(result.assignments)} intervals")
    print()
    print("phase timeline (one symbol per interval):")
    print(result.format_timeline())
    print()

    points = simulation_points(result)
    print("simulation points (interval index per phase, by population):")
    for point in points:
        phase = int(result.assignments[point])
        print(f"  phase {phase}: interval {point} "
              f"(instructions {point * interval:,}..."
              f"{(point + 1) * interval:,})")
    print()

    model = InOrderModel(EV56_CONFIG)

    def interval_ipc(chunk):
        ipc, _ = model.run(chunk)
        return ipc

    print("verifying the SimPoint premise with simulated EV56 IPC...")
    within, overall = phase_homogeneity(trace, result, interval_ipc)
    print(f"  IPC stddev within phases : {within:.4f}")
    print(f"  IPC stddev overall       : {overall:.4f}")
    if result.k > 1:
        ratio = within / overall if overall else 0.0
        print(f"  -> intervals of the same phase are "
              f"{1/ratio if ratio else float('inf'):.1f}x more uniform")
    else:
        print("  -> single-phase benchmark: behavior is uniform throughout")
    return 0


if __name__ == "__main__":
    sys.exit(main())
