"""The paper's pitfall, end to end (Figures 1-3 and Table III).

Hardware-performance-counter characterization can be misleading: two
benchmarks may produce near-identical counter values while their
inherent behavior differs.  This script builds both workload spaces for
all 122 benchmarks, quantifies the (modest) correlation between them,
classifies all benchmark tuples into true/false positives/negatives,
and prints the bzip2-versus-blast comparison of Figures 2-3.

Run:  python examples/pitfall_case_study.py [trace-length]
"""

import sys

from repro.config import DEFAULT_CONFIG
from repro.experiments import (
    build_dataset,
    run_case_study,
    run_fig1,
    run_table3,
)


def main() -> int:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    config = DEFAULT_CONFIG.with_overrides(trace_length=length)

    print("building the workload data set "
          "(122 benchmarks; cached after the first run)...")
    dataset = build_dataset(config)
    print()

    fig1 = run_fig1(dataset)
    print(fig1.format())
    print()

    table3 = run_table3(dataset, threshold=config.similarity_threshold)
    print(table3.format())
    print()

    case_study = run_case_study(dataset)
    print(case_study.format())
    print()
    print(
        "Interpretation: the pair sits at a low distance percentile in\n"
        "the hardware-counter space (it looks 'similar') but a high\n"
        "percentile in the microarchitecture-independent space — a\n"
        "false positive that would mislead a counter-only methodology."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
