"""Scenario: is my emerging benchmark suite actually new?

This is the workflow the paper's introduction motivates: you assembled
a small benchmark suite for an emerging domain and want to know whether
it behaves differently from SPEC CPU2000 — *inherently*, not just on
today's hardware counters.

The script:

1. defines three synthetic "emerging" benchmarks (a streaming codec, a
   graph traversal and an ML-style dense kernel) as workload profiles;
2. characterizes them with the eight key characteristics the GA selects
   on the 122-benchmark population;
3. reports each one's nearest neighbors among the 122 and whether it
   falls inside or outside the existing clusters.

Run:  python examples/compare_emerging_suite.py [trace-length]
"""

import sys

import numpy as np

from repro.analysis import GeneticSelector, kiviat_ascii, kiviat_normalize
from repro.config import DEFAULT_CONFIG
from repro.experiments import build_dataset, run_fig6
from repro.mica import CHARACTERISTICS, characterize
from repro.synth import (
    BranchSpec,
    CodeSpec,
    MemorySpec,
    MixSpec,
    RegisterSpec,
    WorkloadProfile,
    generate_trace,
)

EMERGING = [
    WorkloadProfile(
        name="emerging/videocodec/stream",
        mix=MixSpec.normalized(load=0.24, store=0.1, branch=0.08,
                               int_alu=0.42, int_mul=0.1, fp=0.06),
        code=CodeSpec(num_functions=6, loop_iter_mean=48.0,
                      diamond_rate=0.1),
        memory=MemorySpec(
            footprint_bytes=2 << 20,
            load_mix={"sequential": 0.6, "strided": 0.35, "scalar": 0.05},
            stride_bytes=32,
        ),
        registers=RegisterSpec(dep_mean=6.0, imm_fraction=0.3),
        branches=BranchSpec(pattern_fraction=0.85, taken_bias=0.1),
    ),
    WorkloadProfile(
        name="emerging/graph/bfs",
        mix=MixSpec.normalized(load=0.32, store=0.08, branch=0.17,
                               int_alu=0.42, int_mul=0.0, fp=0.0),
        code=CodeSpec(num_functions=5, loop_iter_mean=6.0,
                      diamond_rate=0.5),
        memory=MemorySpec(
            footprint_bytes=256 << 20,
            load_mix={"pointer": 0.6, "random": 0.3, "scalar": 0.1},
        ),
        registers=RegisterSpec(dep_mean=1.8, imm_fraction=0.04),
        branches=BranchSpec(pattern_fraction=0.2, taken_bias=0.45),
    ),
    WorkloadProfile(
        name="emerging/ml/gemm",
        mix=MixSpec.normalized(load=0.3, store=0.06, branch=0.03,
                               int_alu=0.12, int_mul=0.01, fp=0.48),
        code=CodeSpec(num_functions=3, loop_iter_mean=120.0,
                      diamond_rate=0.02, loop_blocks=2),
        memory=MemorySpec(
            footprint_bytes=64 << 20,
            load_mix={"sequential": 0.5, "strided": 0.5},
            stride_bytes=512,
        ),
        registers=RegisterSpec(dep_mean=11.0, imm_fraction=0.35,
                               two_op_fraction=0.8, fp_pool=30),
        branches=BranchSpec(pattern_fraction=0.95, taken_bias=0.05),
    ),
]


def main() -> int:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    config = DEFAULT_CONFIG.with_overrides(trace_length=length)

    print("building the 122-benchmark reference data set "
          "(cached after the first run)...")
    dataset = build_dataset(config)
    normalized = dataset.mica_normalized()

    print("selecting key characteristics with the GA...")
    selector = GeneticSelector(
        population=config.ga_population,
        generations=config.ga_generations,
        seed=config.ga_seed,
    )
    ga = selector.select(normalized)
    selected = list(ga.selected)
    labels = [CHARACTERISTICS[i].key for i in selected]
    print(f"key characteristics ({len(selected)}): {', '.join(labels)}")
    print()

    clustering = run_fig6(dataset, config, ga_result=ga)

    # Project the emerging benchmarks into the same normalized space.
    mean = dataset.mica.mean(axis=0)
    std = dataset.mica.std(axis=0)
    std[std == 0.0] = 1.0

    reduced_reference = normalized[:, selected]
    for profile in EMERGING:
        trace = generate_trace(profile, length)
        vector = characterize(trace, config).values
        z = (vector - mean) / std
        reduced = z[selected]

        distances = np.linalg.norm(reduced_reference - reduced, axis=1)
        order = np.argsort(distances)
        print(f"--- {profile.name} ---")
        print("nearest existing benchmarks:")
        for rank in range(3):
            index = order[rank]
            print(f"  {distances[index]:6.2f}  {dataset.names[index]}")
        # Is it inside the observed workload space?
        typical = float(np.median(distances))
        nearest = float(distances[order[0]])
        max_intra = _max_intra_cluster_distance(
            clustering, reduced_reference
        )
        verdict = (
            "similar to existing workloads"
            if nearest <= max_intra
            else "DISSIMILAR: extends the workload space"
        )
        print(f"nearest distance {nearest:.2f} vs largest intra-cluster "
              f"distance {max_intra:.2f} -> {verdict}")
        bounded = np.clip(
            (vector[selected] - dataset.mica[:, selected].min(axis=0))
            / np.maximum(
                dataset.mica[:, selected].max(axis=0)
                - dataset.mica[:, selected].min(axis=0), 1e-12),
            0.0, 1.0,
        )
        print(kiviat_ascii(bounded.tolist(), labels=labels, radius=5))
        print()
    return 0


def _max_intra_cluster_distance(clustering, reduced_reference):
    """Largest member-to-centroid distance over all clusters."""
    largest = 0.0
    result = clustering.clustering.result
    for cluster in range(result.k):
        members = reduced_reference[result.assignments == cluster]
        if len(members) == 0:
            continue
        center = members.mean(axis=0)
        largest = max(
            largest, float(np.linalg.norm(members - center, axis=1).max())
        )
    return largest


if __name__ == "__main__":
    sys.exit(main())
