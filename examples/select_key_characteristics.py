"""Selecting key characteristics: GA vs correlation elimination vs PCA.

Reproduces the methodology core of section V on the full population:
runs both reduction methods, compares their distance-correlation
fidelity (Figure 5), their ROC quality (Figure 4) and the modeled
measurement cost (Table IV), and contrasts them with the PCA baseline
from prior work.

Run:  python examples/select_key_characteristics.py [trace-length]
"""

import sys

from repro.analysis import (
    PCA,
    GeneticSelector,
    pairwise_distances,
    pearson,
    retain_by_correlation,
)
from repro.config import DEFAULT_CONFIG
from repro.experiments import build_dataset, measurement_cost, run_table4
from repro.mica import CHARACTERISTICS
from repro.reporting import format_table


def main() -> int:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    config = DEFAULT_CONFIG.with_overrides(trace_length=length)

    print("building the workload data set...")
    dataset = build_dataset(config)
    normalized = dataset.mica_normalized()
    full_distances = pairwise_distances(normalized)

    print("running the genetic algorithm...")
    selector = GeneticSelector(
        population=config.ga_population,
        generations=config.ga_generations,
        seed=config.ga_seed,
    )
    ga = selector.select(normalized)
    table4 = run_table4(dataset, config, ga_result=ga)
    print()
    print(table4.format())
    print()

    rows = []
    ga_indices = list(ga.selected)
    methods = [
        ("GA", ga_indices),
        (f"CE-{len(ga_indices)}",
         retain_by_correlation(normalized, len(ga_indices))),
        ("CE-17", retain_by_correlation(normalized, 17)),
    ]
    for label, indices in methods:
        distances = pairwise_distances(normalized[:, indices])
        rho = pearson(full_distances, distances)
        rows.append(
            [label, len(indices), f"{rho:.3f}",
             f"{measurement_cost(indices):.1f}"]
        )
    pca = PCA(n_components=len(ga_indices)).fit(normalized)
    projected = pca.transform(normalized)
    rho = pearson(full_distances, pairwise_distances(projected))
    rows.append(
        ["PCA", len(ga_indices), f"{rho:.3f}",
         f"{measurement_cost(range(len(CHARACTERISTICS))):.1f} (needs all 47)"]
    )
    print(
        format_table(
            ["method", "#dims", "distance rho", "cost (machine-days)"],
            rows,
            align_right=[False, True, True, True],
            title="method comparison:",
        )
    )
    print()
    print(
        "The GA matches PCA-level fidelity while requiring only its\n"
        "selected characteristics to be measured; PCA needs all 47 and\n"
        "its dimensions are linear mixtures (hard to interpret)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
