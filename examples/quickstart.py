"""Quickstart: characterize one benchmark, microarchitecture-independent
and -dependent.

Picks a benchmark from the paper's Table I registry, generates its
synthetic dynamic instruction trace, computes the 47 MICA
characteristics (Table II), and collects the simulated Alpha hardware
performance counters the paper's section III-B uses.

Run:  python examples/quickstart.py [benchmark] [trace-length]
"""

import sys

from repro.mica import characterize
from repro.synth import generate_trace
from repro.trace import summarize
from repro.uarch import collect_hpc
from repro.workloads import get_benchmark


def main() -> int:
    name = sys.argv[1] if len(sys.argv) > 1 else "spec2000/bzip2/graphic"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000

    benchmark = get_benchmark(name)
    print(f"benchmark : {benchmark.full_name}")
    print(f"real dynamic instruction count (paper Table I): "
          f"{benchmark.icount_millions:,} M")
    print(f"synthetic trace length: {length:,} instructions")
    print()

    trace = generate_trace(benchmark.profile, length)
    print(summarize(trace).format())
    print()

    vector = characterize(trace)
    print(vector.format())
    print()

    hpc = collect_hpc(trace)
    print(hpc.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())
