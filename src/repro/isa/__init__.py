"""Minimal Alpha-like ISA model.

The paper instruments Alpha binaries with ATOM.  This package models just
enough of such an ISA for workload characterization: instruction classes,
a register-file specification, and a dynamic instruction record carrying
the fields an ATOM instrumentation pass would observe (PC, operand
registers, memory address, branch outcome).
"""

from .opclass import (
    OpClass,
    MEMORY_CLASSES,
    CONTROL_CLASSES,
    COMPUTE_CLASSES,
    is_memory_class,
    is_control_class,
)
from .registers import (
    NUM_INT_REGS,
    NUM_FP_REGS,
    TOTAL_REGS,
    INT_ZERO_REG,
    FP_ZERO_REG,
    NO_REG,
    register_name,
    is_zero_register,
    is_valid_register,
)
from .instruction import (
    TRACE_DTYPE,
    InstructionRecord,
    record_from_row,
    unchecked_record,
)

__all__ = [
    "OpClass",
    "MEMORY_CLASSES",
    "CONTROL_CLASSES",
    "COMPUTE_CLASSES",
    "is_memory_class",
    "is_control_class",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "TOTAL_REGS",
    "INT_ZERO_REG",
    "FP_ZERO_REG",
    "NO_REG",
    "register_name",
    "is_zero_register",
    "is_valid_register",
    "TRACE_DTYPE",
    "InstructionRecord",
    "record_from_row",
    "unchecked_record",
]
