"""Instruction classes for the Alpha-like ISA model.

The paper's instruction-mix characteristics (Table II, nos. 1-6) partition
instructions into loads, stores, control transfers, arithmetic operations,
integer multiplies and floating-point operations.  :class:`OpClass`
provides exactly that partition plus a no-op class for completeness.
"""

from __future__ import annotations

from enum import IntEnum
from typing import FrozenSet


class OpClass(IntEnum):
    """Dynamic instruction class.

    The integer values are stable and are stored directly in trace files,
    so they must never be renumbered.
    """

    #: Integer or FP load from memory.
    LOAD = 0
    #: Integer or FP store to memory.
    STORE = 1
    #: Conditional or unconditional control transfer.
    BRANCH = 2
    #: Integer ALU operation (add, sub, logic, shifts, compares).
    INT_ALU = 3
    #: Integer multiply (tracked separately by the paper).
    INT_MUL = 4
    #: Floating-point operation (add/mul/div/sqrt/convert).
    FP = 5
    #: No-op / other (does not read or write architected state we model).
    NOP = 6

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self in MEMORY_CLASSES

    @property
    def is_control(self) -> bool:
        """True for control transfers."""
        return self in CONTROL_CLASSES

    @property
    def is_compute(self) -> bool:
        """True for register-to-register compute operations."""
        return self in COMPUTE_CLASSES

    @property
    def short_name(self) -> str:
        """Compact lowercase label used in text trace files."""
        return _SHORT_NAMES[self]

    @classmethod
    def from_short_name(cls, name: str) -> "OpClass":
        """Inverse of :attr:`short_name`.

        Raises:
            KeyError: if ``name`` is not a known short name.
        """
        return _FROM_SHORT[name]


MEMORY_CLASSES: FrozenSet[OpClass] = frozenset({OpClass.LOAD, OpClass.STORE})
CONTROL_CLASSES: FrozenSet[OpClass] = frozenset({OpClass.BRANCH})
COMPUTE_CLASSES: FrozenSet[OpClass] = frozenset(
    {OpClass.INT_ALU, OpClass.INT_MUL, OpClass.FP}
)

_SHORT_NAMES = {
    OpClass.LOAD: "ld",
    OpClass.STORE: "st",
    OpClass.BRANCH: "br",
    OpClass.INT_ALU: "alu",
    OpClass.INT_MUL: "mul",
    OpClass.FP: "fp",
    OpClass.NOP: "nop",
}

_FROM_SHORT = {name: op for op, name in _SHORT_NAMES.items()}


def is_memory_class(value: int) -> bool:
    """True when the raw class value denotes a load or store."""
    return value in (OpClass.LOAD, OpClass.STORE)


def is_control_class(value: int) -> bool:
    """True when the raw class value denotes a control transfer."""
    return value == OpClass.BRANCH
