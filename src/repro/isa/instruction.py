"""Dynamic instruction record and the columnar trace dtype.

A dynamic instruction carries exactly the information an ATOM
instrumentation pass observes when a benchmark executes:

* the program counter (``pc``),
* the instruction class (``opclass``),
* up to two source registers and one destination register,
* the effective data memory address for loads/stores (``mem_addr``),
* the taken/not-taken outcome and target for branches.

Traces store millions of these records, so the canonical representation
is a numpy structured array with dtype :data:`TRACE_DTYPE`;
:class:`InstructionRecord` is a convenience view of a single row used by
builders, tests and pretty-printers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .opclass import OpClass
from .registers import NO_REG, is_valid_register, register_name

#: Alpha instructions are fixed-width 32-bit words.
INSTRUCTION_BYTES = 4

#: Columnar trace dtype.  Field order is part of the on-disk format.
TRACE_DTYPE = np.dtype(
    [
        ("pc", np.uint64),
        ("opclass", np.uint8),
        ("src1", np.uint8),
        ("src2", np.uint8),
        ("dst", np.uint8),
        ("mem_addr", np.uint64),
        ("taken", np.uint8),
        ("target", np.uint64),
    ]
)


@dataclass(frozen=True)
class InstructionRecord:
    """A single dynamic instruction, as observed by instrumentation."""

    pc: int
    opclass: OpClass
    src1: int = NO_REG
    src2: int = NO_REG
    dst: int = NO_REG
    mem_addr: int = 0
    taken: bool = False
    target: int = 0

    def __post_init__(self) -> None:
        for slot, reg in (("src1", self.src1), ("src2", self.src2), ("dst", self.dst)):
            if not is_valid_register(reg):
                raise ValueError(f"{slot} register index out of range: {reg}")
        if self.opclass.is_memory and self.mem_addr == 0:
            raise ValueError("memory instruction requires a nonzero mem_addr")
        if not self.opclass.is_memory and self.mem_addr != 0:
            raise ValueError("non-memory instruction must have mem_addr == 0")
        if not self.opclass.is_control and self.taken:
            raise ValueError("only control transfers may be taken")

    @property
    def source_registers(self) -> "tuple[int, ...]":
        """The populated source-register slots."""
        return tuple(reg for reg in (self.src1, self.src2) if reg != NO_REG)

    @property
    def has_destination(self) -> bool:
        """True when the instruction writes an architected register."""
        return self.dst != NO_REG

    def to_row(self) -> "tuple[int, int, int, int, int, int, int, int]":
        """Row tuple in :data:`TRACE_DTYPE` field order."""
        return (
            self.pc,
            int(self.opclass),
            self.src1,
            self.src2,
            self.dst,
            self.mem_addr,
            int(self.taken),
            self.target,
        )

    def __str__(self) -> str:
        parts = [f"{self.pc:#010x} {self.opclass.short_name:<4}"]
        if self.has_destination:
            parts.append(register_name(self.dst))
        sources = ", ".join(register_name(reg) for reg in self.source_registers)
        if sources:
            parts.append(f"<- {sources}")
        if self.opclass.is_memory:
            parts.append(f"[{self.mem_addr:#x}]")
        if self.opclass.is_control:
            parts.append(f"{'T' if self.taken else 'N'} -> {self.target:#x}")
        return " ".join(parts)


def record_from_row(row: np.void) -> InstructionRecord:
    """Build an :class:`InstructionRecord` from a structured-array row."""
    return InstructionRecord(
        pc=int(row["pc"]),
        opclass=OpClass(int(row["opclass"])),
        src1=int(row["src1"]),
        src2=int(row["src2"]),
        dst=int(row["dst"]),
        mem_addr=int(row["mem_addr"]),
        taken=bool(row["taken"]),
        target=int(row["target"]),
    )


def unchecked_record(
    pc: int,
    opclass: OpClass,
    src1: int,
    src2: int,
    dst: int,
    mem_addr: int,
    taken: bool,
    target: int,
) -> InstructionRecord:
    """Build an :class:`InstructionRecord` without field validation.

    Bulk paths (trace iteration) materialize millions of records from
    data that was validated when the trace was built; re-running
    ``__post_init__`` per row dominates their cost, so this constructor
    bypasses it.  Only use on rows read back from a :data:`TRACE_DTYPE`
    array.
    """
    record = object.__new__(InstructionRecord)
    fields = record.__dict__
    fields["pc"] = pc
    fields["opclass"] = opclass
    fields["src1"] = src1
    fields["src2"] = src2
    fields["dst"] = dst
    fields["mem_addr"] = mem_addr
    fields["taken"] = taken
    fields["target"] = target
    return record
