"""Register-file specification for the Alpha-like ISA model.

The Alpha architecture has 32 integer registers (``$0``-``$31``, with
``$31`` hardwired to zero) and 32 floating-point registers (``$f0``-
``$f31``, with ``$f31`` hardwired to zero).  Register traffic analysis
(paper Table II, nos. 11-19) tracks dataflow through these registers, so
the model must distinguish real registers from the zero registers (writes
to a zero register create no value; reads from one create no dependency).

Registers are numbered in a single flat space: integer registers occupy
indices ``0..31`` and floating-point registers ``32..63``.  The sentinel
:data:`NO_REG` (255) marks an absent operand slot.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
TOTAL_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Flat index of the integer zero register ($31).
INT_ZERO_REG = 31

#: Flat index of the floating-point zero register ($f31).
FP_ZERO_REG = NUM_INT_REGS + 31

#: Sentinel for "no register in this operand slot".
NO_REG = 255


def is_valid_register(index: int) -> bool:
    """True when ``index`` names an architected register or the sentinel."""
    return index == NO_REG or 0 <= index < TOTAL_REGS


def is_zero_register(index: int) -> bool:
    """True for the hardwired-zero registers ($31 and $f31)."""
    return index in (INT_ZERO_REG, FP_ZERO_REG)


def register_name(index: int) -> str:
    """Human-readable register name for a flat register index.

    >>> register_name(0)
    '$0'
    >>> register_name(33)
    '$f1'
    >>> register_name(255)
    '-'
    """
    if index == NO_REG:
        return "-"
    if 0 <= index < NUM_INT_REGS:
        return f"${index}"
    if NUM_INT_REGS <= index < TOTAL_REGS:
        return f"$f{index - NUM_INT_REGS}"
    raise ValueError(f"invalid register index: {index}")
