"""Batch engines for the two pipeline models (max-plus fixed point).

Both pipeline models are, exactly, longest-path problems on a static
max-plus constraint graph.  Writing ``issue[i]`` for the in-order
model's issue cycles, the scalar loop in
:meth:`repro.uarch.inorder.InOrderModel.run_reference` computes the
least array satisfying::

    issue[i] >= issue[i-1] + c[i]          # front end: fetch stalls and
                                           #   mispredict redirect penalties
    issue[i] >= issue[i-W] + 1             # at most W issues per cycle
    issue[i] >= issue[pm]   + 1            # one memory port per cycle
    issue[i] >= issue[p]    + latency[p]   # register dataflow

and the out-of-order model is the analogous coupled system over fetch
cycles ``F`` and completion times ``finish``::

    F[i]      >= F[i-1] + l[i]             # fetch; l = I-miss stall
    F[i]      >= F[i-W] + l[i] + 1         # W fetches per cycle
    F[i]      >= finish[i-window]          # finite instruction window
    F[i]      >= finish[i-1] + pen + l[i]  # mispredict resume
    finish[i] == lat[i] + max(F[i], finish[p1], finish[p2])

All edges are known up front (mispredict positions, fetch latencies and
memory latencies come from :func:`~repro.uarch.events.simulate_events`;
producer indices from :func:`~repro.mica.ilp.producer_indices`), so the
engine solves the system as a monotone fixed point over whole-trace
arrays instead of walking instructions one by one:

* **Potential transform.**  With ``C = cumsum(c)`` and ``z = x - C``,
  every chain constraint becomes plain monotonicity (``z[i] >= z[i-1]``)
  and every other edge gets a *static* z-space weight, so the chain
  closure is a single ``np.maximum.accumulate``.  Adjacent producer
  edges, the memory-port conflict of consecutive memory operations and
  mispredict penalties are folded into ``c`` first.

* **Static subsumption.**  The width constraint guarantees
  ``x[i] >= x[s] + floor((i-s)/W)``, so a dataflow edge of latency L can
  only ever bind within distance ``W*L``; edges beyond that (and, for
  the out-of-order model, producers older than the window, which the
  window stall provably covers) are dropped, leaving compact per-family
  edge lists.

* **Joint closure.**  The interaction of the 0-weight chain and the
  +1-weight width-skip edges is closed *exactly* in one shot: the best
  number of skip edges between two positions is a maximum independent
  selection over statically-known runs of skip-eligible positions, which
  decomposes into one global cummax over statically weighted scores, a
  per-run-prefix gather, and W per-lane segmented cummaxes
  (:func:`joint_close`).

* **Jump ladder.**  Long dependence chains (thousands of serialized
  cache misses) are contracted logarithmically: each round re-picks
  every node's best predecessor by current value and squares the
  resulting jump pointers, composing path sums over 2^k hops.

* **Exact-prefix scalar resume.**  Every update applies a true
  constraint, so iterates never exceed the reference solution, and — by
  induction over the (strictly backward) edges — the prefix before the
  *first violated constraint* is already bit-exact at any point.  After
  a fixed round budget the engine reconstructs the scalar machine state
  (cycle, issue slots, front-end, register-ready times) at that frontier
  from the exact prefix and finishes with the serial recurrence.  The
  result is bit-identical to the scalar reference by construction —
  convergence speed is a heuristic property, correctness is not — and
  the worst case is bounded by one scalar walk of the unconverged tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..isa import NO_REG, OpClass
from ..isa.registers import TOTAL_REGS
from ..trace import Trace
from .configs import MachineConfig
from .events import MachineEvents

#: Sentinel weight for absent edges: far below any reachable value but
#: safe against int32 overflow when two sentinels are added.
_NEG = np.int32(-(1 << 28))

#: Vector rounds before handing the unconverged tail to the scalar
#: resume (each round is a handful of whole-trace passes; well-behaved
#: traces converge in far fewer).
_ROUND_BUDGET = 12


def result_latencies(
    trace: Trace, machine: MachineConfig, events: MachineEvents
) -> np.ndarray:
    """Per-instruction result latency (the scalar loops' ``result_latency``)."""
    n = len(trace)
    opclass = trace.opclass
    latencies = machine.latencies
    rl = np.ones(n, dtype=np.int64)
    is_load = opclass == int(OpClass.LOAD)
    rl[is_load] = events.memory_latency[is_load]
    rl[opclass == int(OpClass.INT_MUL)] = latencies.int_mul
    rl[opclass == int(OpClass.FP)] = latencies.fp_op
    return rl


# ---------------------------------------------------------------------------
# Production walk engines
# ---------------------------------------------------------------------------
#
# The production path precomputes every per-instruction stall term as an
# array — folded chain weights (fetch stalls, mispredict redirects, the
# memory-port conflict of consecutive memory operations), result
# latencies per opclass, and NO_REG-free source/destination indices via
# a scratch register that absorbs dead reads and writes — and then walks
# the *reduced* max-plus recurrence.  The walk carries no opclass
# branching, no front-end state machine and no register-validity checks;
# it is pinned bit-for-bit against the retained reference loops (and the
# independent fixed-point engines below) by the equivalence tests.


def _scratch_register_streams(trace: Trace):
    """Source/dest index lists with NO_REG mapped to a scratch slot."""
    scratch = TOTAL_REGS + 1
    s1 = np.where(trace.src1 == NO_REG, scratch, trace.src1).tolist()
    s2 = np.where(trace.src2 == NO_REG, scratch, trace.src2).tolist()
    dd = np.where(trace.dst == NO_REG, scratch, trace.dst).tolist()
    return s1, s2, dd, scratch


def inorder_walk(
    trace: Trace, machine: MachineConfig, events: MachineEvents
) -> int:
    """Total cycles of the in-order model via the reduced recurrence.

    For widths 1 and 2 (every production machine) the scalar state
    machine collapses to ``x[i] = max(x[i-1] + c[i], x[i-2] + 1,
    ready[src])`` with all chain terms folded into ``c`` up front; wider
    in-order machines carry memory-port edges the fold cannot express
    and fall back to the reference recurrence.
    """
    n = len(trace)
    if n == 0:
        return 1
    width = machine.issue_width
    if width > 2:
        rl = result_latencies(trace, machine, events)
        return _inorder_resume(trace, machine, events, rl, None, 0)
    latencies = machine.latencies
    opclass = trace.opclass
    is_mem = trace.memory_mask
    rl = result_latencies(trace, machine, events)
    c = events.fetch_latency.astype(np.int64).copy()
    mispredicted = (opclass == int(OpClass.BRANCH)) & events.mispredict
    c[1:] += np.int64(latencies.mispredict_penalty) * mispredicted[:-1]
    if width > 1:
        consecutive_mem = np.zeros(n, dtype=bool)
        consecutive_mem[1:] = is_mem[1:] & is_mem[:-1]
        np.maximum(c, consecutive_mem.astype(np.int64), out=c)
    else:
        c[1:] = np.maximum(c[1:], 1)
    s1, s2, dd, scratch = _scratch_register_streams(trace)
    c_l = c.tolist()
    rl_l = rl.tolist()
    ready = [0] * (TOTAL_REGS + 2)

    xm1 = 0  # x[i-1]; virtual source 0 makes x[0] >= c[0] the base floor
    xm2 = 0  # x[i-2]; only read from i >= width, patched below
    skip = width == 2
    position = 0
    for ci, a, b, d, rli in zip(c_l, s1, s2, dd, rl_l):
        value = xm1 + ci
        if skip and position >= 2:
            other = xm2 + 1
            if other > value:
                value = other
        r = ready[a]
        if r > value:
            value = r
        r = ready[b]
        if r > value:
            value = r
        ready[d] = value + rli
        ready[scratch] = 0
        xm2 = xm1
        xm1 = value
        position += 1
    # The fold shifts each redirect penalty into the next instruction's
    # chain weight; a mispredicted final branch has no next instruction,
    # but the reference still advances the cycle past its redirect.
    if mispredicted[n - 1]:
        xm1 += latencies.mispredict_penalty
    return max(xm1 + 1, 1)


def ooo_walk(
    trace: Trace, machine: MachineConfig, events: MachineEvents
) -> int:
    """Total cycles of the out-of-order model via the reduced walk.

    Keeps the reference's fetch bookkeeping (width bump, I-miss stall,
    window stall, mispredict resume) but reads precomputed latencies and
    scratch-mapped registers, dropping all per-instruction opclass and
    validity branching.
    """
    n = len(trace)
    if n == 0:
        return 1
    width = machine.issue_width
    window = machine.window_size
    pen = machine.latencies.mispredict_penalty
    rl = result_latencies(trace, machine, events)
    mispredicted = (
        (trace.opclass == int(OpClass.BRANCH)) & events.mispredict
    ).tolist()
    s1, s2, dd, scratch = _scratch_register_streams(trace)
    rl_l = rl.tolist()
    fetch_l = events.fetch_latency.tolist()
    ready = [0] * (TOTAL_REGS + 2)
    finish = [0] * n
    fetch_cycle = 0
    fetched = 0
    last = 0
    index = 0
    for a, b, d, rli, extra, wrong in zip(
        s1, s2, dd, rl_l, fetch_l, mispredicted
    ):
        if fetched >= width:
            fetch_cycle += 1
            fetched = 0
        stall_until = fetch_cycle + extra
        if index >= window:
            oldest = finish[index - window]
            if oldest > stall_until:
                stall_until = oldest
        if stall_until > fetch_cycle:
            fetch_cycle = stall_until
            fetched = 0
        fetched += 1
        value = fetch_cycle
        r = ready[a]
        if r > value:
            value = r
        r = ready[b]
        if r > value:
            value = r
        done = value + rli
        finish[index] = done
        if done > last:
            last = done
        ready[d] = done
        ready[scratch] = 0
        if wrong:
            resume = done + pen
            if resume > fetch_cycle:
                fetch_cycle = resume
                fetched = 0
        index += 1
    return max(last, 1)


# ---------------------------------------------------------------------------
# Joint closure of {monotone chain, width-skip} in z-space
# ---------------------------------------------------------------------------


def _build_joint_tables(eligible: np.ndarray, width: int, n: int):
    """Static tables for :func:`joint_close`.

    ``eligible[k]`` marks positions whose width-skip edge carries its
    full +1 weight in z-space (no chain weight hides inside the skipped
    span).  A path from j to i can use one skip per ``width`` positions
    inside each maximal run of eligible positions intersected with
    ``[j+width, i]``; runs are separated by >= width-1 ineligible
    positions, so per-run greedy selections never conflict.
    """
    e = eligible
    idx = np.arange(n, dtype=np.int64)
    run_start = e & ~np.concatenate([[False], e[:-1]])
    rs = np.flatnonzero(run_start)
    if len(rs) == 0:
        return None
    re = np.flatnonzero(e & ~np.concatenate([e[1:], [False]]))
    ceils = -(-(re - rs + 1) // width)
    cum = np.concatenate([[0], np.cumsum(ceils)])
    rid = np.cumsum(run_start) - 1
    rid[~e] = -1

    # i-side: rB = last run starting at or before i, its ceil clipped at
    # i, and the ceil-prefix of all earlier runs.
    rB = np.searchsorted(rs, idx, side="right") - 1
    has = rB >= 0
    rBc = np.maximum(rB, 0)
    plen = np.minimum(re[rBc], idx) - rs[rBc] + 1
    partial_i = np.where(has & (plen > 0), -(-plen // width), 0)
    cumB = np.where(has, cum[rBc], 0)
    # J_i: the last j whose first reachable run lies strictly before rB
    # (j + width <= end of run rB-1); for those j the cross-run score is
    # exact, so one prefix-max gather covers them all.
    JI = np.where(rBc >= 1, re[np.maximum(rBc - 1, 0)] - width, -1)
    JI = np.where(has, JI, -1)

    # j-side static score offset: selections from j+width onward.
    jw = idx + width
    jw_rid = np.full(n, -1, dtype=np.int64)
    valid = jw < n
    jw_rid[valid] = rid[np.minimum(jw, n - 1)][valid]
    q = np.full(n, np.int64(_NEG), dtype=np.int64)
    inside = jw_rid >= 0
    if inside.any():
        r = jw_rid[inside]
        q[inside] = -(-(re[r] - jw[inside] + 1) // width) - cum[r + 1]
    outside = ~inside
    rA = np.searchsorted(rs, jw[outside], side="left")
    q[outside] = np.where(
        rA < len(rs), -cum[np.minimum(rA, len(rs) - 1)], np.int64(_NEG)
    )
    # Lane reads must stop at the last j whose selections still fit
    # inside i's run (j + width <= run end): lane scores are keyed by
    # rid[j+width], and when the ineligible gap between runs is
    # narrower than the width (possible for the out-of-order skip
    # semantics), a position's own score can carry the *next* run's
    # key and bury the current segment in the prefix max.
    lane_cap = np.minimum(idx, np.where(rid >= 0, re[rBc] - width, -1))
    return {
        "q": q,
        "cumB": cumB,
        "partial_i": partial_i,
        "JI": JI,
        "jw_rid": jw_rid,
        "rid": rid,
        "lane_cap": lane_cap,
        "width": width,
        "n": n,
    }


def joint_close(z: np.ndarray, tables) -> np.ndarray:
    """Close ``z`` (in place) under chain monotonicity and width skips.

    Exact: equals iterating [cummax; apply skip edges] to a fixed point,
    in a constant number of vector passes (pinned against that
    brute-force closure by the equivalence tests' randomized traces).
    """
    np.maximum.accumulate(z, out=z)
    if tables is None:
        return z
    n = tables["n"]
    width = tables["width"]
    # Cross-run component: one cummax over statically-offset scores.
    M = z + tables["q"]
    np.maximum.accumulate(M, out=M)
    JI = tables["JI"]
    ok = JI >= 0
    cand = np.where(
        ok, M[np.maximum(JI, 0)] + tables["cumB"] + tables["partial_i"], _NEG
    )
    np.maximum(z, cand.astype(z.dtype), out=z)
    # Same-run component: per-lane segmented cummax (segment key: run id
    # of the first selectable position j+width), exact where j and i sit
    # inside one run and the cross-run decomposition would over-count.
    jw_rid = tables["jw_rid"]
    rid = tables["rid"]
    idx = np.arange(n, dtype=np.int64)
    lane_ordinal = idx // width
    BIG = np.int64(1) << 34
    score = np.where(
        jw_rid >= 0, z.astype(np.int64) - lane_ordinal + jw_rid * BIG, _NEG
    )
    for lane in range(width):
        view = score[lane::width]
        np.maximum.accumulate(view, out=view)
    has = rid >= 0
    base = rid * BIG
    lane_cap = tables["lane_cap"]
    for lane in range(width):
        ai = (idx - lane) // width
        # Last lane-`lane` position whose selections fit inside i's run;
        # later same-lane positions carry later-run keys in the scan.
        j = lane + width * ((lane_cap - lane) // width)
        jc = np.where((j >= 0) & (j <= idx), j, 0)
        cand = score[jc] - base + ai
        good = has & (j >= 0) & (cand < (np.int64(1) << 33))
        # Clamp before the narrowing cast: cross-segment scores sit
        # whole multiples of BIG below any real value and would wrap.
        cand = np.maximum(np.where(good, cand, _NEG), _NEG)
        np.maximum(z, cand.astype(z.dtype), out=z)
    np.maximum.accumulate(z, out=z)
    return z


# ---------------------------------------------------------------------------
# Shared fixed-point machinery
# ---------------------------------------------------------------------------


@dataclass
class _Family:
    """One compact edge family: ``z[target] >= z[source] + weight``."""

    targets: np.ndarray  # int64, strictly increasing (unique targets)
    sources: np.ndarray  # int64
    weights: np.ndarray  # int32, z-space


def _apply_families(z: np.ndarray, families: List[_Family]) -> None:
    for fam in families:
        current = z[fam.targets]
        np.maximum(current, z[fam.sources] + fam.weights, out=current)
        z[fam.targets] = current


def _first_family_violation(z: np.ndarray, families: List[_Family]) -> int:
    first = len(z)
    for fam in families:
        bad = z[fam.sources] + fam.weights > z[fam.targets]
        if bad.any():
            first = min(first, int(fam.targets[int(np.argmax(bad))]))
    return first


def _jump_ladder(
    z: np.ndarray,
    families: List[_Family],
    depth: int,
    monotone: bool = True,
) -> None:
    """One refresh-and-square pass of value-informed jump pointers.

    Every node picks its best predecessor under the *current* values
    (the chain parent ``i-1`` by default when the array is monotone,
    itself otherwise; any family edge that beats it); squaring the
    pointer array then composes path sums over ``2**depth`` hops, so
    serialized dependence chains collapse logarithmically instead of one
    edge per round.  Sound for any pointer choice: each composed jump is
    a sum of true constraints.
    """
    n = len(z)
    J = np.arange(n, dtype=np.int64)
    if monotone:
        J[1:] -= 1
    A = np.zeros(n, dtype=z.dtype)
    best = z[J].copy()
    for fam in families:
        value = z[fam.sources] + fam.weights
        better = value > best[fam.targets]
        chosen = fam.targets[better]
        J[chosen] = fam.sources[better]
        A[chosen] = fam.weights[better]
        best[chosen] = value[better]
    del best
    for rung in range(depth):
        np.maximum(z, z[J] + A, out=z)
        A = np.maximum(A + A[J], _NEG)
        J = J[J]
        if monotone and rung % 4 == 3:
            np.maximum.accumulate(z, out=z)


def _ladder_depth(n: int) -> int:
    depth = 1
    while (1 << depth) < n:
        depth += 1
    return min(depth, 20)


def _last_writer_ready(
    trace: Trace, x: np.ndarray, rl: "Optional[np.ndarray]", v: int
) -> list:
    """``ready[]`` of the scalar loops after the exact prefix ``x[:v]``.

    For the in-order model ``x`` holds issue cycles and the writer's
    result latency ``rl`` is added; for the out-of-order model ``x``
    holds finish times, which already include it (``rl=None``).
    """
    ready = [0] * (TOTAL_REGS + 1)
    dst = trace.dst[:v]
    writers = np.flatnonzero(dst != NO_REG)
    if len(writers):
        regs = dst[writers].astype(np.int64)
        # Keep only each register's last writer.
        last_from_end = np.unique(regs[::-1], return_index=True)[1]
        for position in len(writers) - 1 - last_from_end:
            register = int(regs[position])
            writer = int(writers[position])
            value = int(x[writer])
            if rl is not None:
                value += int(rl[writer])
            ready[register] = value
    return ready


# ---------------------------------------------------------------------------
# In-order model
# ---------------------------------------------------------------------------


def inorder_cycles(
    trace: Trace,
    machine: MachineConfig,
    events: MachineEvents,
    producers: "Optional[Tuple[np.ndarray, np.ndarray]]" = None,
) -> int:
    """Total cycles of the in-order model via the fixed-point engine.

    An implementation of the same semantics that is independent of both
    the reference loop and :func:`inorder_walk` — the equivalence tests
    pin all three bit-for-bit.  ``producers`` is the
    :func:`~repro.mica.ilp.producer_indices` pair (computed on demand).
    """
    if producers is None:
        from ..mica.ilp import producer_indices

        producers = producer_indices(trace)
    n = len(trace)
    width = machine.issue_width
    latencies = machine.latencies
    opclass = trace.opclass
    is_mem = trace.memory_mask
    rl = result_latencies(trace, machine, events)
    idx = np.arange(n, dtype=np.int64)
    p1, p2 = producers

    # Chain weights; fold in everything the chain edge can carry: the
    # mispredict redirect, adjacent producers, the memory-port conflict
    # of back-to-back memory operations (width 1 serializes every pair).
    c = events.fetch_latency.astype(np.int64).copy()
    mispredicted = (opclass == int(OpClass.BRANCH)) & events.mispredict
    c[1:] += np.int64(latencies.mispredict_penalty) * mispredicted[:-1]
    base0 = int(c[0])
    c[0] = 0
    for p in (p1, p2):
        adjacent = (p >= 0) & (p == idx - 1)
        if adjacent.any():
            np.maximum(c, np.where(adjacent, rl[np.maximum(p, 0)], 0), out=c)
    consecutive_mem = np.zeros(n, dtype=bool)
    consecutive_mem[1:] = is_mem[1:] & is_mem[:-1]
    if width > 1:
        np.maximum(c, consecutive_mem.astype(np.int64), out=c)
    else:
        c[1:] = np.maximum(c[1:], 1)
    C = np.cumsum(c)

    # Compact dataflow families: distance-1 edges were folded above,
    # edges the width floor provably covers are dropped.
    families: List[_Family] = []
    for p in (p1, p2):
        distance = idx - p
        candidate = (p >= 0) & (distance >= 2)
        pc = p[candidate]
        t = idx[candidate]
        latency = rl[pc]
        w = latency + C[pc] - C[t]
        growth = (
            distance[candidate] // width if width > 1 else distance[candidate]
        )
        alive = (w >= 1) & (latency > growth)
        if alive.any():
            families.append(
                _Family(t[alive], pc[alive], w[alive].astype(np.int32))
            )
    if width > 2:
        # Memory-port edges at distances 2..width-1 (farther pairs are
        # covered by the width skip, adjacent pairs by the chain fold).
        mem_positions = np.flatnonzero(is_mem)
        if len(mem_positions) > 1:
            t = mem_positions[1:]
            s = mem_positions[:-1]
            d = t - s
            keep = (d >= 2) & (d < width)
            if keep.any():
                tk, sk = t[keep], s[keep]
                w = 1 + C[sk] - C[tk]
                alive = w >= 1
                if alive.any():
                    families.append(
                        _Family(tk[alive], sk[alive], w[alive].astype(np.int32))
                    )

    skip_sources = np.maximum(idx - width, 0)
    if width > 1:
        skip_weights = np.where(
            idx >= width, 1 + C[skip_sources] - C, np.int64(_NEG)
        ).astype(np.int32)
        tables = _build_joint_tables(skip_weights == 1, width, n)
    else:
        skip_weights = None
        tables = None

    z = np.full(n, base0, dtype=np.int32)
    joint_close(z, tables)

    depth = _ladder_depth(n)
    converged = False
    for _ in range(_ROUND_BUDGET):
        previous = z.copy()
        _apply_families(z, families)
        joint_close(z, tables)
        _jump_ladder(z, families, depth)
        joint_close(z, tables)
        if np.array_equal(z, previous):
            converged = True
            break

    if not converged:
        frontier = _inorder_first_violation(
            z, families, skip_sources, skip_weights
        )
        if frontier < n:
            x = z.astype(np.int64) + C
            return _inorder_resume(trace, machine, events, rl, x, frontier)

    total = int(z[n - 1]) + int(C[n - 1]) + 1
    # A mispredicted final branch still advances the cycle past its
    # redirect in the reference; the fold has no next instruction to
    # carry that penalty.
    if mispredicted[n - 1]:
        total += latencies.mispredict_penalty
    return max(total, 1)


def _inorder_first_violation(z, families, skip_sources, skip_weights) -> int:
    n = len(z)
    first = _first_family_violation(z, families)
    mono = z[:-1] > z[1:]
    if mono.any():
        first = min(first, int(np.argmax(mono)) + 1)
    if skip_weights is not None:
        skip = z[skip_sources] + skip_weights > z
        if skip.any():
            first = min(first, int(np.argmax(skip)))
    return first


def _inorder_resume(
    trace: Trace,
    machine: MachineConfig,
    events: MachineEvents,
    rl: np.ndarray,
    x: np.ndarray,
    v: int,
) -> int:
    """Finish the in-order recurrence serially from exact prefix ``x[:v]``.

    The machine state at ``v`` is fully determined by the prefix: the
    current cycle (with the mispredict redirect of ``v-1`` applied), the
    trailing same-cycle issue group (slot and memory-port occupancy) and
    the per-register ready times of each register's last writer.
    ``v=0`` runs the whole recurrence from the initial state.
    """
    latencies = machine.latencies
    width = machine.issue_width
    n = len(trace)
    opclass = trace.opclass.tolist()
    src1 = trace.src1.tolist()
    src2 = trace.src2.tolist()
    dst = trace.dst.tolist()
    memory_latency = events.memory_latency.tolist()
    fetch_latency = events.fetch_latency.tolist()
    mispredict = events.mispredict.tolist()
    is_mem = trace.memory_mask

    load_class = int(OpClass.LOAD)
    store_class = int(OpClass.STORE)
    branch_class = int(OpClass.BRANCH)
    mul_class = int(OpClass.INT_MUL)
    fp_class = int(OpClass.FP)
    no_reg = NO_REG

    if v == 0:
        ready = [0] * (TOTAL_REGS + 1)
        cycle = 0
        issued_this_cycle = 0
        memory_issued_this_cycle = False
        front_end_free = 0
    else:
        ready = _last_writer_ready(trace, x, rl, v)
        cycle = int(x[v - 1])
        group_start = v - 1
        while group_start > 0 and x[group_start - 1] == cycle:
            group_start -= 1
        issued_this_cycle = v - group_start
        memory_issued_this_cycle = bool(is_mem[group_start:v].any())
        front_end_free = cycle
        if opclass[v - 1] == branch_class and mispredict[v - 1]:
            front_end_free = cycle + latencies.mispredict_penalty
            if front_end_free > cycle:
                cycle = front_end_free
                issued_this_cycle = 0
                memory_issued_this_cycle = False

    for index in range(v, n):
        earliest = front_end_free + fetch_latency[index]
        a = src1[index]
        b = src2[index]
        if a != no_reg and ready[a] > earliest:
            earliest = ready[a]
        if b != no_reg and ready[b] > earliest:
            earliest = ready[b]
        op = opclass[index]
        is_memory = op == load_class or op == store_class
        if earliest > cycle:
            cycle = earliest
            issued_this_cycle = 0
            memory_issued_this_cycle = False
        elif issued_this_cycle >= width or (
            is_memory and memory_issued_this_cycle
        ):
            cycle += 1
            issued_this_cycle = 0
            memory_issued_this_cycle = False
        issued_this_cycle += 1
        if is_memory:
            memory_issued_this_cycle = True
        if op == load_class:
            result_latency = memory_latency[index]
        elif op == mul_class:
            result_latency = latencies.int_mul
        elif op == fp_class:
            result_latency = latencies.fp_op
        else:
            result_latency = 1
        d = dst[index]
        if d != no_reg:
            ready[d] = cycle + result_latency
        if op == branch_class and mispredict[index]:
            front_end_free = cycle + latencies.mispredict_penalty
            if front_end_free > cycle:
                cycle = front_end_free
                issued_this_cycle = 0
                memory_issued_this_cycle = False
        elif front_end_free < cycle:
            front_end_free = cycle
    return max(cycle + 1, 1)


# ---------------------------------------------------------------------------
# Out-of-order model
# ---------------------------------------------------------------------------


def ooo_cycles(
    trace: Trace,
    machine: MachineConfig,
    events: MachineEvents,
    producers: "Optional[Tuple[np.ndarray, np.ndarray]]" = None,
) -> int:
    """Total cycles of the out-of-order model via the fixed-point engine.

    Two coupled value arrays: ``zF`` (fetch cycles) closes under the
    front-end chain/width system like the in-order model; ``zf``
    (completion times) closes under dataflow edges; window stalls and
    mispredict redirects feed completions back into ``zF`` as
    fixed-distance shifts.  Producers older than the window are dropped:
    instruction ``p + window`` only fetches once ``p`` finished, so
    ``F[i] >= finish[p]`` already holds for every ``p <= i - window``.
    """
    if producers is None:
        from ..mica.ilp import producer_indices

        producers = producer_indices(trace)
    n = len(trace)
    width = machine.issue_width
    window = machine.window_size
    latencies = machine.latencies
    opclass = trace.opclass
    rl = result_latencies(trace, machine, events)
    idx = np.arange(n, dtype=np.int64)
    p1, p2 = producers

    l = events.fetch_latency.astype(np.int64)
    CF = np.cumsum(l)
    lat32 = rl.astype(np.int32)

    families: List[_Family] = []
    for p in (p1, p2):
        distance = idx - p
        candidate = (p >= 0) & (distance >= 1) & (distance < window)
        pc = p[candidate]
        t = idx[candidate]
        w = (rl[t] + CF[pc] - CF[t]).astype(np.int32)
        np.maximum(w, _NEG, out=w)
        families.append(_Family(t, pc, w))

    skip_sources = np.maximum(idx - width, 0)
    if width > 1:
        # z-space skip weight: (l[i] + 1) - (CF[i] - CF[i-W]).
        skip_weights = np.where(
            idx >= width, 1 + l + CF[skip_sources] - CF, np.int64(_NEG)
        ).astype(np.int32)
        tables = _build_joint_tables(skip_weights == 1, width, n)
        close_front = lambda zF: joint_close(zF, tables)  # noqa: E731
        ramp = None
    else:
        # Width 1 fetches one instruction per cycle: F[i] >= F[i-1] +
        # l[i] + 1, i.e. zF[i] >= zF[i-1] + 1 — a ramped cummax.
        skip_weights = None
        tables = None
        ramp = np.arange(n, dtype=np.int32)

        def close_front(zF):
            zF -= ramp
            np.maximum.accumulate(zF, out=zF)
            zF += ramp
            return zF

    mispredicted = (opclass == int(OpClass.BRANCH)) & events.mispredict
    pen = np.int32(latencies.mispredict_penalty)
    window_weight = (
        (CF[: n - window] - CF[window:]).astype(np.int32)
        if n > window
        else None
    )

    zF = np.zeros(n, dtype=np.int32)
    close_front(zF)
    zf = zF + lat32

    depth = _ladder_depth(n)
    converged = False
    for _ in range(_ROUND_BUDGET):
        prevF = zF.copy()
        prevf = zf.copy()
        # Dataflow into completions.
        _apply_families(zf, families)
        # Completions feed the front end: window stalls and redirects.
        if window_weight is not None:
            np.maximum(
                zF[window:], zf[: n - window] + window_weight, out=zF[window:]
            )
        np.maximum(
            zF[1:],
            np.where(mispredicted[:-1], zf[:-1] + pen, _NEG),
            out=zF[1:],
        )
        close_front(zF)
        # Front end feeds completions.
        np.maximum(zf, zF + lat32, out=zf)
        # Contract dependence chains (finish is not monotone: no chain
        # parents in the ladder).
        _jump_ladder(zf, families, depth, monotone=False)
        np.maximum(zf, zF + lat32, out=zf)
        if np.array_equal(zF, prevF) and np.array_equal(zf, prevf):
            converged = True
            break

    if not converged:
        frontier = _ooo_first_violation(
            zF, zf, families, skip_sources, skip_weights, width, window,
            window_weight, mispredicted, pen, lat32,
        )
        if frontier < n:
            F = zF.astype(np.int64) + CF
            fin = zf.astype(np.int64) + CF
            return _ooo_resume(trace, machine, events, F, fin, frontier)

    total = int((zf.astype(np.int64) + CF).max())
    return max(total, 1)


def _ooo_first_violation(
    zF, zf, families, skip_sources, skip_weights, width, window,
    window_weight, mispredicted, pen, lat32,
) -> int:
    n = len(zF)
    first = _first_family_violation(zf, families)
    step = 1 if width == 1 else 0
    mono = zF[:-1] + step > zF[1:]
    if mono.any():
        first = min(first, int(np.argmax(mono)) + 1)
    if skip_weights is not None:
        skip = zF[skip_sources] + skip_weights > zF
        if skip.any():
            first = min(first, int(np.argmax(skip)))
    if window_weight is not None:
        win = zf[: n - window] + window_weight > zF[window:]
        if win.any():
            first = min(first, int(np.argmax(win)) + window)
    resume = np.where(mispredicted[:-1], zf[:-1] + pen, _NEG) > zF[1:]
    if resume.any():
        first = min(first, int(np.argmax(resume)) + 1)
    start = zF + lat32 > zf
    if start.any():
        first = min(first, int(np.argmax(start)))
    return first


def _ooo_resume(
    trace: Trace,
    machine: MachineConfig,
    events: MachineEvents,
    F: np.ndarray,
    fin: np.ndarray,
    v: int,
) -> int:
    """Finish the out-of-order recurrence serially from exact prefixes.

    ``F[:v]`` and ``fin[:v]`` determine the machine state at ``v``: the
    fetch cycle (with ``v-1``'s mispredict resume applied), the trailing
    same-cycle fetch group, per-register ready times, the window's
    recent finish times and the running maximum finish.
    """
    latencies = machine.latencies
    width = machine.issue_width
    window = machine.window_size
    n = len(trace)
    opclass = trace.opclass.tolist()
    src1 = trace.src1.tolist()
    src2 = trace.src2.tolist()
    dst = trace.dst.tolist()
    memory_latency = events.memory_latency.tolist()
    fetch_latency = events.fetch_latency.tolist()
    mispredict = events.mispredict.tolist()

    load_class = int(OpClass.LOAD)
    branch_class = int(OpClass.BRANCH)
    mul_class = int(OpClass.INT_MUL)
    fp_class = int(OpClass.FP)
    no_reg = NO_REG

    # Entries past v are stale lower bounds, but the loop rewrites
    # finish[index] before any window lookback can read it.
    ready = _last_writer_ready(trace, fin, None, v)
    finish = fin.tolist()
    last_cycle = max(int(fin[:v].max()), 0)
    fetch_cycle = int(F[v - 1])
    group_start = v - 1
    while group_start > 0 and F[group_start - 1] == fetch_cycle:
        group_start -= 1
    fetched_this_cycle = v - group_start
    if opclass[v - 1] == branch_class and mispredict[v - 1]:
        resume = finish[v - 1] + latencies.mispredict_penalty
        if resume > fetch_cycle:
            fetch_cycle = resume
            fetched_this_cycle = 0

    for index in range(v, n):
        if fetched_this_cycle >= width:
            fetch_cycle += 1
            fetched_this_cycle = 0
        stall_until = fetch_cycle
        extra_fetch = fetch_latency[index]
        if extra_fetch:
            stall_until += extra_fetch
        if index >= window:
            oldest_finish = finish[index - window]
            if oldest_finish > stall_until:
                stall_until = oldest_finish
        if stall_until > fetch_cycle:
            fetch_cycle = stall_until
            fetched_this_cycle = 0
        fetched_this_cycle += 1

        start = fetch_cycle
        a = src1[index]
        if a != no_reg and ready[a] > start:
            start = ready[a]
        b = src2[index]
        if b != no_reg and ready[b] > start:
            start = ready[b]
        op = opclass[index]
        if op == load_class:
            latency = memory_latency[index]
        elif op == mul_class:
            latency = latencies.int_mul
        elif op == fp_class:
            latency = latencies.fp_op
        else:
            latency = 1
        done = start + latency
        finish[index] = done
        if done > last_cycle:
            last_cycle = done
        d = dst[index]
        if d != no_reg:
            ready[d] = done
        if op == branch_class and mispredict[index]:
            resume = done + latencies.mispredict_penalty
            if resume > fetch_cycle:
                fetch_cycle = resume
                fetched_this_cycle = 0
    return max(last_cycle, 1)
