"""Microarchitecture simulation substrate.

The paper collects its microarchitecture-dependent data set with DCPI
hardware performance counters on an Alpha 21164A (EV56, dual-issue
in-order) plus the IPC on an Alpha 21264A (EV67, four-wide out-of-order).
Neither machine is available, so this package provides
structurally-faithful simulators producing the same seven metrics from a
trace: EV56 IPC, branch misprediction rate, L1 D-cache / L1 I-cache /
L2 miss rates, D-TLB miss rate, and EV67 IPC.
"""

from .cache import CacheConfig, SetAssociativeCache, CacheStats
from .tlb import TLB
from .branch_predictors import (
    BranchPredictor,
    BimodalPredictor,
    GSharePredictor,
    LocalHistoryPredictor,
    TournamentPredictor,
    simulate_predictor,
    simulate_predictor_reference,
)
from .configs import MachineConfig, EV56_CONFIG, EV67_CONFIG
from .events import MachineEvents, simulate_events
from .inorder import InOrderModel
from .ooo import OutOfOrderModel
from .hpc import (
    HPC_METRIC_NAMES,
    HPC_SIM_VERSION,
    HpcVector,
    collect_hpc,
    hpc_call_count,
)

__all__ = [
    "CacheConfig",
    "SetAssociativeCache",
    "CacheStats",
    "TLB",
    "BranchPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "LocalHistoryPredictor",
    "TournamentPredictor",
    "simulate_predictor",
    "simulate_predictor_reference",
    "MachineConfig",
    "MachineEvents",
    "simulate_events",
    "EV56_CONFIG",
    "EV67_CONFIG",
    "InOrderModel",
    "OutOfOrderModel",
    "HPC_METRIC_NAMES",
    "HPC_SIM_VERSION",
    "HpcVector",
    "collect_hpc",
    "hpc_call_count",
]
