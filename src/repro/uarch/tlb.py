"""D-TLB simulator.

A TLB is a fully-associative LRU cache of page translations; the
implementation reuses the set-associative machinery with a single set
whose associativity equals the entry count.
"""

from __future__ import annotations

import numpy as np

from .cache import CacheConfig, SetAssociativeCache


class TLB:
    """A fully-associative data TLB.

    Args:
        entries: number of translations held (e.g. 64 for the 21164A).
        page_bytes: page size (power of two, 8 KB on Alpha).
    """

    def __init__(self, entries: int = 64, page_bytes: int = 8192):
        self.entries = entries
        self.page_bytes = page_bytes
        config = CacheConfig(
            name="DTLB",
            size_bytes=entries * page_bytes,
            line_bytes=page_bytes,
            associativity=entries,
        )
        self._cache = SetAssociativeCache(config)

    @property
    def stats(self):
        """Access/miss counters (a :class:`~repro.uarch.CacheStats`)."""
        return self._cache.stats

    def reset(self) -> None:
        """Invalidate all translations and clear statistics."""
        self._cache.reset()

    def access(self, address: int) -> bool:
        """Translate one address.  True on TLB hit."""
        return self._cache.access(address)

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        """Translate a sequence of addresses; returns the miss mask.

        Runs the batch engine of the underlying cache — with a single
        set whose associativity is the entry count, the engine resolves
        hits via exact LRU stack distances.
        """
        return self._cache.simulate(addresses)

    def simulate_reference(self, addresses: np.ndarray) -> np.ndarray:
        """Scalar per-access translation — the executable specification."""
        return self._cache.simulate_reference(addresses)
