"""In-order pipeline model (Alpha 21164A style).

A dual-issue in-order machine: instructions issue in program order, at
most ``issue_width`` per cycle with one memory operation per cycle; an
instruction cannot issue before its source registers are ready; loads
deliver their result ``l1_hit`` (or miss-latency) cycles after issue;
branch mispredictions and instruction-fetch misses insert front-end
bubbles.  The model is cycle-approximate, not RTL-faithful — its purpose
is producing realistic hardware-performance-counter IPC values.

**Batch engine.**  :meth:`InOrderModel.run` drives
:func:`repro.uarch.pipeline_batch.inorder_walk`: every per-instruction
stall term (fetch stalls, mispredict redirects, memory-port conflicts,
result latencies) is folded into precomputed arrays by vectorized
passes, and the remaining reduced recurrence is walked without any
per-instruction opclass or register-validity branching.
:meth:`InOrderModel.run_reference` retains the original scalar loop
verbatim as the executable specification; the batch path (and the
independent max-plus fixed-point engine in
:mod:`~repro.uarch.pipeline_batch`) are pinned to it bit-for-bit on IPC
by ``tests/test_uarch_pipeline_equivalence.py``.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..isa import NO_REG, OpClass
from ..isa.registers import TOTAL_REGS
from ..trace import Trace
from .configs import MachineConfig
from .events import MachineEvents, simulate_events
from .pipeline_batch import inorder_walk


class InOrderModel:
    """Cycle-approximate in-order superscalar model."""

    def __init__(self, machine: MachineConfig):
        if machine.window_size:
            raise SimulationError(
                f"{machine.name} is an out-of-order configuration"
            )
        self.machine = machine

    def run(
        self, trace: Trace, events: "MachineEvents | None" = None
    ) -> "tuple[float, MachineEvents]":
        """Execute the trace on the batch engine.

        Args:
            trace: dynamic instruction trace.
            events: precomputed :func:`simulate_events` result for this
                machine (computed on demand otherwise).

        Returns:
            ``(ipc, events)``; bit-identical to :meth:`run_reference`.
        """
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        if events is None:
            events = simulate_events(trace, self.machine)
        total_cycles = inorder_walk(trace, self.machine, events)
        return len(trace) / total_cycles, events

    def run_reference(
        self, trace: Trace, events: "MachineEvents | None" = None
    ) -> "tuple[float, MachineEvents]":
        """Execute the trace with the retained scalar loop.

        The executable specification of the model's semantics: the
        original per-instruction state machine, kept verbatim for the
        equivalence tests and the perf harness.
        """
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        if events is None:
            events = simulate_events(trace, self.machine)

        latencies = self.machine.latencies
        width = self.machine.issue_width
        n = len(trace)

        opclass = trace.opclass.tolist()
        src1 = trace.src1.tolist()
        src2 = trace.src2.tolist()
        dst = trace.dst.tolist()
        memory_latency = events.memory_latency.tolist()
        fetch_latency = events.fetch_latency.tolist()
        mispredict = events.mispredict.tolist()

        ready = [0] * (TOTAL_REGS + 1)  # +1 slot for NO_REG.
        load_class = int(OpClass.LOAD)
        store_class = int(OpClass.STORE)
        branch_class = int(OpClass.BRANCH)
        mul_class = int(OpClass.INT_MUL)
        fp_class = int(OpClass.FP)
        no_reg = NO_REG

        cycle = 0
        issued_this_cycle = 0
        memory_issued_this_cycle = False
        front_end_free = 0  # Cycle at which the front end resumes.

        for index in range(n):
            earliest = front_end_free + fetch_latency[index]
            a = src1[index]
            b = src2[index]
            if a != no_reg:
                value_ready = ready[a]
                if value_ready > earliest:
                    earliest = value_ready
            if b != no_reg:
                value_ready = ready[b]
                if value_ready > earliest:
                    earliest = value_ready

            op = opclass[index]
            is_memory = op == load_class or op == store_class

            if earliest > cycle:
                cycle = earliest
                issued_this_cycle = 0
                memory_issued_this_cycle = False
            elif issued_this_cycle >= width or (
                is_memory and memory_issued_this_cycle
            ):
                cycle += 1
                issued_this_cycle = 0
                memory_issued_this_cycle = False

            issued_this_cycle += 1
            if is_memory:
                memory_issued_this_cycle = True

            if op == load_class:
                result_latency = memory_latency[index]
            elif op == mul_class:
                result_latency = latencies.int_mul
            elif op == fp_class:
                result_latency = latencies.fp_op
            else:
                result_latency = 1

            d = dst[index]
            if d != no_reg:
                ready[d] = cycle + result_latency

            if op == branch_class and mispredict[index]:
                front_end_free = cycle + latencies.mispredict_penalty
                if front_end_free > cycle:
                    cycle = front_end_free
                    issued_this_cycle = 0
                    memory_issued_this_cycle = False
            elif front_end_free < cycle:
                front_end_free = cycle

        total_cycles = max(cycle + 1, 1)
        return n / total_cycles, events
