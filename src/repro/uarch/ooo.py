"""Out-of-order pipeline model (Alpha 21264A style).

A four-wide out-of-order machine with a finite instruction window:
instructions are fetched in order (``issue_width`` per cycle, stalling
on I-cache misses and after branch mispredictions until the branch
resolves), enter the window, and execute as soon as their operands are
ready; the window bounds how far fetch may run ahead of the oldest
unfinished instruction.  Dataflow, latencies and mispredictions come
from the same event simulation the in-order model uses.

**Batch engine.**  :meth:`OutOfOrderModel.run` drives
:func:`repro.uarch.pipeline_batch.ooo_walk`: result latencies,
mispredict flags and register streams are precomputed as arrays by
vectorized passes, and the remaining reduced recurrence is walked with
no per-instruction opclass or register-validity branching.
:meth:`OutOfOrderModel.run_reference` retains the original scalar loop
verbatim as the executable specification; the batch path (and the
independent max-plus fixed-point engine in
:mod:`~repro.uarch.pipeline_batch`) are pinned to it bit-for-bit on IPC
by ``tests/test_uarch_pipeline_equivalence.py``.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..isa import NO_REG, OpClass
from ..isa.registers import TOTAL_REGS
from ..trace import Trace
from .configs import MachineConfig
from .events import MachineEvents, simulate_events
from .pipeline_batch import ooo_walk


class OutOfOrderModel:
    """Cycle-approximate out-of-order superscalar model."""

    def __init__(self, machine: MachineConfig):
        if not machine.window_size:
            raise SimulationError(
                f"{machine.name} is an in-order configuration"
            )
        self.machine = machine

    def run(
        self, trace: Trace, events: "MachineEvents | None" = None
    ) -> "tuple[float, MachineEvents]":
        """Execute the trace on the batch engine.

        Args:
            trace: dynamic instruction trace.
            events: precomputed :func:`simulate_events` result for this
                machine (computed on demand otherwise).

        Returns:
            ``(ipc, events)``; bit-identical to :meth:`run_reference`.
        """
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        if events is None:
            events = simulate_events(trace, self.machine)
        total_cycles = ooo_walk(trace, self.machine, events)
        return len(trace) / total_cycles, events

    def run_reference(
        self, trace: Trace, events: "MachineEvents | None" = None
    ) -> "tuple[float, MachineEvents]":
        """Execute the trace with the retained scalar loop.

        The executable specification of the model's semantics, kept
        verbatim for the equivalence tests and the perf harness.
        """
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        if events is None:
            events = simulate_events(trace, self.machine)

        latencies = self.machine.latencies
        width = self.machine.issue_width
        window = self.machine.window_size
        n = len(trace)

        opclass = trace.opclass.tolist()
        src1 = trace.src1.tolist()
        src2 = trace.src2.tolist()
        dst = trace.dst.tolist()
        memory_latency = events.memory_latency.tolist()
        fetch_latency = events.fetch_latency.tolist()
        mispredict = events.mispredict.tolist()

        ready = [0] * (TOTAL_REGS + 1)
        finish = [0] * n
        load_class = int(OpClass.LOAD)
        branch_class = int(OpClass.BRANCH)
        mul_class = int(OpClass.INT_MUL)
        fp_class = int(OpClass.FP)
        no_reg = NO_REG

        fetch_cycle = 0
        fetched_this_cycle = 0
        last_cycle = 0

        for index in range(n):
            # Fetch: in order, `width` per cycle, stalling on I-misses
            # and while the window is full.
            if fetched_this_cycle >= width:
                fetch_cycle += 1
                fetched_this_cycle = 0
            stall_until = fetch_cycle
            extra_fetch = fetch_latency[index]
            if extra_fetch:
                stall_until += extra_fetch
            if index >= window:
                oldest_finish = finish[index - window]
                if oldest_finish > stall_until:
                    stall_until = oldest_finish
            if stall_until > fetch_cycle:
                fetch_cycle = stall_until
                fetched_this_cycle = 0
            fetched_this_cycle += 1

            # Execute: when operands are ready, out of order.
            start = fetch_cycle
            a = src1[index]
            if a != no_reg and ready[a] > start:
                start = ready[a]
            b = src2[index]
            if b != no_reg and ready[b] > start:
                start = ready[b]

            op = opclass[index]
            if op == load_class:
                latency = memory_latency[index]
            elif op == mul_class:
                latency = latencies.int_mul
            elif op == fp_class:
                latency = latencies.fp_op
            else:
                latency = 1
            done = start + latency
            finish[index] = done
            if done > last_cycle:
                last_cycle = done

            d = dst[index]
            if d != no_reg:
                ready[d] = done

            # A mispredicted branch stalls fetch until it resolves,
            # plus the redirect penalty.
            if op == branch_class and mispredict[index]:
                resume = done + latencies.mispredict_penalty
                if resume > fetch_cycle:
                    fetch_cycle = resume
                    fetched_this_cycle = 0

        total_cycles = max(last_cycle, 1)
        return n / total_cycles, events
