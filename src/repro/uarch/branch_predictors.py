"""Hardware branch predictors.

Unlike the PPM predictors of :mod:`repro.mica.ppm` (theoretical,
microarchitecture-independent), these are buildable table-based
predictors used by the microarchitecture-dependent simulators:

* :class:`BimodalPredictor` — per-PC 2-bit saturating counters;
* :class:`GSharePredictor` — global history XOR PC into 2-bit counters;
* :class:`LocalHistoryPredictor` — two-level per-PC history (the
  21164A-style and 21264 local component);
* :class:`TournamentPredictor` — the Alpha 21264 chooser combining the
  local and a global (gshare-style) component.

**Batch engine.**  Every predictor trains on *actual* outcomes, never on
its own predictions, so the full history streams are known up front:
each predictor's :meth:`~BranchPredictor.simulate_batch` materializes
the (global or per-PC) history registers for the whole branch stream,
maps every branch to its counter cell, and recovers the counter value
each branch observed with a grouped *clamped* prefix sum — a saturating
counter's trajectory has a closed form over its cell's update
subsequence via the reversed running-min/max transform (see
:func:`_saturating_counter_states`).  No per-branch Python loops, and
the tables/registers are left in exactly the state the scalar
``predict``/``update`` path produces.
:func:`simulate_predictor_reference` retains the scalar loop as the
executable specification the equivalence tests pin the batch paths
against, bit for bit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


def _check_power_of_two(value: int, label: str) -> None:
    if value <= 0 or value & (value - 1):
        raise SimulationError(f"{label} must be a positive power of two")


def _group_firsts(keys: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each run of equal keys."""
    first = np.empty(len(keys), dtype=bool)
    first[0] = True
    first[1:] = keys[1:] != keys[:-1]
    return first


def _saturating_counter_states(
    table: np.ndarray,
    cells: np.ndarray,
    deltas: np.ndarray,
    low: int,
    high: int,
) -> np.ndarray:
    """Counter value each update observes; the table is advanced in place.

    ``cells[t]`` indexes the saturating counter that event ``t``
    (program order) updates by ``deltas[t]`` (clamped to ``[low,
    high]``; a delta of 0 models a read-only event).  Events are grouped
    per cell with one stable key sort.  One clamped update is the map
    ``v -> min(high, max(low, v + x))``; such clamp-affine maps are
    closed under composition::

        (a2,b2,s2) o (a1,b1,s1) = (max(a2, a1+s2),
                                   min(b2, max(a2, b1+s2)),
                                   s1+s2)

    where a map ``(a,b,s)`` sends ``v`` to ``min(b, max(a, v+s))``.  A
    grouped logarithmic-doubling scan over that monoid yields every
    prefix composition at once, so the value a cell held *before* each
    of its updates — and the closing value written back into ``table``
    — falls out without any per-event Python loop.

    Returns:
        Per-event counter values, in program order.
    """
    n = len(cells)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(cells, kind="stable")
    sorted_cells = cells[order]
    first = _group_firsts(sorted_cells)
    positions = np.arange(n, dtype=np.int64)
    within = positions - np.maximum.accumulate(np.where(first, positions, 0))

    # Inclusive prefix composition per group, by doubling: after the
    # k-th pass each element holds the composition of the trailing
    # min(2^k, within+1) updates of its group.
    lower = np.full(n, low, dtype=np.int64)
    upper = np.full(n, high, dtype=np.int64)
    shift = deltas[order].astype(np.int64)
    step = 1
    while step < n:
        merge = within >= step
        if not merge.any():
            break
        source = np.maximum(positions - step, 0)
        earlier_lower = lower[source]
        earlier_upper = upper[source]
        earlier_shift = shift[source]
        new_lower = np.maximum(lower, earlier_lower + shift)
        new_upper = np.minimum(upper, np.maximum(lower, earlier_upper + shift))
        new_shift = earlier_shift + shift
        lower = np.where(merge, new_lower, lower)
        upper = np.where(merge, new_upper, upper)
        shift = np.where(merge, new_shift, shift)
        step *= 2

    initial = table[sorted_cells].astype(np.int64)
    # State before event t = the exclusive prefix composition (the
    # inclusive one of the previous event) applied to the cell's
    # pre-batch value; the first event of a group sees it untouched.
    before = np.empty(n, dtype=np.int64)
    before[1:] = np.minimum(
        upper[:-1], np.maximum(lower[:-1], initial[1:] + shift[:-1])
    )
    before[first] = initial[first]

    last = np.empty(n, dtype=bool)
    last[:-1] = first[1:]
    last[-1] = True
    closing = np.minimum(upper, np.maximum(lower, initial + shift))
    table[sorted_cells[last]] = closing[last].astype(table.dtype)

    result = np.empty(n, dtype=np.int64)
    result[order] = before
    return result


def _history_streams(
    bits: np.ndarray,
    history_bits: int,
    mask: int,
    initial: np.ndarray,
    within: np.ndarray,
) -> np.ndarray:
    """Shift-register contents each event observes.

    ``bits`` are the 0/1 outcomes in register-update order, ``within``
    the event's ordinal inside its register's stream (events of one
    register must be contiguous), ``initial`` each event's register
    seed.  The register before event ``t`` is its last ``history_bits``
    outcomes packed LSB-first, padded with the seed's surviving bits —
    assembled by ``history_bits`` masked shifts, never per-event.
    """
    n = len(bits)
    packed = np.zeros(n, dtype=np.int64)
    for age in range(history_bits):
        if age + 1 >= n:
            break
        source = np.zeros(n, dtype=np.int64)
        source[age + 1 :] = bits[: n - age - 1]
        packed |= np.where(within > age, source, 0) << age
    seed_shift = np.minimum(within, history_bits)
    seed = np.where(within < history_bits, initial << seed_shift, 0)
    return (seed | packed) & mask


class BranchPredictor(ABC):
    """A trainable taken/not-taken predictor."""

    @abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome."""


class BimodalPredictor(BranchPredictor):
    """Per-PC 2-bit saturating counters."""

    def __init__(self, entries: int = 2048):
        _check_power_of_two(entries, "entries")
        self._mask = entries - 1
        self._counters = np.full(entries, 1, dtype=np.int8)  # Weakly NT.

    def predict(self, pc: int) -> bool:
        return bool(self._counters[(pc >> 2) & self._mask] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        index = (pc >> 2) & self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1

    def simulate_batch(
        self, branch_pcs: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        """Mispredict mask for a branch stream; trains the tables."""
        n = len(branch_pcs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        taken = outcomes.astype(bool)
        cells = (branch_pcs.astype(np.int64) >> 2) & self._mask
        before = _saturating_counter_states(
            self._counters, cells, np.where(taken, 1, -1), 0, 3
        )
        return (before >= 2) != taken


class GSharePredictor(BranchPredictor):
    """Global-history predictor: history XOR PC indexes 2-bit counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        _check_power_of_two(entries, "entries")
        self._mask = entries - 1
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._counters = np.full(entries, 1, dtype=np.int8)

    def predict(self, pc: int) -> bool:
        index = ((pc >> 2) ^ self._history) & self._mask
        return bool(self._counters[index] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        index = ((pc >> 2) ^ self._history) & self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def simulate_batch(
        self, branch_pcs: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        """Mispredict mask for a branch stream; trains tables/history."""
        n = len(branch_pcs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        taken = outcomes.astype(bool)
        bits = taken.astype(np.int64)
        histories = _history_streams(
            bits,
            self._history_bits,
            self._history_mask,
            np.full(n, self._history, dtype=np.int64),
            np.arange(n, dtype=np.int64),
        )
        cells = ((branch_pcs.astype(np.int64) >> 2) ^ histories) & self._mask
        before = _saturating_counter_states(
            self._counters, cells, np.where(taken, 1, -1), 0, 3
        )
        self._history = int(
            ((histories[-1] << 1) | bits[-1]) & self._history_mask
        )
        return (before >= 2) != taken


class LocalHistoryPredictor(BranchPredictor):
    """Two-level predictor with per-PC local histories.

    Level one records each branch's recent outcome pattern; level two
    holds saturating counters indexed by that pattern (3-bit counters,
    as in the 21264 local component).
    """

    def __init__(self, history_entries: int = 1024, history_bits: int = 10):
        _check_power_of_two(history_entries, "history_entries")
        self._entry_mask = history_entries - 1
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._histories = np.zeros(history_entries, dtype=np.int64)
        self._counters = np.full(1 << history_bits, 3, dtype=np.int8)

    def predict(self, pc: int) -> bool:
        history = self._histories[(pc >> 2) & self._entry_mask]
        return bool(self._counters[history] >= 4)

    def update(self, pc: int, taken: bool) -> None:
        entry = (pc >> 2) & self._entry_mask
        history = self._histories[entry]
        counter = self._counters[history]
        if taken:
            if counter < 7:
                self._counters[history] = counter + 1
        elif counter > 0:
            self._counters[history] = counter - 1
        self._histories[entry] = ((history << 1) | int(taken)) & (
            self._history_mask
        )

    def _materialize_histories(
        self, branch_pcs: np.ndarray, taken: np.ndarray
    ) -> np.ndarray:
        """Per-branch local-history values, advancing level one."""
        n = len(branch_pcs)
        entries = (branch_pcs.astype(np.int64) >> 2) & self._entry_mask
        order = np.argsort(entries, kind="stable")
        sorted_entries = entries[order]
        sorted_bits = taken[order].astype(np.int64)
        first = _group_firsts(sorted_entries)
        within = np.arange(n, dtype=np.int64)
        within -= np.maximum.accumulate(np.where(first, within, 0))
        sorted_histories = _history_streams(
            sorted_bits,
            self._history_bits,
            self._history_mask,
            self._histories[sorted_entries],
            within,
        )
        last = np.empty(n, dtype=bool)
        last[:-1] = first[1:]
        last[-1] = True
        self._histories[sorted_entries[last]] = (
            (sorted_histories[last] << 1) | sorted_bits[last]
        ) & self._history_mask
        histories = np.empty(n, dtype=np.int64)
        histories[order] = sorted_histories
        return histories

    def simulate_batch(
        self, branch_pcs: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        """Mispredict mask for a branch stream; trains both levels."""
        n = len(branch_pcs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        taken = outcomes.astype(bool)
        histories = self._materialize_histories(branch_pcs, taken)
        before = _saturating_counter_states(
            self._counters, histories, np.where(taken, 1, -1), 0, 7
        )
        return (before >= 4) != taken


class TournamentPredictor(BranchPredictor):
    """The Alpha 21264 tournament scheme.

    A chooser table of 2-bit counters (indexed by global history) picks
    between a local two-level component and a global component per
    prediction; the chooser trains toward whichever component was right.
    """

    def __init__(
        self,
        local_entries: int = 1024,
        local_history_bits: int = 10,
        global_entries: int = 4096,
        global_history_bits: int = 12,
    ):
        self._local = LocalHistoryPredictor(local_entries, local_history_bits)
        self._global = GSharePredictor(global_entries, global_history_bits)
        self._chooser = np.full(global_entries, 2, dtype=np.int8)
        self._chooser_mask = global_entries - 1
        self._history = 0
        self._history_bits = global_history_bits
        self._history_mask = (1 << global_history_bits) - 1

    def predict(self, pc: int) -> bool:
        use_global = self._chooser[self._history & self._chooser_mask] >= 2
        if use_global:
            return self._global.predict(pc)
        return self._local.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        local_prediction = self._local.predict(pc)
        global_prediction = self._global.predict(pc)
        chooser_index = self._history & self._chooser_mask
        if local_prediction != global_prediction:
            counter = self._chooser[chooser_index]
            if global_prediction == taken:
                if counter < 3:
                    self._chooser[chooser_index] = counter + 1
            elif counter > 0:
                self._chooser[chooser_index] = counter - 1
        self._local.update(pc, taken)
        self._global.update(pc, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def simulate_batch(
        self, branch_pcs: np.ndarray, outcomes: np.ndarray
    ) -> np.ndarray:
        """Mispredict mask for a branch stream; trains all components."""
        n = len(branch_pcs)
        if n == 0:
            return np.zeros(0, dtype=bool)
        taken = outcomes.astype(bool)
        bits = taken.astype(np.int64)
        # Component predictions: each engine's mispredict mask XOR the
        # outcome recovers the prediction, and running the engines also
        # trains them exactly as per-branch updates would.
        local_predictions = self._local.simulate_batch(branch_pcs, taken) ^ taken
        global_predictions = (
            self._global.simulate_batch(branch_pcs, taken) ^ taken
        )
        histories = _history_streams(
            bits,
            self._history_bits,
            self._history_mask,
            np.full(n, self._history, dtype=np.int64),
            np.arange(n, dtype=np.int64),
        )
        cells = histories & self._chooser_mask
        disagree = local_predictions != global_predictions
        toward_global = np.where(global_predictions == taken, 1, -1)
        deltas = np.where(disagree, toward_global, 0)
        before = _saturating_counter_states(
            self._chooser, cells, deltas, 0, 3
        )
        predictions = np.where(before >= 2, global_predictions, local_predictions)
        self._history = int(
            ((histories[-1] << 1) | bits[-1]) & self._history_mask
        )
        return predictions != taken


@dataclass(frozen=True)
class PredictorStats:
    """Outcome of a predictor simulation."""

    branches: int
    mispredictions: int

    @property
    def misprediction_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches


def simulate_predictor(
    predictor: BranchPredictor,
    branch_pcs: np.ndarray,
    outcomes: np.ndarray,
    return_mask: bool = False,
):
    """Run a predictor over a branch stream (batch engine).

    Args:
        predictor: the predictor to drive.
        branch_pcs: PCs of the dynamic branches, in program order.
        outcomes: matching taken/not-taken outcomes.
        return_mask: also return the per-branch mispredict mask (used by
            the pipeline models to place misprediction bubbles).

    Returns:
        :class:`PredictorStats`, or ``(stats, mask)`` when
        ``return_mask`` is set.

    Predictors exposing ``simulate_batch`` (all four built-ins) run the
    vectorized engine; foreign :class:`BranchPredictor` subclasses fall
    back to the scalar loop.
    """
    batch = getattr(predictor, "simulate_batch", None)
    if batch is None:
        return simulate_predictor_reference(
            predictor, branch_pcs, outcomes, return_mask
        )
    mask = batch(branch_pcs, outcomes)
    stats = PredictorStats(branches=len(mask), mispredictions=int(mask.sum()))
    if return_mask:
        return stats, mask
    return stats


def simulate_predictor_reference(
    predictor: BranchPredictor,
    branch_pcs: np.ndarray,
    outcomes: np.ndarray,
    return_mask: bool = False,
):
    """Scalar per-branch loop — the executable specification.

    Identical results (mask, statistics, final predictor state) to
    :func:`simulate_predictor`; retained for the equivalence tests and
    the perf harness.
    """
    n = len(branch_pcs)
    mask = np.empty(n, dtype=bool) if return_mask else None
    mispredictions = 0
    pcs = branch_pcs.tolist()
    takens = outcomes.tolist()
    predict = predictor.predict
    update = predictor.update
    for position in range(n):
        pc = pcs[position]
        taken = bool(takens[position])
        wrong = predict(pc) != taken
        if wrong:
            mispredictions += 1
        if mask is not None:
            mask[position] = wrong
        update(pc, taken)
    stats = PredictorStats(branches=n, mispredictions=mispredictions)
    if return_mask:
        return stats, mask
    return stats
