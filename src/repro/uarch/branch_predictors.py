"""Hardware branch predictors.

Unlike the PPM predictors of :mod:`repro.mica.ppm` (theoretical,
microarchitecture-independent), these are buildable table-based
predictors used by the microarchitecture-dependent simulators:

* :class:`BimodalPredictor` — per-PC 2-bit saturating counters;
* :class:`GSharePredictor` — global history XOR PC into 2-bit counters;
* :class:`LocalHistoryPredictor` — two-level per-PC history (the
  21164A-style and 21264 local component);
* :class:`TournamentPredictor` — the Alpha 21264 chooser combining the
  local and a global (gshare-style) component.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


def _check_power_of_two(value: int, label: str) -> None:
    if value <= 0 or value & (value - 1):
        raise SimulationError(f"{label} must be a positive power of two")


class BranchPredictor(ABC):
    """A trainable taken/not-taken predictor."""

    @abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""

    @abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome."""


class BimodalPredictor(BranchPredictor):
    """Per-PC 2-bit saturating counters."""

    def __init__(self, entries: int = 2048):
        _check_power_of_two(entries, "entries")
        self._mask = entries - 1
        self._counters = np.full(entries, 1, dtype=np.int8)  # Weakly NT.

    def predict(self, pc: int) -> bool:
        return bool(self._counters[(pc >> 2) & self._mask] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        index = (pc >> 2) & self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1


class GSharePredictor(BranchPredictor):
    """Global-history predictor: history XOR PC indexes 2-bit counters."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        _check_power_of_two(entries, "entries")
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._counters = np.full(entries, 1, dtype=np.int8)

    def predict(self, pc: int) -> bool:
        index = ((pc >> 2) ^ self._history) & self._mask
        return bool(self._counters[index] >= 2)

    def update(self, pc: int, taken: bool) -> None:
        index = ((pc >> 2) ^ self._history) & self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class LocalHistoryPredictor(BranchPredictor):
    """Two-level predictor with per-PC local histories.

    Level one records each branch's recent outcome pattern; level two
    holds saturating counters indexed by that pattern (3-bit counters,
    as in the 21264 local component).
    """

    def __init__(self, history_entries: int = 1024, history_bits: int = 10):
        _check_power_of_two(history_entries, "history_entries")
        self._entry_mask = history_entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._histories = np.zeros(history_entries, dtype=np.int64)
        self._counters = np.full(1 << history_bits, 3, dtype=np.int8)

    def predict(self, pc: int) -> bool:
        history = self._histories[(pc >> 2) & self._entry_mask]
        return bool(self._counters[history] >= 4)

    def update(self, pc: int, taken: bool) -> None:
        entry = (pc >> 2) & self._entry_mask
        history = self._histories[entry]
        counter = self._counters[history]
        if taken:
            if counter < 7:
                self._counters[history] = counter + 1
        elif counter > 0:
            self._counters[history] = counter - 1
        self._histories[entry] = ((history << 1) | int(taken)) & (
            self._history_mask
        )


class TournamentPredictor(BranchPredictor):
    """The Alpha 21264 tournament scheme.

    A chooser table of 2-bit counters (indexed by global history) picks
    between a local two-level component and a global component per
    prediction; the chooser trains toward whichever component was right.
    """

    def __init__(
        self,
        local_entries: int = 1024,
        local_history_bits: int = 10,
        global_entries: int = 4096,
        global_history_bits: int = 12,
    ):
        self._local = LocalHistoryPredictor(local_entries, local_history_bits)
        self._global = GSharePredictor(global_entries, global_history_bits)
        self._chooser = np.full(global_entries, 2, dtype=np.int8)
        self._chooser_mask = global_entries - 1
        self._history = 0
        self._history_mask = (1 << global_history_bits) - 1

    def predict(self, pc: int) -> bool:
        use_global = self._chooser[self._history & self._chooser_mask] >= 2
        if use_global:
            return self._global.predict(pc)
        return self._local.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        local_prediction = self._local.predict(pc)
        global_prediction = self._global.predict(pc)
        chooser_index = self._history & self._chooser_mask
        if local_prediction != global_prediction:
            counter = self._chooser[chooser_index]
            if global_prediction == taken:
                if counter < 3:
                    self._chooser[chooser_index] = counter + 1
            elif counter > 0:
                self._chooser[chooser_index] = counter - 1
        self._local.update(pc, taken)
        self._global.update(pc, taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


@dataclass(frozen=True)
class PredictorStats:
    """Outcome of a predictor simulation."""

    branches: int
    mispredictions: int

    @property
    def misprediction_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.mispredictions / self.branches


def simulate_predictor(
    predictor: BranchPredictor,
    branch_pcs: np.ndarray,
    outcomes: np.ndarray,
    return_mask: bool = False,
):
    """Run a predictor over a branch stream.

    Args:
        predictor: the predictor to drive.
        branch_pcs: PCs of the dynamic branches, in program order.
        outcomes: matching taken/not-taken outcomes.
        return_mask: also return the per-branch mispredict mask (used by
            the pipeline models to place misprediction bubbles).

    Returns:
        :class:`PredictorStats`, or ``(stats, mask)`` when
        ``return_mask`` is set.
    """
    n = len(branch_pcs)
    mask = np.empty(n, dtype=bool) if return_mask else None
    mispredictions = 0
    pcs = branch_pcs.tolist()
    takens = outcomes.tolist()
    predict = predictor.predict
    update = predictor.update
    for position in range(n):
        pc = pcs[position]
        taken = bool(takens[position])
        wrong = predict(pc) != taken
        if wrong:
            mispredictions += 1
        if mask is not None:
            mask[position] = wrong
        update(pc, taken)
    stats = PredictorStats(branches=n, mispredictions=mispredictions)
    if return_mask:
        return stats, mask
    return stats
