"""Set-associative cache simulator with true-LRU replacement.

The simulator is functional (hit/miss accounting only, no data), which
is all hardware-performance-counter reproduction requires.

**Tag convention.**  The full line id (``address >> log2(line_bytes)``)
is stored as the tag everywhere: the set-index bits are redundant but
harmless, equal tags imply equal lines, and no separate tag extraction
is ever needed.  ``-1`` marks an empty way.

**State representation.**  Each set is a true-LRU *recency stack*
(``_stack[set, 0]`` is the MRU line, ``_stack[set, ways - 1]`` the LRU
victim; empty ways trail as ``-1``).  A stack is equivalent to the
classic tags-plus-ages layout but makes the batch engine's job explicit:
after any access sequence the stack holds exactly the last ``ways``
distinct lines of that set, most recent first.  Because both the scalar
:meth:`SetAssociativeCache.access` path and the batch
:meth:`SetAssociativeCache.simulate` engine reconstruct that same
canonical state, interleaving them is always safe (the historical
direct-mapped fast path left LRU ages stale; a recency stack cannot).

**Batch engine.**  :meth:`SetAssociativeCache.simulate` resolves a whole
access stream without per-access Python loops: accesses are stable-sorted
by set (current residents are prepended as virtual warm-up accesses in
LRU-to-MRU order, so warm starts are just a longer stream);
direct-mapped hits are one previous-same-line compare; small
associativities walk a "last A distinct lines" pointer recurrence
bounded by the (small, static) associativity; large associativities
(the fully-associative TLB) compare exact LRU stack distances computed
with a merge-counting pass.  :meth:`SetAssociativeCache.simulate_reference`
retains the scalar per-access loop as the executable specification the
equivalence tests pin the engine against, bit for bit — including the
final stack state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError

#: Associativities up to this bound use the pointer-recurrence engine;
#: larger ones (e.g. the 64-entry fully-associative TLB) use the exact
#: stack-distance engine.
_SMALL_WAYS = 8

#: Safety valve for the pointer recurrence: pathological streams that
#: alternate between few lines for very long stretches would make the
#: masked pointer jumps crawl, so after this many total jump passes the
#: engine falls back to the stack-distance path (identical results).
_MAX_JUMP_PASSES = 96


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        name: label used in reports (e.g. ``"L1D"``).
        size_bytes: total capacity.
        line_bytes: cache-line size (power of two).
        associativity: ways per set (1 = direct-mapped).
    """

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise SimulationError("line_bytes must be a positive power of two")
        if self.associativity < 1:
            raise SimulationError("associativity must be >= 1")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise SimulationError(
                f"{self.name}: size must be a multiple of line*assoc"
            )
        if self.num_sets & (self.num_sets - 1):
            raise SimulationError(
                f"{self.name}: number of sets must be a power of two"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    """Access/miss counters of one simulated cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combined counters of two runs."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )


def _run_firsts(keys: np.ndarray) -> np.ndarray:
    """True at the first element of each run of equal keys (non-empty)."""
    first = np.empty(len(keys), dtype=bool)
    first[0] = True
    first[1:] = keys[1:] != keys[:-1]
    return first


def _earlier_larger_counts(values: np.ndarray) -> np.ndarray:
    """For each position ``i``: ``#{p < i : values[p] > values[i]}``.

    Merge-counting without the merge: at each doubling level every
    element is either in the left or the right half of its block, and
    one stable key sort per level ranks right-half elements among their
    block's left half.  ``ceil(log2(n))`` fully-vectorized passes.
    Ties are not counted (strictly larger only).
    """
    m = len(values)
    counts = np.zeros(m, dtype=np.int64)
    if m < 2:
        return counts
    positions = np.arange(m, dtype=np.int64)
    shifted = values.astype(np.int64) - int(values.min())  # Non-negative.
    span = int(shifted.max()) + 2
    half = 1
    while half < m:
        block = positions // (2 * half)
        in_right = (positions // half) & 1 == 1
        order = np.argsort(block * span + shifted, kind="stable")
        sorted_block = block[order]
        sorted_left = ~in_right[order]
        left_running = np.cumsum(sorted_left)
        first = _run_firsts(sorted_block)
        starts = np.flatnonzero(first)
        base = (left_running - sorted_left)[starts]
        block_ordinal = np.cumsum(first) - 1
        # Left elements sorted before me have values <= mine (stable
        # sort puts equal-valued lefts first: they sit earlier in the
        # block), so the strictly-larger count is the block remainder.
        left_before = (left_running - sorted_left) - base[block_ordinal]
        ends = np.append(starts[1:], m) - 1
        total_left = left_running[ends] - base
        right_sorted = ~sorted_left
        gain = (total_left[block_ordinal] - left_before)[right_sorted]
        counts[order[right_sorted]] += gain
        half *= 2
    return counts


class SetAssociativeCache:
    """A single cache level with true-LRU replacement.

    Tags are full line ids (``address >> log2(line_bytes)``), stored as
    recency stacks per set — see the module docstring for the tag and
    state conventions shared by the scalar and batch paths.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        # Per-set recency stack of full line ids, MRU first, -1 empty.
        self._stack = np.full(
            (config.num_sets, config.associativity), -1, dtype=np.int64
        )
        self.stats = CacheStats()

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self._stack.fill(-1)
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one address.  Returns True on hit, False on miss.

        A miss allocates the line, evicting the set's LRU victim.  This
        is the scalar executable specification of the batch engine.
        """
        line = int(address) >> self._line_shift
        stack = self._stack[line & self._set_mask]
        self.stats.accesses += 1
        matches = np.flatnonzero(stack == line)
        if len(matches):
            depth = int(matches[0])
            stack[1 : depth + 1] = stack[:depth].copy()
            stack[0] = line
            return True
        self.stats.misses += 1
        stack[1:] = stack[:-1].copy()
        stack[0] = line
        return False

    def simulate_reference(self, addresses: np.ndarray) -> np.ndarray:
        """Scalar per-access simulation — the executable specification.

        Identical results (miss mask, statistics, final stack state) to
        :meth:`simulate`; retained for the equivalence tests and the
        perf harness.
        """
        n = len(addresses)
        misses = np.empty(n, dtype=bool)
        access = self.access
        for position, address in enumerate(addresses.tolist()):
            misses[position] = not access(address)
        return misses

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        """Simulate a sequence of accesses with the batch engine.

        Returns:
            Boolean miss mask, one entry per address (True = miss).
        """
        n = len(addresses)
        if n == 0:
            return np.zeros(0, dtype=bool)
        ways = self.config.associativity
        lines = addresses.astype(np.int64) >> self._line_shift
        sets = lines & self._set_mask

        # Prepend the current residents as virtual accesses (LRU to MRU
        # per set), turning warm starts into plain longer streams.
        resident = self._stack >= 0
        virtual_counts = resident.sum(axis=1)
        virtual_lines = self._stack[:, ::-1][resident[:, ::-1]]
        virtual_sets = np.repeat(
            np.arange(self.config.num_sets, dtype=np.int64), virtual_counts
        )
        n_virtual = len(virtual_sets)
        all_sets = np.concatenate([virtual_sets, sets])
        all_lines = np.concatenate([virtual_lines, lines])

        # Stable sort by set: virtuals lead each group, then the batch
        # accesses in program order.
        order = np.argsort(all_sets, kind="stable")
        group_sets = all_sets[order]
        group_lines = all_lines[order]
        m = len(order)
        new_group = _run_firsts(group_sets)

        # Previous occurrence of the same line (equal lines share a
        # set, so one line-keyed stable sort covers every group).
        line_order = np.argsort(group_lines, kind="stable")
        ordered_lines = group_lines[line_order]
        same_as_previous = ~_run_firsts(ordered_lines)
        previous_same = np.full(m, -1, dtype=np.int64)
        repeat_positions = np.flatnonzero(same_as_previous)
        previous_same[line_order[repeat_positions]] = line_order[
            repeat_positions - 1
        ]

        if ways == 1:
            # Direct-mapped: one previous-same-line compare.
            hits = np.empty(m, dtype=bool)
            hits[0] = False
            hits[1:] = group_lines[1:] == group_lines[:-1]
            hits &= ~new_group
        elif ways <= _SMALL_WAYS:
            hits = self._small_ways_hits(
                group_lines, new_group, previous_same, ways
            )
        else:
            # Immediate same-line repeats are distance-0 hits that never
            # move the recency stack: collapse them first, then run the
            # exact stack-distance count on the (much shorter) residue.
            repeat = np.zeros(m, dtype=bool)
            repeat[1:] = (group_lines[1:] == group_lines[:-1]) & (
                ~new_group[1:]
            )
            kept = np.flatnonzero(~repeat)
            kept_lines = group_lines[kept]
            kept_order = np.argsort(kept_lines, kind="stable")
            kept_same = ~_run_firsts(kept_lines[kept_order])
            kept_previous = np.full(len(kept), -1, dtype=np.int64)
            kept_repeats = np.flatnonzero(kept_same)
            kept_previous[kept_order[kept_repeats]] = kept_order[
                kept_repeats - 1
            ]
            hits = np.ones(m, dtype=bool)
            hits[kept] = self._stack_distance_hits(kept_previous, ways)

        # Scatter the query results back to program order.
        misses = np.empty(n, dtype=bool)
        query = order >= n_virtual
        misses[order[query] - n_virtual] = ~hits[query]
        self.stats.accesses += n
        self.stats.misses += int(misses.sum())

        # Final state: the last `ways` distinct lines per set, MRU
        # first — reconstructed from each line's final occurrence.
        is_final = np.ones(m, dtype=bool)
        is_final[line_order[:-1]] = ~same_as_previous[1:]
        final_positions = np.flatnonzero(is_final)[::-1]  # Descending.
        final_sets = group_sets[final_positions]
        mru_order = np.argsort(final_sets, kind="stable")
        rows = final_sets[mru_order]
        row_first = _run_firsts(rows)
        depth = np.arange(len(rows), dtype=np.int64)
        depth -= np.maximum.accumulate(np.where(row_first, depth, 0))
        keep = depth < ways
        self._stack.fill(-1)
        self._stack[rows[keep], depth[keep]] = group_lines[
            final_positions[mru_order[keep]]
        ]
        return misses

    def _small_ways_hits(
        self,
        group_lines: np.ndarray,
        new_group: np.ndarray,
        previous_same: np.ndarray,
        ways: int,
    ) -> np.ndarray:
        """Hit mask via the "last A distinct lines" pointer recurrence.

        An access hits iff its line is among the A most recently used
        distinct lines of its set, i.e. iff its previous occurrence is
        no older than the last access of the A-th MRU distinct line.
        That threshold is found by chasing ``different_previous``
        pointers (largest earlier position holding a different line —
        one run-start gather, no loop) A-1 times; a chased candidate
        whose line is already collected is jumped again (masked, and
        rare: consecutive chain entries always differ, so jumps only
        trigger on re-interleavings).  Falls back to the exact
        stack-distance engine if a pathological stream exhausts the
        jump budget.
        """
        m = len(group_lines)
        positions = np.arange(m, dtype=np.int64)
        # Largest earlier same-group position with a *different* line:
        # one before the run start (runs = consecutive equal lines).
        run_first = new_group.copy()
        run_first[1:] |= group_lines[1:] != group_lines[:-1]
        run_start = np.maximum.accumulate(np.where(run_first, positions, 0))
        group_start = np.maximum.accumulate(np.where(new_group, positions, 0))
        different_previous = np.where(run_start > group_start, run_start - 1, -1)

        chain = np.where(new_group, -1, positions - 1)
        chain_lines = np.full((ways - 1, m), -2, dtype=np.int64)
        passes = 0
        for rank in range(1, ways):
            chain_lines[rank - 1] = np.where(
                chain >= 0, group_lines[np.maximum(chain, 0)], -2
            )
            candidate = np.where(
                chain >= 0, different_previous[np.maximum(chain, 0)], -1
            )
            while True:
                live = candidate >= 0
                duplicate = np.zeros(m, dtype=bool)
                candidate_lines = group_lines[np.maximum(candidate, 0)]
                for earlier in range(rank):
                    duplicate |= live & (
                        candidate_lines == chain_lines[earlier]
                    )
                if not duplicate.any():
                    break
                passes += 1
                if passes > _MAX_JUMP_PASSES:
                    return self._stack_distance_hits(previous_same, ways)
                candidate[duplicate] = different_previous[
                    np.maximum(candidate[duplicate], 0)
                ]
            chain = candidate
        # `chain` is now the last access of the A-th MRU distinct line
        # (-1 when fewer than A distinct lines exist): hit iff the
        # line's previous occurrence is at least that recent.
        return (previous_same >= 0) & (previous_same >= chain)

    @staticmethod
    def _stack_distance_hits(
        previous_same: np.ndarray, ways: int
    ) -> np.ndarray:
        """Hit mask via exact LRU stack distances (any associativity).

        The stack distance of an access is the number of distinct lines
        touched in its set since the previous access of the same line:
        window length minus in-window repeats, where a repeat is any
        access whose own previous occurrence also lies inside the
        window — a strictly-larger-``previous_same`` inversion count.
        Groups never contaminate each other: a foreign access's pointer
        always falls outside the window's position range.
        """
        m = len(previous_same)
        positions = np.arange(m, dtype=np.int64)
        repeats = _earlier_larger_counts(previous_same)
        stack_distance = positions - previous_same - 1 - repeats
        return (previous_same >= 0) & (stack_distance < ways)
