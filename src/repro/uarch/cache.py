"""Set-associative cache simulator with true-LRU replacement.

The simulator is functional (hit/miss accounting only, no data), which
is all hardware-performance-counter reproduction requires.  The access
loop is written against preallocated numpy tag/age arrays with local
variable bindings — profile-guided micro-optimizations that matter when
simulating hundreds of thousands of accesses per benchmark in pure
Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        name: label used in reports (e.g. ``"L1D"``).
        size_bytes: total capacity.
        line_bytes: cache-line size (power of two).
        associativity: ways per set (1 = direct-mapped).
    """

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise SimulationError("line_bytes must be a positive power of two")
        if self.associativity < 1:
            raise SimulationError("associativity must be >= 1")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise SimulationError(
                f"{self.name}: size must be a multiple of line*assoc"
            )
        if self.num_sets & (self.num_sets - 1):
            raise SimulationError(
                f"{self.name}: number of sets must be a power of two"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    """Access/miss counters of one simulated cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Combined counters of two runs."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
        )


class SetAssociativeCache:
    """A single cache level with true-LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        ways = config.associativity
        sets = config.num_sets
        # tag == -1 marks an invalid way.
        self._tags = np.full((sets, ways), -1, dtype=np.int64)
        self._ages = np.zeros((sets, ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self._tags.fill(-1)
        self._ages.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one address.  Returns True on hit, False on miss.

        A miss allocates the line (LRU victim within the set).
        """
        line = address >> self._line_shift
        set_index = line & self._set_mask
        tag = line >> 0  # Full line id as tag (set bits redundant, harmless).
        tags = self._tags[set_index]
        ages = self._ages[set_index]
        self._clock += 1
        self.stats.accesses += 1
        hits = np.flatnonzero(tags == tag)
        if len(hits):
            ages[hits[0]] = self._clock
            return True
        self.stats.misses += 1
        victim = int(np.argmin(ages))
        tags[victim] = tag
        ages[victim] = self._clock
        return False

    def simulate(self, addresses: np.ndarray) -> np.ndarray:
        """Simulate a sequence of accesses.

        Returns:
            Boolean miss mask, one entry per address (True = miss).
        """
        n = len(addresses)
        misses = np.empty(n, dtype=bool)
        line_shift = self._line_shift
        set_mask = self._set_mask
        tags = self._tags
        ages = self._ages
        clock = self._clock
        lines = (addresses.astype(np.int64) >> line_shift)
        set_indices = (lines & set_mask).tolist()
        line_list = lines.tolist()
        ways = self.config.associativity
        if ways == 1:
            # Direct-mapped fast path: no LRU bookkeeping needed.
            flat_tags = tags[:, 0]
            for position in range(n):
                set_index = set_indices[position]
                tag = line_list[position]
                if flat_tags[set_index] == tag:
                    misses[position] = False
                else:
                    misses[position] = True
                    flat_tags[set_index] = tag
            clock += n
        else:
            for position in range(n):
                set_index = set_indices[position]
                tag = line_list[position]
                set_tags = tags[set_index]
                set_ages = ages[set_index]
                clock += 1
                hit_ways = np.flatnonzero(set_tags == tag)
                if len(hit_ways):
                    set_ages[hit_ways[0]] = clock
                    misses[position] = False
                else:
                    misses[position] = True
                    victim = int(np.argmin(set_ages))
                    set_tags[victim] = tag
                    set_ages[victim] = clock
        self._clock = clock
        self.stats.accesses += n
        self.stats.misses += int(misses.sum())
        return misses
