"""Shared memory-hierarchy and predictor event simulation.

Both pipeline models and the HPC collector need the same per-instruction
events: instruction-fetch misses, data-access latencies (L1/L2/memory +
TLB), and branch mispredictions.  :func:`simulate_events` runs the cache
hierarchy, D-TLB and branch predictor of one machine over a trace once
and returns everything, so the expensive simulations are never repeated.

The default ``engine="batch"`` drives the vectorized cache/TLB and
predictor engines, so assembling the event arrays involves no per-access
Python loops; ``engine="reference"`` drives the retained scalar
specifications instead (bit-identical results, used by the equivalence
tests and the perf harness).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..trace import Trace
from .branch_predictors import (
    PredictorStats,
    simulate_predictor,
    simulate_predictor_reference,
)
from .cache import CacheStats, SetAssociativeCache
from .configs import MachineConfig
from .tlb import TLB


@dataclass
class MachineEvents:
    """Per-instruction events of one machine run over one trace.

    Attributes:
        fetch_latency: extra fetch cycles per instruction (I-miss).
        memory_latency: data-access cycles per instruction (0 for
            non-memory instructions; includes TLB penalties).
        mispredict: per-instruction misprediction flags (False for
            non-branches).
        l1i / l1d / l2: cache counters.
        tlb: D-TLB counters.
        predictor: branch predictor counters.
    """

    fetch_latency: np.ndarray
    memory_latency: np.ndarray
    mispredict: np.ndarray
    l1i: CacheStats
    l1d: CacheStats
    l2: CacheStats
    tlb: CacheStats
    predictor: PredictorStats


def simulate_events(
    trace: Trace, machine: MachineConfig, engine: str = "batch"
) -> MachineEvents:
    """Simulate caches, TLB and branch predictor for one machine.

    Args:
        trace: dynamic instruction trace.
        machine: the machine to simulate.
        engine: ``"batch"`` (vectorized engines, the default) or
            ``"reference"`` (retained scalar specifications); both
            produce bit-identical events.
    """
    if engine not in ("batch", "reference"):
        raise SimulationError(f"unknown event engine: {engine!r}")
    batch = engine == "batch"
    n = len(trace)
    latencies = machine.latencies

    l1i = SetAssociativeCache(machine.l1i)
    l1d = SetAssociativeCache(machine.l1d)
    l2 = SetAssociativeCache(machine.l2)
    tlb = TLB(machine.tlb_entries, machine.tlb_page_bytes)

    def run_cache(cache, addresses):
        if batch:
            return cache.simulate(addresses)
        return cache.simulate_reference(addresses)

    # Instruction fetch stream.
    l1i_miss = run_cache(l1i, trace.pc)

    # Data stream.
    memory_mask = trace.memory_mask
    memory_positions = np.flatnonzero(memory_mask)
    data_addresses = trace.mem_addr[memory_positions]
    l1d_miss = run_cache(l1d, data_addresses)
    tlb_miss = run_cache(tlb, data_addresses)

    # Unified L2 sees L1I and L1D misses in program order.
    l1i_miss_positions = np.flatnonzero(l1i_miss)
    l1d_miss_positions = memory_positions[l1d_miss]
    l2_positions = np.concatenate([l1i_miss_positions, l1d_miss_positions])
    l2_addresses = np.concatenate(
        [
            trace.pc[l1i_miss_positions],
            trace.mem_addr[l1d_miss_positions],
        ]
    )
    order = np.argsort(l2_positions, kind="stable")
    l2_miss = run_cache(l2, l2_addresses[order])

    # Scatter L2 results back to the I- and D-streams.
    l2_miss_by_position = np.zeros(n, dtype=bool)
    l2_miss_by_position[l2_positions[order]] = l2_miss

    # Fetch latency: 0 on L1I hit, L2 or memory latency on miss.
    fetch_latency = np.zeros(n, dtype=np.int64)
    fetch_latency[l1i_miss_positions] = np.where(
        l2_miss_by_position[l1i_miss_positions],
        latencies.memory,
        latencies.l2_hit,
    )

    # Data latency per memory instruction.
    memory_latency = np.zeros(n, dtype=np.int64)
    data_latency = np.full(len(memory_positions), latencies.l1_hit, np.int64)
    data_latency[l1d_miss] = np.where(
        l2_miss_by_position[l1d_miss_positions],
        latencies.memory,
        latencies.l2_hit,
    )
    data_latency[tlb_miss] += latencies.tlb_miss
    memory_latency[memory_positions] = data_latency

    # Branch predictions.
    predictor = machine.make_predictor()
    branch_positions = np.flatnonzero(trace.branch_mask)
    run_predictor = simulate_predictor if batch else (
        simulate_predictor_reference
    )
    predictor_stats, mispredict_branches = run_predictor(
        predictor,
        trace.pc[branch_positions],
        trace.taken[branch_positions].astype(bool),
        return_mask=True,
    )
    mispredict = np.zeros(n, dtype=bool)
    mispredict[branch_positions] = mispredict_branches

    return MachineEvents(
        fetch_latency=fetch_latency,
        memory_latency=memory_latency,
        mispredict=mispredict,
        l1i=l1i.stats,
        l1d=l1d.stats,
        l2=l2.stats,
        tlb=tlb.stats,
        predictor=predictor_stats,
    )
