"""Hardware-performance-counter collection (section III-B of the paper).

The microarchitecture-dependent data set: per benchmark, the seven
metrics the paper reads from DCPI on the Alpha 21164A plus the 21264A
IPC:

1. IPC on the 21164A (EV56, in-order dual-issue),
2. branch misprediction rate,
3. L1 D-cache miss rate,
4. L1 I-cache miss rate,
5. L2 cache miss rate,
6. D-TLB miss rate,
7. IPC on the 21264A (EV67, out-of-order four-wide).

For case-study figures (the paper's Figure 2) the instruction mix can be
appended with :meth:`HpcVector.extended_with_mix`, mirroring common
workload-characterization practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..mica.instruction_mix import instruction_mix
from ..trace import Trace
from .configs import EV56_CONFIG, EV67_CONFIG, MachineConfig
from .events import MachineEvents
from .inorder import InOrderModel
from .ooo import OutOfOrderModel

#: Version of the HPC simulation semantics.  Part of the on-disk HPC
#: cache key in :mod:`repro.perf`; bump whenever :func:`collect_hpc`
#: would produce different metrics for the same trace and machines
#: (latency models, pipeline behavior, predictor/cache semantics).
HPC_SIM_VERSION = 1

_hpc_calls = 0


def hpc_call_count() -> int:
    """Number of :func:`collect_hpc` invocations in this process.

    The perf HPC cache sits *in front of* the pipeline models; tests
    assert warm dataset builds leave this counter untouched (the
    analogue of :func:`repro.synth.generation_call_count` for the
    trace cache).
    """
    return _hpc_calls


#: Metric names, in vector order.
HPC_METRIC_NAMES: Tuple[str, ...] = (
    "ipc_ev56",
    "branch_mispredict_rate",
    "l1d_miss_rate",
    "l1i_miss_rate",
    "l2_miss_rate",
    "dtlb_miss_rate",
    "ipc_ev67",
)

#: Names appended by :meth:`HpcVector.extended_with_mix`.
HPC_MIX_NAMES: Tuple[str, ...] = (
    "mix_loads",
    "mix_stores",
    "mix_branches",
    "mix_arith",
    "mix_int_mul",
    "mix_fp",
)


@dataclass(frozen=True)
class HpcVector:
    """One benchmark's hardware-performance-counter metrics."""

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != (len(HPC_METRIC_NAMES),):
            raise ValueError(
                f"expected {len(HPC_METRIC_NAMES)} metrics, "
                f"got shape {self.values.shape}"
            )

    def __getitem__(self, key: str) -> float:
        return float(self.values[HPC_METRIC_NAMES.index(key)])

    def as_dict(self) -> "dict[str, float]":
        """Metric name -> value, in vector order."""
        return {
            name: float(value)
            for name, value in zip(HPC_METRIC_NAMES, self.values)
        }

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"hardware counters of {self.name or '<unnamed>'}"]
        for name, value in zip(HPC_METRIC_NAMES, self.values):
            lines.append(f"  {name:<24} {value:>10.4f}")
        return "\n".join(lines)


def collect_hpc(
    trace: Trace,
    inorder_machine: MachineConfig = EV56_CONFIG,
    ooo_machine: MachineConfig = EV67_CONFIG,
    inorder_events: "MachineEvents | None" = None,
    ooo_events: "MachineEvents | None" = None,
) -> HpcVector:
    """Collect the seven HPC metrics for a trace.

    The rate metrics (branch misprediction, cache and TLB miss rates)
    come from the in-order machine's run, mirroring the paper's use of
    DCPI on the 21164A; the out-of-order machine contributes its IPC
    only.

    Args:
        trace: dynamic instruction trace.
        inorder_machine / ooo_machine: the two simulated machines.
        inorder_events / ooo_events: precomputed
            :func:`~repro.uarch.events.simulate_events` results for the
            matching machine, so callers holding them (the perf harness,
            experiment pipelines) never re-simulate caches, TLB and
            predictors; simulated on demand otherwise.
    """
    global _hpc_calls
    _hpc_calls += 1
    inorder = InOrderModel(inorder_machine)
    ipc_ev56, events = inorder.run(trace, events=inorder_events)
    ooo = OutOfOrderModel(ooo_machine)
    ipc_ev67, _ = ooo.run(trace, events=ooo_events)

    values = np.array(
        [
            ipc_ev56,
            events.predictor.misprediction_rate,
            events.l1d.miss_rate,
            events.l1i.miss_rate,
            events.l2.miss_rate,
            events.tlb.miss_rate,
            ipc_ev67,
        ]
    )
    return HpcVector(name=trace.name, values=values)


def hpc_with_mix(trace: Trace, hpc: HpcVector) -> "tuple[Tuple[str, ...], np.ndarray]":
    """The HPC vector extended with the instruction mix (Figure 2 style).

    Returns:
        ``(names, values)`` with the six mix fractions appended.
    """
    mix = instruction_mix(trace)
    names = HPC_METRIC_NAMES + HPC_MIX_NAMES
    return names, np.concatenate([hpc.values, mix])
