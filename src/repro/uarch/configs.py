"""Machine configurations for the two Alpha processors the paper uses.

The numbers follow the published Alpha 21164A (EV56) and 21264A (EV67)
organizations closely enough for structural fidelity: cache geometries,
TLB reach, predictor style, issue width and representative latencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from .branch_predictors import (
    BimodalPredictor,
    BranchPredictor,
    TournamentPredictor,
)
from .cache import CacheConfig


@dataclass(frozen=True)
class LatencyModel:
    """Representative latencies, in cycles."""

    l1_hit: int
    l2_hit: int
    memory: int
    tlb_miss: int
    mispredict_penalty: int
    int_mul: int = 8
    fp_op: int = 4


@dataclass(frozen=True)
class MachineConfig:
    """One simulated machine."""

    name: str
    issue_width: int
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    tlb_entries: int
    tlb_page_bytes: int
    latencies: LatencyModel
    predictor_kind: str = "bimodal"
    window_size: int = 0  # 0 for in-order machines.

    def make_predictor(self) -> BranchPredictor:
        """Instantiate a fresh branch predictor of the configured kind."""
        if self.predictor_kind == "bimodal":
            return BimodalPredictor(entries=2048)
        if self.predictor_kind == "tournament":
            return TournamentPredictor()
        raise ValueError(f"unknown predictor kind: {self.predictor_kind!r}")

    def fingerprint(self) -> str:
        """Stable hex digest of every field that shapes simulation.

        Two machines with equal fingerprints produce identical HPC
        metrics for the same trace, so the digest (together with a
        trace content hash and :data:`repro.uarch.HPC_SIM_VERSION`)
        keys the on-disk HPC cache in :mod:`repro.perf`.  Nested
        dataclasses are frozen, so their ``repr`` is deterministic.
        """
        import hashlib

        return hashlib.sha256(repr(self).encode()).hexdigest()[:16]


#: Alpha 21164A: dual-issue in-order, tiny direct-mapped L1s, 96 KB
#: 3-way on-chip L2, 64-entry D-TLB, simple table predictor.
EV56_CONFIG = MachineConfig(
    name="alpha-21164a",
    issue_width=2,
    l1i=CacheConfig("L1I", size_bytes=8 << 10, line_bytes=32, associativity=1),
    l1d=CacheConfig("L1D", size_bytes=8 << 10, line_bytes=32, associativity=1),
    l2=CacheConfig("L2", size_bytes=96 << 10, line_bytes=64, associativity=3),
    tlb_entries=64,
    tlb_page_bytes=8 << 10,
    latencies=LatencyModel(
        l1_hit=2, l2_hit=8, memory=60, tlb_miss=40, mispredict_penalty=5
    ),
    predictor_kind="bimodal",
)

#: Alpha 21264A: four-wide out-of-order, 64 KB 2-way L1s, large
#: off-chip direct-mapped L2, tournament predictor, ~80-entry window.
EV67_CONFIG = MachineConfig(
    name="alpha-21264a",
    issue_width=4,
    l1i=CacheConfig("L1I", size_bytes=64 << 10, line_bytes=64, associativity=2),
    l1d=CacheConfig("L1D", size_bytes=64 << 10, line_bytes=64, associativity=2),
    l2=CacheConfig("L2", size_bytes=4 << 20, line_bytes=64, associativity=1),
    tlb_entries=128,
    tlb_page_bytes=8 << 10,
    latencies=LatencyModel(
        l1_hit=3, l2_hit=12, memory=80, tlb_miss=50, mispredict_penalty=7
    ),
    predictor_kind="tournament",
    window_size=80,
)
