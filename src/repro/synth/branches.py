"""Branch outcome models for data-dependent branches.

Loop back-edges and function-exit jumps get their outcomes directly from
the control-flow interpreter (they are fully consistent with the block
visit sequence).  *Data-dependent* branches — the if/else diamonds inside
loop bodies — need an outcome model, which is what this module provides.
The mix of pattern-following and biased-random branches is the knob that
moves the paper's PPM predictability characteristics (Table II, 44-47).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ProfileError


class BranchModel(ABC):
    """Produces successive taken/not-taken outcomes for one static branch."""

    @abstractmethod
    def next_outcome(self, rng: np.random.Generator) -> bool:
        """The outcome of the branch's next dynamic execution."""

    def outcomes(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """The branch's next ``count`` outcomes as a boolean array.

        Semantically equivalent to ``count`` calls of
        :meth:`next_outcome`; subclasses override with a vectorized
        draw so the batch interpreter never loops per execution.
        """
        return np.array(
            [self.next_outcome(rng) for _ in range(count)], dtype=bool
        )

    def reset(self) -> None:
        """Rewind any internal cursor to the model's initial state.

        Static code images are shared across :func:`generate_trace`
        calls, so every trace starts from a freshly reset model.
        """


class PatternBranch(BranchModel):
    """Deterministic periodic outcome pattern.

    Periodic short patterns are highly predictable by local-history PPM
    predictors, mimicking branches guarding regular data.

    Args:
        pattern: boolean outcome sequence repeated forever (period >= 1).
    """

    def __init__(self, pattern):
        self.pattern = [bool(bit) for bit in pattern]
        if not self.pattern:
            raise ProfileError("pattern must be non-empty")
        self._bits = np.array(self.pattern, dtype=bool)
        self._cursor = 0

    def next_outcome(self, rng: np.random.Generator) -> bool:
        outcome = self.pattern[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.pattern)
        return outcome

    def outcomes(self, rng: np.random.Generator, count: int) -> np.ndarray:
        period = len(self.pattern)
        indices = (self._cursor + np.arange(count, dtype=np.int64)) % period
        self._cursor = (self._cursor + count) % period
        return self._bits[indices]

    def reset(self) -> None:
        self._cursor = 0


class BiasedBranch(BranchModel):
    """Independent Bernoulli outcomes with a fixed taken probability.

    ``taken_probability`` near 0 or 1 is easy to predict; near 0.5 it is
    maximally unpredictable (one bit of entropy per execution).
    """

    def __init__(self, taken_probability: float):
        if not 0.0 <= taken_probability <= 1.0:
            raise ProfileError("taken_probability must be within [0, 1]")
        self.taken_probability = taken_probability

    def next_outcome(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.taken_probability)

    def outcomes(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.random(count) < self.taken_probability


def make_branch_model(
    rng: np.random.Generator,
    pattern_fraction: float,
    taken_bias: float,
    max_period: int = 8,
) -> BranchModel:
    """Sample a branch model for one static data-dependent branch.

    With probability ``pattern_fraction`` the branch follows a random
    periodic pattern (period 2..``max_period``); otherwise it is a
    :class:`BiasedBranch` whose bias is jittered around ``taken_bias``.
    """
    if not 0.0 <= pattern_fraction <= 1.0:
        raise ProfileError("pattern_fraction must be within [0, 1]")
    if rng.random() < pattern_fraction:
        period = int(rng.integers(2, max_period + 1))
        pattern = rng.random(period) < taken_bias
        if not pattern.any():
            pattern[0] = True
        return PatternBranch(pattern.tolist())
    jitter = float(np.clip(taken_bias + rng.normal(0.0, 0.08), 0.02, 0.98))
    return BiasedBranch(jitter)
