"""Synthetic program model — the reproduction's benchmark stand-in.

The paper instruments 122 real Alpha binaries.  Those binaries (and the
Alpha machines to run them) are unavailable, so this package provides a
*statistical program model*: a :class:`WorkloadProfile` holds
interpretable knobs (instruction mix, code footprint and loop structure,
data-access behavior mix, branch predictability, register-dataflow
locality), and :func:`generate_trace` expands a profile into a coherent
dynamic instruction trace:

* a static code image (functions, basic blocks, fixed PCs) is built
  first, then *executed* by a control-flow interpreter, so the
  instruction stream has real loop/call structure;
* branch outcomes are derived from the actual control flow (loop
  back-edges, diamond skips), so predictability is consistent with the
  PC stream;
* every static memory instruction owns a data-access behavior (scalar,
  sequential, strided, random, pointer-chase) over its own region, so
  local/global stride distributions and the data working set follow the
  profile;
* register operands are drawn with a geometric age distribution over the
  recent-writer window, shaping dependency distances and hence ILP.
"""

from .rng import stable_seed, make_rng
from .memory import (
    AccessBehavior,
    ScalarStream,
    SequentialStream,
    StridedStream,
    RandomStream,
    PointerChase,
    BEHAVIOR_KINDS,
    make_behavior,
)
from .branches import BranchModel, PatternBranch, BiasedBranch, make_branch_model
from .code import CodeSpec, StaticCode, BasicBlock, build_code
from .profiles import (
    MixSpec,
    MemorySpec,
    RegisterSpec,
    BranchSpec,
    WorkloadProfile,
)
from .generator import (
    TRACE_GEN_VERSION,
    clear_code_cache,
    code_for_profile,
    generate_trace,
    generation_call_count,
)

__all__ = [
    "stable_seed",
    "make_rng",
    "AccessBehavior",
    "ScalarStream",
    "SequentialStream",
    "StridedStream",
    "RandomStream",
    "PointerChase",
    "BEHAVIOR_KINDS",
    "make_behavior",
    "BranchModel",
    "PatternBranch",
    "BiasedBranch",
    "make_branch_model",
    "CodeSpec",
    "StaticCode",
    "BasicBlock",
    "build_code",
    "MixSpec",
    "MemorySpec",
    "RegisterSpec",
    "BranchSpec",
    "WorkloadProfile",
    "TRACE_GEN_VERSION",
    "clear_code_cache",
    "code_for_profile",
    "generate_trace",
    "generation_call_count",
]
