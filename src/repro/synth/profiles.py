"""Workload profiles: the knob set describing one synthetic benchmark.

A :class:`WorkloadProfile` is the reproduction's stand-in for "an Alpha
binary plus its input": a named, seeded bundle of interpretable knobs
from which :func:`repro.synth.generate_trace` produces the benchmark's
dynamic instruction trace.  The knob groups map one-to-one onto the
paper's characteristic categories:

========================  =============================================
knob group                paper characteristics shaped (Table II)
========================  =============================================
:class:`MixSpec`          instruction mix (1-6)
:class:`RegisterSpec`     ILP (7-10), register traffic (11-19)
:class:`CodeSpec`         I-stream working set (22-23), branch count
:class:`MemorySpec`       D-stream working set (20-21), strides (24-43)
:class:`BranchSpec`       branch predictability (44-47)
========================  =============================================
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Tuple

import numpy as np

from ..errors import ProfileError
from ..isa import OpClass
from .code import CodeSpec
from .memory import BEHAVIOR_KINDS

_MIX_TOLERANCE = 1e-6

#: Version tag mixed into profile fingerprints; bump when the knob
#: schema changes in a way that should invalidate keyed caches.
_FINGERPRINT_SCHEMA = "WorkloadProfile/v1"


def _canonical(value):
    """A deterministic, order-independent view of nested knob values."""
    if isinstance(value, dict):
        return tuple(
            (key, _canonical(item)) for key, item in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    return value


@dataclass(frozen=True)
class MixSpec:
    """Dynamic instruction-mix fractions (must sum to one).

    The branch fraction also fixes the mean basic-block length
    (every block ends in a control transfer).
    """

    load: float = 0.25
    store: float = 0.10
    branch: float = 0.12
    int_alu: float = 0.45
    int_mul: float = 0.02
    fp: float = 0.06

    def __post_init__(self) -> None:
        values = (self.load, self.store, self.branch,
                  self.int_alu, self.int_mul, self.fp)
        if any(value < 0.0 for value in values):
            raise ProfileError("mix fractions must be non-negative")
        total = sum(values)
        if abs(total - 1.0) > 1e-3:
            raise ProfileError(f"mix fractions must sum to 1, got {total:.4f}")
        if self.branch <= 0.0:
            raise ProfileError("branch fraction must be positive")

    def as_dict(self) -> Dict[str, float]:
        """The six mix fractions keyed by class name."""
        return {
            "load": self.load,
            "store": self.store,
            "branch": self.branch,
            "int_alu": self.int_alu,
            "int_mul": self.int_mul,
            "fp": self.fp,
        }

    def body_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        """Classes and weights for non-terminator block slots.

        Branches live only in terminator slots, so the body distribution
        is the mix renormalized without the branch fraction.
        """
        classes = np.array(
            [
                int(OpClass.LOAD),
                int(OpClass.STORE),
                int(OpClass.INT_ALU),
                int(OpClass.INT_MUL),
                int(OpClass.FP),
            ],
            dtype=np.uint8,
        )
        weights = np.array(
            [self.load, self.store, self.int_alu, self.int_mul, self.fp],
            dtype=float,
        )
        total = weights.sum()
        if total <= 0.0:
            raise ProfileError("mix has no non-branch instructions")
        return classes, weights / total

    @classmethod
    def normalized(cls, **fractions: float) -> "MixSpec":
        """Build a mix from possibly unnormalized non-negative weights."""
        defaults = cls().as_dict()
        defaults.update(fractions)
        total = sum(defaults.values())
        if total <= 0.0:
            raise ProfileError("mix weights must have a positive sum")
        return cls(**{key: value / total for key, value in defaults.items()})


def _validated_behavior_mix(mix: Dict[str, float], label: str) -> Dict[str, float]:
    if not mix:
        raise ProfileError(f"{label} behavior mix must be non-empty")
    for kind, weight in mix.items():
        if kind not in BEHAVIOR_KINDS:
            raise ProfileError(f"{label}: unknown behavior kind {kind!r}")
        if weight < 0.0:
            raise ProfileError(f"{label}: negative weight for {kind!r}")
    if sum(mix.values()) <= 0.0:
        raise ProfileError(f"{label}: behavior weights must have positive sum")
    return dict(mix)


@dataclass(frozen=True)
class MemorySpec:
    """Data-access behavior knobs.

    Attributes:
        footprint_bytes: target data footprint, divided among the
            program's non-scalar memory instructions.
        load_mix: behavior-kind weights for static loads.
        store_mix: behavior-kind weights for static stores.
        stride_bytes: byte stride used by ``strided`` behaviors.
    """

    footprint_bytes: int = 1 << 20
    load_mix: Dict[str, float] = field(
        default_factory=lambda: {
            "scalar": 0.2,
            "sequential": 0.4,
            "strided": 0.2,
            "random": 0.15,
            "pointer": 0.05,
        }
    )
    store_mix: Dict[str, float] = field(
        default_factory=lambda: {
            "scalar": 0.35,
            "sequential": 0.4,
            "strided": 0.15,
            "random": 0.1,
        }
    )
    stride_bytes: int = 64

    def __post_init__(self) -> None:
        if self.footprint_bytes < 64:
            raise ProfileError("footprint_bytes must be >= 64")
        if self.stride_bytes <= 0 or self.stride_bytes % 8:
            raise ProfileError("stride_bytes must be a positive multiple of 8")
        object.__setattr__(
            self, "load_mix", _validated_behavior_mix(self.load_mix, "load_mix")
        )
        object.__setattr__(
            self,
            "store_mix",
            _validated_behavior_mix(self.store_mix, "store_mix"),
        )


@dataclass(frozen=True)
class RegisterSpec:
    """Register-dataflow knobs.

    Attributes:
        int_pool: number of distinct integer registers in rotation
            (2..30); smaller pools bound dependency distances.
        fp_pool: number of distinct FP registers in rotation (2..31).
        dep_mean: mean dependency age, in *producer* steps — a source
            operand reads the value written ``k`` producers ago with
            ``k`` geometric of this mean.  Small values serialize the
            program (low ILP); large values expose parallelism.
        two_op_fraction: probability that a compute instruction has a
            second register source.
        imm_fraction: probability that a compute instruction takes an
            immediate instead of a first register source.
    """

    int_pool: int = 20
    fp_pool: int = 16
    dep_mean: float = 4.0
    two_op_fraction: float = 0.6
    imm_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 2 <= self.int_pool <= 30:
            raise ProfileError("int_pool must be within [2, 30]")
        if not 2 <= self.fp_pool <= 31:
            raise ProfileError("fp_pool must be within [2, 31]")
        if self.dep_mean < 1.0:
            raise ProfileError("dep_mean must be >= 1")
        if not 0.0 <= self.two_op_fraction <= 1.0:
            raise ProfileError("two_op_fraction must be in [0, 1]")
        if not 0.0 <= self.imm_fraction <= 1.0:
            raise ProfileError("imm_fraction must be in [0, 1]")

    @property
    def geometric_p(self) -> float:
        """Success probability of the geometric age distribution."""
        return min(1.0, 1.0 / self.dep_mean)


@dataclass(frozen=True)
class BranchSpec:
    """Data-dependent branch knobs.

    Attributes:
        pattern_fraction: fraction of diamond branches following a short
            periodic pattern (highly PPM-predictable).
        taken_bias: taken probability for biased-random diamonds; values
            near 0.5 minimize predictability.
        max_pattern_period: longest periodic pattern generated.
    """

    pattern_fraction: float = 0.5
    taken_bias: float = 0.35
    max_pattern_period: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.pattern_fraction <= 1.0:
            raise ProfileError("pattern_fraction must be in [0, 1]")
        if not 0.0 <= self.taken_bias <= 1.0:
            raise ProfileError("taken_bias must be in [0, 1]")
        if self.max_pattern_period < 2:
            raise ProfileError("max_pattern_period must be >= 2")


@dataclass(frozen=True)
class WorkloadProfile:
    """A complete synthetic benchmark description.

    Attributes:
        name: unique benchmark identifier (``suite/program/input``).
        mix: instruction-mix fractions.
        code: static code shape.
        memory: data-access behavior knobs.
        registers: register-dataflow knobs.
        branches: branch-model knobs.
        seed: extra seed component mixed into the benchmark RNG.
    """

    name: str
    mix: MixSpec = field(default_factory=MixSpec)
    code: CodeSpec = field(default_factory=CodeSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    registers: RegisterSpec = field(default_factory=RegisterSpec)
    branches: BranchSpec = field(default_factory=BranchSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("profile name must be non-empty")

    def with_overrides(self, **kwargs) -> "WorkloadProfile":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """Stable content hash of the complete knob set.

        Two profiles with equal knobs fingerprint identically across
        processes and platforms (behavior-mix dictionaries are compared
        by content, not insertion order).  Keys the static-code memo
        and the :mod:`repro.perf` trace cache.
        """
        payload = repr((_FINGERPRINT_SCHEMA, _canonical(asdict(self))))
        return hashlib.sha256(payload.encode()).hexdigest()[:32]
