"""Deterministic seeding utilities.

Every synthetic benchmark must produce the identical trace on every run
and on every platform, so seeds are derived from a stable cryptographic
hash of string identifiers rather than Python's salted ``hash``.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_seed(*parts: object) -> int:
    """Derive a 64-bit seed from a sequence of identifying values.

    The same inputs always produce the same seed, across processes and
    platforms.

    >>> stable_seed("spec2000", "bzip2", "graphic") == stable_seed(
    ...     "spec2000", "bzip2", "graphic")
    True
    """
    digest = hashlib.sha256("\x1f".join(str(part) for part in parts).encode())
    return int.from_bytes(digest.digest()[:8], "little")


def make_rng(*parts: object) -> np.random.Generator:
    """A numpy ``Generator`` seeded from :func:`stable_seed`."""
    return np.random.default_rng(stable_seed(*parts))
