"""Data-access behavior models.

Each *static* memory instruction in a synthetic program owns one
behavior instance over a private region of the data address space.  The
behavior generates the instruction's effective-address sequence across
its dynamic occurrences, which directly shapes the paper's local-stride
characteristics (Table II, nos. 24-28 / 34-38) and the data working set
(nos. 20-21); global strides (nos. 29-33 / 39-43) emerge from the
interleaving of all behaviors.

All behaviors generate vectorized address sequences and produce 8-byte
aligned addresses (the natural Alpha access width).

The batch expansion engine fuses behaviors per class
(:class:`repro.synth.code.MemoryPlan` /
``repro.synth.generator._scatter_memory``) and mirrors the slot
arithmetic and cursor advance implemented here; the fused paths are
pinned against per-instance ``generate`` calls by
``tests/test_synth_vectorized_equivalence.py``, so changing a
behavior's internals will fail those tests until the plan is updated to
match.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..errors import ProfileError

#: Natural access alignment in bytes.
ACCESS_BYTES = 8


def random_slots_from_uniforms(
    region_u: np.ndarray,
    slot_u: np.ndarray,
    hot_span,
    span,
    hot_probability,
) -> np.ndarray:
    """Slot indices of skewed random accesses from pre-drawn uniforms.

    The first uniform picks the hot subset vs the whole region, the
    second scales to the chosen span.  Parameters may be scalars (one
    :class:`RandomStream`) or arrays (the batch engine fusing many
    instances); the kernel is the single source of truth for both.
    """
    chosen = np.where(region_u < hot_probability, hot_span, span)
    return (slot_u * chosen).astype(np.int64)


class AccessBehavior(ABC):
    """Generates the effective-address sequence of one static memory
    instruction.

    Args:
        base: lowest address of the behavior's private region.
        footprint: region size in bytes (the behavior never touches
            addresses outside ``[base, base + footprint)``).
    """

    def __init__(self, base: int, footprint: int):
        if base <= 0:
            raise ProfileError("behavior base address must be positive")
        if footprint < ACCESS_BYTES:
            raise ProfileError(
                f"behavior footprint must be >= {ACCESS_BYTES} bytes"
            )
        self.base = int(base)
        self.footprint = int(footprint) & ~(ACCESS_BYTES - 1)
        self._slots = max(self.footprint // ACCESS_BYTES, 1)

    @abstractmethod
    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Addresses of the next ``count`` dynamic occurrences (uint64)."""

    def reset(self) -> None:
        """Rewind any internal cursor to the behavior's initial state.

        Static code images (and the behaviors they own) are shared
        across :func:`repro.synth.generate_trace` calls, so every trace
        starts from freshly reset behaviors.
        """

    def _from_slots(self, slots: np.ndarray) -> np.ndarray:
        return (self.base + slots.astype(np.uint64) * ACCESS_BYTES).astype(
            np.uint64
        )

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} base={self.base:#x} "
            f"footprint={self.footprint}>"
        )


class ScalarStream(AccessBehavior):
    """Always the same address (a scalar / stack slot).

    Produces local stride = 0 with probability one.
    """

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.full(count, self.base, dtype=np.uint64)


class SequentialStream(AccessBehavior):
    """Strided walk over the region, wrapping at the end.

    Args:
        stride: byte distance between consecutive *distinct* addresses
            (default 8).
        repeats: how many times each address is accessed before the
            cursor advances (temporal dwell, default 1).  Real code
            re-reads fields and array elements; dwell reproduces that
            temporal locality and contributes zero local strides.
    """

    def __init__(
        self,
        base: int,
        footprint: int,
        stride: int = ACCESS_BYTES,
        repeats: int = 1,
    ):
        super().__init__(base, footprint)
        if stride <= 0 or stride % ACCESS_BYTES:
            raise ProfileError("stride must be a positive multiple of 8")
        if repeats < 1:
            raise ProfileError("repeats must be >= 1")
        self.stride = stride
        self.repeats = repeats
        self._count = 0

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        step = self.stride // ACCESS_BYTES
        ticks = self._count + np.arange(count, dtype=np.int64)
        slots = (ticks // self.repeats * step) % self._slots
        self._count += count
        return self._from_slots(slots)

    def reset(self) -> None:
        self._count = 0


class StridedStream(SequentialStream):
    """Constant large-stride walk (column-major / record-field access).

    Identical machinery to :class:`SequentialStream`; the distinction is
    purely semantic (strides larger than a cache block).
    """


class RandomStream(AccessBehavior):
    """Random access over the region with a hot subset.

    Real "irregular" access (hash tables, symbol tables) is skewed: a
    small hot subset absorbs most accesses.  With probability
    ``hot_probability`` an access falls in the first
    ``1/hot_divisor``-th of the region; otherwise it is uniform over the
    whole region, so the full footprint is still exercised.
    """

    def __init__(
        self,
        base: int,
        footprint: int,
        hot_probability: float = 0.6,
        hot_divisor: int = 16,
    ):
        super().__init__(base, footprint)
        if not 0.0 <= hot_probability <= 1.0:
            raise ProfileError("hot_probability must be in [0, 1]")
        if hot_divisor < 1:
            raise ProfileError("hot_divisor must be >= 1")
        self.hot_probability = hot_probability
        self._hot_slots = max(self._slots // hot_divisor, 1)

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # Two uniforms per access drawn as one splittable block (the
        # first half picks hot vs whole region, the second scales to the
        # chosen region), so batching many instances into a single
        # ``rng.random`` call yields a bit-identical stream.
        uniforms = rng.random(2 * count)
        return self._from_slots(
            self.slots_from_uniforms(uniforms[:count], uniforms[count:])
        )

    def slots_from_uniforms(
        self, region_u: np.ndarray, slot_u: np.ndarray
    ) -> np.ndarray:
        """Pure kernel: slot indices from pre-drawn uniform pairs."""
        return random_slots_from_uniforms(
            region_u, slot_u, self._hot_slots, self._slots,
            self.hot_probability,
        )


class PointerChase(AccessBehavior):
    """Walk of a fixed random permutation cycle over the region.

    Models linked-data-structure traversal: the address sequence is
    deterministic given the (seeded) permutation, successive addresses
    are far apart, and the whole region is covered before repeating.

    A uniform random permutation decomposes into short cycles while a
    linked list is one long cycle, so the walk follows a Hamiltonian
    cycle given by a random visit *order*.  The cycle is materialized
    once; a batch of ``count`` accesses is then a single gather at
    ``(cursor + arange(count)) % slots`` rather than a per-access
    pointer dereference.
    """

    def __init__(self, base: int, footprint: int, seed: int = 0):
        super().__init__(base, footprint)
        perm_rng = np.random.default_rng(seed)
        self._order = perm_rng.permutation(self._slots).astype(np.int64)
        self._cursor = 0

    def generate(self, rng: np.random.Generator, count: int) -> np.ndarray:
        positions = (
            self._cursor + np.arange(count, dtype=np.int64)
        ) % self._slots
        self._cursor = (self._cursor + count) % self._slots
        return self._from_slots(self._order[positions])

    def reset(self) -> None:
        self._cursor = 0


#: Behavior kinds selectable from a profile's behavior-mix mapping.
BEHAVIOR_KINDS = ("scalar", "sequential", "strided", "random", "pointer")


def make_behavior(
    kind: str,
    base: int,
    footprint: int,
    rng: np.random.Generator,
    stride: int = 64,
) -> AccessBehavior:
    """Instantiate a behavior by kind name.

    Args:
        kind: one of :data:`BEHAVIOR_KINDS`.
        base: region base address.
        footprint: region size in bytes.
        rng: used only to seed behaviors with internal randomness.
        stride: byte stride for the ``strided`` kind.

    Raises:
        ProfileError: for an unknown kind.
    """
    if kind == "scalar":
        return ScalarStream(base, min(footprint, ACCESS_BYTES))
    if kind == "sequential":
        repeats = int(rng.choice([1, 2, 4], p=[0.4, 0.35, 0.25]))
        return SequentialStream(base, footprint, repeats=repeats)
    if kind == "strided":
        return StridedStream(base, footprint, stride=stride)
    if kind == "random":
        return RandomStream(base, footprint)
    if kind == "pointer":
        return PointerChase(base, footprint, seed=int(rng.integers(2**31)))
    raise ProfileError(f"unknown access-behavior kind: {kind!r}")
