"""Trace generation: execute a :class:`WorkloadProfile`.

Generation proceeds in four phases:

1. **Build** the static code image (:func:`repro.synth.code.build_code`).
2. **Interpret** control flow: walk functions/loops/diamonds, producing
   the basic-block visit sequence and, for every visit, the terminator
   branch outcome (consistent with the visit that follows).
3. **Expand** the visit sequence into per-instruction columns (PC and
   opclass come straight from the static blocks; branch outcome/target
   land in terminator slots; every static memory instruction's behavior
   emits its vectorized address sequence which is scattered into the
   positions where that instruction executes).
4. **Assign registers** with a vectorized recent-producer scheme whose
   geometric age distribution shapes dependency distances and ILP.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import ProfileError
from ..isa import NO_REG, OpClass, TRACE_DTYPE
from ..isa.registers import NUM_INT_REGS
from ..trace import Trace
from .code import StaticCode, build_code
from .profiles import WorkloadProfile
from .rng import make_rng, stable_seed

#: First rotation register of the integer pool ($1.. — $0 is kept live as
#: a long-lived value, $31 is the zero register).
INT_POOL_BASE = 1

#: First rotation register of the FP pool ($f0.. ; $f31 is the zero reg).
FP_POOL_BASE = NUM_INT_REGS


def generate_trace(
    profile: WorkloadProfile,
    length: int,
    seed: int = 0,
) -> Trace:
    """Generate a dynamic instruction trace for a workload profile.

    Args:
        profile: the synthetic benchmark description.
        length: exact number of dynamic instructions to produce.
        seed: extra seed component (combined with the profile's own
            name/seed, so different runs can draw different instances).

    Returns:
        A validated-by-construction :class:`~repro.trace.Trace` of
        exactly ``length`` instructions named after the profile.

    Raises:
        ProfileError: if ``length`` is not positive.
    """
    if length <= 0:
        raise ProfileError("trace length must be positive")

    rng = make_rng("trace", profile.name, profile.seed, seed)
    code = build_code(
        rng, profile.code, profile.mix, profile.memory, profile.branches
    )
    visits, outcomes = _interpret(rng, code, profile, length)
    columns = _expand(rng, code, visits, outcomes, length)
    _assign_registers(rng, columns, profile.registers)

    data = np.empty(length, dtype=TRACE_DTYPE)
    for name in data.dtype.names:
        data[name] = columns[name][:length]
    return Trace(data, name=profile.name)


# ---------------------------------------------------------------------------
# Phase 2: control-flow interpretation
# ---------------------------------------------------------------------------


def _interpret(
    rng: np.random.Generator,
    code: StaticCode,
    profile: WorkloadProfile,
    length: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Produce the block-visit sequence and per-visit branch outcomes.

    A visit's outcome is True (taken) when control does *not* continue to
    the static fall-through block: loop back-edges, diamond skips, and
    function exits are taken; sequential flow is not taken.
    """
    spec = profile.code
    visit_ids: List[int] = []
    visit_taken: List[bool] = []
    budget = length
    block_lengths = code.block_lengths()

    hot = code.hot_functions
    cold = code.cold_functions

    while budget > 0:
        use_cold = bool(cold) and rng.random() < spec.cold_visit_rate
        pool = cold if use_cold else hot
        function = code.functions[int(rng.choice(pool))]
        for loop in function.loops:
            iterations = 1 + int(rng.geometric(1.0 / spec.loop_iter_mean))
            for iteration in range(iterations):
                block_index = loop.first_block
                while block_index <= loop.last_block:
                    block = code.blocks[block_index]
                    at_tail = block_index == loop.last_block
                    if at_tail:
                        # The back-edge outcome is recorded here; the
                        # enclosing for-loop performs the actual re-entry
                        # into the body, so the while always exits.
                        taken = iteration < iterations - 1
                        next_index = block_index + 1
                    elif block.diamond is not None and (
                        block_index + 2 <= loop.last_block
                    ):
                        taken = block.diamond.next_outcome(rng)
                        next_index = block_index + 2 if taken else block_index + 1
                    else:
                        taken = False
                        next_index = block_index + 1
                    visit_ids.append(block_index)
                    visit_taken.append(taken)
                    budget -= int(block_lengths[block_index])
                    if budget <= 0:
                        return (
                            np.array(visit_ids, dtype=np.int64),
                            np.array(visit_taken, dtype=bool),
                        )
                    block_index = next_index
            # Function exit after the last loop is a taken jump.
        if visit_taken:
            visit_taken[-1] = True

    return np.array(visit_ids, dtype=np.int64), np.array(visit_taken, dtype=bool)


# ---------------------------------------------------------------------------
# Phase 3: expansion into per-instruction columns
# ---------------------------------------------------------------------------


def _expand(
    rng: np.random.Generator,
    code: StaticCode,
    visits: np.ndarray,
    outcomes: np.ndarray,
    length: int,
) -> dict:
    """Expand visits into columnar per-instruction arrays.

    The returned arrays may be slightly longer than ``length`` (the last
    visited block may overrun the budget); the caller trims.
    """
    block_lengths = code.block_lengths()
    visit_lengths = block_lengths[visits]
    starts = np.zeros(len(visits) + 1, dtype=np.int64)
    np.cumsum(visit_lengths, out=starts[1:])
    total = int(starts[-1])

    opclass = np.concatenate(
        [code.blocks[block_id].opclasses for block_id in visits]
    )
    pc = np.concatenate([code.blocks[block_id].pcs for block_id in visits])

    taken = np.zeros(total, dtype=np.uint8)
    target = np.zeros(total, dtype=np.uint64)
    terminator_positions = starts[1:] - 1
    taken[terminator_positions] = outcomes.astype(np.uint8)

    # A taken terminator targets the next visited block; the final visit
    # targets the first block (wrap) to keep targets nonzero.
    next_base = np.empty(len(visits), dtype=np.uint64)
    block_bases = np.array(
        [block.pc_base for block in code.blocks], dtype=np.uint64
    )
    next_base[:-1] = block_bases[visits[1:]]
    next_base[-1] = block_bases[visits[0]]
    target[terminator_positions] = np.where(outcomes, next_base, 0)

    mem_addr = np.zeros(total, dtype=np.uint64)
    visit_starts = starts[:-1]
    for block_id, block in enumerate(code.blocks):
        if not block.memory_slots:
            continue
        visit_indices = np.flatnonzero(visits == block_id)
        if len(visit_indices) == 0:
            continue
        base_positions = visit_starts[visit_indices]
        for slot, behavior in block.memory_slots:
            addresses = behavior.generate(rng, len(visit_indices))
            mem_addr[base_positions + slot] = addresses

    return {
        "pc": pc,
        "opclass": opclass,
        "src1": np.full(total, NO_REG, dtype=np.uint8),
        "src2": np.full(total, NO_REG, dtype=np.uint8),
        "dst": np.full(total, NO_REG, dtype=np.uint8),
        "mem_addr": mem_addr,
        "taken": taken,
        "target": target,
    }


# ---------------------------------------------------------------------------
# Phase 4: register assignment
# ---------------------------------------------------------------------------


def _assign_registers(
    rng: np.random.Generator, columns: dict, spec
) -> None:
    """Assign destination and source registers in place.

    Producers rotate through a register pool; consumers read the value
    written ``k`` producers ago with ``k`` geometric (mean
    ``spec.dep_mean``), clipped so the named register still holds that
    value.  Integer and FP dataflow use disjoint pools.
    """
    opclass = columns["opclass"]

    int_producer = np.isin(
        opclass,
        [int(OpClass.LOAD), int(OpClass.INT_ALU), int(OpClass.INT_MUL)],
    )
    fp_producer = opclass == int(OpClass.FP)

    int_pool = _PoolState(
        producer_mask=int_producer,
        pool_base=INT_POOL_BASE,
        pool_size=spec.int_pool,
    )
    fp_pool = _PoolState(
        producer_mask=fp_producer,
        pool_base=FP_POOL_BASE,
        pool_size=spec.fp_pool,
    )

    columns["dst"][int_pool.positions] = int_pool.destinations
    columns["dst"][fp_pool.positions] = fp_pool.destinations

    geometric_p = spec.geometric_p

    def int_source(mask: np.ndarray) -> np.ndarray:
        return int_pool.sample_sources(rng, mask, geometric_p)

    def fp_source(mask: np.ndarray) -> np.ndarray:
        return fp_pool.sample_sources(rng, mask, geometric_p)

    is_load = opclass == int(OpClass.LOAD)
    is_store = opclass == int(OpClass.STORE)
    is_branch = opclass == int(OpClass.BRANCH)
    is_int_compute = np.isin(
        opclass, [int(OpClass.INT_ALU), int(OpClass.INT_MUL)]
    )
    is_fp = fp_producer

    # Loads: src1 is the address register.
    columns["src1"][is_load] = int_source(is_load)
    # Stores: src1 is the value, src2 the address register.
    columns["src1"][is_store] = int_source(is_store)
    columns["src2"][is_store] = int_source(is_store)
    # Branches: src1 is the condition register.
    columns["src1"][is_branch] = int_source(is_branch)

    # Integer compute: immediate forms skip src1; two-operand forms add src2.
    compute_positions = np.flatnonzero(is_int_compute)
    has_src1 = rng.random(len(compute_positions)) >= spec.imm_fraction
    src1_mask = np.zeros(len(opclass), dtype=bool)
    src1_mask[compute_positions[has_src1]] = True
    columns["src1"][src1_mask] = int_source(src1_mask)
    has_src2 = has_src1 & (
        rng.random(len(compute_positions)) < spec.two_op_fraction
    )
    src2_mask = np.zeros(len(opclass), dtype=bool)
    src2_mask[compute_positions[has_src2]] = True
    columns["src2"][src2_mask] = int_source(src2_mask)

    # FP compute: src1 always, src2 with the two-operand probability.
    columns["src1"][is_fp] = fp_source(is_fp)
    fp_positions = np.flatnonzero(is_fp)
    fp_two = rng.random(len(fp_positions)) < spec.two_op_fraction
    fp_src2_mask = np.zeros(len(opclass), dtype=bool)
    fp_src2_mask[fp_positions[fp_two]] = True
    columns["src2"][fp_src2_mask] = fp_source(fp_src2_mask)


class _PoolState:
    """Vectorized bookkeeping for one register rotation pool."""

    def __init__(self, producer_mask: np.ndarray, pool_base: int, pool_size: int):
        self.pool_base = pool_base
        self.pool_size = pool_size
        self.positions = np.flatnonzero(producer_mask)
        # Number of producers strictly before each instruction.
        self.producers_before = np.cumsum(producer_mask) - producer_mask
        self.destinations = (
            pool_base + (np.arange(len(self.positions)) % pool_size)
        ).astype(np.uint8)

    def sample_sources(
        self,
        rng: np.random.Generator,
        mask: np.ndarray,
        geometric_p: float,
    ) -> np.ndarray:
        """Registers read by the masked instructions (NO_REG when the
        pool has produced nothing yet)."""
        count = int(mask.sum())
        if count == 0:
            return np.empty(0, dtype=np.uint8)
        ages = rng.geometric(geometric_p, size=count)
        available = self.producers_before[mask]
        ages = np.minimum(ages, np.minimum(available, self.pool_size))
        producer_ordinal = available - ages
        registers = (
            self.pool_base + (producer_ordinal % self.pool_size)
        ).astype(np.uint8)
        return np.where(ages > 0, registers, NO_REG).astype(np.uint8)
