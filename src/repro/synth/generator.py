"""Trace generation: execute a :class:`WorkloadProfile`.

Generation proceeds in four phases:

1. **Build** the static code image (:func:`repro.synth.code.build_code`).
   The image depends only on the profile knobs — never on trace length
   or the per-trace seed — so it is memoized per profile fingerprint
   (:func:`code_for_profile`) and shared across calls.
2. **Interpret** control flow: walk functions/loops/diamonds, producing
   the basic-block visit sequence and, for every visit, the terminator
   branch outcome (consistent with the visit that follows).
3. **Expand** the visit sequence into per-instruction columns (PC and
   opclass come from padded static slot tables via one 2-D gather;
   branch outcome/target land in terminator slots; every static memory
   instruction's behavior emits its whole vectorized address sequence,
   which is scattered into the positions where that instruction
   executes).
4. **Assign registers** with a vectorized recent-producer scheme whose
   geometric age distribution shapes dependency distances and ILP.

Phases 2 and 3 are batch engines with no per-visit Python loops; the
scalar originals are retained as :func:`_interpret_reference` and
:func:`_expand_reference` — executable specifications that the
equivalence tests pin the batch engines against, following the
``ppm_predictabilities_reference`` pattern.

**The stochastic draw protocol.**  Control flow is drawn in *episode
chunks* so the batch interpreter and the scalar reference consume the
generator stream identically.  One episode is one function pass; for a
chunk of ``K`` episodes the draws are, in order:

1. ``rng.random(K)`` — cold-detour uniforms; an episode visits a cold
   function iff the program has cold functions and its uniform is below
   ``cold_visit_rate``.
2. ``rng.random(K)`` — function-pick uniforms; the episode's function
   is ``pool[floor(u * len(pool))]`` of the chosen hot/cold pool.
3. ``1 + rng.geometric(1 / loop_iter_mean, size=total_loops)`` —
   iteration counts for every loop visit of the chunk, episode-major.
4. For every *skip-capable* diamond block (ascending block id) with a
   positive execution count in the chunk: ``model.outcomes(rng, n)``
   where ``n`` is the total iteration count of the owning loop across
   the chunk.  One outcome is consumed per loop iteration whether or
   not the diamond block is actually visited that iteration (a
   preceding diamond may have skipped it).

:data:`TRACE_GEN_VERSION` names the generation semantics; it is folded
into the :mod:`repro.perf` trace-cache key and must be bumped whenever
the protocol (and hence the trace bytes of a given profile/length/seed)
changes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import ProfileError
from ..isa import NO_REG, OpClass, TRACE_DTYPE
from ..isa.instruction import INSTRUCTION_BYTES
from ..isa.registers import NUM_INT_REGS
from ..trace import Trace
from .branches import BiasedBranch
from .code import ControlTables, StaticCode, build_code
from .memory import ACCESS_BYTES, random_slots_from_uniforms
from .profiles import WorkloadProfile
from .rng import make_rng

#: Generation-semantics version.  Bump whenever the draw protocol or the
#: expansion rules change the bytes produced for the same
#: (profile, length, seed); the perf trace cache keys on it.
TRACE_GEN_VERSION = 2

#: Namespace of the dynamic-stream rng, derived from the protocol
#: version: bumping :data:`TRACE_GEN_VERSION` re-rolls every trace
#: realization coherently.
_TRACE_STREAM = f"gen-v{TRACE_GEN_VERSION}"

#: First rotation register of the integer pool ($1.. — $0 is kept live as
#: a long-lived value, $31 is the zero register).
INT_POOL_BASE = 1

#: First rotation register of the FP pool ($f0.. ; $f31 is the zero reg).
FP_POOL_BASE = NUM_INT_REGS

#: Upper bound on episodes drawn per chunk (bounds peak matrix memory).
_MAX_CHUNK_EPISODES = 1 << 15

#: Memoized static code images, keyed by profile fingerprint.
_CODE_CACHE: "OrderedDict[str, StaticCode]" = OrderedDict()
_CODE_CACHE_LIMIT = 256

_generation_calls = 0


def generation_call_count() -> int:
    """Number of :func:`generate_trace` invocations in this process.

    The perf trace cache sits *in front of* the generator; tests assert
    warm dataset builds leave this counter untouched.
    """
    return _generation_calls


def clear_code_cache() -> None:
    """Drop all memoized static code images."""
    _CODE_CACHE.clear()


def code_for_profile(profile: WorkloadProfile) -> StaticCode:
    """The profile's static code image, memoized per fingerprint.

    The image is identical across trace lengths and per-trace seeds of
    the same profile draw, so it is built once (from an rng keyed only
    by the profile's name and own seed) and shared.  Stateful behaviors
    and branch models are reset before every use, keeping generation
    deterministic.

    The memoized image is shared mutable state: generation is
    single-threaded per process (parallel dataset builds use
    *processes*, each with its own memo).  Callers holding a returned
    image should expect its cursors to be rewound by the next
    ``generate_trace`` call for the same profile.
    """
    key = profile.fingerprint()
    code = _CODE_CACHE.get(key)
    if code is None:
        rng = make_rng("code", profile.name, profile.seed)
        code = build_code(
            rng, profile.code, profile.mix, profile.memory, profile.branches
        )
        _CODE_CACHE[key] = code
        while len(_CODE_CACHE) > _CODE_CACHE_LIMIT:
            _CODE_CACHE.popitem(last=False)
    else:
        _CODE_CACHE.move_to_end(key)
    code.reset_state()
    return code


def generate_trace(
    profile: WorkloadProfile,
    length: int,
    seed: int = 0,
) -> Trace:
    """Generate a dynamic instruction trace for a workload profile.

    Args:
        profile: the synthetic benchmark description.
        length: exact number of dynamic instructions to produce.
        seed: extra seed component (combined with the profile's own
            name/seed, so different runs can draw different instances).

    Returns:
        A validated-by-construction :class:`~repro.trace.Trace` of
        exactly ``length`` instructions named after the profile.

    Raises:
        ProfileError: if ``length`` is not positive.
    """
    global _generation_calls
    if length <= 0:
        raise ProfileError("trace length must be positive")
    _generation_calls += 1

    code = code_for_profile(profile)
    rng = make_rng("trace", _TRACE_STREAM, profile.name, profile.seed, seed)
    visits, outcomes = _interpret(rng, code, profile, length)
    columns = _expand(rng, code, visits, outcomes, length)
    _assign_registers(rng, columns, profile.registers)

    data = np.empty(length, dtype=TRACE_DTYPE)
    for name in data.dtype.names:
        data[name] = columns[name][:length]
    return Trace(data, name=profile.name)


# ---------------------------------------------------------------------------
# Phase 2: control-flow interpretation
# ---------------------------------------------------------------------------


@dataclass
class _EpisodeChunk:
    """One chunk of pre-drawn control-flow randomness.

    Attributes:
        lv_loop: static loop index per loop visit, chronological
            (episode-major, loops in function order).
        iters: iteration count per loop visit.
        loop_iterations: total iteration count per static loop across
            the chunk (zero for unvisited loops).
        outcomes: skip-capable diamond block id -> drawn outcome array,
            consumed one entry per iteration of the owning loop.
    """

    lv_loop: np.ndarray
    iters: np.ndarray
    loop_iterations: np.ndarray
    outcomes: Dict[int, np.ndarray]


def _chunk_episodes(tables: ControlTables, spec, remaining: int) -> int:
    """How many episodes to draw to cover ``remaining`` instructions.

    One episode covers roughly ``mean_block_length * blocks_per_function
    * (1 + loop_iter_mean)`` instructions (each loop body runs once plus
    a geometric number of re-entries); the 0.85 factor absorbs diamond
    skips so a single chunk usually suffices.  Both interpreters use
    this estimate, keeping their draw streams identical.
    """
    per_episode = (
        tables.mean_block_length
        * spec.blocks_per_function
        * (1.0 + spec.loop_iter_mean)
        * 0.85
    )
    need = int(remaining / max(per_episode, 1.0)) + 1
    return max(1, min(need, _MAX_CHUNK_EPISODES))


def _draw_episode_chunk(
    rng: np.random.Generator,
    code: StaticCode,
    spec,
    episodes: int,
) -> _EpisodeChunk:
    """Draw one chunk of episodes per the module's stochastic protocol."""
    tables = code.control_tables()
    u_cold = rng.random(episodes)
    u_func = rng.random(episodes)

    hot_pick = tables.hot[
        np.minimum(
            (u_func * len(tables.hot)).astype(np.int64), len(tables.hot) - 1
        )
    ]
    if tables.cold.size:
        cold_pick = tables.cold[
            np.minimum(
                (u_func * len(tables.cold)).astype(np.int64),
                len(tables.cold) - 1,
            )
        ]
        functions = np.where(u_cold < spec.cold_visit_rate, cold_pick, hot_pick)
    else:
        functions = hot_pick

    starts = tables.func_loop_start[functions]
    counts = tables.func_loop_start[functions + 1] - starts
    total = int(counts.sum())
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    lv_loop = np.repeat(starts, counts) + offsets

    iters = 1 + rng.geometric(
        1.0 / spec.loop_iter_mean, size=total
    ).astype(np.int64)

    loop_iterations = np.bincount(
        lv_loop, weights=iters, minlength=len(tables.loop_first)
    ).astype(np.int64)

    # Outcome draws, ascending block id.  Biased branches draw one
    # uniform per execution from the shared stream; since pattern
    # branches consume no randomness, the biased draws are consecutive
    # and can be batched into a single ``rng.random`` call whose slices
    # are bit-identical to per-branch draws.  The fast path applies to
    # exactly :class:`BiasedBranch` — a subclass could override
    # ``outcomes`` and must go through it.
    outcomes: Dict[int, np.ndarray] = {}
    biased: List[Tuple[int, int, float]] = []  # (block id, count, bias)
    for block_id in tables.skip_block_ids:
        count = int(loop_iterations[tables.loop_of_block[block_id]])
        if not count:
            continue
        model = code.blocks[int(block_id)].diamond
        if type(model) is BiasedBranch:
            biased.append((int(block_id), count, model.taken_probability))
        else:
            outcomes[int(block_id)] = model.outcomes(rng, count)
    if biased:
        counts = np.array([count for _, count, _ in biased], dtype=np.int64)
        draws = rng.random(int(counts.sum())) < np.repeat(
            np.array([bias for _, _, bias in biased]), counts
        )
        offsets = np.cumsum(counts) - counts
        for (block_id, count, _), offset in zip(biased, offsets):
            outcomes[block_id] = draws[offset : offset + count]
    return _EpisodeChunk(
        lv_loop=lv_loop,
        iters=iters,
        loop_iterations=loop_iterations,
        outcomes=outcomes,
    )


def _expand_chunk(
    tables: ControlTables, chunk: _EpisodeChunk
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand one pre-drawn chunk into (visit ids, visit outcomes).

    Iteration *rows* flatten every iteration of every loop visit
    chronologically.  Rows of loops without skip-capable diamonds have a
    deterministic walk (every body block, in order), so they expand with
    flat repeat/cumsum arithmetic; only rows of diamond-bearing loops go
    through the (row x body position) work grid, where skips are a
    first-order recurrence along the body — a loop over the (static,
    small) body width vectorized over all iterations at once, the same
    offset-major shape as the ILP engine.  Both streams are scattered
    into one output array by per-row emit offsets, preserving
    chronological order.
    """
    lv_loop = chunk.lv_loop
    iters = chunk.iters
    lv_first = tables.loop_first[lv_loop]
    lv_width = tables.loop_last[lv_loop] - lv_first + 1

    rows = int(iters.sum())
    lv_row_start = np.cumsum(iters) - iters
    row_lv = np.repeat(np.arange(len(lv_loop), dtype=np.int64), iters)
    row_t = np.arange(rows, dtype=np.int64) - lv_row_start[row_lv]
    row_first = lv_first[row_lv]
    row_width = lv_width[row_lv]
    row_loop = lv_loop[row_lv]
    # Back-edge outcome of each row's tail visit: taken on every
    # iteration but the last; the final back-edge of a function's last
    # loop is the taken function-exit jump.
    row_tail_taken = (row_t < iters[row_lv] - 1) | tables.loop_is_last[row_loop]

    diamond_row = tables.loop_has_skip[row_loop]
    plain_rows = np.flatnonzero(~diamond_row)
    matrix_rows = np.flatnonzero(diamond_row)

    emit = row_width.copy()

    # -- diamond-loop rows: masked work grid --------------------------
    if matrix_rows.size:
        m_first = row_first[matrix_rows]
        m_width = row_width[matrix_rows]
        max_body = int(m_width.max())
        cols = np.arange(max_body, dtype=np.int64)
        valid = cols[None, :] < m_width[:, None]
        block_m = m_first[:, None] + cols[None, :]
        safe_blocks = np.minimum(block_m, len(tables.loop_of_block) - 1)
        skip_m = tables.skip_diamond[safe_blocks] & valid

        # Scatter every diamond's pre-drawn outcome stream onto its
        # (row, column) cells in one flat fancy assignment.  Streams
        # concatenate in draw order (ascending block id = loop-major,
        # column-minor); the matching cell list walks present loops
        # ascending, columns within a loop ascending, and each column's
        # rows chronologically (a stable sort of the matrix rows by
        # loop keeps segments in row order).
        outcome_m = np.zeros((len(matrix_rows), max_body), dtype=bool)
        m_loop = row_loop[matrix_rows]
        order = np.argsort(m_loop, kind="stable")
        loop_rows = np.where(tables.loop_has_skip, chunk.loop_iterations, 0)
        seg_start = np.cumsum(loop_rows) - loop_rows
        cell_counts = loop_rows * tables.skip_count_by_loop
        present = np.flatnonzero(cell_counts)
        counts = cell_counts[present]
        total_cells = int(counts.sum())
        group = np.repeat(np.arange(len(present)), counts)
        within = np.arange(total_cells, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        cell_loop = present[group]
        cell_loop_rows = loop_rows[cell_loop]
        column_ordinal = within // cell_loop_rows
        row_ordinal = within - column_ordinal * cell_loop_rows
        cell_rows = order[seg_start[cell_loop] + row_ordinal]
        cell_cols = tables.skip_cols_concat[
            tables.skip_col_start[cell_loop] + column_ordinal
        ]
        streams = np.concatenate(
            [
                chunk.outcomes[int(block_id)]
                for block_id in tables.skip_block_ids
                if int(block_id) in chunk.outcomes
            ]
        )
        outcome_m[cell_rows, cell_cols] = streams

        # Visitation recurrence: a block is skipped iff its predecessor
        # was visited, is a skip-capable diamond, and drew "taken".
        visited = np.empty((len(matrix_rows), max_body), dtype=bool)
        visited[:, 0] = valid[:, 0]
        for position in range(1, max_body):
            skipped = (
                visited[:, position - 1]
                & skip_m[:, position - 1]
                & outcome_m[:, position - 1]
            )
            visited[:, position] = valid[:, position] & ~skipped

        taken_m = outcome_m & skip_m
        taken_m[np.arange(len(matrix_rows)), m_width - 1] = row_tail_taken[
            matrix_rows
        ]

        emit[matrix_rows] = visited.sum(axis=1)

    # -- merge both streams by per-row output offsets ------------------
    out_start = np.cumsum(emit) - emit
    total_visits = int(out_start[-1] + emit[-1]) if rows else 0
    visits = np.empty(total_visits, dtype=np.int64)
    taken = np.zeros(total_visits, dtype=bool)

    if plain_rows.size:
        widths = row_width[plain_rows]
        n_plain = int(widths.sum())
        offsets = np.arange(n_plain, dtype=np.int64) - np.repeat(
            np.cumsum(widths) - widths, widths
        )
        positions = np.repeat(out_start[plain_rows], widths) + offsets
        visits[positions] = np.repeat(row_first[plain_rows], widths) + offsets
        tail_positions = out_start[plain_rows] + widths - 1
        taken[tail_positions] = row_tail_taken[plain_rows]

    if matrix_rows.size:
        flat = np.flatnonzero(visited)
        emitted = emit[matrix_rows]
        offsets = np.arange(len(flat), dtype=np.int64) - np.repeat(
            np.cumsum(emitted) - emitted, emitted
        )
        positions = np.repeat(out_start[matrix_rows], emitted) + offsets
        visits[positions] = block_m.ravel()[flat]
        taken[positions] = taken_m.ravel()[flat]

    return visits, taken


def _interpret(
    rng: np.random.Generator,
    code: StaticCode,
    profile: WorkloadProfile,
    length: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Produce the block-visit sequence and per-visit branch outcomes.

    A visit's outcome is True (taken) when control does *not* continue to
    the static fall-through block: loop back-edges, diamond skips, and
    function exits are taken; sequential flow is not taken.

    Batch engine: draws episode chunks per the module protocol and
    expands each with :func:`_expand_chunk`; the stream is truncated at
    the first visit whose cumulative instruction count reaches
    ``length``.  Must stay bit-identical to
    :func:`_interpret_reference`.
    """
    spec = profile.code
    tables = code.control_tables()
    visit_parts: List[np.ndarray] = []
    taken_parts: List[np.ndarray] = []
    produced = 0
    while produced < length:
        chunk = _draw_episode_chunk(
            rng, code, spec, _chunk_episodes(tables, spec, length - produced)
        )
        visits, taken = _expand_chunk(tables, chunk)
        cumulative = np.cumsum(tables.block_lengths[visits])
        if produced + int(cumulative[-1]) >= length:
            cut = int(
                np.searchsorted(cumulative, length - produced, side="left")
            )
            visits = visits[: cut + 1]
            taken = taken[: cut + 1]
            produced += int(cumulative[cut])
        else:
            produced += int(cumulative[-1])
        visit_parts.append(visits)
        taken_parts.append(taken)
    if len(visit_parts) == 1:
        return visit_parts[0], taken_parts[0]
    return np.concatenate(visit_parts), np.concatenate(taken_parts)


def _interpret_reference(
    rng: np.random.Generator,
    code: StaticCode,
    profile: WorkloadProfile,
    length: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scalar reference interpreter — the executable specification.

    Consumes the same pre-drawn episode chunks as :func:`_interpret`
    (the draw protocol is shared) but expands them one visit at a time
    with the obvious walk, so the batch engine's index arithmetic can be
    pinned against it bit-for-bit.
    """
    spec = profile.code
    tables = code.control_tables()
    block_lengths = tables.block_lengths
    visit_ids: List[int] = []
    visit_taken: List[bool] = []
    budget = length

    while budget > 0:
        chunk = _draw_episode_chunk(
            rng, code, spec, _chunk_episodes(tables, spec, budget)
        )
        cursors = {block_id: 0 for block_id in chunk.outcomes}
        for lv in range(len(chunk.lv_loop)):
            loop_id = int(chunk.lv_loop[lv])
            first = int(tables.loop_first[loop_id])
            last = int(tables.loop_last[loop_id])
            is_last_loop = bool(tables.loop_is_last[loop_id])
            iterations = int(chunk.iters[lv])
            for iteration in range(iterations):
                # One outcome per skip-capable diamond per iteration,
                # consumed whether or not the block ends up visited.
                drawn = {}
                for block_id in tables.skip_blocks_by_loop[loop_id]:
                    key = int(block_id)
                    drawn[key] = bool(chunk.outcomes[key][cursors[key]])
                    cursors[key] += 1
                block_index = first
                while block_index <= last:
                    if block_index == last:
                        taken = iteration < iterations - 1 or is_last_loop
                        next_index = block_index + 1
                    elif block_index in drawn:
                        taken = drawn[block_index]
                        next_index = (
                            block_index + 2 if taken else block_index + 1
                        )
                    else:
                        taken = False
                        next_index = block_index + 1
                    visit_ids.append(block_index)
                    visit_taken.append(taken)
                    budget -= int(block_lengths[block_index])
                    if budget <= 0:
                        return (
                            np.array(visit_ids, dtype=np.int64),
                            np.array(visit_taken, dtype=bool),
                        )
                    block_index = next_index

    return np.array(visit_ids, dtype=np.int64), np.array(visit_taken, dtype=bool)


# ---------------------------------------------------------------------------
# Phase 3: expansion into per-instruction columns
# ---------------------------------------------------------------------------


def _expand(
    rng: np.random.Generator,
    code: StaticCode,
    visits: np.ndarray,
    outcomes: np.ndarray,
    length: int,
) -> dict:
    """Expand visits into columnar per-instruction arrays.

    Batch engine: opclass/PC columns are one 2-D gather from the padded
    static slot tables; memory behaviors are grouped with a single
    stable sort of the visit stream, so each behavior generates all its
    occurrences in one call ordered by visit index.  Must stay
    bit-identical to :func:`_expand_reference` (and draw from ``rng``
    in the same order: blocks ascending, slots ascending).

    The returned arrays may be slightly longer than ``length`` (the last
    visited block may overrun the budget); the caller trims.
    """
    slot_opclasses, slot_starts, pc_bases = code.slot_tables()
    block_lengths = code.block_lengths()
    visit_lengths = block_lengths[visits]
    starts = np.zeros(len(visits) + 1, dtype=np.int64)
    np.cumsum(visit_lengths, out=starts[1:])
    total = int(starts[-1])
    visit_starts = starts[:-1]

    slot_offsets = np.arange(total, dtype=np.int64) - np.repeat(
        visit_starts, visit_lengths
    )
    opclass = slot_opclasses[
        np.repeat(slot_starts[visits], visit_lengths) + slot_offsets
    ]
    pc = np.repeat(pc_bases[visits], visit_lengths) + slot_offsets.astype(
        np.uint64
    ) * np.uint64(INSTRUCTION_BYTES)

    taken = np.zeros(total, dtype=np.uint8)
    target = np.zeros(total, dtype=np.uint64)
    terminator_positions = starts[1:] - 1
    taken[terminator_positions] = outcomes.astype(np.uint8)

    # A taken terminator targets the next visited block; the final visit
    # targets the first block (wrap) to keep targets nonzero.
    block_bases = pc_bases
    next_base = np.empty(len(visits), dtype=np.uint64)
    next_base[:-1] = block_bases[visits[1:]]
    next_base[-1] = block_bases[visits[0]]
    target[terminator_positions] = np.where(outcomes, next_base, 0)

    mem_addr = np.zeros(total, dtype=np.uint64)
    _scatter_memory(rng, code, visits, visit_starts, mem_addr)

    return {
        "pc": pc,
        "opclass": opclass,
        "src1": np.full(total, NO_REG, dtype=np.uint8),
        "src2": np.full(total, NO_REG, dtype=np.uint8),
        "dst": np.full(total, NO_REG, dtype=np.uint8),
        "mem_addr": mem_addr,
        "taken": taken,
        "target": target,
    }


def _scatter_memory(
    rng: np.random.Generator,
    code: StaticCode,
    visits: np.ndarray,
    visit_starts: np.ndarray,
    mem_addr: np.ndarray,
) -> None:
    """Fill every memory instruction's effective address in place.

    Behaviors are fused per class via the static :class:`MemoryPlan`:
    the non-random classes consume no randomness, so replacing their
    per-instance ``generate`` calls with flat array arithmetic is a
    pure rewrite; random streams draw splittable uniform blocks, so one
    batched ``rng.random`` over all instances (in block/slot order,
    zero-occurrence instances excluded) reproduces the reference's
    per-instance draw stream bit-for-bit.
    """
    plan = code.memory_plan()
    counts_all = np.bincount(visits, minlength=len(code.blocks))
    order = np.argsort(visits, kind="stable")
    seg = np.cumsum(counts_all) - counts_all

    if plan.fallback:
        # Unknown behavior class: per-instance calls in block/slot
        # order, exactly like the reference.
        for block in code.memory_blocks():
            count = int(counts_all[block.block_id])
            if not count:
                continue
            start = seg[block.block_id]
            base_positions = visit_starts[order[start : start + count]]
            for slot, behavior in block.memory_slots:
                mem_addr[base_positions + slot] = behavior.generate(rng, count)
        return

    def occurrences(block_ids: np.ndarray, slots: np.ndarray):
        """(positions, per-instance counts, instance idx, occurrence idx)
        for one class group, occurrences ordered by visit index."""
        counts = counts_all[block_ids]
        total = int(counts.sum())
        if not total:
            return None
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        instance = np.repeat(np.arange(len(block_ids)), counts)
        visit_rows = order[seg[block_ids][instance] + offsets]
        return visit_starts[visit_rows] + slots[instance], counts, instance, offsets

    found = occurrences(plan.scalar_blocks, plan.scalar_slots)
    if found:
        positions, _, instance, _ = found
        mem_addr[positions] = plan.scalar_bases[instance]

    found = occurrences(plan.linear_blocks, plan.linear_slots)
    if found:
        positions, counts, instance, offsets = found
        cursors = np.array(
            [behavior._count for behavior in plan.linear_behaviors],
            dtype=np.int64,
        )
        ticks = cursors[instance] + offsets
        slots = (
            ticks // plan.linear_repeats[instance] * plan.linear_steps[instance]
        ) % plan.linear_span[instance]
        mem_addr[positions] = plan.linear_bases[instance] + slots.astype(
            np.uint64
        ) * np.uint64(ACCESS_BYTES)
        for behavior, count in zip(plan.linear_behaviors, counts):
            behavior._count += int(count)

    found = occurrences(plan.pointer_blocks, plan.pointer_slots)
    if found:
        positions, counts, instance, offsets = found
        cursors = np.array(
            [behavior._cursor for behavior in plan.pointer_behaviors],
            dtype=np.int64,
        )
        cycle_pos = (cursors[instance] + offsets) % plan.pointer_span[instance]
        slots = plan.pointer_orders[
            plan.pointer_order_start[instance] + cycle_pos
        ]
        mem_addr[positions] = plan.pointer_bases[instance] + slots.astype(
            np.uint64
        ) * np.uint64(ACCESS_BYTES)
        for behavior, count in zip(plan.pointer_behaviors, counts):
            behavior._cursor = (behavior._cursor + int(count)) % behavior._slots

    found = occurrences(plan.random_blocks, plan.random_slots)
    if found:
        positions, counts, instance, offsets = found
        draw_start = np.cumsum(2 * counts) - 2 * counts
        uniforms = rng.random(int(2 * counts.sum()))
        slots = random_slots_from_uniforms(
            uniforms[draw_start[instance] + offsets],
            uniforms[draw_start[instance] + counts[instance] + offsets],
            plan.random_hot_span[instance],
            plan.random_span[instance],
            plan.random_bias[instance],
        )
        mem_addr[positions] = plan.random_bases[instance] + slots.astype(
            np.uint64
        ) * np.uint64(ACCESS_BYTES)


def _expand_reference(
    rng: np.random.Generator,
    code: StaticCode,
    visits: np.ndarray,
    outcomes: np.ndarray,
    length: int,
) -> dict:
    """Scalar reference expansion — the executable specification.

    One concatenate piece per visit and one occurrence scan per static
    block, exactly the pre-batch engine; retained so the grouped
    expansion can be pinned against it bit-for-bit.
    """
    block_lengths = code.block_lengths()
    visit_lengths = block_lengths[visits]
    starts = np.zeros(len(visits) + 1, dtype=np.int64)
    np.cumsum(visit_lengths, out=starts[1:])
    total = int(starts[-1])

    opclass = np.concatenate(
        [code.blocks[block_id].opclasses for block_id in visits]
    )
    pc = np.concatenate([code.blocks[block_id].pcs for block_id in visits])

    taken = np.zeros(total, dtype=np.uint8)
    target = np.zeros(total, dtype=np.uint64)
    terminator_positions = starts[1:] - 1
    taken[terminator_positions] = outcomes.astype(np.uint8)

    next_base = np.empty(len(visits), dtype=np.uint64)
    block_bases = np.array(
        [block.pc_base for block in code.blocks], dtype=np.uint64
    )
    next_base[:-1] = block_bases[visits[1:]]
    next_base[-1] = block_bases[visits[0]]
    target[terminator_positions] = np.where(outcomes, next_base, 0)

    mem_addr = np.zeros(total, dtype=np.uint64)
    visit_starts = starts[:-1]
    for block_id, block in enumerate(code.blocks):
        if not block.memory_slots:
            continue
        visit_indices = np.flatnonzero(visits == block_id)
        if len(visit_indices) == 0:
            continue
        base_positions = visit_starts[visit_indices]
        for slot, behavior in block.memory_slots:
            addresses = behavior.generate(rng, len(visit_indices))
            mem_addr[base_positions + slot] = addresses

    return {
        "pc": pc,
        "opclass": opclass,
        "src1": np.full(total, NO_REG, dtype=np.uint8),
        "src2": np.full(total, NO_REG, dtype=np.uint8),
        "dst": np.full(total, NO_REG, dtype=np.uint8),
        "mem_addr": mem_addr,
        "taken": taken,
        "target": target,
    }


# ---------------------------------------------------------------------------
# Phase 4: register assignment
# ---------------------------------------------------------------------------


def _assign_registers(
    rng: np.random.Generator, columns: dict, spec
) -> None:
    """Assign destination and source registers in place.

    Producers rotate through a register pool; consumers read the value
    written ``k`` producers ago with ``k`` geometric (mean
    ``spec.dep_mean``), clipped so the named register still holds that
    value.  Integer and FP dataflow use disjoint pools.
    """
    opclass = columns["opclass"]

    int_producer = np.isin(
        opclass,
        [int(OpClass.LOAD), int(OpClass.INT_ALU), int(OpClass.INT_MUL)],
    )
    fp_producer = opclass == int(OpClass.FP)

    int_pool = _PoolState(
        producer_mask=int_producer,
        pool_base=INT_POOL_BASE,
        pool_size=spec.int_pool,
    )
    fp_pool = _PoolState(
        producer_mask=fp_producer,
        pool_base=FP_POOL_BASE,
        pool_size=spec.fp_pool,
    )

    columns["dst"][int_pool.positions] = int_pool.destinations
    columns["dst"][fp_pool.positions] = fp_pool.destinations

    geometric_p = spec.geometric_p

    def int_source(mask: np.ndarray) -> np.ndarray:
        return int_pool.sample_sources(rng, mask, geometric_p)

    def fp_source(mask: np.ndarray) -> np.ndarray:
        return fp_pool.sample_sources(rng, mask, geometric_p)

    is_load = opclass == int(OpClass.LOAD)
    is_store = opclass == int(OpClass.STORE)
    is_branch = opclass == int(OpClass.BRANCH)
    is_int_compute = np.isin(
        opclass, [int(OpClass.INT_ALU), int(OpClass.INT_MUL)]
    )
    is_fp = fp_producer

    # Loads: src1 is the address register.
    columns["src1"][is_load] = int_source(is_load)
    # Stores: src1 is the value, src2 the address register.
    columns["src1"][is_store] = int_source(is_store)
    columns["src2"][is_store] = int_source(is_store)
    # Branches: src1 is the condition register.
    columns["src1"][is_branch] = int_source(is_branch)

    # Integer compute: immediate forms skip src1; two-operand forms add src2.
    compute_positions = np.flatnonzero(is_int_compute)
    has_src1 = rng.random(len(compute_positions)) >= spec.imm_fraction
    src1_mask = np.zeros(len(opclass), dtype=bool)
    src1_mask[compute_positions[has_src1]] = True
    columns["src1"][src1_mask] = int_source(src1_mask)
    has_src2 = has_src1 & (
        rng.random(len(compute_positions)) < spec.two_op_fraction
    )
    src2_mask = np.zeros(len(opclass), dtype=bool)
    src2_mask[compute_positions[has_src2]] = True
    columns["src2"][src2_mask] = int_source(src2_mask)

    # FP compute: src1 always, src2 with the two-operand probability.
    columns["src1"][is_fp] = fp_source(is_fp)
    fp_positions = np.flatnonzero(is_fp)
    fp_two = rng.random(len(fp_positions)) < spec.two_op_fraction
    fp_src2_mask = np.zeros(len(opclass), dtype=bool)
    fp_src2_mask[fp_positions[fp_two]] = True
    columns["src2"][fp_src2_mask] = fp_source(fp_src2_mask)


class _PoolState:
    """Vectorized bookkeeping for one register rotation pool."""

    def __init__(self, producer_mask: np.ndarray, pool_base: int, pool_size: int):
        self.pool_base = pool_base
        self.pool_size = pool_size
        self.positions = np.flatnonzero(producer_mask)
        # Number of producers strictly before each instruction.
        self.producers_before = np.cumsum(producer_mask) - producer_mask
        self.destinations = (
            pool_base + (np.arange(len(self.positions)) % pool_size)
        ).astype(np.uint8)

    def sample_sources(
        self,
        rng: np.random.Generator,
        mask: np.ndarray,
        geometric_p: float,
    ) -> np.ndarray:
        """Registers read by the masked instructions (NO_REG when the
        pool has produced nothing yet)."""
        count = int(mask.sum())
        if count == 0:
            return np.empty(0, dtype=np.uint8)
        ages = rng.geometric(geometric_p, size=count)
        available = self.producers_before[mask]
        ages = np.minimum(ages, np.minimum(available, self.pool_size))
        producer_ordinal = available - ages
        registers = (
            self.pool_base + (producer_ordinal % self.pool_size)
        ).astype(np.uint8)
        return np.where(ages > 0, registers, NO_REG).astype(np.uint8)
