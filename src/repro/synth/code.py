"""Static code model: functions, basic blocks, loops.

A synthetic program's static shape is built once per benchmark: functions
laid out at fixed addresses, each a sequence of loops, each loop a run of
basic blocks.  Every block ends in a control transfer (so the dynamic
branch fraction equals the inverse of the mean block length, which is
derived from the profile's instruction mix).  The static image also owns
the per-instruction data-access behaviors and per-branch outcome models,
so executing the same code twice with the same seeds replays the same
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ProfileError
from ..isa import OpClass
from ..isa.instruction import INSTRUCTION_BYTES
from .branches import BranchModel, make_branch_model
from .memory import AccessBehavior, make_behavior

#: Base address of the code segment.
CODE_BASE = 0x0012_0000

#: Base address of the data segment.
DATA_BASE = 0x1000_0000

#: Padding between consecutive data regions, in bytes.
REGION_PADDING = 64


@dataclass(frozen=True)
class CodeSpec:
    """Static-code shape knobs.

    Attributes:
        num_functions: number of functions in the program image.
        blocks_per_function: basic blocks per function.
        hot_function_fraction: fraction of functions that form the hot
            set (the interpreter spends most time there); controls the
            instruction working set.
        cold_visit_rate: probability that the next function pass detours
            through a cold function.
        loop_blocks: mean basic blocks per loop body.
        loop_iter_mean: mean iterations per loop visit; large values
            produce highly predictable back-edges and long streaming
            memory bursts.
        diamond_rate: fraction of in-loop blocks whose terminator is a
            data-dependent conditional (an if/else diamond).
        function_gap_bytes: address distance between function starts;
            with ~4 KB gaps each visited function touches its own page.
    """

    num_functions: int = 16
    blocks_per_function: int = 12
    hot_function_fraction: float = 0.5
    cold_visit_rate: float = 0.05
    loop_blocks: int = 3
    loop_iter_mean: float = 12.0
    diamond_rate: float = 0.3
    function_gap_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.num_functions < 1:
            raise ProfileError("num_functions must be >= 1")
        if self.blocks_per_function < 1:
            raise ProfileError("blocks_per_function must be >= 1")
        if not 0.0 < self.hot_function_fraction <= 1.0:
            raise ProfileError("hot_function_fraction must be in (0, 1]")
        if not 0.0 <= self.cold_visit_rate <= 1.0:
            raise ProfileError("cold_visit_rate must be in [0, 1]")
        if self.loop_blocks < 1:
            raise ProfileError("loop_blocks must be >= 1")
        if self.loop_iter_mean < 1.0:
            raise ProfileError("loop_iter_mean must be >= 1")
        if not 0.0 <= self.diamond_rate <= 1.0:
            raise ProfileError("diamond_rate must be in [0, 1]")
        if self.function_gap_bytes < 64:
            raise ProfileError("function_gap_bytes must be >= 64")


@dataclass
class BasicBlock:
    """One static basic block.

    Attributes:
        block_id: global block index.
        function: owning function index.
        pc_base: address of the first instruction.
        opclasses: per-slot instruction classes; the final slot is always
            :attr:`OpClass.BRANCH`.
        diamond: outcome model when the terminator is data-dependent,
            else None (terminator outcome follows control flow).
        memory_slots: (slot index, behavior) pairs for the block's
            memory instructions.
    """

    block_id: int
    function: int
    pc_base: int
    opclasses: np.ndarray
    diamond: Optional[BranchModel] = None
    memory_slots: List[Tuple[int, AccessBehavior]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.opclasses)

    @property
    def pcs(self) -> np.ndarray:
        """Per-slot instruction addresses."""
        return (
            np.uint64(self.pc_base)
            + np.arange(len(self.opclasses), dtype=np.uint64)
            * np.uint64(INSTRUCTION_BYTES)
        )


@dataclass
class Loop:
    """A contiguous run of blocks executed as a loop body."""

    first_block: int
    last_block: int

    @property
    def block_ids(self) -> range:
        return range(self.first_block, self.last_block + 1)


@dataclass
class Function:
    """A function: an ordered list of loops over contiguous blocks."""

    index: int
    loops: List[Loop]

    @property
    def first_block(self) -> int:
        return self.loops[0].first_block

    @property
    def last_block(self) -> int:
        return self.loops[-1].last_block


@dataclass
class StaticCode:
    """The complete static image of a synthetic program."""

    blocks: List[BasicBlock]
    functions: List[Function]
    hot_functions: List[int]
    cold_functions: List[int]
    data_bytes_allocated: int

    def block_lengths(self) -> np.ndarray:
        """Length of every block, indexed by block id."""
        return np.array([len(block) for block in self.blocks], dtype=np.int64)

    @property
    def code_bytes(self) -> int:
        """Static code size from first to last instruction."""
        last = self.blocks[-1]
        first = self.blocks[0]
        return (last.pc_base + len(last) * INSTRUCTION_BYTES) - first.pc_base


def _sample_block_length(
    rng: np.random.Generator, mean_length: float
) -> int:
    """Geometric block length with the given mean, minimum 2 slots."""
    if mean_length <= 2.0:
        return 2
    # Shifted geometric: 2 + G where E[G] = mean_length - 2.
    p = 1.0 / (mean_length - 1.0)
    return 2 + int(rng.geometric(min(max(p, 1e-6), 1.0))) - 1


def _sample_body_class(
    rng: np.random.Generator, classes: np.ndarray, weights: np.ndarray
) -> int:
    return int(rng.choice(classes, p=weights))


def build_code(
    rng: np.random.Generator,
    spec: CodeSpec,
    mix,
    memory_spec,
    branch_spec,
) -> StaticCode:
    """Build the static program image for a profile.

    Args:
        rng: the benchmark's seeded generator.
        spec: static-code shape (:class:`CodeSpec`).
        mix: instruction-mix fractions (:class:`repro.synth.MixSpec`).
        memory_spec: data-behavior knobs (:class:`repro.synth.MemorySpec`).
        branch_spec: branch-model knobs (:class:`repro.synth.BranchSpec`).

    Returns:
        A fully populated :class:`StaticCode`.
    """
    branch_fraction = max(mix.branch, 1e-3)
    mean_block_length = max(2.0, 1.0 / branch_fraction)

    body_classes, body_weights = mix.body_distribution()

    blocks: List[BasicBlock] = []
    functions: List[Function] = []
    block_id = 0
    for function_index in range(spec.num_functions):
        function_base = CODE_BASE + function_index * spec.function_gap_bytes
        pc_cursor = function_base
        loops: List[Loop] = []
        blocks_remaining = spec.blocks_per_function
        while blocks_remaining > 0:
            body_size = min(
                blocks_remaining,
                max(1, int(rng.poisson(spec.loop_blocks)) or 1),
            )
            first = block_id
            for position in range(body_size):
                length = _sample_block_length(rng, mean_block_length)
                opclasses = np.empty(length, dtype=np.uint8)
                for slot in range(length - 1):
                    opclasses[slot] = _sample_body_class(
                        rng, body_classes, body_weights
                    )
                opclasses[length - 1] = int(OpClass.BRANCH)
                in_body = position < body_size - 1
                diamond = None
                if in_body and rng.random() < spec.diamond_rate:
                    diamond = make_branch_model(
                        rng,
                        pattern_fraction=branch_spec.pattern_fraction,
                        taken_bias=branch_spec.taken_bias,
                        max_period=branch_spec.max_pattern_period,
                    )
                blocks.append(
                    BasicBlock(
                        block_id=block_id,
                        function=function_index,
                        pc_base=pc_cursor,
                        opclasses=opclasses,
                        diamond=diamond,
                    )
                )
                pc_cursor += length * INSTRUCTION_BYTES
                block_id += 1
            loops.append(Loop(first_block=first, last_block=block_id - 1))
            blocks_remaining -= body_size
        functions.append(Function(index=function_index, loops=loops))

    hot_count = max(1, round(spec.num_functions * spec.hot_function_fraction))
    order = list(rng.permutation(spec.num_functions))
    hot_functions = sorted(int(f) for f in order[:hot_count])
    cold_functions = sorted(int(f) for f in order[hot_count:])

    data_allocated = _assign_memory_behaviors(rng, blocks, memory_spec)

    return StaticCode(
        blocks=blocks,
        functions=functions,
        hot_functions=hot_functions,
        cold_functions=cold_functions,
        data_bytes_allocated=data_allocated,
    )


def _assign_memory_behaviors(
    rng: np.random.Generator,
    blocks: List[BasicBlock],
    memory_spec,
) -> int:
    """Give every static memory instruction an access behavior.

    The data footprint is divided evenly among the non-scalar behaviors;
    scalar behaviors get a single slot each.  Returns the total number of
    data bytes allocated.
    """
    load_slots: List[Tuple[BasicBlock, int]] = []
    store_slots: List[Tuple[BasicBlock, int]] = []
    for block in blocks:
        for slot, opclass in enumerate(block.opclasses):
            if opclass == int(OpClass.LOAD):
                load_slots.append((block, slot))
            elif opclass == int(OpClass.STORE):
                store_slots.append((block, slot))

    plan: List[Tuple[BasicBlock, int, str]] = []
    for slots, mix in (
        (load_slots, memory_spec.load_mix),
        (store_slots, memory_spec.store_mix),
    ):
        kinds = list(mix.keys())
        weights = np.array([mix[kind] for kind in kinds], dtype=float)
        weights = weights / weights.sum()
        for block, slot in slots:
            kind = str(rng.choice(kinds, p=weights))
            plan.append((block, slot, kind))

    non_scalar = sum(1 for _, _, kind in plan if kind != "scalar")
    region_bytes = memory_spec.footprint_bytes // max(non_scalar, 1)
    region_bytes = max(region_bytes, 64)

    cursor = DATA_BASE
    for block, slot, kind in plan:
        footprint = 8 if kind == "scalar" else region_bytes
        behavior = make_behavior(
            kind,
            base=cursor,
            footprint=footprint,
            rng=rng,
            stride=memory_spec.stride_bytes,
        )
        block.memory_slots.append((slot, behavior))
        cursor += footprint + REGION_PADDING
    for block in blocks:
        block.memory_slots.sort(key=lambda pair: pair[0])
    return cursor - DATA_BASE
