"""Static code model: functions, basic blocks, loops.

A synthetic program's static shape is built once per benchmark: functions
laid out at fixed addresses, each a sequence of loops, each loop a run of
basic blocks.  Every block ends in a control transfer (so the dynamic
branch fraction equals the inverse of the mean block length, which is
derived from the profile's instruction mix).  The static image also owns
the per-instruction data-access behaviors and per-branch outcome models,
so executing the same code twice with the same seeds replays the same
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ProfileError
from ..isa import OpClass
from ..isa.instruction import INSTRUCTION_BYTES
from .branches import BranchModel, make_branch_model
from .memory import (
    AccessBehavior,
    PointerChase,
    RandomStream,
    ScalarStream,
    SequentialStream,
    make_behavior,
)

#: Base address of the code segment.
CODE_BASE = 0x0012_0000

#: Base address of the data segment.
DATA_BASE = 0x1000_0000

#: Padding between consecutive data regions, in bytes.
REGION_PADDING = 64


@dataclass(frozen=True)
class CodeSpec:
    """Static-code shape knobs.

    Attributes:
        num_functions: number of functions in the program image.
        blocks_per_function: basic blocks per function.
        hot_function_fraction: fraction of functions that form the hot
            set (the interpreter spends most time there); controls the
            instruction working set.
        cold_visit_rate: probability that the next function pass detours
            through a cold function.
        loop_blocks: mean basic blocks per loop body.
        loop_iter_mean: mean iterations per loop visit; large values
            produce highly predictable back-edges and long streaming
            memory bursts.
        diamond_rate: fraction of in-loop blocks whose terminator is a
            data-dependent conditional (an if/else diamond).
        function_gap_bytes: address distance between function starts;
            with ~4 KB gaps each visited function touches its own page.
    """

    num_functions: int = 16
    blocks_per_function: int = 12
    hot_function_fraction: float = 0.5
    cold_visit_rate: float = 0.05
    loop_blocks: int = 3
    loop_iter_mean: float = 12.0
    diamond_rate: float = 0.3
    function_gap_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.num_functions < 1:
            raise ProfileError("num_functions must be >= 1")
        if self.blocks_per_function < 1:
            raise ProfileError("blocks_per_function must be >= 1")
        if not 0.0 < self.hot_function_fraction <= 1.0:
            raise ProfileError("hot_function_fraction must be in (0, 1]")
        if not 0.0 <= self.cold_visit_rate <= 1.0:
            raise ProfileError("cold_visit_rate must be in [0, 1]")
        if self.loop_blocks < 1:
            raise ProfileError("loop_blocks must be >= 1")
        if self.loop_iter_mean < 1.0:
            raise ProfileError("loop_iter_mean must be >= 1")
        if not 0.0 <= self.diamond_rate <= 1.0:
            raise ProfileError("diamond_rate must be in [0, 1]")
        if self.function_gap_bytes < 64:
            raise ProfileError("function_gap_bytes must be >= 64")


@dataclass
class BasicBlock:
    """One static basic block.

    Attributes:
        block_id: global block index.
        function: owning function index.
        pc_base: address of the first instruction.
        opclasses: per-slot instruction classes; the final slot is always
            :attr:`OpClass.BRANCH`.
        diamond: outcome model when the terminator is data-dependent,
            else None (terminator outcome follows control flow).
        memory_slots: (slot index, behavior) pairs for the block's
            memory instructions.
    """

    block_id: int
    function: int
    pc_base: int
    opclasses: np.ndarray
    diamond: Optional[BranchModel] = None
    memory_slots: List[Tuple[int, AccessBehavior]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.opclasses)

    @property
    def pcs(self) -> np.ndarray:
        """Per-slot instruction addresses."""
        return (
            np.uint64(self.pc_base)
            + np.arange(len(self.opclasses), dtype=np.uint64)
            * np.uint64(INSTRUCTION_BYTES)
        )


@dataclass
class Loop:
    """A contiguous run of blocks executed as a loop body."""

    first_block: int
    last_block: int

    @property
    def block_ids(self) -> range:
        return range(self.first_block, self.last_block + 1)


@dataclass
class Function:
    """A function: an ordered list of loops over contiguous blocks."""

    index: int
    loops: List[Loop]

    @property
    def first_block(self) -> int:
        return self.loops[0].first_block

    @property
    def last_block(self) -> int:
        return self.loops[-1].last_block


@dataclass
class ControlTables:
    """Flat structural arrays the batch interpreter walks.

    Everything here is a pure function of the static image: loops are
    numbered function-major (all of function 0's loops, then function
    1's, ...), matching the order the interpreter executes them.

    Attributes:
        loop_first / loop_last: block-id range of every loop body.
        loop_is_last: whether the loop is the final loop of its
            function (its final back-edge is a taken function exit).
        func_loop_start: offsets into the loop arrays per function
            (``n_functions + 1`` entries).
        loop_of_block: owning loop index per block id.
        skip_diamond: per block, True when its terminator is a
            data-dependent diamond *that can skip the next block*
            (``block + 2 <= loop_last``); diamonds too close to the
            loop tail degenerate to fall-through.
        skip_blocks_by_loop: skip-diamond block ids per loop, ascending.
        skip_block_ids: all skip-diamond block ids, ascending — the
            canonical draw order of the outcome protocol.
        skip_count_by_loop: number of skip-diamond blocks per loop.
        loop_has_skip: ``skip_count_by_loop > 0`` (precomputed mask).
        skip_cols_concat: body-position (column) of every skip-diamond
            block, loop-major ascending — the flat companion of
            ``skip_blocks_by_loop`` used by the batch scatter.
        skip_col_start: per-loop offsets into ``skip_cols_concat``.
        hot / cold: hot- and cold-function index arrays.
        block_lengths: instruction count per block id.
        mean_block_length: average block length (chunk sizing).
    """

    loop_first: np.ndarray
    loop_last: np.ndarray
    loop_is_last: np.ndarray
    func_loop_start: np.ndarray
    loop_of_block: np.ndarray
    skip_diamond: np.ndarray
    skip_blocks_by_loop: List[np.ndarray]
    skip_block_ids: np.ndarray
    skip_count_by_loop: np.ndarray
    loop_has_skip: np.ndarray
    skip_cols_concat: np.ndarray
    skip_col_start: np.ndarray
    hot: np.ndarray
    cold: np.ndarray
    block_lengths: np.ndarray
    mean_block_length: float


@dataclass
class MemoryPlan:
    """Class-grouped view of every static memory instruction.

    The batch expansion fuses each behavior class into single array
    operations; this plan holds the per-instance parameters in flat
    arrays, ordered by (block id, slot) — the same order the scalar
    reference iterates, which is what keeps the random-stream RNG
    consumption identical between the two engines.

    ``scalar`` / ``linear`` (sequential + strided) / ``pointer``
    behaviors consume no randomness, so fusing them is a pure
    arithmetic rewrite.  ``random`` instances draw one splittable
    uniform block per call (see
    :meth:`repro.synth.memory.RandomStream.generate`), so one batched
    ``rng.random`` over all instances reproduces the per-instance
    stream bit-for-bit.
    """

    scalar_blocks: np.ndarray
    scalar_slots: np.ndarray
    scalar_bases: np.ndarray

    linear_behaviors: List[SequentialStream]
    linear_blocks: np.ndarray
    linear_slots: np.ndarray
    linear_bases: np.ndarray
    linear_steps: np.ndarray
    linear_repeats: np.ndarray
    linear_span: np.ndarray

    pointer_behaviors: List[PointerChase]
    pointer_blocks: np.ndarray
    pointer_slots: np.ndarray
    pointer_bases: np.ndarray
    pointer_span: np.ndarray
    pointer_order_start: np.ndarray
    pointer_orders: np.ndarray

    random_behaviors: List[RandomStream]
    random_blocks: np.ndarray
    random_slots: np.ndarray
    random_bases: np.ndarray
    random_span: np.ndarray
    random_hot_span: np.ndarray
    random_bias: np.ndarray

    #: True when an unknown behavior class is present and the expansion
    #: must fall back to per-instance ``generate`` calls.
    fallback: bool


@dataclass
class StaticCode:
    """The complete static image of a synthetic program."""

    blocks: List[BasicBlock]
    functions: List[Function]
    hot_functions: List[int]
    cold_functions: List[int]
    data_bytes_allocated: int

    def block_lengths(self) -> np.ndarray:
        """Length of every block, indexed by block id."""
        lengths = getattr(self, "_block_lengths", None)
        if lengths is None:
            lengths = np.array(
                [len(block) for block in self.blocks], dtype=np.int64
            )
            self._block_lengths = lengths
        return lengths

    def slot_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat slot tables ``(opclasses, slot_starts, pc_bases)``.

        ``opclasses`` concatenates every block's per-slot classes;
        ``slot_starts[b]`` is block ``b``'s offset into it, so
        expanding a visit sequence into per-instruction columns is a
        single flat gather instead of one ``np.concatenate`` piece per
        visit.  ``pc_bases[b]`` is the block's first-instruction
        address (slot PCs are ``pc_base + 4 * slot``).  Built lazily,
        cached for the lifetime of the image.
        """
        tables = getattr(self, "_slot_tables", None)
        if tables is None:
            lengths = self.block_lengths()
            slot_starts = np.zeros(len(self.blocks), dtype=np.int64)
            np.cumsum(lengths[:-1], out=slot_starts[1:])
            opclasses = np.concatenate(
                [block.opclasses for block in self.blocks]
            )
            pc_bases = np.array(
                [block.pc_base for block in self.blocks], dtype=np.uint64
            )
            tables = (opclasses, slot_starts, pc_bases)
            self._slot_tables = tables
        return tables

    def control_tables(self) -> ControlTables:
        """The flat :class:`ControlTables` view (built lazily, cached)."""
        tables = getattr(self, "_control_tables", None)
        if tables is None:
            tables = self._build_control_tables()
            self._control_tables = tables
        return tables

    def _build_control_tables(self) -> ControlTables:
        loops = [loop for function in self.functions for loop in function.loops]
        loop_first = np.array([loop.first_block for loop in loops], np.int64)
        loop_last = np.array([loop.last_block for loop in loops], np.int64)
        func_loop_start = np.zeros(len(self.functions) + 1, dtype=np.int64)
        np.cumsum(
            [len(function.loops) for function in self.functions],
            out=func_loop_start[1:],
        )
        loop_is_last = np.zeros(len(loops), dtype=bool)
        loop_is_last[func_loop_start[1:] - 1] = True

        loop_of_block = np.empty(len(self.blocks), dtype=np.int64)
        skip_diamond = np.zeros(len(self.blocks), dtype=bool)
        skip_blocks_by_loop: List[np.ndarray] = []
        for loop_id, loop in enumerate(loops):
            loop_of_block[loop.first_block : loop.last_block + 1] = loop_id
            skips = [
                block_id
                for block_id in loop.block_ids
                if self.blocks[block_id].diamond is not None
                and block_id + 2 <= loop.last_block
            ]
            skip_diamond[skips] = True
            skip_blocks_by_loop.append(np.array(skips, dtype=np.int64))

        skip_count_by_loop = np.array(
            [len(skips) for skips in skip_blocks_by_loop], dtype=np.int64
        )
        skip_col_start = np.zeros(len(loops) + 1, dtype=np.int64)
        np.cumsum(skip_count_by_loop, out=skip_col_start[1:])
        skip_cols_concat = (
            np.concatenate(skip_blocks_by_loop)
            if skip_count_by_loop.sum()
            else np.empty(0, dtype=np.int64)
        ) - np.repeat(loop_first, skip_count_by_loop)

        lengths = self.block_lengths()
        return ControlTables(
            loop_first=loop_first,
            loop_last=loop_last,
            loop_is_last=loop_is_last,
            func_loop_start=func_loop_start,
            loop_of_block=loop_of_block,
            skip_diamond=skip_diamond,
            skip_blocks_by_loop=skip_blocks_by_loop,
            skip_block_ids=np.flatnonzero(skip_diamond),
            skip_count_by_loop=skip_count_by_loop,
            loop_has_skip=skip_count_by_loop > 0,
            skip_cols_concat=skip_cols_concat,
            skip_col_start=skip_col_start,
            hot=np.array(self.hot_functions, dtype=np.int64),
            cold=np.array(self.cold_functions, dtype=np.int64),
            block_lengths=lengths,
            mean_block_length=float(lengths.mean()),
        )

    def memory_blocks(self) -> List[BasicBlock]:
        """Blocks owning at least one memory instruction (cached)."""
        blocks = getattr(self, "_memory_blocks", None)
        if blocks is None:
            blocks = [block for block in self.blocks if block.memory_slots]
            self._memory_blocks = blocks
        return blocks

    def memory_plan(self) -> MemoryPlan:
        """The class-grouped :class:`MemoryPlan` (built lazily, cached)."""
        plan = getattr(self, "_memory_plan", None)
        if plan is None:
            plan = self._build_memory_plan()
            self._memory_plan = plan
        return plan

    def _build_memory_plan(self) -> MemoryPlan:
        from .memory import ACCESS_BYTES

        groups: Dict[str, list] = {
            "scalar": [],
            "linear": [],
            "pointer": [],
            "random": [],
        }
        fallback = False
        for block in self.memory_blocks():
            for slot, behavior in block.memory_slots:
                if isinstance(behavior, ScalarStream):
                    groups["scalar"].append((block.block_id, slot, behavior))
                elif isinstance(behavior, SequentialStream):
                    groups["linear"].append((block.block_id, slot, behavior))
                elif isinstance(behavior, PointerChase):
                    groups["pointer"].append((block.block_id, slot, behavior))
                elif isinstance(behavior, RandomStream):
                    groups["random"].append((block.block_id, slot, behavior))
                else:
                    fallback = True

        def ids(kind: str, index: int) -> np.ndarray:
            return np.array(
                [item[index] for item in groups[kind]], dtype=np.int64
            )

        def bases(kind: str) -> np.ndarray:
            return np.array(
                [item[2].base for item in groups[kind]], dtype=np.uint64
            )

        linear = [item[2] for item in groups["linear"]]
        pointer = [item[2] for item in groups["pointer"]]
        random = [item[2] for item in groups["random"]]
        pointer_counts = np.array(
            [behavior._slots for behavior in pointer], dtype=np.int64
        )
        pointer_order_start = np.zeros(len(pointer) + 1, dtype=np.int64)
        np.cumsum(pointer_counts, out=pointer_order_start[1:])
        return MemoryPlan(
            scalar_blocks=ids("scalar", 0),
            scalar_slots=ids("scalar", 1),
            scalar_bases=bases("scalar"),
            linear_behaviors=linear,
            linear_blocks=ids("linear", 0),
            linear_slots=ids("linear", 1),
            linear_bases=bases("linear"),
            linear_steps=np.array(
                [b.stride // ACCESS_BYTES for b in linear], dtype=np.int64
            ),
            linear_repeats=np.array(
                [b.repeats for b in linear], dtype=np.int64
            ),
            linear_span=np.array([b._slots for b in linear], dtype=np.int64),
            pointer_behaviors=pointer,
            pointer_blocks=ids("pointer", 0),
            pointer_slots=ids("pointer", 1),
            pointer_bases=bases("pointer"),
            pointer_span=pointer_counts,
            pointer_order_start=pointer_order_start,
            pointer_orders=(
                np.concatenate([b._order for b in pointer])
                if pointer
                else np.empty(0, dtype=np.int64)
            ),
            random_behaviors=random,
            random_blocks=ids("random", 0),
            random_slots=ids("random", 1),
            random_bases=bases("random"),
            random_span=np.array([b._slots for b in random], dtype=np.int64),
            random_hot_span=np.array(
                [b._hot_slots for b in random], dtype=np.int64
            ),
            random_bias=np.array(
                [b.hot_probability for b in random], dtype=np.float64
            ),
            fallback=fallback,
        )

    def reset_state(self) -> None:
        """Rewind every stateful behavior/branch model in the image.

        The image is memoized and shared across :func:`generate_trace`
        calls; resetting makes each generation start from the same
        initial cursors, keeping traces deterministic.
        """
        for block in self.blocks:
            if block.diamond is not None:
                block.diamond.reset()
            for _, behavior in block.memory_slots:
                behavior.reset()

    @property
    def code_bytes(self) -> int:
        """Static code size from first to last instruction."""
        last = self.blocks[-1]
        first = self.blocks[0]
        return (last.pc_base + len(last) * INSTRUCTION_BYTES) - first.pc_base


def _sample_block_length(
    rng: np.random.Generator, mean_length: float
) -> int:
    """Geometric block length with the given mean, minimum 2 slots."""
    if mean_length <= 2.0:
        return 2
    # Shifted geometric: 2 + G where E[G] = mean_length - 2.
    p = 1.0 / (mean_length - 1.0)
    return 2 + int(rng.geometric(min(max(p, 1e-6), 1.0))) - 1


def _sample_body_class(
    rng: np.random.Generator, classes: np.ndarray, weights: np.ndarray
) -> int:
    return int(rng.choice(classes, p=weights))


def build_code(
    rng: np.random.Generator,
    spec: CodeSpec,
    mix,
    memory_spec,
    branch_spec,
) -> StaticCode:
    """Build the static program image for a profile.

    Args:
        rng: the benchmark's seeded generator.
        spec: static-code shape (:class:`CodeSpec`).
        mix: instruction-mix fractions (:class:`repro.synth.MixSpec`).
        memory_spec: data-behavior knobs (:class:`repro.synth.MemorySpec`).
        branch_spec: branch-model knobs (:class:`repro.synth.BranchSpec`).

    Returns:
        A fully populated :class:`StaticCode`.
    """
    branch_fraction = max(mix.branch, 1e-3)
    mean_block_length = max(2.0, 1.0 / branch_fraction)

    body_classes, body_weights = mix.body_distribution()

    blocks: List[BasicBlock] = []
    functions: List[Function] = []
    block_id = 0
    for function_index in range(spec.num_functions):
        function_base = CODE_BASE + function_index * spec.function_gap_bytes
        pc_cursor = function_base
        loops: List[Loop] = []
        blocks_remaining = spec.blocks_per_function
        while blocks_remaining > 0:
            body_size = min(
                blocks_remaining,
                max(1, int(rng.poisson(spec.loop_blocks)) or 1),
            )
            first = block_id
            for position in range(body_size):
                length = _sample_block_length(rng, mean_block_length)
                opclasses = np.empty(length, dtype=np.uint8)
                for slot in range(length - 1):
                    opclasses[slot] = _sample_body_class(
                        rng, body_classes, body_weights
                    )
                opclasses[length - 1] = int(OpClass.BRANCH)
                in_body = position < body_size - 1
                diamond = None
                if in_body and rng.random() < spec.diamond_rate:
                    diamond = make_branch_model(
                        rng,
                        pattern_fraction=branch_spec.pattern_fraction,
                        taken_bias=branch_spec.taken_bias,
                        max_period=branch_spec.max_pattern_period,
                    )
                blocks.append(
                    BasicBlock(
                        block_id=block_id,
                        function=function_index,
                        pc_base=pc_cursor,
                        opclasses=opclasses,
                        diamond=diamond,
                    )
                )
                pc_cursor += length * INSTRUCTION_BYTES
                block_id += 1
            loops.append(Loop(first_block=first, last_block=block_id - 1))
            blocks_remaining -= body_size
        functions.append(Function(index=function_index, loops=loops))

    hot_count = max(1, round(spec.num_functions * spec.hot_function_fraction))
    order = list(rng.permutation(spec.num_functions))
    hot_functions = sorted(int(f) for f in order[:hot_count])
    cold_functions = sorted(int(f) for f in order[hot_count:])

    data_allocated = _assign_memory_behaviors(rng, blocks, memory_spec)

    return StaticCode(
        blocks=blocks,
        functions=functions,
        hot_functions=hot_functions,
        cold_functions=cold_functions,
        data_bytes_allocated=data_allocated,
    )


def _assign_memory_behaviors(
    rng: np.random.Generator,
    blocks: List[BasicBlock],
    memory_spec,
) -> int:
    """Give every static memory instruction an access behavior.

    The data footprint is divided evenly among the non-scalar behaviors;
    scalar behaviors get a single slot each.  Returns the total number of
    data bytes allocated.
    """
    load_slots: List[Tuple[BasicBlock, int]] = []
    store_slots: List[Tuple[BasicBlock, int]] = []
    for block in blocks:
        for slot, opclass in enumerate(block.opclasses):
            if opclass == int(OpClass.LOAD):
                load_slots.append((block, slot))
            elif opclass == int(OpClass.STORE):
                store_slots.append((block, slot))

    plan: List[Tuple[BasicBlock, int, str]] = []
    for slots, mix in (
        (load_slots, memory_spec.load_mix),
        (store_slots, memory_spec.store_mix),
    ):
        kinds = list(mix.keys())
        weights = np.array([mix[kind] for kind in kinds], dtype=float)
        weights = weights / weights.sum()
        for block, slot in slots:
            kind = str(rng.choice(kinds, p=weights))
            plan.append((block, slot, kind))

    non_scalar = sum(1 for _, _, kind in plan if kind != "scalar")
    region_bytes = memory_spec.footprint_bytes // max(non_scalar, 1)
    region_bytes = max(region_bytes, 64)

    cursor = DATA_BASE
    for block, slot, kind in plan:
        footprint = 8 if kind == "scalar" else region_bytes
        behavior = make_behavior(
            kind,
            base=cursor,
            footprint=footprint,
            rng=rng,
            stride=memory_spec.stride_bytes,
        )
        block.memory_slots.append((slot, behavior))
        cursor += footprint + REGION_PADDING
    for block in blocks:
        block.memory_slots.sort(key=lambda pair: pair[0])
    return cursor - DATA_BASE
