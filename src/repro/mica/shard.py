"""Shard-mergeable characterization state (the shard engine core).

Every Table II section's partial state over a contiguous trace range
``[start, end)`` is made explicit, serializable, and *mergeable*:
:func:`shard_state` characterizes one chunk in isolation,
:func:`merge_states` combines the states of two adjacent ranges, and
:func:`finalize_state` turns a rooted (``start == 0``) state into the
47-dim vector — **bit-for-bit** identical to one-shot
:func:`repro.mica.characterize` for every shard geometry, because every
characteristic is an exact integer-count ratio divided once in IEEE
doubles and integer sums below 2**53 are exact in any order.

Per-section carry design (what crosses a shard boundary):

* **instruction mix** — per-opclass counts; merge adds.
* **working set** — sorted unique block/page id arrays; merge unions.
* **strides** — per-stream threshold counts plus a global first/last
  address carry and per-PC first/last tables; merging emits exactly the
  boundary deltas (global: one per stream; local: one per PC present on
  both sides), so pair counts telescope to the one-shot totals.
* **register traffic** — additive counts, a per-register last-writer
  table (absolute positions), and an *orphan* list of live reads with
  no in-range producer; merging resolves the right side's orphans
  against the left's last writers.  In-range dependency distances are
  translation invariant, so in-shard work reuses
  :func:`~repro.mica.ilp.producer_indices` unchanged.
* **ILP** — windows are aligned to absolute multiples of each window
  size, so a shard closes every full window it contains
  (:func:`~repro.mica.ilp.full_window_cycle_counts`) and carries just
  the raw first/last ``max(W) - 1`` operand rows; a merge closes at
  most one straddling window per size with a tiny scalar walk, and
  finalization closes the trailing partial window the one-shot engine
  counts.
* **PPM** — the one section with a sequential dependence.  The *cold*
  mergeable state holds the global/per-PC history shift registers,
  per-(variant, order) count tables over branches whose full ``m``-bit
  history is known inside the range, and bounded deferred lists (the
  first ``< m`` branches globally / per PC) resolved when a merge
  supplies the missing history (or the merged range becomes rooted —
  histories start at zero, so rooted states zero-pad).  The
  carry-dependent *predictions* are a second pass per shard
  (:func:`ppm_shard_correct`) that seeds the in-shard history streams
  from a rooted incoming prefix state and adds its count tables to the
  in-shard prior counts — reusing the one-shot vectorized kernels.

The drivers (sequential streaming fold and the two-round parallel
scheduler in :mod:`repro.perf.sharding`) are thin compositions of these
three operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CharacterizationError
from ..isa import NO_REG, OpClass
from ..isa.registers import FP_ZERO_REG, INT_ZERO_REG, TOTAL_REGS
from ..trace import Trace
from .characteristics import NUM_CHARACTERISTICS, category_slices
from .ilp import NO_PRODUCER, full_window_cycle_counts, producer_indices
from .ppm import (
    MAX_VECTOR_ORDER,
    VARIANTS,
    _history_streams,
    _prior_outcome_counts,
)

#: Table II categories in vector order; a state's ``sections`` tuple is
#: a subset of these (the sections it actually carries).
SECTION_ORDER: Tuple[str, ...] = tuple(category_slices())

_SLICES = category_slices()
_MIX_SLICE = _SLICES["instruction mix"]
_ILP_SLICE = _SLICES["ILP"]
_REG_SLICE = _SLICES["register traffic"]
_WS_SLICE = _SLICES["working set size"]
_STRIDE_SLICE = _SLICES["data stream strides"]
_PPM_SLICE = _SLICES["branch predictability"]

_U64_ONE = np.uint64(1)


def resolve_wanted(
    categories: "Optional[Sequence[str]]" = None,
    indices: "Optional[Sequence[int]]" = None,
) -> np.ndarray:
    """The 47-entry wanted mask, mirroring ``segmented_characterize``.

    Raises:
        CharacterizationError: unknown category name or out-of-range
            characteristic index.
    """
    wanted = np.zeros(NUM_CHARACTERISTICS, dtype=bool)
    if categories is None and indices is None:
        wanted[:] = True
        return wanted
    if categories is not None:
        unknown = set(categories) - set(SECTION_ORDER)
        if unknown:
            raise CharacterizationError(
                f"unknown Table II categories: {sorted(unknown)}"
            )
        for category in categories:
            wanted[_SLICES[category]] = True
    if indices is not None:
        for index in indices:
            if not 0 <= int(index) < NUM_CHARACTERISTICS:
                raise CharacterizationError(
                    f"characteristic index out of range: {index}"
                )
            wanted[int(index)] = True
    return wanted


def wanted_sections(wanted: np.ndarray) -> Tuple[str, ...]:
    """The Table II categories a wanted mask touches, in vector order."""
    return tuple(
        name for name in SECTION_ORDER if wanted[_SLICES[name]].any()
    )


# -- small shared helpers -------------------------------------------------


def _sorted_lookup(
    sorted_keys: np.ndarray, queries: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(clamped positions, found mask)`` in a sorted unique array."""
    count = len(queries)
    if len(sorted_keys) == 0:
        return (
            np.zeros(count, dtype=np.int64),
            np.zeros(count, dtype=bool),
        )
    positions = np.searchsorted(sorted_keys, queries)
    safe = np.minimum(positions, len(sorted_keys) - 1)
    found = (positions < len(sorted_keys)) & (
        sorted_keys[safe] == queries
    )
    return safe, found


def _masked_gather(
    values: np.ndarray,
    positions: np.ndarray,
    mask: np.ndarray,
    fill,
    dtype,
) -> np.ndarray:
    """``values[positions]`` where ``mask``, else ``fill`` (empty-safe)."""
    result = np.full(len(positions), fill, dtype=dtype)
    if len(values) and mask.any():
        result[mask] = values[positions[mask]]
    return result


def _group_positions(keys: np.ndarray) -> np.ndarray:
    """In-group occurrence index (0-based, time order) per entry."""
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    positions = np.arange(n, dtype=np.int64)
    group_start = np.maximum.accumulate(
        np.where(new_group, positions, 0)
    )
    in_group = positions - group_start
    result = np.empty(n, dtype=np.int64)
    result[order] = in_group
    return result


# -- instruction mix ------------------------------------------------------


@dataclass
class MixState:
    """Per-opclass dynamic instruction counts."""

    counts: np.ndarray  # (len(OpClass),) int64

    @staticmethod
    def cold(chunk: Trace) -> "MixState":
        return MixState(
            np.bincount(
                chunk.opclass, minlength=len(OpClass)
            ).astype(np.int64)
        )

    @staticmethod
    def merge(a: "MixState", b: "MixState") -> "MixState":
        return MixState(a.counts + b.counts)

    def finalize(self, n: int) -> np.ndarray:
        total = float(n)
        counts = self.counts
        return np.array(
            [
                counts[int(OpClass.LOAD)] / total,
                counts[int(OpClass.STORE)] / total,
                counts[int(OpClass.BRANCH)] / total,
                counts[int(OpClass.INT_ALU)] / total,
                counts[int(OpClass.INT_MUL)] / total,
                counts[int(OpClass.FP)] / total,
            ]
        )


# -- working set ----------------------------------------------------------


def _granularity_shift(granularity: int) -> np.uint64:
    shift = int(granularity).bit_length() - 1
    if granularity != (1 << shift):
        raise CharacterizationError(
            f"granularity must be a power of two, got {granularity}"
        )
    return np.uint64(shift)


@dataclass
class WorkingSetState:
    """Sorted unique block/page ids touched in the range."""

    data_blocks: np.ndarray
    data_pages: np.ndarray
    instr_blocks: np.ndarray
    instr_pages: np.ndarray

    @staticmethod
    def cold(
        chunk: Trace, block_bytes: int, page_bytes: int
    ) -> "WorkingSetState":
        block_shift = _granularity_shift(block_bytes)
        page_shift = _granularity_shift(page_bytes)
        data = chunk.mem_addr[chunk.memory_mask]
        instr = chunk.pc
        return WorkingSetState(
            np.unique(data >> block_shift),
            np.unique(data >> page_shift),
            np.unique(instr >> block_shift),
            np.unique(instr >> page_shift),
        )

    @staticmethod
    def merge(
        a: "WorkingSetState", b: "WorkingSetState"
    ) -> "WorkingSetState":
        return WorkingSetState(
            np.union1d(a.data_blocks, b.data_blocks),
            np.union1d(a.data_pages, b.data_pages),
            np.union1d(a.instr_blocks, b.instr_blocks),
            np.union1d(a.instr_pages, b.instr_pages),
        )

    def finalize(self) -> np.ndarray:
        return np.array(
            [
                len(self.data_blocks),
                len(self.data_pages),
                len(self.instr_blocks),
                len(self.instr_pages),
            ],
            dtype=float,
        )


# -- data stream strides --------------------------------------------------

#: Stream order inside the stride section (Table II order).
_STRIDE_STREAMS = (
    "local_load", "global_load", "local_store", "global_store"
)


def _stride_threshold_counts(
    deltas: np.ndarray, thresholds: Sequence[int]
) -> np.ndarray:
    """``count(|delta| <= t)`` per threshold (t = 0 is an equality)."""
    counts = np.zeros(len(thresholds), dtype=np.int64)
    if len(deltas) == 0:
        return counts
    magnitudes = np.abs(deltas.astype(np.int64))
    for position, threshold in enumerate(thresholds):
        counts[position] = int((magnitudes <= threshold).sum())
    return counts


def _pc_first_last(
    pcs: np.ndarray, addresses: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-PC (sorted) first and last in-range access addresses."""
    n = len(pcs)
    if n == 0:
        empty64 = np.zeros(0, dtype=np.int64)
        return np.zeros(0, dtype=np.uint64), empty64, empty64
    order = np.argsort(pcs, kind="stable")
    sorted_pcs = pcs[order]
    sorted_addresses = addresses[order].astype(np.int64)
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = sorted_pcs[1:] != sorted_pcs[:-1]
    last_of_group = np.ones(n, dtype=bool)
    last_of_group[:-1] = new_group[1:]
    return (
        sorted_pcs[new_group],
        sorted_addresses[new_group],
        sorted_addresses[last_of_group],
    )


def _in_shard_local_strides(
    pcs: np.ndarray, addresses: np.ndarray
) -> np.ndarray:
    """Same-PC consecutive deltas inside one shard (int64)."""
    if len(addresses) < 2:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(pcs, kind="stable")
    sorted_pcs = pcs[order]
    sorted_addresses = addresses[order].astype(np.int64)
    deltas = np.diff(sorted_addresses)
    return deltas[sorted_pcs[1:] == sorted_pcs[:-1]]


@dataclass
class StrideState:
    """Stride threshold counts plus boundary carries per access kind.

    ``counts``/``pairs`` are indexed by :data:`_STRIDE_STREAMS`;
    ``global_*`` carries are per kind (0 = load, 1 = store), addresses
    stored int64-cast so boundary deltas wrap exactly like the
    one-shot ``np.diff(addresses.astype(np.int64))``.
    """

    counts: np.ndarray  # (4, thresholds) int64
    pairs: np.ndarray  # (4,) int64
    global_n: np.ndarray  # (2,) int64 accesses per kind
    global_first: np.ndarray  # (2,) int64
    global_last: np.ndarray  # (2,) int64
    local_pcs: "List[np.ndarray]"  # per kind, sorted uint64
    local_first: "List[np.ndarray]"  # per kind, int64
    local_last: "List[np.ndarray]"  # per kind, int64

    @staticmethod
    def cold(
        chunk: Trace, thresholds: Sequence[int]
    ) -> "StrideState":
        load_mask = chunk.load_mask
        store_mask = chunk.store_mask
        streams = (
            (chunk.pc[load_mask], chunk.mem_addr[load_mask]),
            (chunk.pc[store_mask], chunk.mem_addr[store_mask]),
        )
        counts = np.zeros((4, len(thresholds)), dtype=np.int64)
        pairs = np.zeros(4, dtype=np.int64)
        global_n = np.zeros(2, dtype=np.int64)
        global_first = np.zeros(2, dtype=np.int64)
        global_last = np.zeros(2, dtype=np.int64)
        local_pcs: "List[np.ndarray]" = []
        local_first: "List[np.ndarray]" = []
        local_last: "List[np.ndarray]" = []
        for kind, (pcs, addresses) in enumerate(streams):
            local_deltas = _in_shard_local_strides(pcs, addresses)
            counts[2 * kind] = _stride_threshold_counts(
                local_deltas, thresholds
            )
            pairs[2 * kind] = len(local_deltas)
            if len(addresses) >= 2:
                global_deltas = np.diff(addresses.astype(np.int64))
            else:
                global_deltas = np.empty(0, dtype=np.int64)
            counts[2 * kind + 1] = _stride_threshold_counts(
                global_deltas, thresholds
            )
            pairs[2 * kind + 1] = len(global_deltas)
            global_n[kind] = len(addresses)
            if len(addresses):
                cast = addresses.astype(np.int64)
                global_first[kind] = cast[0]
                global_last[kind] = cast[-1]
            pc_table, first, last = _pc_first_last(pcs, addresses)
            local_pcs.append(pc_table)
            local_first.append(first)
            local_last.append(last)
        return StrideState(
            counts, pairs, global_n, global_first, global_last,
            local_pcs, local_first, local_last,
        )

    @staticmethod
    def merge(
        a: "StrideState",
        b: "StrideState",
        thresholds: Sequence[int],
    ) -> "StrideState":
        counts = a.counts + b.counts
        pairs = a.pairs + b.pairs
        global_n = a.global_n + b.global_n
        global_first = np.where(
            a.global_n > 0, a.global_first, b.global_first
        )
        global_last = np.where(
            b.global_n > 0, b.global_last, a.global_last
        )
        local_pcs: "List[np.ndarray]" = []
        local_first: "List[np.ndarray]" = []
        local_last: "List[np.ndarray]" = []
        for kind in range(2):
            # Boundary global delta: last access of a to first of b.
            if a.global_n[kind] > 0 and b.global_n[kind] > 0:
                delta = (
                    b.global_first[kind:kind + 1]
                    - a.global_last[kind:kind + 1]
                )
                counts[2 * kind + 1] += _stride_threshold_counts(
                    delta, thresholds
                )
                pairs[2 * kind + 1] += 1
            # Boundary local deltas: one per PC present on both sides.
            a_pcs = a.local_pcs[kind]
            b_pcs = b.local_pcs[kind]
            positions, found = _sorted_lookup(a_pcs, b_pcs)
            if found.any():
                deltas = (
                    b.local_first[kind][found]
                    - a.local_last[kind][positions[found]]
                )
                counts[2 * kind] += _stride_threshold_counts(
                    deltas, thresholds
                )
                pairs[2 * kind] += int(found.sum())
            merged_pcs = np.union1d(a_pcs, b_pcs)
            a_pos, in_a = _sorted_lookup(a_pcs, merged_pcs)
            b_pos, in_b = _sorted_lookup(b_pcs, merged_pcs)
            first = np.zeros(len(merged_pcs), dtype=np.int64)
            last = np.zeros(len(merged_pcs), dtype=np.int64)
            if len(a_pcs):
                first[in_a] = a.local_first[kind][a_pos[in_a]]
                last[in_a] = a.local_last[kind][a_pos[in_a]]
            if len(b_pcs):
                only_b = in_b & ~in_a
                first[only_b] = b.local_first[kind][b_pos[only_b]]
                last[in_b] = b.local_last[kind][b_pos[in_b]]
            local_pcs.append(merged_pcs)
            local_first.append(first)
            local_last.append(last)
        return StrideState(
            counts, pairs, global_n, global_first, global_last,
            local_pcs, local_first, local_last,
        )

    def finalize(self) -> np.ndarray:
        values = np.zeros(self.counts.size, dtype=float)
        width = self.counts.shape[1]
        for stream in range(4):
            total = float(self.pairs[stream])
            if total == 0.0:
                continue
            for position in range(width):
                values[stream * width + position] = (
                    float(self.counts[stream, position]) / total
                )
        return values


# -- register traffic -----------------------------------------------------


@dataclass
class RegisterState:
    """Additive traffic counts plus producer carry tables.

    ``last_writer`` holds absolute trace positions (-1 = none);
    ``orphan_*`` lists live reads whose producer lies before the range.
    """

    operand_sum: int
    total_writes: int
    consumed_reads: int
    dist_counts: np.ndarray  # (thresholds,) int64
    last_writer: np.ndarray  # (TOTAL_REGS,) int64
    orphan_pos: np.ndarray  # (k,) int64 absolute positions
    orphan_reg: np.ndarray  # (k,) int64

    @staticmethod
    def cold(
        chunk: Trace,
        start: int,
        thresholds: Sequence[int],
        producers: Tuple[np.ndarray, np.ndarray],
    ) -> "RegisterState":
        n = len(chunk)
        operand_sum = int(
            ((chunk.src1 != NO_REG).astype(np.int64)
             + (chunk.src2 != NO_REG).astype(np.int64)).sum()
        )
        total_writes = int((chunk.dst != NO_REG).sum())
        positions = np.arange(n, dtype=np.int64)
        consumed = 0
        dist_counts = np.zeros(len(thresholds), dtype=np.int64)
        orphan_pos_parts: "List[np.ndarray]" = []
        orphan_reg_parts: "List[np.ndarray]" = []
        for source, producer in zip(
            (chunk.src1, chunk.src2), producers
        ):
            has_producer = producer != NO_PRODUCER
            consumed += int(has_producer.sum())
            distances = (
                positions[has_producer] - producer[has_producer]
            )
            for position, bound in enumerate(thresholds):
                dist_counts[position] += int(
                    (distances <= bound).sum()
                )
            live = (
                (source != NO_REG)
                & (source != INT_ZERO_REG)
                & (source != FP_ZERO_REG)
            )
            orphan = live & ~has_producer
            orphan_pos_parts.append(
                positions[orphan] + np.int64(start)
            )
            orphan_reg_parts.append(source[orphan].astype(np.int64))
        last_writer = np.full(TOTAL_REGS, -1, dtype=np.int64)
        writers = np.flatnonzero(chunk.dst != NO_REG)
        if len(writers):
            np.maximum.at(
                last_writer,
                chunk.dst[writers].astype(np.int64),
                writers.astype(np.int64) + np.int64(start),
            )
        return RegisterState(
            operand_sum,
            total_writes,
            consumed,
            dist_counts,
            last_writer,
            np.concatenate(orphan_pos_parts),
            np.concatenate(orphan_reg_parts),
        )

    @staticmethod
    def merge(
        a: "RegisterState",
        b: "RegisterState",
        thresholds: Sequence[int],
    ) -> "RegisterState":
        dist_counts = a.dist_counts + b.dist_counts
        consumed = a.consumed_reads + b.consumed_reads
        writer = (
            a.last_writer[b.orphan_reg]
            if len(b.orphan_reg)
            else np.zeros(0, dtype=np.int64)
        )
        resolved = writer >= 0
        if resolved.any():
            distances = b.orphan_pos[resolved] - writer[resolved]
            for position, bound in enumerate(thresholds):
                dist_counts[position] += int(
                    (distances <= bound).sum()
                )
            consumed += int(resolved.sum())
        keep = ~resolved
        return RegisterState(
            a.operand_sum + b.operand_sum,
            a.total_writes + b.total_writes,
            consumed,
            dist_counts,
            np.where(b.last_writer >= 0, b.last_writer, a.last_writer),
            np.concatenate([a.orphan_pos, b.orphan_pos[keep]]),
            np.concatenate([a.orphan_reg, b.orphan_reg[keep]]),
        )

    def finalize(self, n: int) -> np.ndarray:
        values = np.zeros(2 + len(self.dist_counts), dtype=float)
        values[0] = self.operand_sum / n
        values[1] = (
            self.consumed_reads / self.total_writes
            if self.total_writes
            else 0.0
        )
        if self.consumed_reads:
            total = float(self.consumed_reads)
            values[2:] = (
                np.asarray(self.dist_counts, dtype=float) / total
            )
        return values


# -- ILP ------------------------------------------------------------------

_ROW_FIELDS = 3  # (src1, src2, dst) per carried operand row


def _operand_rows(chunk: Trace) -> np.ndarray:
    return np.stack(
        [chunk.src1, chunk.src2, chunk.dst], axis=1
    ).astype(np.uint8)


def _rows_critical_path(rows: np.ndarray) -> int:
    """Dataflow critical path of one window's operand rows.

    Matches the scalar reference: a read's producer is the most recent
    earlier in-window write of that register (looked up *before* the
    row records its own write), zero registers never depend.
    """
    depth = 1
    writer_level: Dict[int, int] = {}
    for row in rows:
        best = 0
        for source in (int(row[0]), int(row[1])):
            if source in (NO_REG, INT_ZERO_REG, FP_ZERO_REG):
                continue
            level = writer_level.get(source, 0)
            if level > best:
                best = level
        level = best + 1
        dst = int(row[2])
        if dst != NO_REG:
            writer_level[dst] = level
        if level > depth:
            depth = level
    return depth


@dataclass
class IlpState:
    """Closed-window cycle sums plus raw boundary operand rows.

    Windows are aligned at absolute multiples of each size, so a state
    closes every full window inside its range; ``head``/``tail`` carry
    the first/last ``max(W) - 1`` operand rows so a merge can close the
    (at most one per size) straddling window and finalization the
    trailing partial one.
    """

    sizes: Tuple[int, ...]  # sorted unique window sizes
    cycles: np.ndarray  # (len(sizes),) int64
    head: np.ndarray  # (h, 3) uint8
    tail: np.ndarray  # (t, 3) uint8

    @staticmethod
    def cold(
        chunk: Trace,
        start: int,
        window_sizes: Sequence[int],
        producers: Tuple[np.ndarray, np.ndarray],
    ) -> "IlpState":
        for window in window_sizes:
            if window < 1:
                raise CharacterizationError(
                    f"invalid window size: {window}"
                )
        sizes = tuple(sorted({int(w) for w in window_sizes}))
        n = len(chunk)
        end = start + n
        starts_by_size: "Dict[int, np.ndarray]" = {}
        for window in sizes:
            first = ((start + window - 1) // window) * window
            count = max(0, (end - first) // window)
            starts_by_size[window] = (
                first - start
                + window * np.arange(count, dtype=np.int64)
            )
        closed = full_window_cycle_counts(
            producers[0], producers[1], starts_by_size, n=n
        )
        cycles = np.array(
            [closed[window] for window in sizes], dtype=np.int64
        )
        carry = min(n, max(sizes) - 1)
        rows = _operand_rows(chunk)
        head = rows[:carry].copy()
        tail = rows[n - carry:].copy()
        return IlpState(sizes, cycles, head, tail)

    @staticmethod
    def merge(
        a: "IlpState", b: "IlpState", a_start: int, boundary: int,
        b_end: int,
    ) -> "IlpState":
        if a.sizes != b.sizes:
            raise CharacterizationError(
                "cannot merge ILP states with different window sizes"
            )
        cycles = a.cycles + b.cycles
        for position, window in enumerate(a.sizes):
            window_start = (boundary // window) * window
            if window_start == boundary:
                continue  # Boundary aligned: no straddling window.
            if (
                window_start < a_start
                or window_start + window > b_end
            ):
                continue  # Not yet fully inside the merged range.
            left_rows = boundary - window_start
            right_rows = window_start + window - boundary
            rows = np.concatenate(
                [
                    a.tail[len(a.tail) - left_rows:],
                    b.head[:right_rows],
                ]
            )
            cycles[position] += _rows_critical_path(rows)
        carry = max(a.sizes) - 1
        head = np.concatenate([a.head, b.head])[:carry]
        tail = np.concatenate([a.tail, b.tail])
        tail = tail[len(tail) - min(len(tail), carry):]
        return IlpState(a.sizes, cycles, head, tail)

    def finalize(
        self, n: int, window_sizes: Sequence[int]
    ) -> np.ndarray:
        totals: Dict[int, int] = {}
        for position, window in enumerate(self.sizes):
            total = int(self.cycles[position])
            remainder = n % window
            if remainder:
                rows = self.tail[len(self.tail) - remainder:]
                total += _rows_critical_path(rows)
            totals[window] = total
        values = np.empty(len(window_sizes), dtype=float)
        for position, window in enumerate(window_sizes):
            cycles = totals[int(window)]
            values[position] = n / cycles if cycles else 0.0
        return values


# -- PPM ------------------------------------------------------------------

#: A count table for one (variant, order): lex-sorted (pc, ctx) keys
#: with per-outcome counts.  Shared-table variants store pc = 0.
CountTable = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _empty_table() -> CountTable:
    zero64 = np.zeros(0, dtype=np.int64)
    return (
        np.zeros(0, dtype=np.uint64),
        np.zeros(0, dtype=np.uint64),
        zero64,
        zero64,
    )


def _aggregate_table(
    pcs: np.ndarray,
    ctxs: np.ndarray,
    outcomes: np.ndarray,
    max_order: int,
) -> CountTable:
    """Count-table rows for one batch of (pc, ctx, outcome) updates."""
    count = len(outcomes)
    if count == 0:
        return _empty_table()
    unique_pcs, ids = np.unique(pcs, return_inverse=True)
    packed = (
        ids.astype(np.uint64) << np.uint64(max_order)
    ) | ctxs.astype(np.uint64)
    order = np.argsort(packed, kind="stable")
    sorted_packed = packed[order]
    sorted_outcomes = outcomes[order].astype(np.int64)
    new_group = np.ones(count, dtype=bool)
    new_group[1:] = sorted_packed[1:] != sorted_packed[:-1]
    group_starts = np.flatnonzero(new_group)
    taken = np.add.reduceat(sorted_outcomes, group_starts)
    totals = np.diff(np.append(group_starts, count))
    keys = sorted_packed[group_starts]
    return (
        unique_pcs[
            (keys >> np.uint64(max_order)).astype(np.int64)
        ],
        keys & np.uint64((1 << max_order) - 1),
        totals - taken,
        taken,
    )


def _merge_tables(a: CountTable, b: CountTable) -> CountTable:
    """Union-sum of two lex-sorted count tables."""
    if len(a[2]) == 0:
        return b
    if len(b[2]) == 0:
        return a
    pcs = np.concatenate([a[0], b[0]])
    ctxs = np.concatenate([a[1], b[1]])
    not_taken = np.concatenate([a[2], b[2]])
    taken = np.concatenate([a[3], b[3]])
    order = np.lexsort((ctxs, pcs))
    pcs = pcs[order]
    ctxs = ctxs[order]
    not_taken = not_taken[order]
    taken = taken[order]
    new_group = np.ones(len(pcs), dtype=bool)
    new_group[1:] = (pcs[1:] != pcs[:-1]) | (ctxs[1:] != ctxs[:-1])
    group_starts = np.flatnonzero(new_group)
    return (
        pcs[group_starts],
        ctxs[group_starts],
        np.add.reduceat(not_taken, group_starts),
        np.add.reduceat(taken, group_starts),
    )


def _table_lookup(
    table: CountTable,
    query_pcs: np.ndarray,
    query_ctxs: np.ndarray,
    max_order: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(not_taken, taken)`` counts for each query key (0 if absent)."""
    count = len(query_ctxs)
    zeros = np.zeros(count, dtype=np.int64)
    if len(table[2]) == 0:
        return zeros, zeros.copy()
    unique_pcs = np.unique(table[0])
    ranks = np.searchsorted(unique_pcs, table[0])
    packed = (
        ranks.astype(np.uint64) << np.uint64(max_order)
    ) | table[1]
    query_ranks, pc_found = _sorted_lookup(unique_pcs, query_pcs)
    query_packed = (
        query_ranks.astype(np.uint64) << np.uint64(max_order)
    ) | query_ctxs.astype(np.uint64)
    positions, found = _sorted_lookup(packed, query_packed)
    found &= pc_found
    return (
        np.where(found, table[2][positions], 0),
        np.where(found, table[3][positions], 0),
    )


@dataclass
class PpmState:
    """Mergeable cold PPM state for one contiguous branch range.

    Branches whose full ``max_order``-bit history (global for the
    GAg/GAs family, per-PC local for PAg/PAs) is not known inside the
    range contribute nothing to the count tables; they sit in the
    deferred lists (at most ``max_order`` globally and per PC) until a
    merge supplies the missing left context or the range roots at
    trace start (histories start at zero, so rooted states zero-pad
    and resolve everything).
    """

    max_order: int
    total: int = 0
    taken_total: int = 0
    global_bits: int = 0
    global_nbits: int = 0
    local_pcs: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.uint64)
    )
    local_bits: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.uint64)
    )
    local_nbits: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    local_occ: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    tables: "Dict[Tuple[str, int], CountTable]" = field(
        default_factory=dict
    )
    # Deferred branches: (pc, prior-count, known history bits, outcome).
    deferred_global: Tuple[np.ndarray, ...] = ()
    deferred_local: Tuple[np.ndarray, ...] = ()

    def __post_init__(self) -> None:
        if not self.tables:
            self.tables = {
                (name, order): _empty_table()
                for name, _, _ in VARIANTS
                for order in range(self.max_order + 1)
            }
        if not self.deferred_global:
            self.deferred_global = _empty_deferred()
        if not self.deferred_local:
            self.deferred_local = _empty_deferred()


def _empty_deferred() -> Tuple[np.ndarray, ...]:
    return (
        np.zeros(0, dtype=np.uint64),  # pc
        np.zeros(0, dtype=np.int64),  # prior count
        np.zeros(0, dtype=np.uint64),  # known history bits
        np.zeros(0, dtype=np.int64),  # outcome
    )


def ppm_empty_state(max_order: int) -> PpmState:
    """The identity PPM state (also the rooted empty prefix carry)."""
    return PpmState(max_order=max_order)


def _check_shard_max_order(max_order: int) -> None:
    if max_order < 1:
        raise CharacterizationError("max_order must be >= 1")
    if max_order > MAX_VECTOR_ORDER:
        raise CharacterizationError(
            "sharded characterization requires "
            f"ppm_max_order <= {MAX_VECTOR_ORDER}, got {max_order}"
        )


def _ppm_cold(
    pcs: np.ndarray,
    outcomes: np.ndarray,
    start: int,
    max_order: int,
) -> PpmState:
    """Cold PPM state for one shard's branch stream."""
    state = ppm_empty_state(max_order)
    count = len(outcomes)
    state.total = count
    state.taken_total = int(outcomes.sum())
    if count == 0:
        return state
    mask = np.uint64((1 << max_order) - 1)
    bits = outcomes.astype(np.uint64)
    global_history, local_history = _history_streams(
        pcs, outcomes, max_order
    )
    # Outgoing shift registers are the post-update histories of the
    # last branch (globally) / last occurrence (per PC).
    after_global = ((global_history << _U64_ONE) | bits) & mask
    after_local = ((local_history << _U64_ONE) | bits) & mask
    state.global_bits = int(after_global[-1])
    state.global_nbits = min(count, max_order)
    order = np.argsort(pcs, kind="stable")
    sorted_pcs = pcs[order]
    new_group = np.ones(count, dtype=bool)
    new_group[1:] = sorted_pcs[1:] != sorted_pcs[:-1]
    last_of_group = np.ones(count, dtype=bool)
    last_of_group[:-1] = new_group[1:]
    group_starts = np.flatnonzero(new_group)
    occurrences = np.diff(np.append(group_starts, count))
    state.local_pcs = sorted_pcs[new_group]
    state.local_bits = after_local[order[last_of_group]]
    state.local_occ = occurrences
    state.local_nbits = np.minimum(occurrences, max_order)

    position = np.arange(count, dtype=np.int64)
    occurrence_index = _group_positions(pcs)
    resolved_global = position >= max_order
    resolved_local = occurrence_index >= max_order
    deferred_global_mask = ~resolved_global
    deferred_local_mask = ~resolved_local
    state.deferred_global = (
        pcs[deferred_global_mask].astype(np.uint64),
        position[deferred_global_mask],
        global_history[deferred_global_mask],
        outcomes[deferred_global_mask].astype(np.int64),
    )
    state.deferred_local = (
        pcs[deferred_local_mask].astype(np.uint64),
        occurrence_index[deferred_local_mask],
        local_history[deferred_local_mask],
        outcomes[deferred_local_mask].astype(np.int64),
    )
    for name, use_global, shared in VARIANTS:
        history = global_history if use_global else local_history
        resolved = resolved_global if use_global else resolved_local
        selected_history = history[resolved]
        selected_outcomes = outcomes[resolved]
        selected_pcs = (
            np.zeros(int(resolved.sum()), dtype=np.uint64)
            if shared
            else pcs[resolved].astype(np.uint64)
        )
        for order_length in range(max_order + 1):
            context = selected_history & np.uint64(
                (1 << order_length) - 1
            )
            state.tables[(name, order_length)] = _aggregate_table(
                selected_pcs, context, selected_outcomes, max_order
            )
    if start == 0:
        _root_resolve(state)
    return state


def _add_resolved(
    state: PpmState,
    use_global: bool,
    pcs: np.ndarray,
    histories: np.ndarray,
    outcomes: np.ndarray,
) -> None:
    """Fold newly history-complete branches into a family's tables."""
    if len(outcomes) == 0:
        return
    max_order = state.max_order
    family = [
        name
        for name, variant_global, _ in VARIANTS
        if variant_global == use_global
    ]
    shared_by_name = {
        name: shared
        for name, variant_global, shared in VARIANTS
        if variant_global == use_global
    }
    zeros = np.zeros(len(outcomes), dtype=np.uint64)
    for name in family:
        table_pcs = zeros if shared_by_name[name] else pcs
        for order_length in range(max_order + 1):
            context = histories & np.uint64((1 << order_length) - 1)
            contribution = _aggregate_table(
                table_pcs, context, outcomes, max_order
            )
            state.tables[(name, order_length)] = _merge_tables(
                state.tables[(name, order_length)], contribution
            )


def _root_resolve(state: PpmState) -> None:
    """Resolve all deferred branches of a range rooted at trace start.

    Histories start at zero, so the known bits *are* the full history
    (zero-padded above); every deferred branch joins the tables.
    """
    dg_pc, _, dg_bits, dg_out = state.deferred_global
    _add_resolved(state, True, dg_pc, dg_bits, dg_out)
    dl_pc, _, dl_bits, dl_out = state.deferred_local
    _add_resolved(state, False, dl_pc, dl_bits, dl_out)
    state.deferred_global = _empty_deferred()
    state.deferred_local = _empty_deferred()


def _ppm_merge(
    a: PpmState, b: PpmState, left_rooted: bool
) -> PpmState:
    """Merge adjacent cold PPM states (a immediately precedes b)."""
    max_order = a.max_order
    mask = np.uint64((1 << max_order) - 1)
    merged = ppm_empty_state(max_order)
    merged.total = a.total + b.total
    merged.taken_total = a.taken_total + b.taken_total
    merged.global_nbits = min(
        max_order, a.global_nbits + b.global_nbits
    )
    merged.global_bits = int(
        (
            (np.uint64(a.global_bits) << np.uint64(b.global_nbits))
            | np.uint64(b.global_bits)
        )
        & mask
    )

    # Per-PC register composition over the union of PC sets.
    union_pcs = np.union1d(a.local_pcs, b.local_pcs)
    a_pos, in_a = _sorted_lookup(a.local_pcs, union_pcs)
    b_pos, in_b = _sorted_lookup(b.local_pcs, union_pcs)
    a_bits = _masked_gather(a.local_bits, a_pos, in_a, 0, np.uint64)
    a_nbits = _masked_gather(a.local_nbits, a_pos, in_a, 0, np.int64)
    a_occ = _masked_gather(a.local_occ, a_pos, in_a, 0, np.int64)
    b_bits = _masked_gather(b.local_bits, b_pos, in_b, 0, np.uint64)
    b_nbits = _masked_gather(b.local_nbits, b_pos, in_b, 0, np.int64)
    b_occ = _masked_gather(b.local_occ, b_pos, in_b, 0, np.int64)
    merged.local_pcs = union_pcs
    merged.local_bits = (
        (a_bits << b_nbits.astype(np.uint64)) | b_bits
    ) & mask
    merged.local_nbits = np.minimum(max_order, a_nbits + b_nbits)
    merged.local_occ = a_occ + b_occ

    # Union-sum count tables before folding in resolutions.
    for key in a.tables:
        merged.tables[key] = _merge_tables(a.tables[key], b.tables[key])

    # Resolve b's deferred-global branches against a's register.
    dg_pc, dg_prior, dg_bits, dg_out = b.deferred_global
    if len(dg_out):
        known = a.global_nbits + dg_prior
        resolvable = (
            np.full(len(dg_out), left_rooted) | (known >= max_order)
        )
        composed = (
            (np.uint64(a.global_bits) << dg_prior.astype(np.uint64))
            | dg_bits
        ) & mask
        _add_resolved(
            merged,
            True,
            dg_pc[resolvable],
            composed[resolvable],
            dg_out[resolvable],
        )
        keep = ~resolvable
        new_global = (
            dg_pc[keep],
            dg_prior[keep] + a.total,
            composed[keep],
            dg_out[keep],
        )
    else:
        new_global = _empty_deferred()

    # Resolve b's deferred-local branches against a's per-PC registers.
    dl_pc, dl_prior, dl_bits, dl_out = b.deferred_local
    if len(dl_out):
        positions, found = _sorted_lookup(a.local_pcs, dl_pc)
        left_bits = _masked_gather(
            a.local_bits, positions, found, 0, np.uint64
        )
        left_nbits = _masked_gather(
            a.local_nbits, positions, found, 0, np.int64
        )
        left_occ = _masked_gather(
            a.local_occ, positions, found, 0, np.int64
        )
        known = left_nbits + dl_prior
        resolvable = (
            np.full(len(dl_out), left_rooted) | (known >= max_order)
        )
        composed = (
            (left_bits << dl_prior.astype(np.uint64)) | dl_bits
        ) & mask
        _add_resolved(
            merged,
            False,
            dl_pc[resolvable],
            composed[resolvable],
            dl_out[resolvable],
        )
        keep = ~resolvable
        new_local = (
            dl_pc[keep],
            dl_prior[keep] + left_occ[keep],
            composed[keep],
            dl_out[keep],
        )
    else:
        new_local = _empty_deferred()

    merged.deferred_global = tuple(
        np.concatenate([old, new])
        for old, new in zip(a.deferred_global, new_global)
    )
    merged.deferred_local = tuple(
        np.concatenate([old, new])
        for old, new in zip(a.deferred_local, new_local)
    )
    return merged


def ppm_shard_correct(
    chunk: Trace, carry: PpmState, max_order: int
) -> np.ndarray:
    """Per-variant correct-prediction counts for one shard.

    ``carry`` must be the cold PPM state of the *rooted* prefix
    ``[0, start)`` (fully resolved: no deferred branches).  The
    in-shard history streams are seeded from its shift registers, and
    its count tables supply the prior counts of prefix branches, so
    each branch sees exactly the table state of the one-shot predictor.
    """
    if len(carry.deferred_global[1]) or len(carry.deferred_local[1]):
        raise CharacterizationError(
            "PPM carry state must be rooted (fully resolved)"
        )
    pcs = chunk.branch_pcs
    outcomes = chunk.branch_outcomes
    count = len(outcomes)
    correct = np.zeros(len(VARIANTS), dtype=np.int64)
    if count == 0:
        return correct
    mask = np.uint64((1 << max_order) - 1)
    global_history, local_history = _history_streams(
        pcs, outcomes, max_order
    )
    # Seed the global stream: branch t's bits t..m-1 come from the
    # prefix register shifted past its t in-shard bits.
    seed_count = min(max_order, count)
    if carry.global_bits and seed_count:
        shifts = np.arange(seed_count, dtype=np.uint64)
        global_history[:seed_count] |= (
            np.uint64(carry.global_bits) << shifts
        ) & mask
    # Seed the local streams the same way per PC occurrence index.
    occurrence_index = _group_positions(pcs)
    if len(carry.local_pcs):
        positions, found = _sorted_lookup(carry.local_pcs, pcs)
        registers = np.where(
            found, carry.local_bits[positions], np.uint64(0)
        )
        seedable = occurrence_index < max_order
        local_history[seedable] |= (
            registers[seedable]
            << occurrence_index[seedable].astype(np.uint64)
        ) & mask

    _, pc_ids = np.unique(pcs, return_inverse=True)
    pc_keys = (
        pc_ids.astype(np.uint64) + _U64_ONE
    ) << np.uint64(max_order)
    zero_pcs = np.zeros(count, dtype=np.uint64)
    zero_ctx = np.zeros(count, dtype=np.uint64)
    branch_pcs_u64 = pcs.astype(np.uint64)

    shared_taken = (
        np.cumsum(outcomes) - outcomes + carry.taken_total
    )
    shared_not_taken = (
        np.arange(count, dtype=np.int64)
        - (np.cumsum(outcomes) - outcomes)
        + (carry.total - carry.taken_total)
    )
    per_pc_order0: "Optional[Tuple[np.ndarray, np.ndarray]]" = None

    for variant_index, (name, use_global, shared) in enumerate(
        VARIANTS
    ):
        history = global_history if use_global else local_history
        prediction = np.ones(count, dtype=bool)
        undecided = np.ones(count, dtype=bool)
        for order_length in range(max_order, -1, -1):
            if not undecided.any():
                break
            if order_length == 0:
                if shared:
                    taken_before = shared_taken
                    not_taken_before = shared_not_taken
                else:
                    if per_pc_order0 is None:
                        in_taken, in_not = _prior_outcome_counts(
                            pc_keys, outcomes
                        )
                        inc_not, inc_taken = _table_lookup(
                            carry.tables[(name, 0)],
                            branch_pcs_u64,
                            zero_ctx,
                            max_order,
                        )
                        per_pc_order0 = (
                            in_taken + inc_taken,
                            in_not + inc_not,
                        )
                    taken_before, not_taken_before = per_pc_order0
            else:
                context = history & np.uint64(
                    (1 << order_length) - 1
                )
                keys = context if shared else context | pc_keys
                taken_before, not_taken_before = (
                    _prior_outcome_counts(keys, outcomes)
                )
                inc_not, inc_taken = _table_lookup(
                    carry.tables[(name, order_length)],
                    zero_pcs if shared else branch_pcs_u64,
                    context,
                    max_order,
                )
                taken_before = taken_before + inc_taken
                not_taken_before = not_taken_before + inc_not
            informative = undecided & (
                taken_before != not_taken_before
            )
            prediction[informative] = (
                taken_before[informative]
                > not_taken_before[informative]
            )
            undecided &= ~informative
        correct[variant_index] = int(
            (prediction == outcomes).sum()
        )
    return correct


# -- the combined shard state ---------------------------------------------


@dataclass
class ShardState:
    """All requested sections' mergeable state for ``[start, end)``."""

    start: int
    end: int
    sections: Tuple[str, ...]
    mix: "Optional[MixState]" = None
    ilp: "Optional[IlpState]" = None
    reg: "Optional[RegisterState]" = None
    ws: "Optional[WorkingSetState]" = None
    stride: "Optional[StrideState]" = None
    ppm: "Optional[PpmState]" = None

    @property
    def rooted(self) -> bool:
        return self.start == 0


def shard_state(
    chunk: Trace,
    start: int,
    config,
    wanted: "Optional[np.ndarray]" = None,
) -> ShardState:
    """Cold (carry-free) shard state for one contiguous chunk.

    Args:
        chunk: the rows of ``[start, start + len(chunk))``.
        start: the chunk's absolute position in the full trace.
        config: the :class:`~repro.config.ReproConfig` in effect.
        wanted: optional 47-entry mask (:func:`resolve_wanted`);
            unrequested sections are skipped entirely.

    Raises:
        CharacterizationError: empty chunk, or a PPM order beyond the
            packed-key engine (the scalar fallback cannot shard).
    """
    if len(chunk) == 0:
        raise CharacterizationError(
            "cannot characterize an empty shard"
        )
    if wanted is None:
        wanted = resolve_wanted()
    sections = wanted_sections(wanted)
    state = ShardState(start, start + len(chunk), sections)
    producers: "Optional[Tuple[np.ndarray, np.ndarray]]" = None
    if "ILP" in sections or "register traffic" in sections:
        producers = producer_indices(chunk)
    if "instruction mix" in sections:
        state.mix = MixState.cold(chunk)
    if "ILP" in sections:
        state.ilp = IlpState.cold(
            chunk, start, config.ilp_window_sizes, producers
        )
    if "register traffic" in sections:
        state.reg = RegisterState.cold(
            chunk, start, config.reg_dep_thresholds, producers
        )
    if "working set size" in sections:
        state.ws = WorkingSetState.cold(
            chunk, config.block_bytes, config.page_bytes
        )
    if "data stream strides" in sections:
        state.stride = StrideState.cold(
            chunk, config.stride_thresholds
        )
    if "branch predictability" in sections:
        _check_shard_max_order(config.ppm_max_order)
        state.ppm = _ppm_cold(
            chunk.branch_pcs,
            chunk.branch_outcomes,
            start,
            config.ppm_max_order,
        )
    return state


def merge_states(a: ShardState, b: ShardState, config) -> ShardState:
    """Merge the states of two adjacent ranges (``a`` before ``b``).

    Associative by construction, so shards can be folded left-to-right
    or combined as a tree; rooted left sides resolve every deferred
    PPM branch, keeping prefix states prediction-ready.

    Raises:
        CharacterizationError: non-adjacent ranges or mismatched
            section sets.
    """
    if a.end != b.start:
        raise CharacterizationError(
            f"cannot merge non-adjacent shard states "
            f"[{a.start}, {a.end}) and [{b.start}, {b.end})"
        )
    if a.sections != b.sections:
        raise CharacterizationError(
            "cannot merge shard states with different sections"
        )
    merged = ShardState(a.start, b.end, a.sections)
    if a.mix is not None:
        merged.mix = MixState.merge(a.mix, b.mix)
    if a.ilp is not None:
        merged.ilp = IlpState.merge(
            a.ilp, b.ilp, a.start, a.end, b.end
        )
    if a.reg is not None:
        merged.reg = RegisterState.merge(
            a.reg, b.reg, config.reg_dep_thresholds
        )
    if a.ws is not None:
        merged.ws = WorkingSetState.merge(a.ws, b.ws)
    if a.stride is not None:
        merged.stride = StrideState.merge(
            a.stride, b.stride, config.stride_thresholds
        )
    if a.ppm is not None:
        merged.ppm = _ppm_merge(a.ppm, b.ppm, a.rooted)
    return merged


def finalize_state(
    state: ShardState,
    ppm_correct: "Optional[np.ndarray]",
    config,
    wanted: "Optional[np.ndarray]" = None,
) -> np.ndarray:
    """The 47-dim vector of a rooted, fully merged state.

    ``ppm_correct`` is the summed per-variant correct-prediction count
    from :func:`ppm_shard_correct` (None when the PPM section was not
    requested).  Unrequested entries are NaN; requested entries are
    bit-identical to one-shot :func:`~repro.mica.characterize`.
    """
    if not state.rooted:
        raise CharacterizationError(
            "cannot finalize an unrooted shard state "
            f"(starts at {state.start})"
        )
    if wanted is None:
        wanted = resolve_wanted()
    n = state.end - state.start
    values = np.full(NUM_CHARACTERISTICS, np.nan)
    if state.mix is not None:
        values[_MIX_SLICE] = state.mix.finalize(n)
    if state.ilp is not None:
        values[_ILP_SLICE] = state.ilp.finalize(
            n, config.ilp_window_sizes
        )
    if state.reg is not None:
        values[_REG_SLICE] = state.reg.finalize(n)
    if state.ws is not None:
        values[_WS_SLICE] = state.ws.finalize()
    if state.stride is not None:
        values[_STRIDE_SLICE] = state.stride.finalize()
    if state.ppm is not None:
        if ppm_correct is None:
            raise CharacterizationError(
                "PPM section requires the per-shard prediction pass"
            )
        total = state.ppm.total
        if total:
            values[_PPM_SLICE] = ppm_correct.astype(np.int64) / total
        else:
            values[_PPM_SLICE] = np.zeros(len(VARIANTS))
    values[~wanted] = np.nan
    return values


def characterize_stream(
    source,
    bounds: "Sequence[Tuple[int, int]]",
    config,
    wanted: "Optional[np.ndarray]" = None,
) -> np.ndarray:
    """Sequentially fold a chunked source through the shard engine.

    One shard's columns are resident at a time: each chunk first runs
    the PPM prediction pass against the rooted prefix state, then its
    cold state merges into the prefix.  This is the constant-memory
    out-of-core path; the parallel scheduler
    (:mod:`repro.perf.sharding`) runs the same two phases fanned over
    workers.
    """
    if wanted is None:
        wanted = resolve_wanted()
    want_ppm = bool(wanted[_PPM_SLICE].any())
    if want_ppm:
        _check_shard_max_order(config.ppm_max_order)
    prefix: "Optional[ShardState]" = None
    correct = np.zeros(len(VARIANTS), dtype=np.int64)
    for start, chunk in source.iter_shards(bounds):
        if want_ppm:
            carry = (
                prefix.ppm
                if prefix is not None
                else ppm_empty_state(config.ppm_max_order)
            )
            correct += ppm_shard_correct(
                chunk, carry, config.ppm_max_order
            )
        delta = shard_state(chunk, start, config, wanted)
        prefix = (
            delta
            if prefix is None
            else merge_states(prefix, delta, config)
        )
    if prefix is None:
        raise CharacterizationError(
            "cannot characterize an empty shard stream"
        )
    return finalize_state(
        prefix, correct if want_ppm else None, config, wanted
    )


# -- serialization (shard cache entries, worker transport) ----------------


def state_to_arrays(state: ShardState) -> "Dict[str, np.ndarray]":
    """Flatten a shard state into named arrays (one ``.npz`` entry)."""
    mask = 0
    for position, name in enumerate(SECTION_ORDER):
        if name in state.sections:
            mask |= 1 << position
    max_order = state.ppm.max_order if state.ppm is not None else -1
    arrays: "Dict[str, np.ndarray]" = {
        "meta": np.array(
            [state.start, state.end, mask, max_order], dtype=np.int64
        )
    }
    if state.mix is not None:
        arrays["mix_counts"] = state.mix.counts
    if state.ws is not None:
        arrays["ws_data_blocks"] = state.ws.data_blocks
        arrays["ws_data_pages"] = state.ws.data_pages
        arrays["ws_instr_blocks"] = state.ws.instr_blocks
        arrays["ws_instr_pages"] = state.ws.instr_pages
    if state.stride is not None:
        stride = state.stride
        arrays["st_counts"] = stride.counts
        arrays["st_pairs"] = stride.pairs
        arrays["st_global_n"] = stride.global_n
        arrays["st_global_first"] = stride.global_first
        arrays["st_global_last"] = stride.global_last
        for kind in range(2):
            arrays[f"st_pcs_{kind}"] = stride.local_pcs[kind]
            arrays[f"st_first_{kind}"] = stride.local_first[kind]
            arrays[f"st_last_{kind}"] = stride.local_last[kind]
    if state.reg is not None:
        reg = state.reg
        arrays["rg_scalars"] = np.array(
            [reg.operand_sum, reg.total_writes, reg.consumed_reads],
            dtype=np.int64,
        )
        arrays["rg_counts"] = reg.dist_counts
        arrays["rg_last_writer"] = reg.last_writer
        arrays["rg_orphan_pos"] = reg.orphan_pos
        arrays["rg_orphan_reg"] = reg.orphan_reg
    if state.ilp is not None:
        ilp = state.ilp
        arrays["ilp_sizes"] = np.array(ilp.sizes, dtype=np.int64)
        arrays["ilp_cycles"] = ilp.cycles
        arrays["ilp_head"] = ilp.head.reshape(-1, _ROW_FIELDS)
        arrays["ilp_tail"] = ilp.tail.reshape(-1, _ROW_FIELDS)
    if state.ppm is not None:
        ppm = state.ppm
        arrays["ppm_scalars"] = np.array(
            [ppm.total, ppm.taken_total, ppm.global_nbits],
            dtype=np.int64,
        )
        arrays["ppm_global_bits"] = np.array(
            [ppm.global_bits], dtype=np.uint64
        )
        arrays["ppm_local_pcs"] = ppm.local_pcs
        arrays["ppm_local_bits"] = ppm.local_bits
        arrays["ppm_local_nbits"] = ppm.local_nbits
        arrays["ppm_local_occ"] = ppm.local_occ
        for (name, order_length), table in ppm.tables.items():
            prefix = f"ppm_t_{name}_{order_length}"
            arrays[f"{prefix}_pc"] = table[0]
            arrays[f"{prefix}_cx"] = table[1]
            arrays[f"{prefix}_nt"] = table[2]
            arrays[f"{prefix}_tk"] = table[3]
        for label, deferred in (
            ("dg", ppm.deferred_global),
            ("dl", ppm.deferred_local),
        ):
            arrays[f"ppm_{label}_pc"] = deferred[0]
            arrays[f"ppm_{label}_prior"] = deferred[1]
            arrays[f"ppm_{label}_bits"] = deferred[2]
            arrays[f"ppm_{label}_out"] = deferred[3]
    return arrays


def state_from_arrays(
    arrays: "Dict[str, np.ndarray]",
) -> ShardState:
    """Rebuild a shard state flattened by :func:`state_to_arrays`."""
    meta = arrays["meta"]
    start, end, mask, max_order = (int(value) for value in meta)
    sections = tuple(
        name
        for position, name in enumerate(SECTION_ORDER)
        if mask & (1 << position)
    )
    state = ShardState(start, end, sections)
    if "mix_counts" in arrays:
        state.mix = MixState(
            np.asarray(arrays["mix_counts"], dtype=np.int64)
        )
    if "ws_data_blocks" in arrays:
        state.ws = WorkingSetState(
            np.asarray(arrays["ws_data_blocks"]),
            np.asarray(arrays["ws_data_pages"]),
            np.asarray(arrays["ws_instr_blocks"]),
            np.asarray(arrays["ws_instr_pages"]),
        )
    if "st_counts" in arrays:
        state.stride = StrideState(
            np.asarray(arrays["st_counts"], dtype=np.int64),
            np.asarray(arrays["st_pairs"], dtype=np.int64),
            np.asarray(arrays["st_global_n"], dtype=np.int64),
            np.asarray(arrays["st_global_first"], dtype=np.int64),
            np.asarray(arrays["st_global_last"], dtype=np.int64),
            [np.asarray(arrays[f"st_pcs_{kind}"]) for kind in range(2)],
            [
                np.asarray(arrays[f"st_first_{kind}"], dtype=np.int64)
                for kind in range(2)
            ],
            [
                np.asarray(arrays[f"st_last_{kind}"], dtype=np.int64)
                for kind in range(2)
            ],
        )
    if "rg_scalars" in arrays:
        scalars = arrays["rg_scalars"]
        state.reg = RegisterState(
            int(scalars[0]),
            int(scalars[1]),
            int(scalars[2]),
            np.asarray(arrays["rg_counts"], dtype=np.int64),
            np.asarray(arrays["rg_last_writer"], dtype=np.int64),
            np.asarray(arrays["rg_orphan_pos"], dtype=np.int64),
            np.asarray(arrays["rg_orphan_reg"], dtype=np.int64),
        )
    if "ilp_sizes" in arrays:
        state.ilp = IlpState(
            tuple(int(size) for size in arrays["ilp_sizes"]),
            np.asarray(arrays["ilp_cycles"], dtype=np.int64),
            np.asarray(arrays["ilp_head"], dtype=np.uint8).reshape(
                -1, _ROW_FIELDS
            ),
            np.asarray(arrays["ilp_tail"], dtype=np.uint8).reshape(
                -1, _ROW_FIELDS
            ),
        )
    if "ppm_scalars" in arrays:
        scalars = arrays["ppm_scalars"]
        ppm = ppm_empty_state(max_order)
        ppm.total = int(scalars[0])
        ppm.taken_total = int(scalars[1])
        ppm.global_nbits = int(scalars[2])
        ppm.global_bits = int(arrays["ppm_global_bits"][0])
        ppm.local_pcs = np.asarray(arrays["ppm_local_pcs"])
        ppm.local_bits = np.asarray(arrays["ppm_local_bits"])
        ppm.local_nbits = np.asarray(
            arrays["ppm_local_nbits"], dtype=np.int64
        )
        ppm.local_occ = np.asarray(
            arrays["ppm_local_occ"], dtype=np.int64
        )
        for name, _, _ in VARIANTS:
            for order_length in range(max_order + 1):
                prefix = f"ppm_t_{name}_{order_length}"
                ppm.tables[(name, order_length)] = (
                    np.asarray(arrays[f"{prefix}_pc"]),
                    np.asarray(arrays[f"{prefix}_cx"]),
                    np.asarray(arrays[f"{prefix}_nt"], dtype=np.int64),
                    np.asarray(arrays[f"{prefix}_tk"], dtype=np.int64),
                )
        ppm.deferred_global = tuple(
            np.asarray(arrays[f"ppm_dg_{part}"])
            for part in ("pc", "prior", "bits", "out")
        )
        ppm.deferred_local = tuple(
            np.asarray(arrays[f"ppm_dl_{part}"])
            for part in ("pc", "prior", "bits", "out")
        )
        state.ppm = ppm
    return state
