"""PPM branch predictability (Table II, characteristics 44-47).

The paper measures branch predictability microarchitecture-independently
with the Prediction-by-Partial-Matching predictor of Chen et al. — a
universal compression/prediction scheme viewed as a *theoretical upper
bound* for history-based branch prediction rather than a buildable
predictor.

A PPM predictor of maximum order ``m`` keeps frequency counts for every
branch-history context of length 0..m.  To predict, it finds the longest
context that has been seen before and predicts the majority outcome in
that context, escaping to shorter contexts when a context is new.  After
resolution, the counts of all context lengths are updated.

Four variants, following the paper's two-level-predictor naming:

=====  =================  ====================================
name   history            context tables
=====  =================  ====================================
GAg    global             one shared table
PAg    per-branch local   one shared table
GAs    global             separate tables per branch (PC)
PAs    per-branch local   separate tables per branch (PC)
=====  =================  ====================================
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import CharacterizationError
from ..trace import Trace

#: The four predictor variants, in Table II order.
VARIANTS: Tuple[Tuple[str, bool, bool], ...] = (
    # (name, uses_global_history, shared_table)
    ("GAg", True, True),
    ("PAg", False, True),
    ("GAs", True, False),
    ("PAs", False, False),
)


class PPMPredictor:
    """A Prediction-by-Partial-Matching branch predictor.

    Args:
        max_order: longest history context used (paper-style small
            orders; the default of 4 follows the reproduction config).
        global_history: use one global outcome history (``G``) rather
            than per-branch local histories (``P``).
        shared_table: share one context table across all branches
            (``g``) rather than keeping per-branch tables (``s``).
    """

    def __init__(
        self,
        max_order: int = 4,
        global_history: bool = True,
        shared_table: bool = True,
    ):
        if max_order < 1:
            raise CharacterizationError("max_order must be >= 1")
        self.max_order = max_order
        self.global_history = global_history
        self.shared_table = shared_table
        # tables[order] maps (table key, context bits) -> [not-taken, taken].
        self._tables: Tuple[Dict[Tuple[int, int], "list[int]"], ...] = tuple(
            {} for _ in range(max_order + 1)
        )
        self._global_history_bits = 0
        self._local_histories: Dict[int, int] = {}
        self.predictions = 0
        self.correct = 0

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions so far (0 when unused)."""
        if self.predictions == 0:
            return 0.0
        return self.correct / self.predictions

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict one branch execution, then train on the outcome.

        Returns:
            True when the prediction matched the actual outcome.
        """
        if self.global_history:
            history = self._global_history_bits
        else:
            history = self._local_histories.get(pc, 0)
        table_key = 0 if self.shared_table else pc

        prediction = self._predict(table_key, history)
        outcome = bool(taken)
        correct = prediction == outcome
        self.predictions += 1
        if correct:
            self.correct += 1

        self._update(table_key, history, outcome)
        new_history = ((history << 1) | int(outcome)) & (
            (1 << self.max_order) - 1
        )
        if self.global_history:
            self._global_history_bits = new_history
        else:
            self._local_histories[pc] = new_history
        return correct

    def _predict(self, table_key: int, history: int) -> bool:
        for order in range(self.max_order, -1, -1):
            context = history & ((1 << order) - 1)
            counts = self._tables[order].get((table_key, context))
            if counts is None:
                continue
            not_taken, taken = counts
            if taken != not_taken:
                return taken > not_taken
            # A tied context carries no information: escape to shorter.
        return True  # Cold default: branches are more often taken.

    def _update(self, table_key: int, history: int, outcome: bool) -> None:
        index = int(outcome)
        for order in range(self.max_order + 1):
            context = history & ((1 << order) - 1)
            key = (table_key, context)
            table = self._tables[order]
            counts = table.get(key)
            if counts is None:
                table[key] = [0, 0]
                counts = table[key]
            counts[index] += 1


def ppm_predictabilities(trace: Trace, max_order: int = 4) -> np.ndarray:
    """Accuracies of the four PPM variants, in Table II order.

    Traces without branches yield zeros for all four characteristics.
    """
    if len(trace) == 0:
        raise CharacterizationError(
            "cannot compute predictability of an empty trace"
        )
    branch_pcs = trace.branch_pcs
    outcomes = trace.branch_outcomes
    predictors = [
        PPMPredictor(
            max_order=max_order,
            global_history=global_history,
            shared_table=shared_table,
        )
        for _, global_history, shared_table in VARIANTS
    ]
    pcs = branch_pcs.tolist()
    takens = outcomes.tolist()
    for predictor in predictors:
        predict = predictor.predict_and_update
        for pc, taken in zip(pcs, takens):
            predict(pc, taken)
    return np.array([predictor.accuracy for predictor in predictors])
