"""PPM branch predictability (Table II, characteristics 44-47).

The paper measures branch predictability microarchitecture-independently
with the Prediction-by-Partial-Matching predictor of Chen et al. — a
universal compression/prediction scheme viewed as a *theoretical upper
bound* for history-based branch prediction rather than a buildable
predictor.

A PPM predictor of maximum order ``m`` keeps frequency counts for every
branch-history context of length 0..m.  To predict, it finds the longest
context that has been seen before and predicts the majority outcome in
that context, escaping to shorter contexts when a context is new.  After
resolution, the counts of all context lengths are updated.

Four variants, following the paper's two-level-predictor naming:

=====  =================  ====================================
name   history            context tables
=====  =================  ====================================
GAg    global             one shared table
PAg    per-branch local   one shared table
GAs    global             separate tables per branch (PC)
PAs    per-branch local   separate tables per branch (PC)
=====  =================  ====================================

Two implementations are provided:

* :func:`ppm_predictabilities` — the production path.  It never walks
  the branch stream in Python.  The key observation is that PPM's
  context histories depend only on *actual* branch outcomes (never on
  predictions), so every (table key, context) pair each branch consults
  can be materialized up front as a packed integer key stream shared by
  all four variants, and the count-table state any branch observes is
  simply the number of earlier occurrences of its key with each
  outcome — a grouped exclusive prefix sum.
* :func:`ppm_predictabilities_reference` — the original scalar
  predictor loop, retained as the executable specification that the
  equivalence tests check the vectorized path against.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import CharacterizationError
from ..trace import Trace

#: The four predictor variants, in Table II order.
VARIANTS: Tuple[Tuple[str, bool, bool], ...] = (
    # (name, uses_global_history, shared_table)
    ("GAg", True, True),
    ("PAg", False, True),
    ("GAs", True, False),
    ("PAs", False, False),
)

#: Longest history the packed-key engine supports: context bits plus the
#: dense PC index must fit one uint64 key (beyond this the scalar
#: reference path is used; paper orders are tiny).
MAX_VECTOR_ORDER = 24


class PPMPredictor:
    """A Prediction-by-Partial-Matching branch predictor.

    Args:
        max_order: longest history context used (paper-style small
            orders; the default of 4 follows the reproduction config).
        global_history: use one global outcome history (``G``) rather
            than per-branch local histories (``P``).
        shared_table: share one context table across all branches
            (``g``) rather than keeping per-branch tables (``s``).
    """

    def __init__(
        self,
        max_order: int = 4,
        global_history: bool = True,
        shared_table: bool = True,
    ):
        if max_order < 1:
            raise CharacterizationError("max_order must be >= 1")
        self.max_order = max_order
        self.global_history = global_history
        self.shared_table = shared_table
        # tables[order] maps (table key, context bits) -> [not-taken, taken].
        self._tables: Tuple[Dict[Tuple[int, int], "list[int]"], ...] = tuple(
            {} for _ in range(max_order + 1)
        )
        self._global_history_bits = 0
        self._local_histories: Dict[int, int] = {}
        self.predictions = 0
        self.correct = 0

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions so far (0 when unused)."""
        if self.predictions == 0:
            return 0.0
        return self.correct / self.predictions

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict one branch execution, then train on the outcome.

        Returns:
            True when the prediction matched the actual outcome.
        """
        if self.global_history:
            history = self._global_history_bits
        else:
            history = self._local_histories.get(pc, 0)
        table_key = 0 if self.shared_table else pc

        prediction = self._predict(table_key, history)
        outcome = bool(taken)
        correct = prediction == outcome
        self.predictions += 1
        if correct:
            self.correct += 1

        self._update(table_key, history, outcome)
        new_history = ((history << 1) | int(outcome)) & (
            (1 << self.max_order) - 1
        )
        if self.global_history:
            self._global_history_bits = new_history
        else:
            self._local_histories[pc] = new_history
        return correct

    def _predict(self, table_key: int, history: int) -> bool:
        for order in range(self.max_order, -1, -1):
            context = history & ((1 << order) - 1)
            counts = self._tables[order].get((table_key, context))
            if counts is None:
                continue
            not_taken, taken = counts
            if taken != not_taken:
                return taken > not_taken
            # A tied context carries no information: escape to shorter.
        return True  # Cold default: branches are more often taken.

    def _update(self, table_key: int, history: int, outcome: bool) -> None:
        index = int(outcome)
        for order in range(self.max_order + 1):
            context = history & ((1 << order) - 1)
            key = (table_key, context)
            table = self._tables[order]
            counts = table.get(key)
            if counts is None:
                table[key] = [0, 0]
                counts = table[key]
            counts[index] += 1


# -- vectorized engine ----------------------------------------------------


def _grouped_history(
    bits: np.ndarray, group_keys: np.ndarray, max_order: int
) -> np.ndarray:
    """History bits that never cross group boundaries.

    Bit ``k-1`` of the history at entry ``t`` is the outcome of the
    ``k``-th most recent earlier entry *of the same group*, matching a
    shift register that is private to each group and starts at zero.
    Grouping by PC yields the per-branch local histories; the segmented
    engine (:mod:`repro.mica.segmented`) additionally folds the interval
    id into the group key so histories restart at interval boundaries.
    """
    n = len(bits)
    # Narrow keys radix-sort (numpy's stable sort for <= 16-bit ints);
    # wide keys (e.g. raw PCs) take the 64-bit merge sort.
    if n and int(group_keys.max()) < (1 << 16):
        group_keys = group_keys.astype(np.uint16)
    order = np.argsort(group_keys, kind="stable")
    sorted_bits = bits[order]
    sorted_keys = group_keys[order]
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    positions = np.arange(n, dtype=np.int64)
    group_ids = np.cumsum(new_group) - 1
    group_start = positions[new_group][group_ids]
    in_group = positions - group_start

    grouped_sorted = np.zeros(n, dtype=np.uint64)
    for k in range(1, max_order + 1):
        valid = in_group >= k
        if not valid.any():
            break
        grouped_sorted[valid] |= sorted_bits[positions[valid] - k] << np.uint64(
            k - 1
        )
    history = np.empty(n, dtype=np.uint64)
    history[order] = grouped_sorted
    return history


def _history_streams(
    pcs: np.ndarray, outcomes: np.ndarray, max_order: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Global and per-PC local history bits seen by each branch.

    Bit ``k-1`` of the history at branch ``t`` is the outcome of the
    ``k``-th most recent prior branch (of any PC for the global stream,
    of the same PC for the local stream), matching the shift-register
    update of :class:`PPMPredictor`.
    """
    n = len(outcomes)
    bits = outcomes.astype(np.uint64)
    global_history = np.zeros(n, dtype=np.uint64)
    for k in range(1, max_order + 1):
        if k >= n:
            break
        global_history[k:] |= bits[:-k] << np.uint64(k - 1)

    # Local histories: group the stream by PC (stable sort keeps time
    # order within each group) and apply the same shifted-OR trick
    # without crossing group boundaries.
    local_history = _grouped_history(bits, pcs, max_order)
    return global_history, local_history


def _prior_outcome_counts(
    keys: np.ndarray, outcomes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per branch: how many earlier branches shared its key, by outcome.

    Equivalent to replaying the stream through a count table keyed by
    ``keys`` and reading the entry just before each update, but computed
    as a grouped exclusive prefix sum over the key-sorted stream.

    Returns:
        ``(taken_before, not_taken_before)`` int64 arrays.
    """
    n = len(keys)
    # numpy's stable sort is a radix sort for <= 16-bit integers, several
    # times faster than the 64-bit merge sort; key domains here are tiny
    # (contexts, or dense PC ranks times contexts), so narrow when we can.
    key_ceiling = int(keys.max()) if n else 0
    if key_ceiling < (1 << 16):
        keys = keys.astype(np.uint16)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_taken = outcomes[order].astype(np.int64)

    new_group = np.ones(n, dtype=bool)
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    positions = np.arange(n, dtype=np.int64)
    group_start = np.maximum.accumulate(np.where(new_group, positions, 0))

    exclusive = np.cumsum(sorted_taken) - sorted_taken
    taken_sorted = exclusive - exclusive[group_start]
    not_taken_sorted = (positions - group_start) - taken_sorted

    taken_before = np.empty(n, dtype=np.int64)
    not_taken_before = np.empty(n, dtype=np.int64)
    taken_before[order] = taken_sorted
    not_taken_before[order] = not_taken_sorted
    return taken_before, not_taken_before


def _variant_predictions(
    history: np.ndarray,
    pc_keys: "np.ndarray | None",
    outcomes: np.ndarray,
    max_order: int,
    order0_counts,
    segment_keys: "np.ndarray | None" = None,
) -> np.ndarray:
    """Per-branch predictions for one variant, fully vectorized.

    Walks orders longest-first exactly like :meth:`PPMPredictor._predict`
    (unseen and tied contexts both escape; the cold default predicts
    taken), deciding each branch at the first informative order.

    ``order0_counts()`` supplies the order-0 table state, which ignores
    history and is therefore shared by both variants of a table scheme.
    ``segment_keys`` (when given) is OR-ed above every context key so the
    segmented engine can restart the count tables per interval.
    """
    n = len(outcomes)
    prediction = np.ones(n, dtype=bool)
    undecided = np.ones(n, dtype=bool)
    for order in range(max_order, -1, -1):
        if not undecided.any():
            break
        if order == 0:
            taken_before, not_taken_before = order0_counts()
        else:
            keys = history & np.uint64((1 << order) - 1)
            if pc_keys is not None:
                keys = keys | pc_keys
            if segment_keys is not None:
                keys = keys | segment_keys
            taken_before, not_taken_before = _prior_outcome_counts(
                keys, outcomes
            )
        informative = undecided & (taken_before != not_taken_before)
        prediction[informative] = (
            taken_before[informative] > not_taken_before[informative]
        )
        undecided &= ~informative
    return prediction


def ppm_predictabilities_reference(
    trace: Trace, max_order: int = 4
) -> np.ndarray:
    """Scalar PPM accuracies — the executable specification.

    Runs the four :class:`PPMPredictor` instances over the branch stream
    one branch at a time.  Slow (per-instruction Python dict traffic)
    but trivially auditable; the vectorized
    :func:`ppm_predictabilities` must match it exactly.
    """
    if len(trace) == 0:
        raise CharacterizationError(
            "cannot compute predictability of an empty trace"
        )
    branch_pcs = trace.branch_pcs
    outcomes = trace.branch_outcomes
    predictors = [
        PPMPredictor(
            max_order=max_order,
            global_history=global_history,
            shared_table=shared_table,
        )
        for _, global_history, shared_table in VARIANTS
    ]
    pcs = branch_pcs.tolist()
    takens = outcomes.tolist()
    for predictor in predictors:
        predict = predictor.predict_and_update
        for pc, taken in zip(pcs, takens):
            predict(pc, taken)
    return np.array([predictor.accuracy for predictor in predictors])


def ppm_predictabilities(trace: Trace, max_order: int = 4) -> np.ndarray:
    """Accuracies of the four PPM variants, in Table II order.

    Single-pass vectorized implementation: the global and local history
    streams are materialized once, each (variant, order) context is
    packed into one integer key per branch, and the count-table state a
    branch would observe is recovered with grouped exclusive prefix
    sums — no per-branch Python loop.  Produces bit-identical values to
    :func:`ppm_predictabilities_reference`.

    Traces without branches yield zeros for all four characteristics.
    """
    if len(trace) == 0:
        raise CharacterizationError(
            "cannot compute predictability of an empty trace"
        )
    if max_order < 1:
        raise CharacterizationError("max_order must be >= 1")
    if max_order > MAX_VECTOR_ORDER:
        return ppm_predictabilities_reference(trace, max_order)

    pcs = trace.branch_pcs
    outcomes = trace.branch_outcomes
    n = len(outcomes)
    if n == 0:
        return np.zeros(len(VARIANTS))

    global_history, local_history = _history_streams(pcs, outcomes, max_order)
    # Dense PC ranks, packed above the (<= max_order) context bits so a
    # (table key, context) pair is one uint64 for every order at once.
    _, pc_ids = np.unique(pcs, return_inverse=True)
    pc_keys = (pc_ids.astype(np.uint64) + np.uint64(1)) << np.uint64(max_order)

    # Order-0 contexts ignore history, so their table state is shared
    # by the G/P variants of each table scheme; the single shared table
    # needs no sort at all (its counts are global running totals).
    order0_cache: Dict[bool, Tuple[np.ndarray, np.ndarray]] = {}

    def order0_counts(shared_table: bool):
        counts = order0_cache.get(shared_table)
        if counts is None:
            if shared_table:
                taken_before = np.cumsum(outcomes) - outcomes
                not_taken_before = (
                    np.arange(n, dtype=np.int64) - taken_before
                )
                counts = (taken_before, not_taken_before)
            else:
                counts = _prior_outcome_counts(pc_keys, outcomes)
            order0_cache[shared_table] = counts
        return counts

    accuracies = np.empty(len(VARIANTS), dtype=float)
    for position, (_, use_global, shared_table) in enumerate(VARIANTS):
        history = global_history if use_global else local_history
        prediction = _variant_predictions(
            history,
            None if shared_table else pc_keys,
            outcomes,
            max_order,
            lambda shared=shared_table: order0_counts(shared),
        )
        accuracies[position] = int((prediction == outcomes).sum()) / n
    return accuracies
