"""Register traffic characteristics (Table II, characteristics 11-19).

Following Franklin & Sohi's register-traffic analysis, the paper
characterizes dataflow through the architected registers:

* **average number of input operands** per dynamic instruction;
* **average degree of use**: how many times a register instance (one
  write) is consumed (read) before being overwritten;
* the **register dependency distance** distribution: the number of
  dynamic instructions between a register write and a read of that
  value, reported as cumulative probabilities at distances
  1, 2, 4, 8, 16, 32 and 64.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import CharacterizationError
from ..isa import NO_REG
from ..trace import Trace
from .ilp import NO_PRODUCER, producer_indices


def register_traffic(
    trace: Trace,
    thresholds: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    producers: "Tuple[np.ndarray, np.ndarray] | None" = None,
) -> np.ndarray:
    """The nine register-traffic characteristics, in Table II order.

    Args:
        trace: the dynamic instruction trace.
        thresholds: cumulative dependency-distance bounds; the first is
            reported as an equality (``distance = 1``), matching the
            paper.
        producers: precomputed :func:`repro.mica.producer_indices`
            result, to share work with the ILP analyzer.

    Returns:
        ``[avg input operands, avg degree of use,
        P(dist = 1), P(dist <= 2), ..., P(dist <= 64)]``.

    Raises:
        CharacterizationError: for an empty trace.
    """
    if len(trace) == 0:
        raise CharacterizationError(
            "cannot compute register traffic of an empty trace"
        )
    if producers is None:
        producers = producer_indices(trace)
    producer1, producer2 = producers

    n = len(trace)
    operand_count = (trace.src1 != NO_REG).astype(np.int64) + (
        trace.src2 != NO_REG
    ).astype(np.int64)
    average_operands = float(operand_count.mean())

    total_writes = int((trace.dst != NO_REG).sum())
    consumer_positions = np.arange(n, dtype=np.int64)
    distances = []
    consumed_reads = 0
    for producer in (producer1, producer2):
        has_producer = producer != NO_PRODUCER
        consumed_reads += int(has_producer.sum())
        distances.append(
            consumer_positions[has_producer] - producer[has_producer]
        )
    all_distances = (
        np.concatenate(distances) if distances else np.empty(0, np.int64)
    )

    degree_of_use = consumed_reads / total_writes if total_writes else 0.0

    result = np.empty(2 + len(thresholds), dtype=float)
    result[0] = average_operands
    result[1] = degree_of_use
    if len(all_distances) == 0:
        result[2:] = 0.0
        return result
    total_pairs = float(len(all_distances))
    for position, bound in enumerate(thresholds):
        result[2 + position] = float((all_distances <= bound).sum()) / total_pairs
    return result
