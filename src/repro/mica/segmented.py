"""Segmented (per-interval) MICA characterization engine.

:func:`segmented_characterize` computes Table II characteristic
*sections* for every fixed-length interval of a trace in one pass over
the full column arrays — the within-run analogue of
:func:`repro.mica.characterize`, which summarizes a whole program.  Row
``i`` of the result is bit-identical to
``characterize(trace[i * interval : (i + 1) * interval], config).values``
for every requested section, without ever slicing the trace: the
per-chunk loop that used to back :func:`repro.phases.mica_timeline` is
retained there as ``mica_timeline_reference``, the executable
specification this engine is pinned against.

The per-chunk semantics that must be reproduced exactly are *state
restarts* at interval boundaries: producer tracking, PPM count tables
and branch histories, stride adjacency, unique-count sets and window
partitions all start cold at the first instruction of each chunk.  Each
analyzer family gets there differently:

* **mix / working set / strides** — pure segmented unique/group counts:
  opclass and address streams are keyed by interval id and reduced with
  ``bincount`` / lexsorted group-boundary counting; stride adjacency
  masks drop pairs that straddle an interval boundary.
* **ILP / register traffic** — :func:`segmented_producer_indices` packs
  the interval id *above* the architected register number in the
  producer key stream, so a write in one interval is invisible to reads
  in the next (exactly a per-chunk producer restart); ILP windows are
  generated per interval (including the short trailing window of each
  chunk when ``interval % W != 0``) and walked offset-major once for
  all intervals and window sizes together.
* **PPM** — the interval id is packed above the existing
  (PC rank, context) keys of the vectorized predictor and the
  global/local history streams are grouped by (interval) and
  (interval, PC), so tables *and* shift registers restart per chunk;
  the escape cascade then runs once over the whole branch stream.

All per-interval values end as exact integer-count ratios divided in
IEEE double precision, which is why bit-for-bit equality with the
per-chunk loop is achievable and asserted
(``tests/test_phases_segmented_equivalence.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import CharacterizationError
from ..isa import NO_REG, OpClass
from ..isa.registers import FP_ZERO_REG, INT_ZERO_REG, TOTAL_REGS
from ..trace import Trace
from .characteristics import NUM_CHARACTERISTICS, category_slices
from .ilp import NO_PRODUCER
from .ppm import (
    MAX_VECTOR_ORDER,
    VARIANTS,
    _grouped_history,
    _prior_outcome_counts,
    _variant_predictions,
    ppm_predictabilities,
)

#: The six Table II section names, in schema order.  ``categories``
#: arguments are validated against this tuple.
SECTION_CATEGORIES: Tuple[str, ...] = tuple(category_slices())


def _full_interval_count(trace: Trace, interval: int) -> int:
    """Number of full ``interval``-sized chunks in ``trace``.

    MICA-layer validation for the segmented entry points: the interval
    must be positive and cover the trace at least once.  Distinct from
    :func:`repro.phases.interval_count`, the phase layer's shared
    helper, which raises :class:`~repro.errors.AnalysisError` and
    additionally requires two intervals.

    Raises:
        CharacterizationError: on ``interval <= 0`` or a trace shorter
            than one interval.
    """
    if interval <= 0:
        raise CharacterizationError(
            f"interval must be positive, got {interval}"
        )
    count = len(trace) // interval
    if count < 1:
        raise CharacterizationError(
            f"trace too short: {len(trace)} instructions give no full "
            f"interval of {interval}"
        )
    return count


class _SegmentedContext:
    """Shared per-call state: sliced columns, interval ids, producers.

    Everything here is derived from the leading ``count * interval``
    instructions of the trace (the trailing partial interval is dropped,
    as in :func:`repro.phases.split_intervals`) and computed lazily so
    that a call requesting only cheap sections never pays for producer
    recovery.
    """

    def __init__(self, trace: Trace, interval: int, count: int):
        self.trace = trace
        self.interval = interval
        self.count = count
        self.n = count * interval
        self._cache: Dict[str, object] = {}

    def _cached(self, key: str, compute):
        value = self._cache.get(key)
        if value is None:
            value = compute()
            self._cache[key] = value
        return value

    def column(self, field: str) -> np.ndarray:
        return self._cached(
            f"col:{field}", lambda: getattr(self.trace, field)[: self.n]
        )

    @property
    def interval_index(self) -> np.ndarray:
        """Interval id of every instruction, shape ``(n,)`` int64."""
        return self._cached(
            "interval_index",
            lambda: np.repeat(
                np.arange(self.count, dtype=np.int64), self.interval
            ),
        )

    @property
    def interval_starts(self) -> np.ndarray:
        return self._cached(
            "interval_starts",
            lambda: np.arange(self.count, dtype=np.int64) * self.interval,
        )

    @property
    def producers(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._cached(
            "producers", lambda: segmented_producer_indices(
                self.trace, self.interval, self.count
            )
        )


#: Register liveness lookup: absent slots and the hardwired-zero
#: registers never have a producer.
_LIVE_SOURCE = np.ones(1 << 8, dtype=bool)
_LIVE_SOURCE[[NO_REG, INT_ZERO_REG, FP_ZERO_REG]] = False


def _grouped_order(group_ids: np.ndarray, domain: int) -> np.ndarray:
    """Stable sort order by group id.

    Narrow domains take one radix pass (numpy's stable sort is a radix
    sort for <= 16-bit integers — an order of magnitude faster than the
    64-bit merge sort); wide domains fall back to the merge sort.
    """
    if domain <= (1 << 16):
        return np.argsort(group_ids.astype(np.uint16), kind="stable")
    return np.argsort(group_ids, kind="stable")


def segmented_producer_indices(
    trace: Trace, interval: int, count: "int | None" = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-chunk producer recovery over the whole trace in one pass.

    Equivalent to running :func:`repro.mica.producer_indices` on every
    ``interval``-sized chunk independently, except that the returned
    producer positions are *global* trace indices (a producer and its
    consumer always share an interval, so consumer-minus-producer
    distances match the per-chunk values exactly).  A read whose most
    recent writer lives in an earlier interval has
    :data:`~repro.mica.ilp.NO_PRODUCER`, reproducing the cold register
    state each chunk starts with.

    Both event streams are grouped by the segmented register —
    ``interval_id * TOTAL_REGS + register``, one radix pass over the
    narrow combined domain, never a 64-bit comparison sort — and the
    writes become an ascending ``group * (n + 1) + position`` key
    array.  Each read then finds its producer with one vectorized
    binary search (monotone on both sides, since the reads are grouped
    identically): the write immediately preceding the read's own key,
    provided it belongs to the same group.  An instruction's
    same-register write has exactly the read's key, so
    ``side="right"`` — inserting equal write keys *after* the read —
    keeps it invisible to its own reads.
    """
    if count is None:
        count = _full_interval_count(trace, interval)
    n = count * interval
    src1 = trace.src1[:n]
    src2 = trace.src2[:n]
    dst = trace.dst[:n]
    producer1 = np.full(n, NO_PRODUCER, dtype=np.int64)
    producer2 = np.full(n, NO_PRODUCER, dtype=np.int64)

    writers = np.flatnonzero(dst != NO_REG)
    if len(writers) == 0:
        return producer1, producer2  # No writes: nothing has a producer.
    domain = count * TOTAL_REGS

    write_groups = (writers // interval) * TOTAL_REGS + dst[
        writers
    ].astype(np.int64)
    write_order = _grouped_order(write_groups, domain)
    sorted_writers = writers[write_order]
    sorted_write_groups = write_groups[write_order]
    sorted_keys = sorted_write_groups * (n + 1) + sorted_writers

    for source, producer in ((src1, producer1), (src2, producer2)):
        readers = np.flatnonzero(_LIVE_SOURCE[source])
        if len(readers) == 0:
            continue
        read_groups = (readers // interval) * TOTAL_REGS + source[
            readers
        ].astype(np.int64)
        read_order = _grouped_order(read_groups, domain)
        sorted_readers = readers[read_order]
        sorted_read_groups = read_groups[read_order]
        # One slot's grouped reads are fully key-ascending (the stable
        # sort keeps positions ascending within each group), so the
        # (fewer) writes can be merged into the read stream with one
        # sorted-query binary search, recovering each read's
        # preceding-write slot from the insertion histogram.  An
        # instruction's same-register write shares its own read's key;
        # ``side="right"`` inserts it after, keeping it invisible.
        insertions = np.searchsorted(
            sorted_read_groups * (n + 1) + sorted_readers,
            sorted_keys,
            side="right",
        )
        slot = np.cumsum(
            np.bincount(insertions, minlength=len(readers) + 1)[:-1]
        ) - 1
        valid = slot >= 0
        valid &= (
            sorted_write_groups[np.maximum(slot, 0)] == sorted_read_groups
        )
        found = np.where(
            valid, sorted_writers[np.maximum(slot, 0)], NO_PRODUCER
        )
        producer[sorted_readers] = found
    return producer1, producer2


# -- section engines ------------------------------------------------------


def _segmented_mix(ctx: _SegmentedContext) -> np.ndarray:
    """Per-interval instruction-mix fractions, shape ``(count, 6)``."""
    classes = ctx.column("opclass").astype(np.int64)
    keys = ctx.interval_index * len(OpClass) + classes
    counts = np.bincount(
        keys, minlength=ctx.count * len(OpClass)
    ).reshape(ctx.count, len(OpClass))
    order = [
        int(OpClass.LOAD),
        int(OpClass.STORE),
        int(OpClass.BRANCH),
        int(OpClass.INT_ALU),
        int(OpClass.INT_MUL),
        int(OpClass.FP),
    ]
    return counts[:, order] / float(ctx.interval)


def _segmented_window_cycles(
    producer1: np.ndarray,
    producer2: np.ndarray,
    count: int,
    interval: int,
    window_sizes: Sequence[int],
) -> Dict[int, np.ndarray]:
    """Per-interval summed critical-path cycles for every window size.

    Windows partition each interval from its own start (so every
    interval ends with a short window when ``interval % W != 0``),
    reproducing the window alignment a per-chunk run would see.  One
    offset-major traversal updates all intervals and all window sizes
    at once; per-window critical paths fall out of a segmented max and
    are then summed within each interval.
    """
    n = count * interval
    unique_sizes = sorted({int(window) for window in window_sizes})
    for window in unique_sizes:
        if window < 1:
            raise CharacterizationError(f"invalid window size: {window}")
    interval_base = np.arange(count, dtype=np.int64) * interval

    # All window sizes share one *flat* level space of ``S`` size-lanes
    # of ``n`` entries each, so every offset updates every size in one
    # set of array operations (the per-(offset, size) loop of the
    # whole-trace engine pays ~2x its work in numpy call overhead).
    # Lane ``j`` owns [j*n, (j+1)*n); a producer outside its consumer's
    # window (including NO_PRODUCER and cross-interval producers, which
    # the segmented producer arrays already exclude) is redirected to a
    # sentinel cell pinned at level 0, so the hot loop is pure
    # gather/max/scatter with no per-offset window-membership test.
    lanes = len(unique_sizes)
    sentinel = lanes * n
    level_flat = np.ones(lanes * n + 1, dtype=np.int64)
    level_flat[sentinel] = 0
    offset_in_interval = np.arange(n, dtype=np.int64) % interval
    positions = np.arange(n, dtype=np.int64)

    starts_all: Dict[int, np.ndarray] = {}
    pieces = []  # (flat window starts, first inactive offset)
    producer_lanes = []
    for lane, window in enumerate(unique_sizes):
        full = interval // window
        trailing = interval % window
        per_interval = full + (1 if trailing else 0)
        within = np.arange(per_interval, dtype=np.int64) * window
        starts = (interval_base[:, None] + within[None, :]).ravel()
        starts_all[window] = starts
        base = lane * n
        if trailing:
            grid = starts.reshape(count, per_interval)
            if full:
                # Full-width windows: an instruction exists at every
                # offset below the window size.
                pieces.append((grid[:, :full].ravel() + base, window))
            # Trailing short windows: each interval's last window runs
            # out of instructions at the remainder offset.
            pieces.append((grid[:, full:].ravel() + base, trailing))
        else:
            pieces.append((starts + base, window))
        if window & (window - 1) == 0:
            # Power-of-two window: the remainder is one bitwise AND.
            remainder = offset_in_interval & (window - 1)
        else:
            remainder = offset_in_interval % window
        window_starts = positions - remainder
        producer_lanes.append(tuple(
            np.where(producer >= window_starts, producer + base, sentinel)
            for producer in (producer1, producer2)
        ))
    producer1_flat = np.concatenate([lane[0] for lane in producer_lanes])
    producer2_flat = np.concatenate([lane[1] for lane in producer_lanes])

    last_offset = min(max(unique_sizes, default=1), interval)
    boundaries = sorted({limit for _, limit in pieces if limit < last_offset})
    segment_edges = [1] + boundaries + [last_offset]
    for segment_start, segment_end in zip(
        segment_edges[:-1], segment_edges[1:]
    ):
        if segment_end <= segment_start:
            continue
        indices = np.concatenate(
            [flat for flat, limit in pieces if limit > segment_start]
        ) + segment_start
        for _ in range(segment_start, segment_end):
            depth = np.maximum(
                level_flat[producer1_flat[indices]],
                level_flat[producer2_flat[indices]],
            )
            depth += 1
            level_flat[indices] = depth
            indices += 1

    cycles: Dict[int, np.ndarray] = {}
    for lane, window in enumerate(unique_sizes):
        starts = starts_all[window]
        per_window = np.maximum.reduceat(
            level_flat[lane * n : (lane + 1) * n], starts
        )
        cycles[window] = per_window.reshape(
            count, len(starts) // count
        ).sum(axis=1)
    return cycles


def _segmented_ilp(
    ctx: _SegmentedContext,
    window_sizes: Sequence[int],
    wanted: np.ndarray,
) -> np.ndarray:
    """Per-interval idealized IPC, shape ``(count, len(window_sizes))``.

    Window sizes are mutually independent, so only the requested ones
    are walked (``ilp_w32`` alone costs one 32-offset sweep, not four);
    unrequested columns stay ``NaN``.
    """
    producer1, producer2 = ctx.producers
    needed = [
        int(window)
        for position, window in enumerate(window_sizes)
        if wanted[position]
    ]
    cycles = _segmented_window_cycles(
        producer1, producer2, ctx.count, ctx.interval, needed
    )
    result = np.full((ctx.count, len(window_sizes)), np.nan)
    for position, window in enumerate(window_sizes):
        if not wanted[position]:
            continue
        window_cycles = cycles[int(window)]
        result[:, position] = np.divide(
            ctx.interval,
            window_cycles,
            out=np.zeros(ctx.count),
            where=window_cycles > 0,
        )
    return result


def _cumulative_threshold_counts(
    values: np.ndarray,
    interval_ids: np.ndarray,
    count: int,
    thresholds: Sequence[int],
) -> Tuple[np.ndarray, np.ndarray]:
    """Per interval: total values, and how many are ``<= t`` per ``t``.

    For ascending thresholds (the paper's, and every config default)
    each value is bucketed once with a tiny binary search and the whole
    cumulative table falls out of one ``bincount`` plus a row cumsum —
    instead of one full-array mask and ``bincount`` per threshold.
    Unsorted thresholds fall back to the per-threshold masks.

    Returns:
        ``(totals, below)`` int64 arrays of shapes ``(count,)`` and
        ``(count, len(thresholds))``.
    """
    bounds = np.asarray(thresholds, dtype=np.int64)
    if len(values) == 0:
        return (
            np.zeros(count, dtype=np.int64),
            np.zeros((count, len(bounds)), dtype=np.int64),
        )
    if len(bounds) and np.all(np.diff(bounds) > 0):
        buckets = np.searchsorted(bounds, values, side="left")
        table = np.bincount(
            interval_ids * (len(bounds) + 1) + buckets,
            minlength=count * (len(bounds) + 1),
        ).reshape(count, len(bounds) + 1)
        cumulative = np.cumsum(table, axis=1)
        return cumulative[:, -1], cumulative[:, :-1]
    totals = np.bincount(interval_ids, minlength=count)
    below = np.empty((count, len(bounds)), dtype=np.int64)
    for position, bound in enumerate(bounds):
        below[:, position] = np.bincount(
            interval_ids[values <= bound], minlength=count
        )
    return totals, below


def _segmented_register_traffic(
    ctx: _SegmentedContext, thresholds: Sequence[int]
) -> np.ndarray:
    """Per-interval register traffic, shape ``(count, 2 + thresholds)``."""
    count, interval = ctx.count, ctx.interval
    src1 = ctx.column("src1")
    src2 = ctx.column("src2")
    dst = ctx.column("dst")
    interval_index = ctx.interval_index

    operand_count = (src1 != NO_REG).astype(np.int64) + (
        src2 != NO_REG
    ).astype(np.int64)
    result = np.zeros((count, 2 + len(thresholds)))
    result[:, 0] = (
        np.add.reduceat(operand_count, ctx.interval_starts)
        / float(interval)
    )

    total_writes = np.bincount(
        interval_index[dst != NO_REG], minlength=count
    )
    producer1, producer2 = ctx.producers
    distances: List[np.ndarray] = []
    distance_intervals: List[np.ndarray] = []
    for producer in (producer1, producer2):
        consumers = np.flatnonzero(producer != NO_PRODUCER)
        distances.append(consumers - producer[consumers])
        distance_intervals.append(interval_index[consumers])
    all_distances = np.concatenate(distances)
    all_intervals = np.concatenate(distance_intervals)

    total_pairs, below = _cumulative_threshold_counts(
        all_distances, all_intervals, count, thresholds
    )
    # A (write, read) pair exists exactly when a read has a producer,
    # so the consumed-read counts are the distance totals.
    result[:, 1] = np.divide(
        total_pairs,
        total_writes,
        out=np.zeros(count),
        where=total_writes > 0,
    )
    result[:, 2:] = np.divide(
        below,
        total_pairs[:, None],
        out=np.zeros((count, len(thresholds))),
        where=total_pairs[:, None] > 0,
    )
    return result


def _granularity_shift(granularity: int) -> np.uint64:
    shift = int(granularity).bit_length() - 1
    if granularity != (1 << shift):
        raise CharacterizationError(
            f"granularity must be a power of two, got {granularity}"
        )
    return np.uint64(shift)


#: Presence-table budget for the dense unique-count path (cells).
_DENSE_UNIQUE_CELLS = 1 << 22


def _segmented_unique_counts(
    values: np.ndarray, interval_ids: np.ndarray, count: int
) -> np.ndarray:
    """Unique ``values`` per interval id (segmented ``len(np.unique)``).

    Three strategies, cheapest applicable first: a dense
    (interval x value) presence table for narrow value domains (one
    ``bincount``, no sorting — working-set block/page ids are usually
    tiny), one packed-key ``np.sort`` when ``(interval, value)`` fits
    63 bits (values only — no permutation needed just to count), and a
    two-key ``lexsort`` for arbitrary 64-bit values.
    """
    if len(values) == 0:
        return np.zeros(count)
    peak = int(values.max())
    if (peak + 1) * count <= _DENSE_UNIQUE_CELLS:
        table = np.bincount(
            interval_ids * (peak + 1) + values.astype(np.int64),
            minlength=count * (peak + 1),
        ).reshape(count, peak + 1)
        return (table > 0).sum(axis=1).astype(float)
    value_bits = peak.bit_length()
    interval_bits = max(1, (count - 1).bit_length())
    if value_bits + interval_bits <= 63:
        packed = np.sort(
            (interval_ids << np.int64(value_bits))
            | values.astype(np.int64)
        )
        first = np.ones(len(packed), dtype=bool)
        first[1:] = packed[1:] != packed[:-1]
        return np.bincount(
            (packed >> np.int64(value_bits))[first], minlength=count
        ).astype(float)
    order = np.lexsort((values, interval_ids))
    sorted_values = values[order]
    sorted_ids = interval_ids[order]
    first = np.ones(len(values), dtype=bool)
    first[1:] = (sorted_ids[1:] != sorted_ids[:-1]) | (
        sorted_values[1:] != sorted_values[:-1]
    )
    return np.bincount(sorted_ids[first], minlength=count).astype(float)


def _segmented_working_set(
    ctx: _SegmentedContext,
    block_bytes: int,
    page_bytes: int,
    wanted: np.ndarray,
) -> np.ndarray:
    """Per-interval working-set counts, shape ``(count, 4)``.

    Each of the four columns is an independent unique count; only the
    requested ones are computed (and the data stream is only gathered
    when a data column needs it).  Unrequested columns stay ``NaN``.
    """
    # Table II order: D blocks, D pages, I blocks, I pages.
    result = np.full((ctx.count, 4), np.nan)
    if wanted[0] or wanted[1]:
        memory_mask = ctx.trace.memory_mask[: ctx.n]
        data_addresses = ctx.column("mem_addr")[memory_mask]
        data_intervals = ctx.interval_index[memory_mask]
    for column, (is_data, granularity) in enumerate(
        ((True, block_bytes), (True, page_bytes),
         (False, block_bytes), (False, page_bytes))
    ):
        if not wanted[column]:
            continue
        shift = _granularity_shift(granularity)
        addresses = data_addresses if is_data else ctx.column("pc")
        interval_ids = (
            data_intervals if is_data else ctx.interval_index
        )
        result[:, column] = _segmented_unique_counts(
            addresses >> shift, interval_ids, ctx.count
        )
    return result


def _segmented_cumulative_profile(
    strides: np.ndarray,
    interval_ids: np.ndarray,
    count: int,
    thresholds: Sequence[int],
) -> np.ndarray:
    """Per-interval ``P(|stride| <= t)`` profile, zeros where empty."""
    if len(strides) == 0:
        return np.zeros((count, len(thresholds)))
    totals, below = _cumulative_threshold_counts(
        np.abs(strides), interval_ids, count, thresholds
    )
    return np.divide(
        below,
        totals[:, None],
        out=np.zeros((count, len(thresholds))),
        where=totals[:, None] > 0,
    )


def _segmented_strides(
    ctx: _SegmentedContext,
    thresholds: Sequence[int],
    wanted: np.ndarray,
) -> np.ndarray:
    """Per-interval stride profiles, shape ``(count, 4 * thresholds)``.

    The four (scope, op) distributions are independent; only the
    requested ones are built — ``stride_local_load_*`` alone costs one
    load-stream grouping, no store work and no global diffs.
    Unrequested columns stay ``NaN``.
    """
    width = len(thresholds)
    # Table II order: local load, global load, local store, global store.
    result = np.full((ctx.count, 4 * width), np.nan)
    for stream, mask_name in enumerate(("load_mask", "store_mask")):
        local_slice = slice(2 * stream * width, (2 * stream + 1) * width)
        global_slice = slice(
            (2 * stream + 1) * width, (2 * stream + 2) * width
        )
        need_local = wanted[local_slice].any()
        need_global = wanted[global_slice].any()
        if not (need_local or need_global):
            continue
        mask = getattr(ctx.trace, mask_name)[: ctx.n]
        addresses = ctx.column("mem_addr")[mask].astype(np.int64)
        interval_ids = ctx.interval_index[mask]
        empty = np.empty(0, dtype=np.int64)

        if need_local:
            if len(addresses) < 2:
                local, local_ids = empty, empty
            else:
                # Local strides: stable (interval, PC) grouping keeps
                # time order within each static instruction per chunk.
                pcs = ctx.column("pc")[mask]
                order = np.lexsort((pcs, interval_ids))
                sorted_pcs = pcs[order]
                sorted_ids = interval_ids[order]
                deltas = np.diff(addresses[order])
                same_pc = (sorted_pcs[1:] == sorted_pcs[:-1]) & (
                    sorted_ids[1:] == sorted_ids[:-1]
                )
                local = deltas[same_pc]
                local_ids = sorted_ids[1:][same_pc]
            result[:, local_slice] = _segmented_cumulative_profile(
                local, local_ids, ctx.count, thresholds
            )
        if need_global:
            if len(addresses) < 2:
                global_, global_ids = empty, empty
            else:
                # Global strides: temporally adjacent same-kind accesses
                # that do not straddle an interval boundary.
                same_interval = interval_ids[1:] == interval_ids[:-1]
                global_ = np.diff(addresses)[same_interval]
                global_ids = interval_ids[1:][same_interval]
            result[:, global_slice] = _segmented_cumulative_profile(
                global_, global_ids, ctx.count, thresholds
            )
    return result


def _segmented_ppm_reference(
    ctx: _SegmentedContext, max_order: int
) -> np.ndarray:
    """Per-chunk fallback for key widths the packed engine cannot hold."""
    rows = [
        ppm_predictabilities(
            ctx.trace[start : start + ctx.interval], max_order
        )
        for start in ctx.interval_starts
    ]
    return np.vstack(rows)


def _segmented_ppm(
    ctx: _SegmentedContext, max_order: int, wanted: np.ndarray
) -> np.ndarray:
    """Per-interval PPM accuracies, shape ``(count, 4)``.

    The four variants are independent predictors; only the requested
    ones run — ``ppm_GAg`` alone needs neither the per-PC machinery
    (dense ranks, local histories) nor the other variants' count
    recoveries.  Unrequested columns stay ``NaN``.
    """
    if max_order < 1:
        raise CharacterizationError("max_order must be >= 1")
    if max_order > MAX_VECTOR_ORDER:
        result = np.full((ctx.count, len(VARIANTS)), np.nan)
        reference = _segmented_ppm_reference(ctx, max_order)
        result[:, wanted] = reference[:, wanted]
        return result

    branch_mask = ctx.trace.branch_mask[: ctx.n]
    branch_positions = np.flatnonzero(branch_mask)
    result = np.full((ctx.count, len(VARIANTS)), np.nan)
    result[:, wanted] = 0.0
    n_branches = len(branch_positions)
    if n_branches == 0:
        return result

    outcomes = ctx.column("taken")[branch_positions].astype(bool)
    interval_ids = ctx.interval_index[branch_positions]
    branch_counts = np.bincount(interval_ids, minlength=ctx.count)
    bits = outcomes.astype(np.uint64)
    interval64 = interval_ids.astype(np.uint64)

    need_global = any(
        wanted[position] and use_global
        for position, (_, use_global, _shared) in enumerate(VARIANTS)
    )
    need_pairs = any(
        wanted[position] and not (use_global and shared)
        for position, (_, use_global, shared) in enumerate(VARIANTS)
    )

    # Segmented histories: shift registers restart per interval (and,
    # for the local stream, are private to each (interval, PC) pair).
    global_history = (
        _grouped_history(bits, interval_ids, max_order)
        if need_global
        else None
    )
    pair_keys = local_history = None
    if need_pairs:
        # A per-chunk per-PC table (or local shift register) is
        # identified by the (interval, PC) *pair*; dense pair ranks
        # keep every packed key domain as narrow as possible (so the
        # radix fast path of the count recovery stays reachable).
        pcs = ctx.column("pc")[branch_positions]
        _, pc_ids = np.unique(pcs, return_inverse=True)
        num_pcs = int(pc_ids.max()) + 1
        _, pair_ranks = np.unique(
            interval_ids * np.int64(num_pcs) + pc_ids,
            return_inverse=True,
        )
        local_history = _grouped_history(bits, pair_ranks, max_order)
        pair_keys = (
            pair_ranks.astype(np.uint64) + np.uint64(1)
        ) << np.uint64(max_order)

    segment_shared = interval64 << np.uint64(max_order)
    order0_cache: Dict[bool, Tuple[np.ndarray, np.ndarray]] = {}

    def order0_counts(shared_table: bool):
        counts = order0_cache.get(shared_table)
        if counts is None:
            keys = interval64 if shared_table else pair_ranks
            counts = _prior_outcome_counts(keys, outcomes)
            order0_cache[shared_table] = counts
        return counts

    for position, (_, use_global, shared_table) in enumerate(VARIANTS):
        if not wanted[position]:
            continue
        history = global_history if use_global else local_history
        prediction = _variant_predictions(
            history,
            None if shared_table else pair_keys,
            outcomes,
            max_order,
            lambda shared=shared_table: order0_counts(shared),
            segment_keys=segment_shared if shared_table else None,
        )
        correct = np.bincount(
            interval_ids[prediction == outcomes], minlength=ctx.count
        )
        result[:, position] = np.divide(
            correct,
            branch_counts,
            out=np.zeros(ctx.count),
            where=branch_counts > 0,
        )
    return result


# -- driver ---------------------------------------------------------------


def segmented_characterize(
    trace: Trace,
    interval: int,
    config: ReproConfig = DEFAULT_CONFIG,
    categories: "Optional[Iterable[str]]" = None,
    indices: "Optional[Iterable[int]]" = None,
) -> np.ndarray:
    """Per-interval Table II characteristics in one pass over the trace.

    Args:
        trace: the dynamic instruction trace (the trailing partial
            interval, if any, is dropped).
        interval: instructions per interval.
        config: characterization parameters (window sizes, thresholds,
            granularities, PPM order).
        categories: Table II category names to compute.
        indices: 0-based characteristic indices (Table II order) to
            compute — finer than ``categories``: independent columns of
            a section (ILP window sizes, PPM variants, stride streams,
            working-set columns) are only computed when requested, so a
            single-key timeline pays for one window sweep or one
            predictor variant, not four.  Merged with ``categories``
            when both are given; everything is computed when neither
            is.

    Returns:
        ``(intervals x 47)`` matrix.  Requested entries are
        bit-identical to characterizing each chunk separately;
        unrequested entries are ``NaN``, except within a requested
        section where computing a sibling column costs nothing extra
        (mix fractions, register traffic) — those carry their exact
        values too.

    Raises:
        CharacterizationError: on ``interval <= 0``, a trace shorter
            than one interval, an unknown category name, or an
            out-of-range index.
    """
    count = _full_interval_count(trace, interval)
    wanted = np.zeros(NUM_CHARACTERISTICS, dtype=bool)
    slices = category_slices()
    if categories is None and indices is None:
        wanted[:] = True
    else:
        if categories is not None:
            unknown = set(categories) - set(SECTION_CATEGORIES)
            if unknown:
                raise CharacterizationError(
                    f"unknown Table II categories: {sorted(unknown)}"
                )
            for category in categories:
                wanted[slices[category]] = True
        if indices is not None:
            for index in indices:
                if not 0 <= int(index) < NUM_CHARACTERISTICS:
                    raise CharacterizationError(
                        f"characteristic index out of range: {index}"
                    )
                wanted[int(index)] = True

    values = np.full((count, NUM_CHARACTERISTICS), np.nan)
    ctx = _SegmentedContext(trace, interval, count)
    mix_slice = slices["instruction mix"]
    if wanted[mix_slice].any():
        values[:, mix_slice] = _segmented_mix(ctx)
    ilp_slice = slices["ILP"]
    if wanted[ilp_slice].any():
        values[:, ilp_slice] = _segmented_ilp(
            ctx, config.ilp_window_sizes, wanted[ilp_slice]
        )
    reg_slice = slices["register traffic"]
    if wanted[reg_slice].any():
        values[:, reg_slice] = _segmented_register_traffic(
            ctx, config.reg_dep_thresholds
        )
    ws_slice = slices["working set size"]
    if wanted[ws_slice].any():
        values[:, ws_slice] = _segmented_working_set(
            ctx, config.block_bytes, config.page_bytes, wanted[ws_slice]
        )
    stride_slice = slices["data stream strides"]
    if wanted[stride_slice].any():
        values[:, stride_slice] = _segmented_strides(
            ctx, config.stride_thresholds, wanted[stride_slice]
        )
    ppm_slice = slices["branch predictability"]
    if wanted[ppm_slice].any():
        values[:, ppm_slice] = _segmented_ppm(
            ctx, config.ppm_max_order, wanted[ppm_slice]
        )
    return values
