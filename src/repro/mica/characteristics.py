"""The characteristic schema: Table II of the paper.

The 47 microarchitecture-independent characteristics, their categories,
1-based paper indices, and short keys.  All characteristic vectors
produced by :func:`repro.mica.characterize` follow this order exactly,
so the schema is the single source of truth for indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Characteristic:
    """One microarchitecture-independent characteristic.

    Attributes:
        index: 1-based index as in the paper's Table II.
        key: short stable identifier (used in exports and tests).
        category: Table II category name.
        description: human-readable description.
    """

    index: int
    key: str
    category: str
    description: str

    @property
    def array_index(self) -> int:
        """0-based position in characteristic vectors."""
        return self.index - 1


def _build_schema() -> Tuple[Characteristic, ...]:
    entries: List[Tuple[str, str, str]] = []

    def add(key: str, category: str, description: str) -> None:
        entries.append((key, category, description))

    add("mix_loads", "instruction mix", "percentage loads")
    add("mix_stores", "instruction mix", "percentage stores")
    add("mix_branches", "instruction mix", "percentage control transfers")
    add("mix_arith", "instruction mix", "percentage arithmetic operations")
    add("mix_int_mul", "instruction mix", "percentage integer multiplies")
    add("mix_fp", "instruction mix", "percentage fp operations")

    for window in (32, 64, 128, 256):
        add(f"ilp_w{window}", "ILP", f"ideal IPC with a {window}-entry window")

    add("reg_input_operands", "register traffic",
        "avg. number of input operands")
    add("reg_degree_of_use", "register traffic", "avg. degree of use")
    add("reg_dep_eq1", "register traffic", "prob. register dependence = 1")
    for bound in (2, 4, 8, 16, 32, 64):
        add(f"reg_dep_le{bound}", "register traffic",
            f"prob. register dependence <= {bound}")

    add("ws_data_blocks", "working set size",
        "D-stream working set, 32-byte blocks")
    add("ws_data_pages", "working set size",
        "D-stream working set, 4KB pages")
    add("ws_instr_blocks", "working set size",
        "I-stream working set, 32-byte blocks")
    add("ws_instr_pages", "working set size",
        "I-stream working set, 4KB pages")

    # Table II order: local load, global load, local store, global store.
    for op_scope in ("local_load", "global_load", "local_store", "global_store"):
        scope, op = op_scope.split("_")
        add(f"stride_{op_scope}_eq0", "data stream strides",
            f"prob. {scope} {op} stride = 0")
        for bound in (8, 64, 512, 4096):
            add(f"stride_{op_scope}_le{bound}", "data stream strides",
                f"prob. {scope} {op} stride <= {bound}")

    for variant in ("GAg", "PAg", "GAs", "PAs"):
        add(f"ppm_{variant}", "branch predictability",
            f"{variant} PPM predictor accuracy")

    return tuple(
        Characteristic(index=position + 1, key=key, category=category,
                       description=description)
        for position, (key, category, description) in enumerate(entries)
    )


#: The full Table II schema, in paper order.
CHARACTERISTICS: Tuple[Characteristic, ...] = _build_schema()

#: Number of characteristics (47).
NUM_CHARACTERISTICS = len(CHARACTERISTICS)

_BY_KEY: Dict[str, Characteristic] = {
    characteristic.key: characteristic for characteristic in CHARACTERISTICS
}


def characteristic_by_key(key: str) -> Characteristic:
    """Look up a characteristic by its short key.

    Raises:
        KeyError: if the key is unknown.
    """
    return _BY_KEY[key]


def characteristic_names() -> List[str]:
    """All 47 keys, in Table II order."""
    return [characteristic.key for characteristic in CHARACTERISTICS]


def category_slices() -> Dict[str, slice]:
    """0-based vector slice covered by each Table II category."""
    slices: Dict[str, slice] = {}
    start = 0
    current = CHARACTERISTICS[0].category
    for position, characteristic in enumerate(CHARACTERISTICS):
        if characteristic.category != current:
            slices[current] = slice(start, position)
            start = position
            current = characteristic.category
    slices[current] = slice(start, len(CHARACTERISTICS))
    return slices
