"""Working-set characteristics (Table II, characteristics 20-23).

The paper counts the unique 32-byte blocks and unique 4 KB pages touched
by the data stream and by the instruction stream.  The counts are raw
(not normalized by trace length), exactly as in the paper; experiments
normalize across benchmarks afterwards.
"""

from __future__ import annotations

import numpy as np

from ..errors import CharacterizationError
from ..trace import Trace


def _unique_count(addresses: np.ndarray, granularity: int) -> int:
    if len(addresses) == 0:
        return 0
    shift = int(granularity).bit_length() - 1
    if granularity != (1 << shift):
        raise CharacterizationError(
            f"granularity must be a power of two, got {granularity}"
        )
    return int(len(np.unique(addresses >> np.uint64(shift))))


def working_set(
    trace: Trace, block_bytes: int = 32, page_bytes: int = 4096
) -> np.ndarray:
    """The four working-set characteristics, in Table II order.

    Returns:
        ``[D blocks, D pages, I blocks, I pages]`` — unique 32-byte
        blocks and 4 KB pages touched by data accesses and by
        instruction fetches.

    Raises:
        CharacterizationError: for an empty trace or non-power-of-two
            granularities.
    """
    if len(trace) == 0:
        raise CharacterizationError(
            "cannot compute working set of an empty trace"
        )
    data_addresses = trace.mem_addr[trace.memory_mask]
    instruction_addresses = trace.pc
    return np.array(
        [
            _unique_count(data_addresses, block_bytes),
            _unique_count(data_addresses, page_bytes),
            _unique_count(instruction_addresses, block_bytes),
            _unique_count(instruction_addresses, page_bytes),
        ],
        dtype=float,
    )
