"""Data-stream stride characteristics (Table II, characteristics 24-43).

Two stride notions, each split by loads and stores:

* **global stride**: byte distance between temporally adjacent memory
  accesses of the same kind (adjacent loads for load strides, adjacent
  stores for store strides);
* **local stride**: byte distance between successive accesses *of the
  same static instruction* (same PC), capturing per-instruction access
  regularity.

Each distribution is summarized by cumulative probabilities:
``P(stride = 0)`` and ``P(|stride| <= 8 / 64 / 512 / 4096)``, for
20 characteristics in total.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import CharacterizationError
from ..trace import Trace

#: Cumulative stride thresholds after the equality-at-zero bucket.
DEFAULT_THRESHOLDS = (0, 8, 64, 512, 4096)


def _cumulative_profile(
    strides: np.ndarray, thresholds: Sequence[int]
) -> np.ndarray:
    """``P(|stride| <= t)`` per threshold (``t = 0`` is an equality)."""
    result = np.zeros(len(thresholds), dtype=float)
    if len(strides) == 0:
        return result
    magnitudes = np.abs(strides.astype(np.int64))
    total = float(len(magnitudes))
    for position, threshold in enumerate(thresholds):
        result[position] = float((magnitudes <= threshold).sum()) / total
    return result


def _local_strides(pcs: np.ndarray, addresses: np.ndarray) -> np.ndarray:
    """Per-static-instruction (same PC) consecutive address deltas."""
    if len(addresses) < 2:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(pcs, kind="stable")
    sorted_pcs = pcs[order]
    sorted_addresses = addresses[order].astype(np.int64)
    deltas = np.diff(sorted_addresses)
    same_pc = sorted_pcs[1:] == sorted_pcs[:-1]
    return deltas[same_pc]


def _global_strides(addresses: np.ndarray) -> np.ndarray:
    """Temporally adjacent address deltas within one access stream."""
    if len(addresses) < 2:
        return np.empty(0, dtype=np.int64)
    return np.diff(addresses.astype(np.int64))


def stride_profile(
    trace: Trace, thresholds: Sequence[int] = DEFAULT_THRESHOLDS
) -> np.ndarray:
    """The twenty stride characteristics, in Table II order.

    Order: local load (5 thresholds), global load (5), local store (5),
    global store (5).

    Raises:
        CharacterizationError: for an empty trace.
    """
    if len(trace) == 0:
        raise CharacterizationError(
            "cannot compute strides of an empty trace"
        )
    load_mask = trace.load_mask
    store_mask = trace.store_mask
    load_pcs = trace.pc[load_mask]
    load_addresses = trace.mem_addr[load_mask]
    store_pcs = trace.pc[store_mask]
    store_addresses = trace.mem_addr[store_mask]

    sections = [
        _cumulative_profile(_local_strides(load_pcs, load_addresses), thresholds),
        _cumulative_profile(_global_strides(load_addresses), thresholds),
        _cumulative_profile(
            _local_strides(store_pcs, store_addresses), thresholds
        ),
        _cumulative_profile(_global_strides(store_addresses), thresholds),
    ]
    return np.concatenate(sections)
