"""Full MICA characterization: one trace -> one 47-dimensional vector.

:func:`characterize` runs every analyzer in Table II order and wraps the
result in a :class:`CharacteristicVector`, which pairs values with the
schema for readable access and export.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ReproConfig, DEFAULT_CONFIG
from ..errors import CharacterizationError
from ..trace import Trace
from .characteristics import (
    CHARACTERISTICS,
    NUM_CHARACTERISTICS,
    characteristic_by_key,
)
from .ilp import ilp_ipc, producer_indices
from .instruction_mix import instruction_mix
from .ppm import ppm_predictabilities
from .register_traffic import register_traffic
from .strides import stride_profile
from .working_set import working_set


@dataclass(frozen=True)
class CharacteristicVector:
    """A benchmark's 47 microarchitecture-independent characteristics.

    Attributes:
        name: benchmark identifier the vector was computed for.
        values: the 47 values, in Table II order.
    """

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != (NUM_CHARACTERISTICS,):
            raise CharacterizationError(
                f"expected {NUM_CHARACTERISTICS} values, "
                f"got shape {self.values.shape}"
            )

    def __getitem__(self, key: str) -> float:
        """Value of one characteristic by schema key."""
        return float(self.values[characteristic_by_key(key).array_index])

    def as_dict(self) -> "dict[str, float]":
        """Mapping from schema key to value, in Table II order."""
        return {
            characteristic.key: float(self.values[characteristic.array_index])
            for characteristic in CHARACTERISTICS
        }

    def format(self, precision: int = 4) -> str:
        """Multi-line human-readable rendering grouped by category."""
        lines = [f"characteristics of {self.name or '<unnamed>'}"]
        category = None
        for characteristic in CHARACTERISTICS:
            if characteristic.category != category:
                category = characteristic.category
                lines.append(f"  [{category}]")
            value = self.values[characteristic.array_index]
            lines.append(
                f"    {characteristic.index:>2} "
                f"{characteristic.key:<28} {value:>{precision + 8}.{precision}f}"
            )
        return "\n".join(lines)


def characterize(
    trace: Trace, config: ReproConfig = DEFAULT_CONFIG
) -> CharacteristicVector:
    """Compute all 47 microarchitecture-independent characteristics.

    Args:
        trace: the dynamic instruction trace to characterize.
        config: reproduction configuration (window sizes, thresholds,
            granularities, PPM order).

    Returns:
        The benchmark's :class:`CharacteristicVector`.

    Raises:
        CharacterizationError: for an empty trace.
    """
    if len(trace) == 0:
        raise CharacterizationError("cannot characterize an empty trace")
    producers = producer_indices(trace)
    sections = [
        instruction_mix(trace),
        ilp_ipc(trace, config.ilp_window_sizes, producers=producers),
        register_traffic(
            trace, config.reg_dep_thresholds, producers=producers
        ),
        working_set(trace, config.block_bytes, config.page_bytes),
        stride_profile(trace, config.stride_thresholds),
        ppm_predictabilities(trace, config.ppm_max_order),
    ]
    values = np.concatenate(sections)
    return CharacteristicVector(name=trace.name, values=values)
