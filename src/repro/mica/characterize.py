"""Full MICA characterization: one trace -> one 47-dimensional vector.

:func:`characterize` runs every analyzer in Table II order and wraps the
result in a :class:`CharacteristicVector`, which pairs values with the
schema for readable access and export.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ReproConfig, DEFAULT_CONFIG
from ..errors import CharacterizationError
from ..trace import Trace
from .characteristics import (
    CHARACTERISTICS,
    NUM_CHARACTERISTICS,
    characteristic_by_key,
)
from .ilp import ilp_ipc, producer_indices
from .instruction_mix import instruction_mix
from .ppm import ppm_predictabilities
from .register_traffic import register_traffic
from .strides import stride_profile
from .working_set import working_set


@dataclass(frozen=True)
class CharacteristicVector:
    """A benchmark's 47 microarchitecture-independent characteristics.

    Attributes:
        name: benchmark identifier the vector was computed for.
        values: the 47 values, in Table II order.
    """

    name: str
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != (NUM_CHARACTERISTICS,):
            raise CharacterizationError(
                f"expected {NUM_CHARACTERISTICS} values, "
                f"got shape {self.values.shape}"
            )

    def __getitem__(self, key: str) -> float:
        """Value of one characteristic by schema key."""
        return float(self.values[characteristic_by_key(key).array_index])

    def as_dict(self) -> "dict[str, float]":
        """Mapping from schema key to value, in Table II order."""
        return {
            characteristic.key: float(self.values[characteristic.array_index])
            for characteristic in CHARACTERISTICS
        }

    def format(self, precision: int = 4) -> str:
        """Multi-line human-readable rendering grouped by category."""
        lines = [f"characteristics of {self.name or '<unnamed>'}"]
        category = None
        for characteristic in CHARACTERISTICS:
            if characteristic.category != category:
                category = characteristic.category
                lines.append(f"  [{category}]")
            value = self.values[characteristic.array_index]
            lines.append(
                f"    {characteristic.index:>2} "
                f"{characteristic.key:<28} {value:>{precision + 8}.{precision}f}"
            )
        return "\n".join(lines)


def characterize(
    trace: Trace,
    config: ReproConfig = DEFAULT_CONFIG,
    *,
    shards: "int | None" = None,
    shard_size: "int | None" = None,
    jobs: "int | None" = None,
    cache_dir=None,
) -> CharacteristicVector:
    """Compute all 47 microarchitecture-independent characteristics.

    Args:
        trace: the dynamic instruction trace to characterize.
        config: reproduction configuration (window sizes, thresholds,
            granularities, PPM order).
        shards: when given, characterize through the shard-mergeable
            engine split into this many contiguous shards — bit-for-bit
            identical to the one-shot path for every geometry.
        shard_size: or split into fixed-size shards of this many rows.
        jobs: worker processes for the intra-trace fan-out (sharded
            path only); ``None``/``<= 1`` streams sequentially.
        cache_dir: per-shard cold-state cache directory (sharded path
            only; see :class:`repro.perf.cache.ShardCache`).

    Returns:
        The benchmark's :class:`CharacteristicVector`.

    Raises:
        CharacterizationError: for an empty trace.
    """
    if shards is not None or shard_size is not None or jobs is not None:
        # Imported lazily: repro.perf imports repro.mica at its top
        # level, so the sharded driver cannot be a module-level import.
        from ..perf.sharding import sharded_characterize

        if shards is None and shard_size is None:
            shards = jobs  # N workers want at least N shards
        return sharded_characterize(
            trace, config, shards=shards, shard_size=shard_size,
            jobs=jobs, cache_dir=cache_dir,
        )
    if len(trace) == 0:
        raise CharacterizationError("cannot characterize an empty trace")
    producers = producer_indices(trace)
    sections = [
        instruction_mix(trace),
        ilp_ipc(trace, config.ilp_window_sizes, producers=producers),
        register_traffic(
            trace, config.reg_dep_thresholds, producers=producers
        ),
        working_set(trace, config.block_bytes, config.page_bytes),
        stride_profile(trace, config.stride_thresholds),
        ppm_predictabilities(trace, config.ppm_max_order),
    ]
    values = np.concatenate(sections)
    return CharacteristicVector(name=trace.name, values=values)
