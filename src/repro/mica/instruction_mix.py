"""Instruction mix (Table II, characteristics 1-6).

Fractions of loads, stores, control transfers, arithmetic (integer ALU)
operations, integer multiplies and floating-point operations in the
dynamic instruction stream.  Following the paper, integer multiplies are
reported separately from other arithmetic operations.
"""

from __future__ import annotations

import numpy as np

from ..errors import CharacterizationError
from ..isa import OpClass
from ..trace import Trace


def instruction_mix(trace: Trace) -> np.ndarray:
    """The six instruction-mix fractions, in Table II order.

    Returns:
        ``[loads, stores, branches, arithmetic, int_mul, fp]`` as
        fractions of the dynamic instruction count (NOPs contribute to
        the denominator but to none of the categories).

    Raises:
        CharacterizationError: for an empty trace.
    """
    if len(trace) == 0:
        raise CharacterizationError("cannot compute mix of an empty trace")
    counts = np.bincount(trace.opclass, minlength=len(OpClass))
    total = float(len(trace))
    return np.array(
        [
            counts[int(OpClass.LOAD)] / total,
            counts[int(OpClass.STORE)] / total,
            counts[int(OpClass.BRANCH)] / total,
            counts[int(OpClass.INT_ALU)] / total,
            counts[int(OpClass.INT_MUL)] / total,
            counts[int(OpClass.FP)] / total,
        ]
    )
