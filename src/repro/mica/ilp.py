"""Inherent instruction-level parallelism (Table II, characteristics 7-10).

The paper measures the IPC achievable on an idealized out-of-order
processor: perfect caches, perfect branch prediction, unlimited
functional units, unit execution latency — the *only* constraints are
true register data dependencies and the instruction window.  We model
the window exactly as the MICA tool does: the trace is partitioned into
consecutive non-overlapping windows of W instructions; each window
executes in as many cycles as its dataflow critical path; IPC is the
instruction count divided by the summed critical-path lengths.

Register dataflow is recovered from the trace with
:func:`producer_indices`, which maps every source operand to the dynamic
index of the instruction that produced the value (the most recent writer
of that architected register).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..errors import CharacterizationError
from ..isa import NO_REG
from ..isa.registers import (
    FP_ZERO_REG,
    INT_ZERO_REG,
    TOTAL_REGS,
)
from ..trace import Trace

#: Producer index used when a source has no producer in the trace.
NO_PRODUCER = -1


def producer_indices(trace: Trace) -> Tuple[np.ndarray, np.ndarray]:
    """Dynamic producer index for each instruction's two source slots.

    For every instruction ``i`` and source slot, the result holds the
    index of the most recent earlier instruction that wrote that source
    register, or :data:`NO_PRODUCER` when the slot is empty, reads a
    hardwired-zero register, or reads a register not yet written.

    Returns:
        ``(producer1, producer2)`` int64 arrays of the trace length.
    """
    n = len(trace)
    dst = trace.dst
    producers = []
    # Writer positions per register, for searchsorted-based lookup.
    writer_positions: Dict[int, np.ndarray] = {}
    has_dst = dst != NO_REG
    written_registers = np.unique(dst[has_dst])
    positions = np.arange(n, dtype=np.int64)
    for register in written_registers:
        writer_positions[int(register)] = positions[dst == register]

    for source in (trace.src1, trace.src2):
        producer = np.full(n, NO_PRODUCER, dtype=np.int64)
        live = (source != NO_REG) & (source != INT_ZERO_REG) & (
            source != FP_ZERO_REG
        )
        for register in np.unique(source[live]):
            register = int(register)
            writers = writer_positions.get(register)
            if writers is None:
                continue
            readers = positions[live & (source == register)]
            slot = np.searchsorted(writers, readers, side="left") - 1
            valid = slot >= 0
            producer[readers[valid]] = writers[slot[valid]]
        producers.append(producer)
    return producers[0], producers[1]


def _window_critical_paths(
    producer1: np.ndarray, producer2: np.ndarray, window: int
) -> int:
    """Total cycles: sum of dataflow critical paths over W-sized windows."""
    n = len(producer1)
    level = np.ones(n, dtype=np.int32)
    p1 = producer1
    p2 = producer2
    total_cycles = 0
    for window_start in range(0, n, window):
        window_end = min(window_start + window, n)
        depth = 1
        for i in range(window_start, window_end):
            best = 0
            p = p1[i]
            if p >= window_start:
                best = level[p]
            p = p2[i]
            if p >= window_start and level[p] > best:
                best = level[p]
            lvl = best + 1
            level[i] = lvl
            if lvl > depth:
                depth = lvl
        total_cycles += depth
    return total_cycles


def ilp_ipc(
    trace: Trace,
    window_sizes: Sequence[int] = (32, 64, 128, 256),
    producers: "Tuple[np.ndarray, np.ndarray] | None" = None,
) -> np.ndarray:
    """Idealized-processor IPC for each window size.

    Args:
        trace: the dynamic instruction trace.
        window_sizes: instruction-window sizes (paper: 32/64/128/256).
        producers: precomputed :func:`producer_indices` result (shared
            with register-traffic analysis to avoid recomputation).

    Returns:
        IPC value per window size, same order as ``window_sizes``.

    Raises:
        CharacterizationError: for an empty trace or bad window size.
    """
    if len(trace) == 0:
        raise CharacterizationError("cannot compute ILP of an empty trace")
    for window in window_sizes:
        if window < 1:
            raise CharacterizationError(f"invalid window size: {window}")
    if producers is None:
        producers = producer_indices(trace)
    producer1, producer2 = producers
    n = len(trace)
    result = np.empty(len(window_sizes), dtype=float)
    for position, window in enumerate(window_sizes):
        cycles = _window_critical_paths(producer1, producer2, window)
        result[position] = n / cycles if cycles else 0.0
    return result
