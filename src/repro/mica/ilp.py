"""Inherent instruction-level parallelism (Table II, characteristics 7-10).

The paper measures the IPC achievable on an idealized out-of-order
processor: perfect caches, perfect branch prediction, unlimited
functional units, unit execution latency — the *only* constraints are
true register data dependencies and the instruction window.  We model
the window exactly as the MICA tool does: the trace is partitioned into
consecutive non-overlapping windows of W instructions; each window
executes in as many cycles as its dataflow critical path; IPC is the
instruction count divided by the summed critical-path lengths.

Register dataflow is recovered from the trace with
:func:`producer_indices`, which maps every source operand to the dynamic
index of the instruction that produced the value (the most recent writer
of that architected register) — a single key-sorted pass over one
combined read/write event stream (the retained per-register
:func:`producer_indices_reference` is its executable specification).

Two critical-path implementations are provided:

* :func:`window_cycle_counts` — the production path.  Windows of one
  size are mutually independent, so instead of walking the trace once
  per window size it walks window-relative *offsets* once (0..max(W)-1)
  and, at each offset, updates the dataflow depth of that position in
  **every** window of **every** requested size with array gathers.  A
  producer always precedes its consumer, so by the time offset ``j`` is
  processed every in-window producer (offset < ``j``) already has its
  final depth.
* :func:`ilp_ipc_reference` — the original per-instruction scalar loop,
  retained as the executable specification for the equivalence tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import CharacterizationError
from ..isa import NO_REG
from ..isa.registers import FP_ZERO_REG, INT_ZERO_REG
from ..trace import Trace

#: Producer index used when a source has no producer in the trace.
NO_PRODUCER = -1


def producer_indices(trace: Trace) -> Tuple[np.ndarray, np.ndarray]:
    """Dynamic producer index for each instruction's two source slots.

    For every instruction ``i`` and source slot, the result holds the
    index of the most recent earlier instruction that wrote that source
    register, or :data:`NO_PRODUCER` when the slot is empty, reads a
    hardwired-zero register, or reads a register not yet written.

    Single pass: both read slots and the write stream pack into one
    ``register * (n + 1) + position`` key stream (write keys biased by
    one half-step so an instruction's own same-register write sorts
    *after* its reads), and a single key sort merges them — each read's
    producer is the write immediately preceding it in key order,
    provided that write sits in the same register's key run.  After
    biasing, keys collide only when one instruction reads the same
    register through both slots — interchangeable events — so the
    (fast) unstable sort is exact.

    Returns:
        ``(producer1, producer2)`` int64 arrays of the trace length.
    """
    n = len(trace)
    producer1 = np.full(n, NO_PRODUCER, dtype=np.int64)
    producer2 = np.full(n, NO_PRODUCER, dtype=np.int64)

    def live_readers(source: np.ndarray) -> np.ndarray:
        live = (source != NO_REG) & (source != INT_ZERO_REG) & (
            source != FP_ZERO_REG
        )
        return np.flatnonzero(live)

    readers1 = live_readers(trace.src1)
    readers2 = live_readers(trace.src2)
    writers = np.flatnonzero(trace.dst != NO_REG)
    if len(writers) == 0:
        return producer1, producer2  # No writes: nothing has a producer.
    base1 = trace.src1[readers1].astype(np.int64) * (n + 1)
    base2 = trace.src2[readers2].astype(np.int64) * (n + 1)
    writer_keys = trace.dst[writers].astype(np.int64) * (n + 1) + writers
    n_reads = len(readers1) + len(readers2)
    merged = np.concatenate(
        [
            (base1 + readers1) * 2,
            (base2 + readers2) * 2,
            writer_keys * 2 + 1,
        ]
    )
    order = np.argsort(merged)
    write_entry = order >= n_reads
    # For each read, the number of writes sorted before it, minus one:
    # an index into the key-sorted write stream (-1 = no earlier write).
    slot = np.cumsum(write_entry) - write_entry - 1
    write_order = order[write_entry] - n_reads
    sorted_keys = writer_keys[write_order]
    sorted_positions = writers[write_order]

    read_entry = ~write_entry
    read_index = order[read_entry]  # Into the concatenated read streams.
    read_slot = slot[read_entry]
    bases = np.concatenate([base1, base2])
    targets = np.concatenate([readers1, readers2])
    valid = read_slot >= 0
    # Same register iff the producing write's key falls in the reader's
    # register run.
    valid &= sorted_keys[np.maximum(read_slot, 0)] >= bases[read_index]
    second = read_index >= len(readers1)
    keep1 = valid & ~second
    keep2 = valid & second
    producer1[targets[read_index[keep1]]] = sorted_positions[
        read_slot[keep1]
    ]
    producer2[targets[read_index[keep2]]] = sorted_positions[
        read_slot[keep2]
    ]
    return producer1, producer2


def producer_indices_reference(
    trace: Trace,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-register producer recovery — the executable specification.

    Walks one register at a time with a ``searchsorted`` lookup per
    (slot, register) pair; retained for the equivalence tests and the
    perf harness.  Produces exactly the arrays of
    :func:`producer_indices`.
    """
    n = len(trace)
    dst = trace.dst
    producers = []
    # Writer positions per register, for searchsorted-based lookup.
    writer_positions: Dict[int, np.ndarray] = {}
    has_dst = dst != NO_REG
    written_registers = np.unique(dst[has_dst])
    positions = np.arange(n, dtype=np.int64)
    for register in written_registers:
        writer_positions[int(register)] = positions[dst == register]

    for source in (trace.src1, trace.src2):
        producer = np.full(n, NO_PRODUCER, dtype=np.int64)
        live = (source != NO_REG) & (source != INT_ZERO_REG) & (
            source != FP_ZERO_REG
        )
        for register in np.unique(source[live]):
            register = int(register)
            writers = writer_positions.get(register)
            if writers is None:
                continue
            readers = positions[live & (source == register)]
            slot = np.searchsorted(writers, readers, side="left") - 1
            valid = slot >= 0
            producer[readers[valid]] = writers[slot[valid]]
        producers.append(producer)
    return producers[0], producers[1]


def _window_critical_paths_reference(
    producer1: np.ndarray, producer2: np.ndarray, window: int
) -> int:
    """Scalar critical-path walk — the executable specification.

    Total cycles: sum of dataflow critical paths over W-sized windows.
    """
    n = len(producer1)
    level = np.ones(n, dtype=np.int32)
    p1 = producer1
    p2 = producer2
    total_cycles = 0
    for window_start in range(0, n, window):
        window_end = min(window_start + window, n)
        depth = 1
        for i in range(window_start, window_end):
            best = 0
            p = p1[i]
            if p >= window_start:
                best = level[p]
            p = p2[i]
            if p >= window_start and level[p] > best:
                best = level[p]
            lvl = best + 1
            level[i] = lvl
            if lvl > depth:
                depth = lvl
        total_cycles += depth
    return total_cycles


def window_cycle_counts(
    producer1: np.ndarray,
    producer2: np.ndarray,
    window_sizes: Sequence[int],
) -> List[int]:
    """Summed per-window critical-path cycles for every window size.

    One traversal over window-relative offsets computes the dataflow
    depth of every instruction for **all** window sizes: at offset ``j``
    the instructions ``starts + j`` (one per window) gather their
    producers' already-final depths, zeroing producers outside their own
    window.  Per-window critical paths then fall out of a segmented max.

    Returns:
        Total cycles per entry of ``window_sizes`` (same order).
    """
    n = len(producer1)
    unique_sizes = sorted({int(window) for window in window_sizes})
    levels: Dict[int, np.ndarray] = {}
    starts: Dict[int, np.ndarray] = {}
    for window in unique_sizes:
        # Offset-0 instructions have no in-window producer: depth 1.
        levels[window] = np.ones(n, dtype=np.int64)
        starts[window] = np.arange(0, n, window, dtype=np.int64)

    for offset in range(1, max(unique_sizes, default=1)):
        for window in unique_sizes:
            if offset >= window:
                continue
            window_starts = starts[window]
            # starts are ascending, so the windows still holding an
            # instruction at this offset form a prefix.
            count = int(
                np.searchsorted(window_starts, n - offset, side="left")
            )
            if count == 0:
                continue
            window_starts = window_starts[:count]
            indices = window_starts + offset
            level = levels[window]
            gather1 = producer1[indices]
            gather2 = producer2[indices]
            depth1 = np.where(
                gather1 >= window_starts, level[gather1], 0
            )
            depth2 = np.where(
                gather2 >= window_starts, level[gather2], 0
            )
            level[indices] = np.maximum(depth1, depth2) + 1

    cycles = {
        window: int(np.maximum.reduceat(levels[window], starts[window]).sum())
        for window in unique_sizes
    }
    return [cycles[int(window)] for window in window_sizes]


def full_window_cycle_counts(
    producer1: np.ndarray,
    producer2: np.ndarray,
    starts_by_size: "Dict[int, np.ndarray]",
    n: "int | None" = None,
) -> "Dict[int, int]":
    """Summed critical-path cycles over explicitly listed *full* windows.

    The shard engine's generalization of :func:`window_cycle_counts`:
    instead of tiling ``[0, n)`` it is handed, per window size, the
    ascending local start positions of the windows to close — each
    guaranteed full (``start + size <= n``), which is exactly the set of
    globally-aligned windows falling entirely inside one shard.  Same
    offset-major traversal, but with every window full no prefix
    trimming is needed.

    Returns:
        ``{size: total cycles}`` (0 for a size with no listed windows).
    """
    if n is None:
        n = len(producer1)
    normalized = {
        int(size): np.asarray(starts, dtype=np.int64)
        for size, starts in starts_by_size.items()
    }
    sizes = sorted(normalized)
    levels: Dict[int, np.ndarray] = {}
    active: List[int] = []
    for size in sizes:
        if len(normalized[size]):
            levels[size] = np.ones(n, dtype=np.int64)
            active.append(size)
    for offset in range(1, max(active, default=1)):
        for size in active:
            if offset >= size:
                continue
            window_starts = normalized[size]
            indices = window_starts + offset
            level = levels[size]
            gather1 = producer1[indices]
            gather2 = producer2[indices]
            depth1 = np.where(
                gather1 >= window_starts, level[gather1], 0
            )
            depth2 = np.where(
                gather2 >= window_starts, level[gather2], 0
            )
            level[indices] = np.maximum(depth1, depth2) + 1
    cycles: Dict[int, int] = {}
    for size in sizes:
        starts = normalized[size]
        if len(starts) == 0:
            cycles[size] = 0
            continue
        # Same-size aligned windows are contiguous, so reduceat segments
        # are exactly the windows; trailing rows past the last window
        # keep their init depth of 1 and cannot raise a window max.
        cycles[size] = int(
            np.maximum.reduceat(levels[size], starts).sum()
        )
    return cycles


def _validate_ilp_inputs(trace: Trace, window_sizes: Sequence[int]) -> None:
    if len(trace) == 0:
        raise CharacterizationError("cannot compute ILP of an empty trace")
    for window in window_sizes:
        if window < 1:
            raise CharacterizationError(f"invalid window size: {window}")


def ilp_ipc(
    trace: Trace,
    window_sizes: Sequence[int] = (32, 64, 128, 256),
    producers: "Tuple[np.ndarray, np.ndarray] | None" = None,
) -> np.ndarray:
    """Idealized-processor IPC for each window size.

    Vectorized: all window sizes are computed from one offset-major
    traversal (see :func:`window_cycle_counts`), producing exactly the
    same cycle counts as :func:`ilp_ipc_reference`.

    Args:
        trace: the dynamic instruction trace.
        window_sizes: instruction-window sizes (paper: 32/64/128/256).
        producers: precomputed :func:`producer_indices` result (shared
            with register-traffic analysis to avoid recomputation).

    Returns:
        IPC value per window size, same order as ``window_sizes``.

    Raises:
        CharacterizationError: for an empty trace or bad window size.
    """
    _validate_ilp_inputs(trace, window_sizes)
    if producers is None:
        producers = producer_indices(trace)
    producer1, producer2 = producers
    n = len(trace)
    cycle_counts = window_cycle_counts(producer1, producer2, window_sizes)
    result = np.empty(len(window_sizes), dtype=float)
    for position, cycles in enumerate(cycle_counts):
        result[position] = n / cycles if cycles else 0.0
    return result


def ilp_ipc_reference(
    trace: Trace,
    window_sizes: Sequence[int] = (32, 64, 128, 256),
    producers: "Tuple[np.ndarray, np.ndarray] | None" = None,
) -> np.ndarray:
    """Scalar ILP — re-walks the trace once per window size.

    The executable specification the vectorized :func:`ilp_ipc` is
    tested against; produces identical values.
    """
    _validate_ilp_inputs(trace, window_sizes)
    if producers is None:
        producers = producer_indices(trace)
    producer1, producer2 = producers
    n = len(trace)
    result = np.empty(len(window_sizes), dtype=float)
    for position, window in enumerate(window_sizes):
        cycles = _window_critical_paths_reference(producer1, producer2, window)
        result[position] = n / cycles if cycles else 0.0
    return result
