"""MICA: the paper's 47 microarchitecture-independent characteristics.

Each analyzer module computes one category of Table II;
:func:`characterize` runs them all and returns the benchmark's
47-dimensional characteristic vector in Table II order.
"""

from .characteristics import (
    Characteristic,
    CHARACTERISTICS,
    NUM_CHARACTERISTICS,
    characteristic_by_key,
    characteristic_names,
    category_slices,
)
from .instruction_mix import instruction_mix
from .ilp import ilp_ipc, ilp_ipc_reference, producer_indices
from .register_traffic import register_traffic
from .working_set import working_set
from .strides import stride_profile
from .ppm import (
    PPMPredictor,
    ppm_predictabilities,
    ppm_predictabilities_reference,
)
from .characterize import CharacteristicVector, characterize
from .segmented import (
    SECTION_CATEGORIES,
    segmented_characterize,
    segmented_producer_indices,
)
from .shard import (
    SECTION_ORDER,
    ShardState,
    characterize_stream,
    finalize_state,
    merge_states,
    ppm_shard_correct,
    shard_state,
    state_from_arrays,
    state_to_arrays,
)

__all__ = [
    "Characteristic",
    "CHARACTERISTICS",
    "NUM_CHARACTERISTICS",
    "characteristic_by_key",
    "characteristic_names",
    "category_slices",
    "instruction_mix",
    "ilp_ipc",
    "ilp_ipc_reference",
    "producer_indices",
    "register_traffic",
    "working_set",
    "stride_profile",
    "PPMPredictor",
    "ppm_predictabilities",
    "ppm_predictabilities_reference",
    "CharacteristicVector",
    "characterize",
    "SECTION_CATEGORIES",
    "segmented_characterize",
    "segmented_producer_indices",
    "SECTION_ORDER",
    "ShardState",
    "characterize_stream",
    "finalize_state",
    "merge_states",
    "ppm_shard_correct",
    "shard_state",
    "state_from_arrays",
    "state_to_arrays",
]
