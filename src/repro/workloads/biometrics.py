"""BioMetricsWorkload — biometric workloads (8 benchmark/input pairs).

The csu face-recognition pipeline is dense FP linear algebra (subspace
projection / training via PCA and LDA) over image matrices; the paper
finds csu dissimilar from SPEC CPU2000 (singleton cluster).  ``speak``
is an integer-dominated speech decoder.
"""

from __future__ import annotations

from .builder import ProfileTheme

NAME = "biometrics"
DESCRIPTION = "BioMetricsWorkload: biometric (face/voice) workloads"

THEME = ProfileTheme(
    load=(0.24, 0.3),
    store=(0.08, 0.12),
    branch=(0.04, 0.09),
    int_alu=(0.2, 0.3),
    int_mul=(0.0, 0.02),
    fp=(0.25, 0.4),
    footprint_log2=(23.0, 25.5),  # 8 MB .. 45 MB
    num_functions=(8.0, 20.0),
    blocks_per_function=(8.0, 14.0),
    loop_iter_mean=(40.0, 90.0),
    dep_mean=(5.0, 9.0),
    load_mix={"scalar": 0.06, "sequential": 0.45, "strided": 0.42,
              "random": 0.07},
    store_mix={"scalar": 0.1, "sequential": 0.55, "strided": 0.35},
    stride_choices=(64, 128, 256, 512),
    pattern_fraction=(0.75, 0.9),
    taken_bias=(0.08, 0.2),
    imm_fraction=(0.25, 0.35),
    fp_pool=(24.0, 30.0),
    two_op_fraction=(0.7, 0.8),
)

_SUBSPACE = {
    # Dense matrix-vector kernels: long strided FP loops.
    "loop_iter_mean": 80.0,
    "loop_blocks": 2,
    "diamond_rate": 0.05,
}

#: Entries: (program, input label, dynamic icount in millions, overrides).
ENTRIES = [
    ("csu", "bayesian-project", 403_313, {
        "footprint_bytes": 40 << 20,
        "loop_iter_mean": 70.0,
    }),
    ("csu", "bayesian-train", 28_158, {
        "footprint_bytes": 32 << 20,
        "loop_iter_mean": 60.0,
    }),
    ("csu", "preprocess-normalize", 4_059, {
        # Image preprocessing: sequential pixel sweeps, lighter FP.
        "mix": {"load": 0.27, "store": 0.12, "branch": 0.08, "int_alu": 0.33,
                "int_mul": 0.01, "fp": 0.19},
        "footprint_bytes": 10 << 20,
        "load_mix": {"scalar": 0.08, "sequential": 0.75, "strided": 0.12,
                     "random": 0.05},
    }),
    ("csu", "subspace-project-lda", 6_054, dict(_SUBSPACE, footprint_bytes=24 << 20)),
    ("csu", "subspace-project-pca", 6_098, dict(_SUBSPACE, footprint_bytes=24 << 20)),
    ("csu", "subspace-train-lda", 51_297, dict(_SUBSPACE, footprint_bytes=36 << 20)),
    ("csu", "subspace-train-pca", 41_729, dict(_SUBSPACE, footprint_bytes=36 << 20)),
    ("speak", "decode", 46_648, {
        # Speech decoding: integer search over lattices.
        "mix": {"load": 0.28, "store": 0.08, "branch": 0.14, "int_alu": 0.44,
                "int_mul": 0.02, "fp": 0.04},
        "footprint_bytes": 8 << 20,
        "loop_iter_mean": 8.0,
        "dep_mean": 3.0,
        "load_mix": {"scalar": 0.15, "sequential": 0.25, "strided": 0.15,
                     "random": 0.3, "pointer": 0.15},
        "pattern_fraction": 0.35,
        "taken_bias": 0.4,
    }),
]
