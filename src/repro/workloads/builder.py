"""Profile construction from suite themes.

A :class:`ProfileTheme` gives, for every workload-profile knob, the range
that is characteristic of a workload domain.  :func:`build_profile` draws
a deterministic value within each range (seeded by the benchmark's full
name, so every benchmark is a stable, distinct point in the range) and
then applies explicit per-benchmark overrides for behaviors the paper
calls out.

Override keys accepted by :func:`build_profile`:

``mix``
    dict of instruction-mix weights (normalized automatically).
``footprint_bytes``, ``load_mix``, ``store_mix``, ``stride_bytes``
    :class:`~repro.synth.MemorySpec` fields.
``num_functions``, ``blocks_per_function``, ``hot_function_fraction``,
``cold_visit_rate``, ``loop_blocks``, ``loop_iter_mean``,
``diamond_rate``, ``function_gap_bytes``
    :class:`~repro.synth.CodeSpec` fields.
``int_pool``, ``fp_pool``, ``dep_mean``, ``two_op_fraction``,
``imm_fraction``
    :class:`~repro.synth.RegisterSpec` fields.
``pattern_fraction``, ``taken_bias``, ``max_pattern_period``
    :class:`~repro.synth.BranchSpec` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, Tuple

import numpy as np

from ..errors import ProfileError
from ..synth import (
    BranchSpec,
    CodeSpec,
    MemorySpec,
    MixSpec,
    RegisterSpec,
    WorkloadProfile,
)
from ..synth.rng import make_rng

Range = Tuple[float, float]


@dataclass(frozen=True)
class ProfileTheme:
    """Per-suite knob ranges.

    Every range field is a ``(low, high)`` tuple; a benchmark's value is
    drawn uniformly (deterministically per benchmark name) within it.
    Behavior mixes are given as base weights; per-benchmark jitter
    multiplies each weight by a factor in ``[1/jitter, jitter]``.
    """

    # Instruction-mix weight ranges (normalized after sampling).
    load: Range = (0.18, 0.28)
    store: Range = (0.06, 0.14)
    branch: Range = (0.08, 0.16)
    int_alu: Range = (0.35, 0.55)
    int_mul: Range = (0.0, 0.03)
    fp: Range = (0.0, 0.10)

    # Memory.
    footprint_log2: Range = (17.0, 22.0)  # 128 KB .. 4 MB
    load_mix: Dict[str, float] = field(
        default_factory=lambda: {
            "scalar": 0.2,
            "sequential": 0.35,
            "strided": 0.2,
            "random": 0.2,
            "pointer": 0.05,
        }
    )
    store_mix: Dict[str, float] = field(
        default_factory=lambda: {
            "scalar": 0.35,
            "sequential": 0.4,
            "strided": 0.15,
            "random": 0.1,
        }
    )
    stride_choices: Tuple[int, ...] = (16, 32, 64, 128, 256)
    behavior_jitter: float = 1.6

    # Code shape.
    num_functions: Range = (10.0, 28.0)
    blocks_per_function: Range = (8.0, 18.0)
    hot_function_fraction: Range = (0.3, 0.7)
    cold_visit_rate: Range = (0.02, 0.1)
    loop_blocks: Range = (2.0, 4.0)
    loop_iter_mean: Range = (6.0, 30.0)
    diamond_rate: Range = (0.2, 0.45)
    function_gap_bytes: int = 4096

    # Registers / dataflow.
    dep_mean: Range = (2.5, 7.0)
    two_op_fraction: Range = (0.45, 0.7)
    imm_fraction: Range = (0.1, 0.3)
    int_pool: Range = (16.0, 28.0)
    fp_pool: Range = (10.0, 24.0)

    # Branch models.
    pattern_fraction: Range = (0.3, 0.7)
    taken_bias: Range = (0.25, 0.5)


def _draw(rng: np.random.Generator, value_range: Range) -> float:
    low, high = value_range
    if high < low:
        raise ProfileError(f"invalid range: {value_range}")
    if high == low:
        return float(low)
    return float(rng.uniform(low, high))


def _jitter_mix(
    rng: np.random.Generator, base: Dict[str, float], jitter: float
) -> Dict[str, float]:
    result = {}
    for kind, weight in base.items():
        factor = float(rng.uniform(1.0 / jitter, jitter))
        result[kind] = weight * factor
    total = sum(result.values())
    return {kind: weight / total for kind, weight in result.items()}


_CODE_FIELDS = {spec_field.name for spec_field in dataclass_fields(CodeSpec)}
_REGISTER_FIELDS = {
    spec_field.name for spec_field in dataclass_fields(RegisterSpec)
}
_BRANCH_FIELDS = {spec_field.name for spec_field in dataclass_fields(BranchSpec)}
_MEMORY_FIELDS = {"footprint_bytes", "load_mix", "store_mix", "stride_bytes"}


def build_profile(
    theme: ProfileTheme,
    suite: str,
    program: str,
    input_label: str,
    overrides: "Dict[str, object] | None" = None,
) -> WorkloadProfile:
    """Build a benchmark's :class:`WorkloadProfile` from its suite theme.

    Args:
        theme: the suite's knob ranges.
        suite, program, input_label: benchmark identity (also the seed).
        overrides: explicit knob values applied after theme sampling
            (see module docstring for accepted keys).

    Raises:
        ProfileError: on an unknown override key.
    """
    overrides = dict(overrides or {})
    name = f"{suite}/{program}/{input_label}"
    rng = make_rng("profile", name)

    mix_weights = {
        "load": _draw(rng, theme.load),
        "store": _draw(rng, theme.store),
        "branch": _draw(rng, theme.branch),
        "int_alu": _draw(rng, theme.int_alu),
        "int_mul": _draw(rng, theme.int_mul),
        "fp": _draw(rng, theme.fp),
    }
    if "mix" in overrides:
        mix_override = overrides.pop("mix")
        if not isinstance(mix_override, dict):
            raise ProfileError("mix override must be a dict of weights")
        mix_weights.update(mix_override)
    mix = MixSpec.normalized(**mix_weights)

    memory_kwargs = {
        "footprint_bytes": int(2 ** _draw(rng, theme.footprint_log2)),
        "load_mix": _jitter_mix(rng, theme.load_mix, theme.behavior_jitter),
        "store_mix": _jitter_mix(rng, theme.store_mix, theme.behavior_jitter),
        "stride_bytes": int(rng.choice(theme.stride_choices)),
    }
    code_kwargs = {
        "num_functions": round(_draw(rng, theme.num_functions)),
        "blocks_per_function": round(_draw(rng, theme.blocks_per_function)),
        "hot_function_fraction": _draw(rng, theme.hot_function_fraction),
        "cold_visit_rate": _draw(rng, theme.cold_visit_rate),
        "loop_blocks": round(_draw(rng, theme.loop_blocks)),
        "loop_iter_mean": _draw(rng, theme.loop_iter_mean),
        "diamond_rate": _draw(rng, theme.diamond_rate),
        "function_gap_bytes": theme.function_gap_bytes,
    }
    register_kwargs = {
        "int_pool": round(_draw(rng, theme.int_pool)),
        "fp_pool": round(_draw(rng, theme.fp_pool)),
        "dep_mean": _draw(rng, theme.dep_mean),
        "two_op_fraction": _draw(rng, theme.two_op_fraction),
        "imm_fraction": _draw(rng, theme.imm_fraction),
    }
    branch_kwargs = {
        "pattern_fraction": _draw(rng, theme.pattern_fraction),
        "taken_bias": _draw(rng, theme.taken_bias),
    }

    for key, value in overrides.items():
        if key in _MEMORY_FIELDS:
            memory_kwargs[key] = value
        elif key in _CODE_FIELDS:
            code_kwargs[key] = value
        elif key in _REGISTER_FIELDS:
            register_kwargs[key] = value
        elif key in _BRANCH_FIELDS:
            branch_kwargs[key] = value
        else:
            raise ProfileError(f"unknown profile override: {key!r}")

    return WorkloadProfile(
        name=name,
        mix=mix,
        code=CodeSpec(**code_kwargs),
        memory=MemorySpec(**memory_kwargs),
        registers=RegisterSpec(**register_kwargs),
        branches=BranchSpec(**branch_kwargs),
    )
