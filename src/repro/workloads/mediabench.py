"""MediaBench — multimedia workloads (12 benchmark/input pairs).

Streaming signal-processing kernels with small working sets and regular,
predictable control flow.  The paper finds most MediaBench benchmarks
similar to at least some SPEC CPU2000 benchmarks.
"""

from __future__ import annotations

from .builder import ProfileTheme

NAME = "mediabench"
DESCRIPTION = "MediaBench: multimedia and communication workloads"

THEME = ProfileTheme(
    load=(0.2, 0.28),
    store=(0.08, 0.14),
    branch=(0.1, 0.16),
    int_alu=(0.42, 0.56),
    int_mul=(0.01, 0.05),
    fp=(0.0, 0.05),
    footprint_log2=(13.5, 18.0),  # 12 KB .. 256 KB
    num_functions=(6.0, 16.0),
    blocks_per_function=(8.0, 14.0),
    loop_iter_mean=(15.0, 50.0),
    dep_mean=(2.5, 5.0),
    load_mix={"scalar": 0.22, "sequential": 0.55, "strided": 0.15,
              "random": 0.08},
    store_mix={"scalar": 0.2, "sequential": 0.65, "strided": 0.15},
    stride_choices=(16, 32, 64, 128),
    pattern_fraction=(0.6, 0.85),
    taken_bias=(0.15, 0.35),
)

_EPIC = {
    # Wavelet image compression: FP filter banks over images.
    "mix": {"load": 0.26, "store": 0.1, "branch": 0.08, "int_alu": 0.32,
            "int_mul": 0.02, "fp": 0.22},
    "load_mix": {"scalar": 0.08, "sequential": 0.55, "strided": 0.32,
                 "random": 0.05},
    "loop_iter_mean": 40.0,
    "dep_mean": 5.0,
}

_MESA = {
    # Software 3D rasterization: FP transforms + strided framebuffer.
    "mix": {"load": 0.24, "store": 0.13, "branch": 0.09, "int_alu": 0.33,
            "int_mul": 0.02, "fp": 0.19},
    "load_mix": {"scalar": 0.12, "sequential": 0.45, "strided": 0.35,
                 "random": 0.08},
    "footprint_bytes": 2 << 20,
    "loop_iter_mean": 30.0,
}

#: Entries: (program, input label, dynamic icount in millions, overrides).
ENTRIES = [
    ("epic", "test1", 205, dict(_EPIC, footprint_bytes=512 << 10)),
    ("epic", "test2", 2_296, dict(_EPIC, footprint_bytes=1 << 20)),
    ("unepic", "test1", 35, dict(_EPIC, **{
        "mix": {"load": 0.25, "store": 0.13, "branch": 0.09, "int_alu": 0.34,
                "int_mul": 0.02, "fp": 0.17},
        "footprint_bytes": 512 << 10,
    })),
    ("unepic", "test2", 876, dict(_EPIC, **{
        "mix": {"load": 0.25, "store": 0.13, "branch": 0.09, "int_alu": 0.34,
                "int_mul": 0.02, "fp": 0.17},
        "footprint_bytes": 1 << 20,
    })),
    ("g721", "decode", 323, {
        # ADPCM-family voice codec: tight integer kernel.
        "mix": {"load": 0.2, "store": 0.07, "branch": 0.13, "int_alu": 0.55,
                "int_mul": 0.05, "fp": 0.0},
        "footprint_bytes": 64 << 10,
        "num_functions": 5,
        "loop_iter_mean": 20.0,
        "load_mix": {"scalar": 0.35, "sequential": 0.55, "random": 0.1},
        "dep_mean": 2.0,
    }),
    ("g721", "encode", 343, {
        "mix": {"load": 0.2, "store": 0.07, "branch": 0.13, "int_alu": 0.55,
                "int_mul": 0.05, "fp": 0.0},
        "footprint_bytes": 64 << 10,
        "num_functions": 5,
        "loop_iter_mean": 20.0,
        "load_mix": {"scalar": 0.35, "sequential": 0.55, "random": 0.1},
        "dep_mean": 2.0,
    }),
    ("ghostscript", "gs", 868, {
        # PostScript interpretation: large code, branchy, irregular data.
        "num_functions": 80,
        "blocks_per_function": 16,
        "cold_visit_rate": 0.2,
        "mix": {"load": 0.25, "store": 0.11, "branch": 0.16, "int_alu": 0.44,
                "int_mul": 0.01, "fp": 0.03},
        "footprint_bytes": 4 << 20,
        "loop_iter_mean": 6.0,
        "load_mix": {"scalar": 0.2, "sequential": 0.25, "strided": 0.15,
                     "random": 0.25, "pointer": 0.15},
        "pattern_fraction": 0.35,
    }),
    ("mesa", "mipmap", 32, _MESA),
    ("mesa", "osdemo", 10, _MESA),
    ("mesa", "texgen", 86, dict(_MESA, footprint_bytes=4 << 20)),
    ("mpeg2", "decode", 149, {
        "mix": {"load": 0.24, "store": 0.12, "branch": 0.1, "int_alu": 0.46,
                "int_mul": 0.07, "fp": 0.01},
        "footprint_bytes": 1 << 20,
        "loop_iter_mean": 24.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.5, "strided": 0.35,
                     "random": 0.05},
        "stride_bytes": 32,
    }),
    ("mpeg2", "encode", 1_528, {
        # Motion estimation: strided block matching, multiply-heavy.
        "mix": {"load": 0.26, "store": 0.08, "branch": 0.1, "int_alu": 0.45,
                "int_mul": 0.1, "fp": 0.01},
        "footprint_bytes": 2 << 20,
        "loop_iter_mean": 30.0,
        "load_mix": {"scalar": 0.08, "sequential": 0.45, "strided": 0.42,
                     "random": 0.05},
        "stride_bytes": 32,
    }),
]
