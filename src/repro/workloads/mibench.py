"""MiBench — embedded workloads (30 benchmark/input pairs).

Free embedded-domain benchmarks spanning auto/industrial, consumer,
office, network, security and telecom categories.  The paper finds most
MiBench benchmarks similar to SPEC CPU2000, with adpcm (a minimal
predictable kernel) and tiff (strided image transforms) isolated.
"""

from __future__ import annotations

from .builder import ProfileTheme

NAME = "mibench"
DESCRIPTION = "MiBench: free embedded benchmarks"

THEME = ProfileTheme(
    load=(0.18, 0.28),
    store=(0.07, 0.13),
    branch=(0.11, 0.18),
    int_alu=(0.44, 0.58),
    int_mul=(0.0, 0.04),
    fp=(0.0, 0.04),
    footprint_log2=(12.0, 17.0),  # 4 KB .. 128 KB
    num_functions=(4.0, 14.0),
    blocks_per_function=(6.0, 14.0),
    loop_iter_mean=(10.0, 40.0),
    dep_mean=(1.8, 5.5),
    load_mix={"scalar": 0.28, "sequential": 0.5, "strided": 0.12,
              "random": 0.1},
    store_mix={"scalar": 0.25, "sequential": 0.6, "strided": 0.15},
    stride_choices=(16, 32, 64),
    pattern_fraction=(0.5, 0.8),
    taken_bias=(0.15, 0.35),
)

_ADPCM = {
    # Minimal codec kernel: a single tiny loop, near-perfect prediction.
    # Isolated (with tiff) in the paper's clustering for specific inputs.
    "mix": {"load": 0.12, "store": 0.04, "branch": 0.12, "int_alu": 0.7,
            "int_mul": 0.0, "fp": 0.0},
    "num_functions": 2,
    "blocks_per_function": 5,
    "loop_blocks": 2,
    "loop_iter_mean": 400.0,
    "diamond_rate": 0.3,
    "footprint_bytes": 8 << 10,
    "load_mix": {"scalar": 0.4, "sequential": 0.6},
    "store_mix": {"scalar": 0.3, "sequential": 0.7},
    "pattern_fraction": 0.9,
    "taken_bias": 0.1,
    "dep_mean": 1.8,
    "imm_fraction": 0.02,
    "int_pool": 8,
}

_TIFF = {
    # Image transforms: wide strided sweeps with multiplies.
    "mix": {"load": 0.24, "store": 0.14, "branch": 0.08, "int_alu": 0.42,
            "int_mul": 0.11, "fp": 0.01},
    "loop_iter_mean": 60.0,
    "loop_blocks": 2,
    "diamond_rate": 0.1,
    "footprint_bytes": 6 << 20,
    "load_mix": {"scalar": 0.05, "sequential": 0.4, "strided": 0.52,
                 "random": 0.03},
    "store_mix": {"scalar": 0.05, "sequential": 0.45, "strided": 0.5},
    "stride_bytes": 256,
    "pattern_fraction": 0.85,
    "taken_bias": 0.08,
    "dep_mean": 5.5,
    "imm_fraction": 0.3,
}

_FFT = {
    "mix": {"load": 0.25, "store": 0.09, "branch": 0.07, "int_alu": 0.25,
            "int_mul": 0.02, "fp": 0.32},
    "loop_iter_mean": 35.0,
    "footprint_bytes": 1 << 20,
    "load_mix": {"scalar": 0.08, "sequential": 0.42, "strided": 0.45,
                 "random": 0.05},
    "stride_bytes": 128,
    "dep_mean": 6.0,
    "imm_fraction": 0.3,
    "pattern_fraction": 0.85,
}

_JPEG = {
    "mix": {"load": 0.22, "store": 0.11, "branch": 0.1, "int_alu": 0.48,
            "int_mul": 0.08, "fp": 0.01},
    "loop_iter_mean": 16.0,
    "footprint_bytes": 512 << 10,
    "load_mix": {"scalar": 0.1, "sequential": 0.5, "strided": 0.35,
                 "random": 0.05},
    "stride_bytes": 64,
}

_BLOWFISH = {
    "mix": {"load": 0.27, "store": 0.07, "branch": 0.08, "int_alu": 0.57,
            "int_mul": 0.0, "fp": 0.0},
    "loop_iter_mean": 45.0,
    "footprint_bytes": 32 << 10,
    "load_mix": {"scalar": 0.15, "sequential": 0.4, "random": 0.45},
    "pattern_fraction": 0.85,
    "dep_mean": 2.2,
    "imm_fraction": 0.04,
}

_PGP = {
    "mix": {"load": 0.24, "store": 0.09, "branch": 0.12, "int_alu": 0.5,
            "int_mul": 0.05, "fp": 0.0},
    "footprint_bytes": 256 << 10,
    "load_mix": {"scalar": 0.2, "sequential": 0.45, "random": 0.35},
    "dep_mean": 2.5,
}

_SUSAN = {
    # Image smoothing/edge detection: sequential pixel window sweeps.
    "mix": {"load": 0.28, "store": 0.08, "branch": 0.09, "int_alu": 0.48,
            "int_mul": 0.06, "fp": 0.01},
    "loop_iter_mean": 50.0,
    "footprint_bytes": 768 << 10,
    "load_mix": {"scalar": 0.06, "sequential": 0.7, "strided": 0.2,
                 "random": 0.04},
    "pattern_fraction": 0.85,
    "taken_bias": 0.1,
}

_GHOSTSCRIPT = {
    "num_functions": 80,
    "blocks_per_function": 16,
    "cold_visit_rate": 0.2,
    "mix": {"load": 0.25, "store": 0.11, "branch": 0.16, "int_alu": 0.44,
            "int_mul": 0.01, "fp": 0.03},
    "footprint_bytes": 4 << 20,
    "loop_iter_mean": 6.0,
    "load_mix": {"scalar": 0.2, "sequential": 0.25, "strided": 0.15,
                 "random": 0.25, "pointer": 0.15},
    "pattern_fraction": 0.35,
}

#: Entries: (program, input label, dynamic icount in millions, overrides).
ENTRIES = [
    ("CRC32", "large", 612, {
        "mix": {"load": 0.2, "store": 0.02, "branch": 0.17, "int_alu": 0.61,
                "int_mul": 0.0, "fp": 0.0},
        "num_functions": 2,
        "blocks_per_function": 4,
        "loop_iter_mean": 500.0,
        "footprint_bytes": 16 << 10,
        "load_mix": {"scalar": 0.2, "sequential": 0.5, "random": 0.3},
        "pattern_fraction": 0.9,
        "taken_bias": 0.05,
        "dep_mean": 1.6,
        "imm_fraction": 0.02,
        "int_pool": 6,
    }),
    ("FFT", "fft-large", 237, _FFT),
    ("FFT", "fftinv-large", 217, _FFT),
    ("adpcm", "rawcaudio", 758, _ADPCM),
    ("adpcm", "rawdaudio", 639, dict(_ADPCM, loop_iter_mean=380.0)),
    ("basicmath", "large", 1_523, {
        "mix": {"load": 0.2, "store": 0.08, "branch": 0.1, "int_alu": 0.35,
                "int_mul": 0.02, "fp": 0.25},
        "footprint_bytes": 64 << 10,
        "loop_iter_mean": 15.0,
        "load_mix": {"scalar": 0.4, "sequential": 0.5, "random": 0.1},
        "dep_mean": 2.5,
    }),
    ("bitcount", "large", 681, {
        "mix": {"load": 0.14, "store": 0.04, "branch": 0.16, "int_alu": 0.66,
                "int_mul": 0.0, "fp": 0.0},
        "num_functions": 4,
        "footprint_bytes": 8 << 10,
        "loop_iter_mean": 60.0,
        "load_mix": {"scalar": 0.5, "sequential": 0.5},
        "pattern_fraction": 0.7,
        "dep_mean": 2.0,
    }),
    ("blowfish", "decode", 495, _BLOWFISH),
    ("blowfish", "encode", 498, _BLOWFISH),
    ("dijkstra", "large", 252, {
        "mix": {"load": 0.3, "store": 0.1, "branch": 0.16, "int_alu": 0.44,
                "int_mul": 0.0, "fp": 0.0},
        "footprint_bytes": 1 << 20,
        "loop_iter_mean": 12.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.2, "random": 0.3,
                     "pointer": 0.4},
        "dep_mean": 2.0,
        "imm_fraction": 0.05,
        "pattern_fraction": 0.35,
    }),
    ("ghostscript", "large", 868, _GHOSTSCRIPT),
    ("ispell", "large", 1_027, {
        "mix": {"load": 0.26, "store": 0.08, "branch": 0.17, "int_alu": 0.49,
                "int_mul": 0.0, "fp": 0.0},
        "footprint_bytes": 1 << 20,
        "loop_iter_mean": 7.0,
        "load_mix": {"scalar": 0.15, "sequential": 0.3, "random": 0.25,
                     "pointer": 0.3},
        "pattern_fraction": 0.35,
    }),
    ("jpeg", "cjpeg", 121, _JPEG),
    ("jpeg", "djpeg", 24, _JPEG),
    ("lame", "large", 1_199, {
        # MP3 encoding: FFT/psychoacoustics — FP heavy for MiBench.
        "mix": {"load": 0.24, "store": 0.09, "branch": 0.08, "int_alu": 0.3,
                "int_mul": 0.03, "fp": 0.26},
        "footprint_bytes": 2 << 20,
        "loop_iter_mean": 30.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.55, "strided": 0.3,
                     "random": 0.05},
        "dep_mean": 4.5,
    }),
    ("mad", "large", 345, {
        "mix": {"load": 0.23, "store": 0.1, "branch": 0.1, "int_alu": 0.46,
                "int_mul": 0.1, "fp": 0.01},
        "footprint_bytes": 512 << 10,
        "loop_iter_mean": 25.0,
        "load_mix": {"scalar": 0.12, "sequential": 0.55, "strided": 0.28,
                     "random": 0.05},
    }),
    ("patricia", "large", 399, {
        "mix": {"load": 0.28, "store": 0.09, "branch": 0.18, "int_alu": 0.45,
                "int_mul": 0.0, "fp": 0.0},
        "footprint_bytes": 2 << 20,
        "loop_iter_mean": 5.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.1, "random": 0.2,
                     "pointer": 0.6},
        "dep_mean": 1.8,
        "imm_fraction": 0.05,
        "pattern_fraction": 0.3,
        "taken_bias": 0.45,
    }),
    ("pgp", "decode", 111, _PGP),
    ("pgp", "encode", 48, dict(_PGP, int_pool=20)),
    ("qsort", "large", 512, {
        "mix": {"load": 0.27, "store": 0.12, "branch": 0.16, "int_alu": 0.45,
                "int_mul": 0.0, "fp": 0.0},
        "footprint_bytes": 2 << 20,
        "loop_iter_mean": 8.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.3, "random": 0.5,
                     "pointer": 0.1},
        "pattern_fraction": 0.25,
        "taken_bias": 0.5,
        "dep_mean": 2.2,
    }),
    ("rsynth", "say-large", 775, {
        "mix": {"load": 0.22, "store": 0.09, "branch": 0.1, "int_alu": 0.38,
                "int_mul": 0.02, "fp": 0.19},
        "footprint_bytes": 512 << 10,
        "loop_iter_mean": 20.0,
    }),
    ("sha", "large", 114, {
        "mix": {"load": 0.18, "store": 0.06, "branch": 0.08, "int_alu": 0.68,
                "int_mul": 0.0, "fp": 0.0},
        "num_functions": 3,
        "footprint_bytes": 16 << 10,
        "loop_iter_mean": 80.0,
        "load_mix": {"scalar": 0.3, "sequential": 0.7},
        "pattern_fraction": 0.9,
        "taken_bias": 0.06,
        "dep_mean": 1.8,
        "imm_fraction": 0.03,
    }),
    ("susan", "corners-large", 29, _SUSAN),
    ("susan", "edges-large", 73, _SUSAN),
    ("susan", "smoothing-large", 300, dict(_SUSAN, loop_iter_mean=80.0)),
    ("tiff", "2bw", 143, _TIFF),
    ("tiff", "2rgba", 268, dict(_TIFF, footprint_bytes=10 << 20)),
    ("tiff", "dither", 1_228, dict(_TIFF, **{
        "mix": {"load": 0.24, "store": 0.12, "branch": 0.1, "int_alu": 0.45,
                "int_mul": 0.08, "fp": 0.01},
    })),
    ("tiff", "median", 763, dict(_TIFF, **{
        "mix": {"load": 0.27, "store": 0.1, "branch": 0.1, "int_alu": 0.45,
                "int_mul": 0.07, "fp": 0.01},
    })),
    ("typeset", "lout", 609, {
        "num_functions": 90,
        "blocks_per_function": 18,
        "cold_visit_rate": 0.22,
        "mix": {"load": 0.26, "store": 0.11, "branch": 0.17, "int_alu": 0.45,
                "int_mul": 0.0, "fp": 0.01},
        "footprint_bytes": 2 << 20,
        "loop_iter_mean": 5.0,
        "load_mix": {"scalar": 0.2, "sequential": 0.2, "strided": 0.1,
                     "random": 0.25, "pointer": 0.25},
        "pattern_fraction": 0.3,
    }),
]
