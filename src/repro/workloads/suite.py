"""Benchmark and suite descriptors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..synth import WorkloadProfile


@dataclass(frozen=True)
class Benchmark:
    """One benchmark/input pair from the paper's Table I.

    Attributes:
        suite: suite name (e.g. ``"spec2000"``).
        program: program name (e.g. ``"bzip2"``).
        input: input label (e.g. ``"graphic"``).
        icount_millions: dynamic instruction count of the real benchmark
            in millions (Table I metadata; the synthetic trace length is
            set by the experiment configuration, not by this value).
        profile: synthetic workload profile standing in for the binary.
    """

    suite: str
    program: str
    input: str
    icount_millions: int
    profile: WorkloadProfile

    @property
    def full_name(self) -> str:
        """Canonical identifier: ``suite/program/input``."""
        return f"{self.suite}/{self.program}/{self.input}"

    @property
    def short_name(self) -> str:
        """Compact label: ``program.input`` (used on plots)."""
        return f"{self.program}.{self.input}"

    def __str__(self) -> str:
        return self.full_name


@dataclass(frozen=True)
class Suite:
    """A named collection of benchmarks."""

    name: str
    description: str
    benchmarks: "tuple[Benchmark, ...]"

    def __len__(self) -> int:
        return len(self.benchmarks)

    def programs(self) -> List[str]:
        """Distinct program names, in declaration order."""
        seen: List[str] = []
        for benchmark in self.benchmarks:
            if benchmark.program not in seen:
                seen.append(benchmark.program)
        return seen
