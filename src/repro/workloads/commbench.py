"""CommBench — telecommunication / network-processor workloads (12 pairs).

Small packet-processing kernels: tiny code and data working sets, high
branch density for header processing (drr, frag, rtr, tcp) and streaming
payload transforms (cast, reed, jpeg, zip).  The paper finds drr, frag,
jpeg and reed dissimilar from SPEC CPU2000.
"""

from __future__ import annotations

from .builder import ProfileTheme

NAME = "commbench"
DESCRIPTION = "CommBench: telecom / network-processor workloads"

THEME = ProfileTheme(
    load=(0.18, 0.26),
    store=(0.08, 0.14),
    branch=(0.13, 0.2),
    int_alu=(0.45, 0.6),
    int_mul=(0.0, 0.03),
    fp=(0.0, 0.01),
    footprint_log2=(12.5, 16.0),  # 6 KB .. 64 KB
    num_functions=(3.0, 8.0),
    blocks_per_function=(6.0, 12.0),
    hot_function_fraction=(0.6, 1.0),
    cold_visit_rate=(0.0, 0.04),
    loop_iter_mean=(8.0, 30.0),
    dep_mean=(2.0, 4.0),
    load_mix={"scalar": 0.3, "sequential": 0.5, "strided": 0.08,
              "random": 0.12},
    store_mix={"scalar": 0.3, "sequential": 0.55, "random": 0.15},
    stride_choices=(16, 32, 64),
    pattern_fraction=(0.5, 0.75),
)

_HEADER_APP = {
    # Per-packet header processing: branchy, table lookups, tiny loops.
    "mix": {"load": 0.24, "store": 0.1, "branch": 0.2, "int_alu": 0.45,
            "int_mul": 0.0, "fp": 0.0},
    "loop_iter_mean": 4.0,
    "diamond_rate": 0.5,
    "pattern_fraction": 0.3,
    "taken_bias": 0.4,
    "load_mix": {"scalar": 0.3, "sequential": 0.2, "random": 0.4,
                 "pointer": 0.1},
    "dep_mean": 2.0,
}

#: Entries: (program, input label, dynamic icount in millions, overrides).
ENTRIES = [
    ("cast", "decode", 130, {
        # CAST-128 block cipher: pure ALU streaming with S-box lookups.
        "mix": {"load": 0.26, "store": 0.08, "branch": 0.08, "int_alu": 0.56,
                "int_mul": 0.02, "fp": 0.0},
        "loop_iter_mean": 40.0,
        "load_mix": {"scalar": 0.15, "sequential": 0.45, "random": 0.4},
        "footprint_bytes": 32 << 10,
        "pattern_fraction": 0.85,
        "dep_mean": 2.2,
        "imm_fraction": 0.04,
    }),
    ("cast", "encode", 130, {
        "mix": {"load": 0.26, "store": 0.08, "branch": 0.08, "int_alu": 0.56,
                "int_mul": 0.02, "fp": 0.0},
        "loop_iter_mean": 40.0,
        "load_mix": {"scalar": 0.15, "sequential": 0.45, "random": 0.4},
        "footprint_bytes": 32 << 10,
        "pattern_fraction": 0.85,
        "dep_mean": 2.2,
    }),
    ("drr", "drr", 235, dict(_HEADER_APP, footprint_bytes=128 << 10)),
    ("frag", "frag", 49, dict(_HEADER_APP, **{
        "footprint_bytes": 64 << 10,
        "mix": {"load": 0.27, "store": 0.15, "branch": 0.18, "int_alu": 0.4,
                "int_mul": 0.0, "fp": 0.0},
    })),
    ("jpeg", "decode", 238, {
        "mix": {"load": 0.22, "store": 0.12, "branch": 0.1, "int_alu": 0.48,
                "int_mul": 0.08, "fp": 0.0},
        "loop_iter_mean": 16.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.5, "strided": 0.35,
                     "random": 0.05},
        "stride_bytes": 64,
        "footprint_bytes": 512 << 10,
        "dep_mean": 4.5,
    }),
    ("jpeg", "encode", 339, {
        "mix": {"load": 0.22, "store": 0.1, "branch": 0.1, "int_alu": 0.48,
                "int_mul": 0.1, "fp": 0.0},
        "loop_iter_mean": 16.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.55, "strided": 0.3,
                     "random": 0.05},
        "stride_bytes": 64,
        "footprint_bytes": 512 << 10,
        "dep_mean": 4.5,
    }),
    ("reed", "decode", 1_298, {
        # Reed-Solomon: Galois-field arithmetic, multiply-heavy.
        "mix": {"load": 0.25, "store": 0.08, "branch": 0.09, "int_alu": 0.42,
                "int_mul": 0.16, "fp": 0.0},
        "loop_iter_mean": 30.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.45, "random": 0.45},
        "footprint_bytes": 64 << 10,
        "dep_mean": 2.5,
        "pattern_fraction": 0.8,
        "imm_fraction": 0.05,
    }),
    ("reed", "encode", 912, {
        "mix": {"load": 0.25, "store": 0.08, "branch": 0.09, "int_alu": 0.44,
                "int_mul": 0.14, "fp": 0.0},
        "loop_iter_mean": 30.0,
        "load_mix": {"scalar": 0.1, "sequential": 0.45, "random": 0.45},
        "footprint_bytes": 64 << 10,
        "dep_mean": 2.5,
        "pattern_fraction": 0.8,
    }),
    ("rtr", "rtr", 1_137, dict(_HEADER_APP, **{
        # Radix-tree routing-table lookup.
        "load_mix": {"scalar": 0.15, "sequential": 0.1, "random": 0.25,
                     "pointer": 0.5},
        "footprint_bytes": 2 << 20,
    })),
    ("tcp", "tcp", 58, dict(_HEADER_APP, footprint_bytes=96 << 10)),
    ("zip", "decode", 50, {
        "mix": {"load": 0.23, "store": 0.09, "branch": 0.14, "int_alu": 0.54,
                "int_mul": 0.0, "fp": 0.0},
        "loop_iter_mean": 12.0,
        "load_mix": {"scalar": 0.15, "sequential": 0.55, "random": 0.3},
        "footprint_bytes": 384 << 10,
    }),
    ("zip", "encode", 322, {
        "mix": {"load": 0.24, "store": 0.08, "branch": 0.15, "int_alu": 0.53,
                "int_mul": 0.0, "fp": 0.0},
        "loop_iter_mean": 10.0,
        "load_mix": {"scalar": 0.15, "sequential": 0.45, "random": 0.4},
        "footprint_bytes": 384 << 10,
    }),
]
