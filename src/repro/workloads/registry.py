"""Benchmark registry: the full 122-benchmark population of Table I.

The registry assembles the six suite modules into :class:`Suite` and
:class:`Benchmark` objects, memoizes them (profile construction is
deterministic but not free), and provides lookup by full or partial
name.
"""

from __future__ import annotations

import difflib
from functools import lru_cache
from typing import Dict, List, Tuple

from ..errors import UnknownBenchmarkError
from . import bioinfomark, biometrics, commbench, mediabench, mibench, spec2000
from .builder import build_profile
from .suite import Benchmark, Suite

_SUITE_MODULES = (
    bioinfomark,
    biometrics,
    commbench,
    mediabench,
    mibench,
    spec2000,
)

#: Total number of benchmark/input pairs in the paper's Table I.
EXPECTED_BENCHMARK_COUNT = 122


def _assemble_suite(module) -> Suite:
    benchmarks = []
    for program, input_label, icount, overrides in module.ENTRIES:
        profile = build_profile(
            module.THEME, module.NAME, program, input_label, overrides
        )
        benchmarks.append(
            Benchmark(
                suite=module.NAME,
                program=program,
                input=input_label,
                icount_millions=icount,
                profile=profile,
            )
        )
    return Suite(
        name=module.NAME,
        description=module.DESCRIPTION,
        benchmarks=tuple(benchmarks),
    )


@lru_cache(maxsize=1)
def all_suites() -> Tuple[Suite, ...]:
    """All six suites, in alphabetical order."""
    return tuple(
        sorted(
            (_assemble_suite(module) for module in _SUITE_MODULES),
            key=lambda suite: suite.name,
        )
    )


@lru_cache(maxsize=1)
def all_benchmarks() -> Tuple[Benchmark, ...]:
    """All 122 benchmarks, ordered by suite then declaration order."""
    benchmarks: List[Benchmark] = []
    for suite in all_suites():
        benchmarks.extend(suite.benchmarks)
    return tuple(benchmarks)


@lru_cache(maxsize=1)
def _benchmark_index() -> Dict[str, Benchmark]:
    return {benchmark.full_name: benchmark for benchmark in all_benchmarks()}


def benchmark_names() -> List[str]:
    """Full names of all benchmarks."""
    return list(_benchmark_index().keys())


def suite_of(name: str) -> Suite:
    """Look up a suite by name.

    Raises:
        UnknownBenchmarkError: if no suite has that name.
    """
    for suite in all_suites():
        if suite.name == name:
            return suite
    raise UnknownBenchmarkError(
        name, candidates=[suite.name for suite in all_suites()]
    )


def benchmarks_of(suite_name: str) -> Tuple[Benchmark, ...]:
    """All benchmarks of one suite."""
    return suite_of(suite_name).benchmarks


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by full name (``suite/program/input``).

    A unique partial match on ``program`` or ``program/input`` is also
    accepted (``"bzip2/graphic"``, ``"mcf"``).

    Raises:
        UnknownBenchmarkError: when nothing (or more than one partial
            candidate) matches; the error lists close matches.
    """
    index = _benchmark_index()
    if name in index:
        return index[name]

    partial = [
        benchmark
        for full_name, benchmark in index.items()
        if full_name.endswith("/" + name)
        or f"/{name}/" in full_name
    ]
    if len(partial) == 1:
        return partial[0]

    if len(partial) > 1:
        close = [benchmark.full_name for benchmark in partial][:5]
    else:
        # Compare against every naming form so 'bzip3' still suggests
        # the bzip2 entries.
        vocabulary: Dict[str, str] = {}
        for full_name, benchmark in index.items():
            vocabulary.setdefault(benchmark.program, full_name)
            vocabulary.setdefault(
                f"{benchmark.program}/{benchmark.input}", full_name
            )
            vocabulary.setdefault(full_name, full_name)
        matches = difflib.get_close_matches(
            name, vocabulary.keys(), n=5, cutoff=0.4
        )
        close = list(dict.fromkeys(vocabulary[match] for match in matches))
    raise UnknownBenchmarkError(name, candidates=close)
