"""BioInfoMark — bioinformatics workloads (12 benchmark/input pairs).

The paper finds blast, fasta, hmmer, phylip (promlk) and predator
dissimilar from all SPEC CPU2000 benchmarks, with blast isolated by its
very large working set.  Profiles therefore push working sets well above
the SPEC range and emphasize sequence-scanning access patterns.
"""

from __future__ import annotations

from .builder import ProfileTheme

NAME = "bioinfomark"
DESCRIPTION = "BioInfoMark: bioinformatics workloads"

THEME = ProfileTheme(
    load=(0.22, 0.3),
    store=(0.05, 0.1),
    branch=(0.1, 0.17),
    int_alu=(0.42, 0.56),
    int_mul=(0.0, 0.02),
    fp=(0.0, 0.05),
    footprint_log2=(23.0, 26.0),  # 8 MB .. 64 MB
    num_functions=(16.0, 40.0),
    blocks_per_function=(10.0, 18.0),
    loop_iter_mean=(10.0, 40.0),
    dep_mean=(2.5, 5.0),
    load_mix={"scalar": 0.1, "sequential": 0.55, "strided": 0.15,
              "random": 0.15, "pointer": 0.05},
    pattern_fraction=(0.4, 0.65),
)

_HMMER = {
    # Profile-HMM dynamic programming: dense strided inner loops.
    "mix": {"load": 0.3, "store": 0.08, "branch": 0.08, "int_alu": 0.5,
            "int_mul": 0.02, "fp": 0.02},
    "loop_iter_mean": 45.0,
    "load_mix": {"scalar": 0.1, "sequential": 0.45, "strided": 0.4,
                 "random": 0.05},
    "stride_bytes": 128,
    "dep_mean": 5.5,
    "pattern_fraction": 0.75,
    "footprint_bytes": 24 << 20,
}

#: Entries: (program, input label, dynamic icount in millions, overrides).
ENTRIES = [
    ("blast", "protein", 81_092, {
        # Isolated in the paper: enormous instruction + data working set.
        "footprint_bytes": 192 << 20,
        "num_functions": 90,
        "blocks_per_function": 20,
        "hot_function_fraction": 0.8,
        "cold_visit_rate": 0.25,
        "mix": {"load": 0.28, "store": 0.06, "branch": 0.13, "int_alu": 0.51,
                "int_mul": 0.01, "fp": 0.01},
        "load_mix": {"scalar": 0.08, "sequential": 0.42, "strided": 0.1,
                     "random": 0.35, "pointer": 0.05},
        "store_mix": {"scalar": 0.3, "sequential": 0.3, "random": 0.4},
        "loop_iter_mean": 14.0,
        "pattern_fraction": 0.35,
    }),
    ("ce", "ce", 4_816, {
        "footprint_bytes": 10 << 20,
        "mix": {"load": 0.25, "store": 0.08, "branch": 0.11, "int_alu": 0.4,
                "int_mul": 0.01, "fp": 0.15},
        "load_mix": {"scalar": 0.1, "sequential": 0.4, "strided": 0.35,
                     "random": 0.15},
    }),
    ("clustalw", "clustalw", 884_859, {
        # Multiple sequence alignment: DP matrices, strided sweeps.
        "footprint_bytes": 48 << 20,
        "mix": {"load": 0.28, "store": 0.09, "branch": 0.1, "int_alu": 0.5,
                "int_mul": 0.01, "fp": 0.02},
        "load_mix": {"scalar": 0.08, "sequential": 0.42, "strided": 0.42,
                     "random": 0.08},
        "stride_bytes": 256,
        "loop_iter_mean": 35.0,
        "dep_mean": 4.5,
    }),
    ("fasta", "fasta34", 759_654, {
        # Long sequential database scans; dissimilar from SPEC.
        "footprint_bytes": 128 << 20,
        "mix": {"load": 0.3, "store": 0.05, "branch": 0.12, "int_alu": 0.52,
                "int_mul": 0.0, "fp": 0.01},
        "load_mix": {"scalar": 0.06, "sequential": 0.75, "strided": 0.1,
                     "random": 0.09},
        "loop_iter_mean": 50.0,
        "pattern_fraction": 0.6,
        "taken_bias": 0.15,
    }),
    ("glimmer", "004663", 26_610, {
        "footprint_bytes": 12 << 20,
        "load_mix": {"scalar": 0.12, "sequential": 0.5, "strided": 0.18,
                     "random": 0.15, "pointer": 0.05},
    }),
    ("hmmer", "build", 321, dict(_HMMER, footprint_bytes=8 << 20)),
    ("hmmer", "calibrate", 43_048, _HMMER),
    ("hmmer", "search-artemia", 47, dict(_HMMER, footprint_bytes=12 << 20)),
    ("hmmer", "search-sprot", 1_785_862, dict(_HMMER, footprint_bytes=48 << 20)),
    ("phylip", "dnapenny", 184_557, {
        "footprint_bytes": 6 << 20,
        "mix": {"load": 0.26, "store": 0.08, "branch": 0.14, "int_alu": 0.48,
                "int_mul": 0.0, "fp": 0.04},
        "loop_iter_mean": 10.0,
    }),
    ("phylip", "promlk", 557_514, {
        # Maximum-likelihood phylogeny: FP-dominated; dissimilar from SPEC.
        "footprint_bytes": 20 << 20,
        "mix": {"load": 0.26, "store": 0.07, "branch": 0.07, "int_alu": 0.22,
                "int_mul": 0.0, "fp": 0.38},
        "load_mix": {"scalar": 0.1, "sequential": 0.35, "strided": 0.3,
                     "random": 0.1, "pointer": 0.15},
        "loop_iter_mean": 25.0,
        "dep_mean": 3.0,
        "fp_pool": 26,
    }),
    ("predator", "predator", 804_859, {
        "footprint_bytes": 64 << 20,
        "num_functions": 60,
        "cold_visit_rate": 0.2,
        "mix": {"load": 0.27, "store": 0.1, "branch": 0.12, "int_alu": 0.44,
                "int_mul": 0.02, "fp": 0.05},
        "load_mix": {"scalar": 0.1, "sequential": 0.35, "strided": 0.2,
                     "random": 0.3, "pointer": 0.05},
        "loop_iter_mean": 12.0,
    }),
]
