"""SPEC CPU2000 — general-purpose workloads (48 benchmark/input pairs).

Profile notes mirroring the paper's observations:

* The floating-point core (applu, apsi, fma3d, galgel, lucas, mgrid,
  sixtrack, swim, wupwise) shares one tight override set
  (:data:`SPECFP_CORE`): FP-heavy streaming loop nests with long,
  predictable loops.  The paper finds 9 of the 14 SPECfp benchmarks in a
  single cluster.
* ``art`` is an isolated FP streamer: a tiny kernel spinning on small
  arrays (singleton cluster in the paper).
* ``mcf`` is pointer-chasing with a large footprint and minimal ILP
  (singleton cluster in the paper).
* ``gcc`` has an exceptionally large instruction working set and poorly
  biased branches (singleton cluster in the paper).
"""

from __future__ import annotations

from .builder import ProfileTheme

NAME = "spec2000"
DESCRIPTION = "SPEC CPU2000: general-purpose integer and FP workloads"

THEME = ProfileTheme(
    load=(0.2, 0.3),
    store=(0.08, 0.14),
    branch=(0.1, 0.16),
    int_alu=(0.4, 0.55),
    int_mul=(0.0, 0.02),
    fp=(0.0, 0.06),
    footprint_log2=(20.0, 24.0),  # 1 MB .. 16 MB
    num_functions=(24.0, 48.0),
    blocks_per_function=(10.0, 22.0),
    loop_iter_mean=(4.0, 16.0),
    dep_mean=(2.0, 7.0),
    pattern_fraction=(0.3, 0.7),
    taken_bias=(0.3, 0.5),
)

#: Shared overrides for the SPECfp streaming core.
SPECFP_CORE = {
    "mix": {
        "load": 0.27,
        "store": 0.08,
        "branch": 0.04,
        "int_alu": 0.2,
        "int_mul": 0.004,
        "fp": 0.41,
    },
    "loop_iter_mean": 64.0,
    "loop_blocks": 2,
    "diamond_rate": 0.08,
    "pattern_fraction": 0.85,
    "taken_bias": 0.12,
    "dep_mean": 9.0,
    "imm_fraction": 0.32,
    "two_op_fraction": 0.75,
    "fp_pool": 28,
    "num_functions": 12,
    "blocks_per_function": 10,
    "footprint_bytes": 16 << 20,
    "load_mix": {"scalar": 0.05, "sequential": 0.5, "strided": 0.4, "random": 0.05},
    "store_mix": {"scalar": 0.08, "sequential": 0.62, "strided": 0.3},
    "stride_bytes": 64,
}

#: FP benchmarks with more control flow / mixed behavior than the core.
_SPECFP_MIXED = {
    "mix": {
        "load": 0.26,
        "store": 0.1,
        "branch": 0.07,
        "int_alu": 0.3,
        "int_mul": 0.01,
        "fp": 0.26,
    },
    "loop_iter_mean": 28.0,
    "pattern_fraction": 0.7,
    "dep_mean": 6.0,
    "imm_fraction": 0.25,
    "load_mix": {"scalar": 0.1, "sequential": 0.4, "strided": 0.35, "random": 0.15},
    "footprint_bytes": 12 << 20,
}

_GCC = {
    # Very large instruction working set, data-dependent branching.
    "num_functions": 160,
    "blocks_per_function": 24,
    "hot_function_fraction": 0.75,
    "cold_visit_rate": 0.3,
    "loop_iter_mean": 3.0,
    "diamond_rate": 0.5,
    "pattern_fraction": 0.35,
    "taken_bias": 0.35,
    "mix": {"load": 0.24, "store": 0.12, "branch": 0.18, "int_alu": 0.44,
            "int_mul": 0.005, "fp": 0.01},
    "load_mix": {"scalar": 0.3, "sequential": 0.2, "strided": 0.1,
                 "random": 0.25, "pointer": 0.15},
    "footprint_bytes": 6 << 20,
    "dep_mean": 2.5,
}

_PERLBMK = {
    "num_functions": 90,
    "blocks_per_function": 18,
    "cold_visit_rate": 0.2,
    "loop_iter_mean": 5.0,
    "diamond_rate": 0.45,
    "pattern_fraction": 0.35,
    "mix": {"load": 0.26, "store": 0.13, "branch": 0.16, "int_alu": 0.43,
            "int_mul": 0.005, "fp": 0.005},
    "load_mix": {"scalar": 0.25, "sequential": 0.2, "strided": 0.1,
                 "random": 0.3, "pointer": 0.15},
}

_BZIP2 = {
    "mix": {"load": 0.26, "store": 0.09, "branch": 0.12, "int_alu": 0.51,
            "int_mul": 0.005, "fp": 0.0},
    "load_mix": {"scalar": 0.15, "sequential": 0.45, "strided": 0.1,
                 "random": 0.3},
    "footprint_bytes": 7 << 20,
    "num_functions": 14,
    "loop_iter_mean": 18.0,
    "pattern_fraction": 0.45,
    "dep_mean": 3.5,
    "imm_fraction": 0.1,
}

_GZIP = {
    "mix": {"load": 0.22, "store": 0.08, "branch": 0.14, "int_alu": 0.55,
            "int_mul": 0.0, "fp": 0.0},
    "load_mix": {"scalar": 0.2, "sequential": 0.5, "strided": 0.05,
                 "random": 0.25},
    "footprint_bytes": 2 << 20,
    "num_functions": 12,
    "loop_iter_mean": 20.0,
}

_VORTEX = {
    "num_functions": 110,
    "blocks_per_function": 16,
    "cold_visit_rate": 0.22,
    "mix": {"load": 0.28, "store": 0.16, "branch": 0.15, "int_alu": 0.4,
            "int_mul": 0.0, "fp": 0.0},
    "load_mix": {"scalar": 0.2, "sequential": 0.15, "strided": 0.1,
                 "random": 0.3, "pointer": 0.25},
    "footprint_bytes": 24 << 20,
    "loop_iter_mean": 4.0,
}

#: Entries: (program, input label, dynamic icount in millions, overrides).
ENTRIES = [
    ("ammp", "ref", 388_534, dict(_SPECFP_MIXED, footprint_bytes=20 << 20)),
    ("applu", "ref", 336_798, SPECFP_CORE),
    ("apsi", "ref", 361_955, SPECFP_CORE),
    ("art", "ref-110", 77_067, {
        "mix": {"load": 0.3, "store": 0.05, "branch": 0.06, "int_alu": 0.15,
                "int_mul": 0.0, "fp": 0.44},
        "num_functions": 3,
        "blocks_per_function": 6,
        "loop_iter_mean": 300.0,
        "loop_blocks": 2,
        "diamond_rate": 0.05,
        "pattern_fraction": 0.95,
        "taken_bias": 0.05,
        "dep_mean": 2.0,
        "imm_fraction": 0.05,
        "footprint_bytes": 3 << 20,
        "load_mix": {"sequential": 0.9, "scalar": 0.1},
        "store_mix": {"sequential": 0.8, "scalar": 0.2},
        "stride_bytes": 32,
    }),
    ("art", "ref-470", 84_660, {
        "mix": {"load": 0.3, "store": 0.05, "branch": 0.06, "int_alu": 0.15,
                "int_mul": 0.0, "fp": 0.44},
        "num_functions": 3,
        "blocks_per_function": 6,
        "loop_iter_mean": 280.0,
        "loop_blocks": 2,
        "diamond_rate": 0.05,
        "pattern_fraction": 0.95,
        "taken_bias": 0.06,
        "dep_mean": 2.1,
        "imm_fraction": 0.05,
        "footprint_bytes": 3 << 20,
        "load_mix": {"sequential": 0.88, "scalar": 0.12},
        "store_mix": {"sequential": 0.8, "scalar": 0.2},
        "stride_bytes": 32,
    }),
    ("bzip2", "graphic", 157_003, _BZIP2),
    ("bzip2", "program", 136_389, dict(_BZIP2, footprint_bytes=6 << 20)),
    ("bzip2", "source", 122_267, dict(_BZIP2, footprint_bytes=5 << 20)),
    ("crafty", "ref", 194_311, {
        "mix": {"load": 0.27, "store": 0.07, "branch": 0.11, "int_alu": 0.5,
                "int_mul": 0.03, "fp": 0.0},
        "load_mix": {"scalar": 0.25, "sequential": 0.1, "strided": 0.15,
                     "random": 0.5},
        "footprint_bytes": 2 << 20,
        "num_functions": 40,
        "dep_mean": 5.0,
        "pattern_fraction": 0.4,
    }),
    ("eon", "cook", 100_552, {
        "mix": {"load": 0.26, "store": 0.12, "branch": 0.1, "int_alu": 0.32,
                "int_mul": 0.01, "fp": 0.19},
        "num_functions": 70,
        "cold_visit_rate": 0.15,
        "footprint_bytes": 1 << 20,
        "load_mix": {"scalar": 0.3, "sequential": 0.25, "strided": 0.2,
                     "random": 0.15, "pointer": 0.1},
    }),
    ("eon", "kajiya", 131_268, {
        "mix": {"load": 0.26, "store": 0.12, "branch": 0.1, "int_alu": 0.3,
                "int_mul": 0.01, "fp": 0.21},
        "num_functions": 70,
        "cold_visit_rate": 0.15,
        "footprint_bytes": 1 << 20,
        "load_mix": {"scalar": 0.3, "sequential": 0.25, "strided": 0.2,
                     "random": 0.15, "pointer": 0.1},
    }),
    ("eon", "rush", 73_139, {
        "mix": {"load": 0.26, "store": 0.12, "branch": 0.1, "int_alu": 0.31,
                "int_mul": 0.01, "fp": 0.2},
        "num_functions": 70,
        "cold_visit_rate": 0.15,
        "footprint_bytes": 1 << 20,
        "load_mix": {"scalar": 0.3, "sequential": 0.25, "strided": 0.2,
                     "random": 0.15, "pointer": 0.1},
    }),
    ("equake", "ref", 158_071, dict(_SPECFP_MIXED, **{
        "load_mix": {"scalar": 0.1, "sequential": 0.35, "strided": 0.25,
                     "random": 0.1, "pointer": 0.2},
        "footprint_bytes": 24 << 20,
    })),
    ("facerec", "ref", 249_735, dict(_SPECFP_MIXED, footprint_bytes=10 << 20)),
    ("fma3d", "ref", 312_960, SPECFP_CORE),
    ("galgel", "ref", 326_916, SPECFP_CORE),
    ("gap", "ref", 310_323, {
        "mix": {"load": 0.24, "store": 0.12, "branch": 0.13, "int_alu": 0.48,
                "int_mul": 0.02, "fp": 0.0},
        "num_functions": 60,
        "load_mix": {"scalar": 0.2, "sequential": 0.25, "strided": 0.1,
                     "random": 0.25, "pointer": 0.2},
        "footprint_bytes": 20 << 20,
    }),
    ("gcc", "166", 46_614, _GCC),
    ("gcc", "200", 106_339, dict(_GCC, footprint_bytes=8 << 20)),
    ("gcc", "expr", 11_847, dict(_GCC, footprint_bytes=4 << 20)),
    ("gcc", "integrate", 13_019, dict(_GCC, footprint_bytes=4 << 20)),
    ("gcc", "scilab", 60_784, dict(_GCC, footprint_bytes=7 << 20)),
    ("gzip", "graphic", 113_400, _GZIP),
    ("gzip", "log", 42_506, dict(_GZIP, footprint_bytes=1 << 20)),
    ("gzip", "program", 161_726, _GZIP),
    ("gzip", "random", 91_961, dict(_GZIP, taken_bias=0.5, pattern_fraction=0.2)),
    ("gzip", "source", 84_366, dict(_GZIP, footprint_bytes=1 << 20)),
    ("lucas", "ref", 134_753, SPECFP_CORE),
    ("mcf", "ref", 59_800, {
        "mix": {"load": 0.32, "store": 0.09, "branch": 0.19, "int_alu": 0.4,
                "int_mul": 0.0, "fp": 0.0},
        "num_functions": 6,
        "blocks_per_function": 10,
        "loop_iter_mean": 8.0,
        "dep_mean": 1.6,
        "pattern_fraction": 0.2,
        "taken_bias": 0.45,
        "imm_fraction": 0.03,
        "footprint_bytes": 96 << 20,
        "load_mix": {"pointer": 0.5, "random": 0.2, "scalar": 0.3},
        "store_mix": {"pointer": 0.5, "random": 0.2, "scalar": 0.3},
    }),
    ("mesa", "ref", 314_449, {
        "mix": {"load": 0.24, "store": 0.12, "branch": 0.08, "int_alu": 0.33,
                "int_mul": 0.01, "fp": 0.22},
        "num_functions": 50,
        "loop_iter_mean": 24.0,
        "load_mix": {"scalar": 0.15, "sequential": 0.45, "strided": 0.3,
                     "random": 0.1},
        "footprint_bytes": 6 << 20,
    }),
    ("mgrid", "ref", 440_934, SPECFP_CORE),
    ("parser", "ref", 530_784, {
        "mix": {"load": 0.24, "store": 0.1, "branch": 0.17, "int_alu": 0.48,
                "int_mul": 0.0, "fp": 0.0},
        "num_functions": 55,
        "loop_iter_mean": 4.5,
        "diamond_rate": 0.45,
        "pattern_fraction": 0.3,
        "load_mix": {"scalar": 0.2, "sequential": 0.15, "strided": 0.05,
                     "random": 0.3, "pointer": 0.3},
        "footprint_bytes": 16 << 20,
        "dep_mean": 2.2,
        "imm_fraction": 0.06,
    }),
    ("perlbmk", "splitmail.535", 69_857, _PERLBMK),
    ("perlbmk", "splitmail.704", 73_966, _PERLBMK),
    ("perlbmk", "splitmail.850", 142_509, _PERLBMK),
    ("perlbmk", "splitmail.957", 122_893, _PERLBMK),
    ("perlbmk", "diffmail", 43_327, dict(_PERLBMK, footprint_bytes=3 << 20)),
    ("perlbmk", "makerand", 2_055, dict(_PERLBMK, **{
        "footprint_bytes": 256 << 10,
        "num_functions": 20,
        "loop_iter_mean": 30.0,
    })),
    ("perlbmk", "perfect", 29_791, dict(_PERLBMK, footprint_bytes=2 << 20)),
    ("sixtrack", "ref", 452_446, SPECFP_CORE),
    ("swim", "ref", 221_868, SPECFP_CORE),
    ("twolf", "ref", 397_222, {
        "mix": {"load": 0.27, "store": 0.08, "branch": 0.14, "int_alu": 0.47,
                "int_mul": 0.01, "fp": 0.03},
        "num_functions": 30,
        "loop_iter_mean": 6.0,
        "load_mix": {"scalar": 0.2, "sequential": 0.15, "strided": 0.15,
                     "random": 0.35, "pointer": 0.15},
        "footprint_bytes": 2 << 20,
        "dep_mean": 2.8,
        "imm_fraction": 0.08,
    }),
    ("vortex", "ref1", 129_793, _VORTEX),
    ("vortex", "ref2", 151_475, _VORTEX),
    ("vortex", "ref3", 145_113, _VORTEX),
    ("vpr", "place", 117_001, {
        "mix": {"load": 0.26, "store": 0.1, "branch": 0.13, "int_alu": 0.44,
                "int_mul": 0.01, "fp": 0.06},
        "num_functions": 25,
        "load_mix": {"scalar": 0.2, "sequential": 0.2, "strided": 0.15,
                     "random": 0.35, "pointer": 0.1},
        "footprint_bytes": 4 << 20,
    }),
    ("vpr", "route", 82_351, {
        "mix": {"load": 0.28, "store": 0.09, "branch": 0.14, "int_alu": 0.42,
                "int_mul": 0.01, "fp": 0.06},
        "num_functions": 25,
        "load_mix": {"scalar": 0.15, "sequential": 0.15, "strided": 0.1,
                     "random": 0.3, "pointer": 0.3},
        "footprint_bytes": 8 << 20,
    }),
    ("wupwise", "ref", 337_770, SPECFP_CORE),
]
