"""The 122 benchmarks of the paper's Table I.

Six suite modules declare every benchmark/input pair the paper uses,
with its dynamic instruction count (in millions, from Table I) and a
synthetic :class:`~repro.synth.WorkloadProfile`.  Profiles are built from
a per-suite :class:`ProfileTheme` (parameter ranges characteristic of
the workload domain) plus per-benchmark overrides for the behaviors the
paper calls out explicitly (blast's huge working set, mcf's pointer
chasing, adpcm's tiny predictable kernel, ...).
"""

from .suite import Benchmark, Suite
from .builder import ProfileTheme, build_profile
from .registry import (
    all_benchmarks,
    all_suites,
    benchmarks_of,
    get_benchmark,
    suite_of,
    benchmark_names,
)

__all__ = [
    "Benchmark",
    "Suite",
    "ProfileTheme",
    "build_profile",
    "all_benchmarks",
    "all_suites",
    "benchmarks_of",
    "get_benchmark",
    "suite_of",
    "benchmark_names",
]
