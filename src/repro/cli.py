"""Command-line interface: ``mica-repro`` / ``python -m repro``.

Subcommands::

    list                    list the 122 benchmarks (Table I)
    characterize BENCH      print a benchmark's 47 MICA characteristics
    hpc BENCH               print a benchmark's simulated HPC metrics
    phases BENCH            phase decomposition + characteristic timeline
    dataset                 build (and cache) the full workload data set
    cache verify|clear      scan-and-quarantine / wipe the cache levels
    serve                   run the characterization HTTP service
    bench                   run the MICA perf harness (BENCH_mica.json)
    lint                    static-analysis gate (exit 0/1/2)
    fig1|table3|fig2-3|fig4|fig5|table4|fig6
                            reproduce one table/figure
    all                     the full report

Global flags ``--jobs`` and ``--cache-dir`` control dataset-build
parallelism and the characterization cache location.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import DEFAULT_CONFIG
from .errors import ReproError


def _make_config(args: argparse.Namespace):
    overrides = {}
    if args.trace_length:
        overrides["trace_length"] = args.trace_length
    if getattr(args, "ga_generations", None):
        overrides["ga_generations"] = args.ga_generations
    return DEFAULT_CONFIG.with_overrides(**overrides) if overrides else (
        DEFAULT_CONFIG
    )


def _dataset_kwargs(args: argparse.Namespace) -> dict:
    """build_dataset keywords shared by every dataset-consuming command."""
    kwargs = {"use_cache": not args.no_cache}
    if getattr(args, "jobs", None):
        kwargs["jobs"] = args.jobs
    if getattr(args, "cache_dir", None):
        kwargs["cache_dir"] = Path(args.cache_dir)
    if getattr(args, "max_attempts", None) is not None:
        kwargs["max_attempts"] = _positive_attempts(args.max_attempts)
    if getattr(args, "retry_backoff", None) is not None:
        kwargs["retry_backoff"] = args.retry_backoff
    if getattr(args, "shards", None):
        if args.shards < 1:
            raise ReproError(f"--shards must be >= 1, got {args.shards}")
        kwargs["shards"] = args.shards
    return kwargs


def _positive_attempts(value: int) -> int:
    if value < 1:
        raise ReproError(f"--max-attempts must be >= 1, got {value}")
    return value


def _cmd_list(args: argparse.Namespace) -> int:
    from .reporting import format_table
    from .workloads import all_benchmarks

    rows = [
        [b.suite, b.program, b.input, f"{b.icount_millions:,}"]
        for b in all_benchmarks()
    ]
    print(
        format_table(
            ["suite", "program", "input", "I-count (M, paper)"],
            rows,
            align_right=[False, False, False, True],
            title=f"{len(rows)} benchmarks (paper Table I)",
        )
    )
    return 0


def _load_trace(name: str, config):
    from .synth import generate_trace
    from .workloads import get_benchmark

    benchmark = get_benchmark(name)
    return generate_trace(benchmark.profile, config.trace_length)


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .mica import characterize

    config = _make_config(args)
    shards = args.shards or None
    shard_size = args.shard_size or None
    if shards is not None and shard_size is not None:
        raise ReproError(
            "give at most one of --shards and --shard-size"
        )
    trace = _load_trace(args.benchmark, config)
    if shards is None and shard_size is None:
        print(characterize(trace, config).format())
        return 0
    cache_dir = (
        Path(args.cache_dir)
        if args.cache_dir and not args.no_cache else None
    )
    print(characterize(
        trace, config, shards=shards, shard_size=shard_size,
        jobs=args.jobs or None, cache_dir=cache_dir,
    ).format())
    return 0


def _cmd_hpc(args: argparse.Namespace) -> int:
    from .uarch import collect_hpc

    config = _make_config(args)
    trace = _load_trace(args.benchmark, config)
    print(collect_hpc(trace).format())
    return 0


def _cmd_phases(args: argparse.Namespace) -> int:
    from .phases import detect_phases, mica_timeline, simulation_points
    from .reporting import format_phase_report

    config = _make_config(args)
    trace = _load_trace(args.benchmark, config)
    result = detect_phases(
        trace,
        interval=args.interval,
        seed=args.seed,
        signature=args.signature,
        config=config,
    )
    points = simulation_points(result)
    timeline = mica_timeline(trace, interval=args.interval, config=config)
    print(
        format_phase_report(
            result, points, timeline=timeline, name=args.benchmark
        )
    )
    if args.homogeneity:
        # Reuse the trace and phase decomposition computed above —
        # only the per-interval metric simulation is new work here.
        from .experiments.phase_homogeneity import (
            PhaseHomogeneityResult,
            validate_benchmark,
        )

        homogeneity = PhaseHomogeneityResult(
            rows=(validate_benchmark(args.benchmark, trace, result),),
            interval=args.interval,
            signature=args.signature,
            metric_name="ipc_ev56",
        )
        print()
        print(homogeneity.format())
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .experiments import (
        build_dataset,
        dataset_journal_path,
        resume_dataset,
    )

    config = _make_config(args)
    kwargs = _dataset_kwargs(args)
    journal = getattr(args, "journal", None)
    if args.resume or journal is not None:
        path = Path(journal) if journal else dataset_journal_path(
            config, cache_dir=kwargs.get("cache_dir")
        )
        kwargs["journal"] = path
        print(f"build journal: {path}")
    builder = resume_dataset if args.resume else build_dataset
    dataset = builder(
        config, progress=True, strict=not args.keep_going, **kwargs,
    )
    print(
        f"dataset ready: {len(dataset)} benchmarks, "
        f"MICA {dataset.mica.shape}, HPC {dataset.hpc.shape}"
    )
    if dataset.report is not None and (
        dataset.report.failed or dataset.report.quarantines
        or dataset.report.pool_rebuilds
    ):
        print(dataset.report.format())
    if dataset.report is not None and dataset.report.failed:
        failed = dataset.report.failed
        print(
            f"error: {len(failed)} benchmark(s) failed to build: "
            + ", ".join(status.name for status in failed),
            file=sys.stderr,
        )
        return 1
    return 0


def _cache_directory(args: argparse.Namespace):
    from .experiments.dataset import default_cache_dir

    if getattr(args, "cache_dir", None):
        return Path(args.cache_dir)
    return default_cache_dir()


def _cmd_cache(args: argparse.Namespace) -> int:
    from .experiments import clear_dataset_cache
    from .perf import verify_cache

    directory = _cache_directory(args)
    if args.cache_command == "clear":
        removed = clear_dataset_cache(directory)
        print(f"cache clear: removed {removed} file(s) from {directory}")
        return 0
    report = verify_cache(directory, sweep_older_than=args.sweep_age)
    print(report.format())
    if report.quarantined:
        print(
            f"error: {len(report.quarantined)} cache entr"
            f"{'y' if len(report.quarantined) == 1 else 'ies'} failed "
            "verification and were quarantined",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_settings(args: argparse.Namespace):
    """Validated ``ServiceSettings`` for ``repro serve``."""
    from .service import ServiceSettings

    if args.deadline_ms <= 0:
        raise ReproError(
            f"--deadline-ms must be positive, got {args.deadline_ms}"
        )
    default_deadline = args.deadline_ms / 1000.0
    return ServiceSettings(
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        use_cache=not args.no_cache,
        queue_capacity=args.queue_capacity,
        workers=args.service_workers,
        default_deadline=default_deadline,
        # Per-request deadlines are clamped to max_deadline; keep the
        # ceiling at or above the flag so a large --deadline-ms is
        # never silently shortened.
        max_deadline=max(ServiceSettings.max_deadline, default_deadline),
        max_attempts=_positive_attempts(args.max_attempts),
        retry_backoff=args.retry_backoff,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_recovery=args.breaker_recovery,
        drain_timeout=args.drain_timeout,
        dataset_jobs=args.jobs or 1,
        state_dir=Path(args.state_dir) if args.state_dir else None,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import CharacterizationService, serve

    config = _make_config(args)
    service = CharacterizationService(
        config=config, settings=_serve_settings(args)
    )
    return serve(service, host=args.host, port=args.port)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import run_mica_bench, write_bench_json

    config = _make_config(args)
    result = run_mica_bench(
        config=config,
        trace_length=args.trace_length or None,
        profile_name=args.profile,
        repeats=args.repeats,
        include_reference=not args.no_reference,
        include_generation=not args.no_generation,
        include_hpc=not args.no_hpc,
        include_phases=not args.no_phases,
        include_sharded=not args.no_sharded,
    )
    print(result.format())
    if args.output:
        path = write_bench_json(result, args.output)
        print(f"wrote {path}")
    if args.history:
        from .perf import append_bench_history

        path = append_bench_history(result, args.history)
        print(f"appended history row to {path}")
    return 0


def _run_single(args: argparse.Namespace, runner_name: str) -> int:
    from . import experiments

    config = _make_config(args)
    dataset = experiments.build_dataset(
        config, progress=args.verbose, **_dataset_kwargs(args)
    )
    runner = getattr(experiments, runner_name)
    result = runner(dataset) if runner_name in (
        "run_fig1", "run_table3", "run_case_study"
    ) else runner(dataset, config)
    print(result.format())
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from .experiments import run_all

    config = _make_config(args)
    kwargs = _dataset_kwargs(args)
    report = run_all(
        config,
        progress=args.verbose,
        jobs=kwargs.get("jobs"),
        cache_dir=kwargs.get("cache_dir"),
        use_cache=kwargs["use_cache"],
    )
    print(report.format(kiviat_plots=args.kiviat))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .experiments import build_dataset
    from .reporting import dataset_to_json, matrix_to_csv

    config = _make_config(args)
    dataset = build_dataset(
        config, progress=args.verbose, **_dataset_kwargs(args)
    )
    if args.space == "mica":
        columns, matrix = dataset.mica_columns, dataset.mica
    else:
        columns, matrix = dataset.hpc_columns, dataset.hpc
    if args.format == "csv":
        print(matrix_to_csv(dataset.names, columns, matrix), end="")
    else:
        print(
            dataset_to_json(
                dataset.names,
                columns,
                matrix,
                metadata={
                    "space": args.space,
                    "trace_length": config.trace_length,
                },
            )
        )
    return 0


def _cmd_dendrogram(args: argparse.Namespace) -> int:
    from .analysis import GeneticSelector, hierarchical_cluster
    from .experiments import build_dataset

    config = _make_config(args)
    dataset = build_dataset(
        config, progress=args.verbose, **_dataset_kwargs(args)
    )
    normalized = dataset.mica_normalized()
    selector = GeneticSelector(
        population=config.ga_population,
        generations=config.ga_generations,
        seed=config.ga_seed,
    )
    ga = selector.select(normalized)
    result = hierarchical_cluster(
        normalized[:, list(ga.selected)],
        list(dataset.names),
        method=args.method,
    )
    print(f"hierarchical clustering ({args.method} linkage) in the "
          f"{ga.n_selected}-dimensional GA space")
    print(result.format_dendrogram())
    return 0


def _cmd_subset(args: argparse.Namespace) -> int:
    from .experiments import build_dataset, run_subsetting

    config = _make_config(args)
    dataset = build_dataset(
        config, progress=args.verbose, **_dataset_kwargs(args)
    )
    print(run_subsetting(dataset, config).format())
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .experiments import build_dataset, run_input_sensitivity

    config = _make_config(args)
    dataset = build_dataset(
        config, progress=args.verbose, **_dataset_kwargs(args)
    )
    print(run_input_sensitivity(dataset).format())
    return 0


def _lint_root(argument: str) -> Path:
    """Resolve the repository root for ``repro lint``.

    Explicit ``--root`` wins; otherwise the current directory when it
    holds ``src/repro``; otherwise the checkout this very module was
    imported from (so ``repro lint`` works from anywhere).
    """
    from .lint import LintUsageError

    if argument:
        return Path(argument)
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    candidate = Path(__file__).resolve().parent.parent.parent
    if (candidate / "src" / "repro").is_dir():
        return candidate
    raise LintUsageError(
        "cannot locate the repository root (no src/repro under the "
        "current directory or the installed package); pass --root"
    )


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_module

    from .lint import (
        LintUsageError,
        load_baseline,
        run_lint,
        rule_by_id,
        write_baseline,
    )

    try:
        if args.explain:
            rule = rule_by_id(args.explain)
            print(f"{rule.id}: {rule.summary}")
            print()
            print(rule.explanation)
            return 0
        root = _lint_root(args.root)
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else root / "lint-baseline.json"
        )
        if args.update_baseline:
            report = run_lint(root=root)
            write_baseline(baseline_path, report.findings)
            print(
                f"wrote {len(report.findings)} baseline entr"
                f"{'y' if len(report.findings) == 1 else 'ies'} to "
                f"{baseline_path}"
            )
            return 0
        baseline = None
        if args.baseline or baseline_path.is_file():
            # An explicitly named baseline must exist (usage error if
            # not); the default one is optional.
            baseline = load_baseline(baseline_path)
        report = run_lint(root=root, baseline=baseline)
        if args.format == "json":
            print(
                json_module.dumps(
                    report.to_json(), indent=2, sort_keys=True
                )
            )
        else:
            print(report.format())
        return report.exit_code
    except LintUsageError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mica-repro",
        description=(
            "Reproduction of 'Comparing Benchmarks Using Key "
            "Microarchitecture-Independent Characteristics' "
            "(Hoste & Eeckhout, IISWC 2006)"
        ),
    )
    parser.add_argument(
        "--trace-length", type=int, default=0,
        help="dynamic instructions per benchmark trace",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the dataset cache"
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for dataset builds (default: cpu count)",
    )
    parser.add_argument(
        "--cache-dir", default="", metavar="DIR",
        help="characterization cache directory (default: .mica_cache)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print progress while building"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the 122 benchmarks")

    for name, help_text in (
        ("characterize", "print a benchmark's 47 MICA characteristics"),
        ("hpc", "print a benchmark's simulated hardware counters"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("benchmark", help="name, e.g. 'mcf' or "
                         "'spec2000/bzip2/graphic'")
        if name == "characterize":
            sub.add_argument(
                "--shards", type=int, default=0, metavar="N",
                help="characterize through the shard-mergeable engine "
                     "split into N contiguous shards (bit-for-bit "
                     "identical; --jobs fans shards across processes)",
            )
            sub.add_argument(
                "--shard-size", type=int, default=0, metavar="ROWS",
                help="or split into fixed-size shards of ROWS "
                     "instructions each (the out-of-core geometry)",
            )

    dataset_parser = commands.add_parser(
        "dataset", help="build and cache the data set"
    )
    dataset_parser.add_argument(
        "--keep-going", action="store_true",
        help="salvage surviving benchmarks when some fail (exit 1 and "
             "report the casualties instead of aborting the build)",
    )
    dataset_parser.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="charged attempts per benchmark before it is declared "
             "failed (default: 3)",
    )
    dataset_parser.add_argument(
        "--retry-backoff", type=float, default=None, metavar="SECONDS",
        help="base of the bounded exponential sleep between retry "
             "rounds (default: 0.1; 0 disables sleeping)",
    )
    dataset_parser.add_argument(
        "--journal", nargs="?", const="", default=None, metavar="PATH",
        help="record a crash-safe write-ahead journal of the build "
             "(default path: journal-dataset-<key>.jsonl beside the "
             "cache), so a killed build can be finished with --resume",
    )
    dataset_parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="characterize each trace through the shard-mergeable "
             "engine split into N shards (fills the per-shard cache "
             "level; results stay bit-for-bit identical)",
    )
    dataset_parser.add_argument(
        "--resume", action="store_true",
        help="replay the build journal (repairing a torn tail), skip "
             "completed benchmarks whose cache entries still verify, "
             "and finish the build; converges to the cold build's "
             "exact matrices",
    )

    cache_parser = commands.add_parser(
        "cache",
        help="cache maintenance: verify entry integrity or clear levels",
    )
    cache_commands = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    verify_parser = cache_commands.add_parser(
        "verify",
        help="scan all cache levels, quarantine entries that fail "
             "integrity checks, sweep stale writer temp files",
    )
    verify_parser.add_argument(
        "--sweep-age", type=float, default=3600.0, metavar="SECONDS",
        help="minimum age of tmp-*.npz / tmp-journal-*.jsonl files to "
             "sweep (default: 1h)",
    )
    cache_commands.add_parser(
        "clear", help="delete every cache entry (all five levels)"
    )

    phases_parser = commands.add_parser(
        "phases",
        help="phase decomposition + characteristic timeline of one "
             "benchmark",
    )
    phases_parser.add_argument(
        "benchmark", help="name, e.g. 'mcf' or 'spec2000/bzip2/graphic'"
    )
    phases_parser.add_argument(
        "--interval", type=int, default=5_000,
        help="instructions per interval",
    )
    phases_parser.add_argument(
        "--signature", choices=("bbv", "mix", "mica"), default="bbv",
        help="per-interval signature substrate for phase detection",
    )
    phases_parser.add_argument(
        "--seed", type=int, default=0, help="k-means seed",
    )
    phases_parser.add_argument(
        "--homogeneity", action="store_true",
        help="validate simulation points against per-interval EV56 IPC",
    )

    serve_parser = commands.add_parser(
        "serve",
        help="run the characterization HTTP service (bounded admission "
             "queue, per-request deadlines, circuit breaker, graceful "
             "drain on SIGTERM)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8177,
        help="bind port (0 picks a free one; the chosen address is "
             "printed on startup)",
    )
    serve_parser.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="bounded admission-queue size (429 + Retry-After beyond)",
    )
    serve_parser.add_argument(
        "--service-workers", type=int, default=2, metavar="N",
        help="worker threads executing cold jobs",
    )
    serve_parser.add_argument(
        "--deadline-ms", type=float, default=30_000.0, metavar="MS",
        help="default per-request deadline (requests may lower it)",
    )
    serve_parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="compute attempts per job before it fails",
    )
    serve_parser.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base of the bounded retry backoff (jittered)",
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="consecutive worker failures that open the circuit breaker",
    )
    serve_parser.add_argument(
        "--breaker-recovery", type=float, default=5.0, metavar="SECONDS",
        help="seconds the breaker stays open before a half-open probe",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="seconds granted to in-flight jobs on SIGTERM",
    )
    serve_parser.add_argument(
        "--state-dir", default="", metavar="DIR",
        help="durable state directory: admissions and terminal "
             "transitions are journaled so a restarted service serves "
             "finished jobs from the journal and re-admits interrupted "
             "ones (omit for in-memory-only jobs)",
    )

    bench_parser = commands.add_parser(
        "bench", help="time the MICA analyzers; write BENCH_mica.json"
    )
    bench_parser.add_argument(
        "--output", default="BENCH_mica.json", metavar="PATH",
        help="result file ('' to skip writing)",
    )
    bench_parser.add_argument(
        "--profile", default="spec2000/vpr/place",
        help="registry benchmark supplying the workload profile",
    )
    bench_parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per analyzer (best is kept)",
    )
    bench_parser.add_argument(
        "--history", default="", metavar="PATH",
        help="append a one-line summary row (speedups per engine) to "
             "this JSONL history file, e.g. BENCH_history.jsonl "
             "('' skips)",
    )
    bench_parser.add_argument(
        "--no-reference", action="store_true",
        help="skip the slow scalar reference timings (PPM/ILP, generation "
             "phases, HPC events and pipeline models)",
    )
    bench_parser.add_argument(
        "--no-generation", action="store_true",
        help="skip the trace-generation engine timings",
    )
    bench_parser.add_argument(
        "--no-hpc", action="store_true",
        help="skip the HPC engine timings (events, pipeline models, "
             "components, cache)",
    )
    bench_parser.add_argument(
        "--no-phases", action="store_true",
        help="skip the phase engine timings (segmented timeline, "
             "signatures, phase detection)",
    )
    bench_parser.add_argument(
        "--no-sharded", action="store_true",
        help="skip the shard-engine timings (merge overhead, "
             "intra-trace multi-worker scaling)",
    )
    commands.add_parser("fig1", help="Figure 1: distance scatter")
    commands.add_parser("table3", help="Table III: quadrant fractions")
    commands.add_parser("fig2-3", help="Figures 2-3: bzip2 vs blast")
    commands.add_parser("fig4", help="Figure 4: ROC curves")
    commands.add_parser("fig5", help="Figure 5: correlation vs retained")
    commands.add_parser("table4", help="Table IV: GA-selected subset")
    commands.add_parser("fig6", help="Figure 6: clustering + kiviats")
    all_parser = commands.add_parser("all", help="full report")
    all_parser.add_argument(
        "--kiviat", action="store_true",
        help="include per-cluster kiviat polygons",
    )

    export_parser = commands.add_parser(
        "export", help="dump a workload space as CSV or JSON"
    )
    export_parser.add_argument(
        "space", choices=("mica", "hpc"), help="which data set to export"
    )
    export_parser.add_argument(
        "--format", choices=("csv", "json"), default="csv"
    )

    dendro_parser = commands.add_parser(
        "dendro", help="ASCII dendrogram in the GA-reduced space"
    )
    dendro_parser.add_argument(
        "--method", choices=("single", "complete", "average", "ward"),
        default="complete",
    )

    commands.add_parser(
        "subset", help="representative benchmark subset (extension)"
    )
    commands.add_parser(
        "sensitivity", help="input-set sensitivity (extension)"
    )

    lint_parser = commands.add_parser(
        "lint",
        help="static-analysis gate for the repo's own invariants",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--explain", default="", metavar="RULE",
        help="print one rule's rationale and exit",
    )
    lint_parser.add_argument(
        "--baseline", default="", metavar="PATH",
        help="baseline file (default: <root>/lint-baseline.json)",
    )
    lint_parser.add_argument(
        "--update-baseline", action="store_true",
        help="grandfather every current finding into the baseline",
    )
    lint_parser.add_argument(
        "--root", default="", metavar="DIR",
        help="repository root (default: auto-detected)",
    )
    return parser


_DISPATCH = {
    "list": _cmd_list,
    "characterize": _cmd_characterize,
    "hpc": _cmd_hpc,
    "phases": _cmd_phases,
    "dataset": _cmd_dataset,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "all": _cmd_all,
    "export": _cmd_export,
    "dendro": _cmd_dendrogram,
    "subset": _cmd_subset,
    "sensitivity": _cmd_sensitivity,
    "lint": _cmd_lint,
}

_SINGLE_RUNNERS = {
    "fig1": "run_fig1",
    "table3": "run_table3",
    "fig2-3": "run_case_study",
    "fig4": "run_fig4",
    "fig5": "run_fig5",
    "table4": "run_table4",
    "fig6": "run_fig6",
}


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command in _DISPATCH:
            return _DISPATCH[args.command](args)
        if args.command in _SINGLE_RUNNERS:
            return _run_single(args, _SINGLE_RUNNERS[args.command])
        raise ReproError(f"unknown command: {args.command}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
