"""Performance-trajectory history rows and floor gating.

The MICA bench harness (:mod:`repro.perf.timing`) reports a full
``BENCH_mica.json`` per run; this module boils one run down to a single
JSONL *history row* — the per-engine speedups against the retained
scalar references, plus enough metadata to compare rows across
machines — so ``BENCH_history.jsonl`` accumulates one line per PR and
the performance trajectory is a ``jq``-able time series rather than a
pile of full reports.

The same rows drive the CI perf gate (``benchmarks/perf/bench_gate.py``):
:func:`check_bench_floors` compares a row's speedups against the
committed per-engine floors in ``benchmarks/perf/floors.json`` and
returns the violations.  Floors are *speedup ratios* (engine vs its
scalar reference on the same machine), so the gate is
machine-independent: a slow CI runner slows both sides of every ratio.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Schema tag stamped into every history row.
HISTORY_SCHEMA = "BENCH_history/v1"

#: Engines a floors file may gate, mapped to where the ratio lives in a
#: :class:`~repro.perf.timing.MicaBenchResult`.
FLOOR_ENGINES = (
    "ppm", "ilp", "generation", "events", "pipelines", "phases",
    "sharded",
)


def bench_history_row(result) -> dict:
    """One flat history row for a harness run.

    Collects every reference-over-engine speedup the run measured into
    a single ``speedups`` dict keyed by engine: ``ppm``/``ilp`` (the
    analyzer engines), ``generation`` (the combined interpret+expand
    ratio), ``events``/``pipelines`` (the HPC event assemblies and
    pipeline models), ``phases`` (the segmented timeline engine) and
    ``sharded`` (the shard-mergeable engine's one-shot-over-sharded
    merge-overhead ratio).  Sections the run skipped
    (``--no-generation``, ``--no-reference``) are simply absent from
    the dict.
    """
    speedups: "Dict[str, float]" = {}
    for key in ("ppm", "ilp", "phases", "sharded"):
        if key in result.speedups:
            speedups[key] = float(result.speedups[key])
    if result.generation is not None:
        engine = result.generation.speedups.get("engine")
        if engine is not None:
            speedups["generation"] = float(engine)
    if result.hpc is not None:
        for key in ("events", "pipelines"):
            if key in result.hpc.speedups:
                speedups[key] = float(result.hpc.speedups[key])
    return {
        "schema": HISTORY_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "trace_length": int(result.trace_length),
        "profile": result.profile,
        "repeats": int(result.repeats),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "speedups": speedups,
    }


def append_bench_history(result, path: "Path | str") -> Path:
    """Append one history row for ``result`` to a JSONL file.

    Creates the file (and parents) on first use; each run is one line,
    so the file is an append-only time series that merges trivially.
    Returns the path written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    row = bench_history_row(result)
    # repro: lint-ok[durability] append-only telemetry; a torn tail is
    # tolerated (skipped) by load_bench_history, never served as data
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return target


def load_bench_history(path: "Path | str") -> "List[dict]":
    """All history rows in a JSONL file (missing file: empty list).

    A row that does not parse — the torn tail a crash mid-append leaves
    behind — is skipped rather than poisoning every later read: history
    is append-only telemetry, and every complete row is still good.
    """
    target = Path(path)
    if not target.is_file():
        return []
    rows: "List[dict]" = []
    for line in target.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return rows


def check_bench_floors(
    row: dict,
    floors: "Dict[str, float]",
    require_all: bool = True,
) -> "Tuple[str, ...]":
    """Compare one history row against per-engine speedup floors.

    Args:
        row: a :func:`bench_history_row` dict (or anything with a
            ``speedups`` mapping).
        floors: engine -> minimum acceptable speedup ratio.
        require_all: treat a floor whose engine the row did not measure
            as a violation (CI must not silently skip an engine because
            a flag disabled its section).

    Returns:
        Human-readable violation strings; empty means the row passes.
    """
    speedups = row.get("speedups", {})
    violations: "List[str]" = []
    for engine in sorted(floors):
        floor = float(floors[engine])
        measured: "Optional[float]" = speedups.get(engine)
        if measured is None:
            if require_all:
                violations.append(
                    f"{engine}: no speedup measured (floor {floor:g}x)"
                )
            continue
        if float(measured) < floor:
            violations.append(
                f"{engine}: {float(measured):.2f}x is below the "
                f"{floor:g}x floor"
            )
    return tuple(violations)
